//! # Watchdog
//!
//! A from-scratch Rust reproduction of **"Watchdog: Hardware for Safe and
//! Secure Manual Memory Management and Full Memory Safety"** (Nagarakatte,
//! Martin & Zdancewic, ISCA 2012).
//!
//! Watchdog is a hardware scheme for *comprehensive* use-after-free
//! detection: every allocation gets a never-reused **lock-and-key
//! identifier**; pointers carry their identifier in register sidecars and
//! a **disjoint shadow space**; an injected **check µop** validates
//! `*(id.lock) == id.key` before every memory access. Extended with
//! per-pointer bounds, the same machinery enforces full memory safety.
//!
//! This workspace implements the whole system: the guest ISA and
//! µop-injecting cracker ([`isa`]), guest memory + shadow space + cache
//! hierarchy ([`mem`]), an out-of-order timing model with
//! metadata-renaming copy elimination ([`pipeline`]), the Watchdog
//! machine, heap runtime and simulator ([`core`]), the twenty
//! SPEC-lookalike workloads plus the Juliet-style security suite
//! ([`workloads`]), a seeded program generator with a differential
//! detection oracle ([`gen`]), commit-stream capture with trace-driven
//! timing replay for one-pass configuration sweeps ([`trace`]), the
//! parallel suite/fuzz/sweep runners (the `bench` re-export), the
//! crash-isolated multi-process campaign service with its resumable,
//! crash-safe results ledger ([`campaign`]), and the structured
//! telemetry layer — preallocated metrics registry, sampling
//! self-profiler, section timers and the dependency-free JSON behind
//! `run --json` / `perf` snapshots ([`telemetry`]).
//!
//! # Quickstart
//!
//! ```
//! use watchdog::prelude::*;
//!
//! // Build a tiny guest program with a use-after-free bug.
//! let mut b = ProgramBuilder::new("demo");
//! let (p, sz, v) = (Gpr::new(0), Gpr::new(1), Gpr::new(2));
//! b.li(sz, 64);
//! b.malloc(p, sz);
//! b.li(v, 7);
//! b.st8(v, p, 0);
//! b.free(p);
//! b.ld8(v, p, 0); // dangling!
//! b.halt();
//! let program = b.build()?;
//!
//! // Watchdog detects it; the unchecked baseline does not.
//! let report = Simulator::new(SimConfig::functional(Mode::watchdog())).run(&program)?;
//! assert_eq!(report.violation.unwrap().kind, ViolationKind::UseAfterFree);
//! let report = Simulator::new(SimConfig::functional(Mode::Baseline)).run(&program)?;
//! assert!(report.violation.is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries that regenerate every table
//! and figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use watchdog_bench as bench;
pub use watchdog_campaign as campaign;
pub use watchdog_core as core;
pub use watchdog_gen as gen;
pub use watchdog_isa as isa;
pub use watchdog_mem as mem;
pub use watchdog_pipeline as pipeline;
pub use watchdog_telemetry as telemetry;
pub use watchdog_trace as trace;
pub use watchdog_workloads as workloads;

/// The most common imports for driving the simulator.
pub mod prelude {
    pub use watchdog_core::prelude::*;
    pub use watchdog_core::PointerId;
    pub use watchdog_isa::{AluOp, Cond, FpOp, FpWidth, Fpr, Gpr, Program, ProgramBuilder, Width};
    pub use watchdog_workloads::{all_benchmarks, benchmark, Scale};
}

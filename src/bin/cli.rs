//! `watchdog-cli` — command-line driver for the simulator.
//!
//! ```text
//! watchdog-cli list                         # registered benchmarks
//! watchdog-cli modes                        # available modes
//! watchdog-cli run mcf --mode isa           # simulate one benchmark
//! watchdog-cli run perl --mode cons --scale ref --sampled
//! watchdog-cli run mcf --json               # machine-readable metrics (watchdog-run-v1)
//! watchdog-cli run mcf --telemetry          # human report + registry + self-profile
//! watchdog-cli run mcf --cpi                # Fig. 8-style CPI stack across all four modes
//! watchdog-cli perf                         # perf snapshot -> bench-history/BENCH_<rev>.json
//! watchdog-cli perf compare bench-history/BENCH_aaa.json BENCH_bbb.json
//! watchdog-cli events validate run.events.jsonl --ledger fuzz.wdlg
//! watchdog-cli juliet                       # run the §9.2 security suite
//! watchdog-cli fuzz --seeds 1000            # differential fuzzing campaign
//! watchdog-cli fuzz --seed 42               # reproduce one generated case
//! watchdog-cli trace record mcf --mode cons -o mcf.wdtr
//! watchdog-cli trace replay mcf --trace mcf.wdtr --verify
//! watchdog-cli trace info --trace mcf.wdtr
//! watchdog-cli trace selftest --seeds 25    # record→replay equivalence smoke
//! watchdog-cli campaign --seeds 100000      # crash-isolated multi-process fuzz
//! watchdog-cli campaign --resume            # continue an interrupted campaign
//! watchdog-cli worker                       # internal: campaign child process
//! ```

use watchdog::bench::{fuzz_main, jobs_from_args, run_juliet_with_jobs, summarize_juliet};
use watchdog::prelude::*;
use watchdog::trace::{record, replay, verify_replay, ReplayConfig, Trace};

fn parse_mode(s: &str) -> Option<Mode> {
    Some(match s {
        "baseline" | "base" => Mode::Baseline,
        "location" | "location-based" => Mode::LocationBased,
        "cons" | "conservative" => Mode::watchdog_conservative(),
        "isa" | "watchdog" | "isa-assisted" => Mode::watchdog(),
        "no-ll" | "no-lock-cache" => Mode::Watchdog {
            ptr: PointerId::IsaAssisted,
            lock_cache: false,
            ideal_shadow: false,
        },
        "ideal-shadow" => Mode::Watchdog {
            ptr: PointerId::IsaAssisted,
            lock_cache: true,
            ideal_shadow: true,
        },
        "bounds1" | "bounds-fused" => Mode::WatchdogBounds {
            ptr: PointerId::IsaAssisted,
            uops: BoundsUops::Fused,
        },
        "bounds2" | "bounds-split" => Mode::WatchdogBounds {
            ptr: PointerId::IsaAssisted,
            uops: BoundsUops::Split,
        },
        _ => return None,
    })
}

fn parse_scale(s: &str) -> Option<Scale> {
    Some(match s {
        "test" => Scale::Test,
        "small" => Scale::Small,
        "ref" | "reference" => Scale::Reference,
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  watchdog-cli list\n  watchdog-cli modes\n  watchdog-cli run <bench> \
         [--mode <mode>] [--scale test|small|ref] [--functional] [--sampled] [--json] [--telemetry] [--cpi]\n  \
         watchdog-cli perf [--samples N] [--filter F] [--out-dir DIR] [-o FILE] [--rev R]\n  \
         watchdog-cli perf compare <baseline.json> <candidate.json> [--threshold PCT] [-o FILE]\n  \
         watchdog-cli events validate <events.jsonl> [--ledger FILE]\n  watchdog-cli juliet [--mode <mode>]\n  \
         watchdog-cli fuzz [--seeds N] [--seed-start K] [--jobs J]\n  watchdog-cli fuzz --seed <K>\n  \
         watchdog-cli trace record <bench> [--mode <mode>] [--scale <scale>] [-o FILE]\n  \
         watchdog-cli trace replay <bench> --trace FILE [--scale <scale>] [--verify]\n  \
         watchdog-cli trace info --trace FILE\n  \
         watchdog-cli trace selftest [--bench <bench>] [--scale <scale>] [--seeds N]\n  \
         watchdog-cli campaign [flags]         (see `watchdog-cli campaign --help`)\n  \
         watchdog-cli worker                   (internal; spawned by campaign)"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn cmd_list() {
    println!("{:<8} {:<8}", "name", "category");
    for b in all_benchmarks() {
        println!("{:<8} {:?}", b.name, b.category);
    }
}

fn cmd_modes() {
    for m in [
        "baseline",
        "location",
        "cons",
        "isa",
        "no-ll",
        "ideal-shadow",
        "bounds1",
        "bounds2",
    ] {
        println!("{:<14} -> {}", m, parse_mode(m).unwrap().label());
    }
}

fn cmd_run(args: &[String]) {
    let Some(name) = args.first() else { usage() };
    let Some(spec) = benchmark(name) else {
        eprintln!("unknown benchmark {name:?}; see `watchdog-cli list`");
        std::process::exit(2);
    };
    let mode = flag_value(args, "--mode").map_or(Mode::watchdog(), |m| {
        parse_mode(&m).unwrap_or_else(|| {
            eprintln!("unknown mode {m:?}; see `watchdog-cli modes`");
            std::process::exit(2);
        })
    });
    let scale = flag_value(args, "--scale").map_or(Scale::Small, |s| {
        parse_scale(&s).unwrap_or_else(|| {
            eprintln!("unknown scale {s:?}");
            std::process::exit(2);
        })
    });
    let functional = args.iter().any(|a| a == "--functional");
    let sampled = args.iter().any(|a| a == "--sampled");
    let cfg = if functional {
        SimConfig::functional(mode)
    } else if sampled {
        SimConfig::sampled(mode, Sampling::dense())
    } else {
        SimConfig::timed(mode)
    };

    if args.iter().any(|a| a == "--cpi") {
        cmd_run_cpi(spec.name, scale);
        return;
    }

    let json = args.iter().any(|a| a == "--json");
    let telemetry = args.iter().any(|a| a == "--telemetry");

    let program = spec.build(scale);
    let sim = Simulator::new(cfg);

    if json || telemetry {
        // Instrumented run: same RunReport (asserted by the telemetry
        // cross-check suite), plus the out-of-band RunTelemetry.
        let (report, tele) = match sim.run_instrumented(&program) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("simulation failed: {e}");
                std::process::exit(1);
            }
        };
        if json {
            // Machine-readable only: stdout is the document.
            let scale_label = format!("{scale:?}").to_lowercase();
            print!(
                "{}",
                watchdog::core::run_json(spec.name, &scale_label, &report, Some(&tele))
            );
        } else {
            println!(
                "benchmark:       {} ({:?}, {scale:?})",
                spec.name, spec.category
            );
            print_report(&report);
            println!("telemetry:");
            print!(
                "{}",
                watchdog::core::export_metrics(&report, Some(&tele)).render_human()
            );
        }
        return;
    }

    let report = match sim.run(&program) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "benchmark:       {} ({:?}, {scale:?})",
        spec.name, spec.category
    );
    print_report(&report);
}

/// `run --cpi` — the paper's Fig. 8 breakdown with exact cycle
/// accounting: one instrumented timed run per mode, rendering each
/// commit slot's attributed cause (program µops, metadata µops, stall
/// reasons) as a share of `cycles × commit_width`. The rows sum to 100%
/// by construction — the zero-slack invariant the accounting suite pins.
fn cmd_run_cpi(name: &str, scale: Scale) {
    let program = build_bench(name, scale);
    let mut rows = Vec::new();
    let mut width = 0;
    for mode in [
        Mode::Baseline,
        Mode::LocationBased,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ] {
        let (report, tele) = Simulator::new(SimConfig::timed(mode))
            .run_instrumented(&program)
            .unwrap_or_else(|e| {
                eprintln!("simulation failed under {}: {e}", mode.label());
                std::process::exit(1);
            });
        let reg = watchdog::core::export_metrics(&report, Some(&tele));
        let get = |n: &str| reg.counter_value(n).unwrap_or(0);
        let sum = |names: &[&str]| -> u64 { names.iter().map(|n| get(&format!("cpi.{n}"))).sum() };
        width = get("cpi.commit_width");
        let slots = get("cpi.slots").max(1) as f64;
        let share = |n: u64| watchdog::bench::pct(n as f64 / slots);
        rows.push((
            mode.label(),
            vec![
                get("cpi.cycles").to_string(),
                format!("{:.2}", reg.gauge_value("timing.ipc").unwrap_or(0.0)),
                share(get("cpi.commit.base")),
                share(sum(&[
                    "commit.check",
                    "commit.ptr_load",
                    "commit.ptr_store",
                    "commit.propagate",
                    "commit.alloc_dealloc",
                ])),
                share(sum(&["stall.fetch", "stall.icache", "stall.redirect"])),
                share(sum(&[
                    "stall.rob_full",
                    "stall.iq_full",
                    "stall.lq_full",
                    "stall.sq_full",
                ])),
                share(get("cpi.stall.fu")),
                share(get("cpi.stall.dep")),
                share(sum(&["stall.tlb_miss", "stall.ll_miss", "stall.l1d_miss"])),
                share(get("cpi.stall.drain")),
            ],
        ));
    }
    watchdog::bench::print_table(
        &format!("CPI stack: {name} at {scale:?} — share of {width}-wide commit slots"),
        &[
            "cycles", "ipc", "prog", "meta", "front", "window", "fu", "dep", "miss", "drain",
        ],
        &rows,
    );
    println!(
        "\nprog/meta = committed program/metadata µop slots; front = fetch+icache+redirect; \
         window = ROB/IQ/LQ/SQ full; miss = TLB/LL$/L1D miss outstanding; drain = pipeline tail."
    );
}

/// Best-effort short git revision for perf-snapshot file names:
/// `--rev` override, then `git rev-parse --short HEAD` — suffixed with
/// `-dirty` when the working tree has uncommitted changes, so a snapshot
/// taken mid-edit never silently overwrites the committed revision's
/// `BENCH_<rev>.json` — else `unknown`.
fn git_rev(args: &[String]) -> String {
    if let Some(rev) = flag_value(args, "--rev") {
        return rev;
    }
    let git = |argv: &[&str]| {
        std::process::Command::new("git")
            .args(argv)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(rev) = git(&["rev-parse", "--short", "HEAD"])
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
    else {
        return "unknown".to_string();
    };
    // Porcelain output is empty exactly when the tree is clean; treat a
    // failed status probe as clean (same best-effort stance as above).
    let dirty = git(&["status", "--porcelain"]).is_some_and(|s| !s.trim().is_empty());
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

/// `watchdog-cli perf` — measures the shared `timing_wheel` /
/// `consume_batch` case list (the same feed loops the criterion benches
/// run) and writes a `watchdog-bench-v1` snapshot to `BENCH_<rev>.json`,
/// validated with the same parser CI uses before it is written.
fn cmd_perf(args: &[String]) {
    if args.first().map(String::as_str) == Some("compare") {
        cmd_perf_compare(&args[1..]);
        return;
    }
    let samples = flag_value(args, "--samples").map_or(3u64, |v| {
        v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--samples requires a positive integer");
            std::process::exit(2);
        })
    });
    let filter = flag_value(args, "--filter");
    let rev = git_rev(args);
    let out = match flag_value(args, "-o").or_else(|| flag_value(args, "--out")) {
        Some(path) => path,
        None => {
            // Snapshots accumulate per revision in the history
            // directory, so `perf compare` always has a baseline.
            let dir = flag_value(args, "--out-dir").unwrap_or_else(|| "bench-history".into());
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("cannot create {dir}: {e}");
                std::process::exit(1);
            }
            format!("{dir}/BENCH_{rev}.json")
        }
    };
    let snap = watchdog::bench::perf::perf_snapshot(&rev, samples, filter.as_deref(), |r| {
        println!(
            "{:<40} {:>14.1} ns/iter  ({:.1} Melem/s)",
            r.name, r.ns_per_iter, r.melem_per_s
        );
    });
    if snap.records.is_empty() {
        eprintln!(
            "no perf case matches filter {:?}",
            filter.unwrap_or_default()
        );
        std::process::exit(2);
    }
    let doc = snap.to_json();
    // Self-validate through the shared schema parser before writing —
    // the exact check CI's telemetry smoke step repeats on the artifact.
    if let Err(e) = watchdog::telemetry::BenchSnapshot::from_json(&doc) {
        eprintln!("internal error: snapshot fails its own schema: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {} record(s) at rev {rev} ({} samples each) -> {out}",
        snap.records.len(),
        samples
    );
}

/// `watchdog-cli perf compare` — the perf-regression gate: classifies
/// every case of a candidate snapshot against a baseline snapshot with a
/// noise threshold, prints the verdict table, optionally writes the
/// `watchdog-perfdiff-v1` delta report, and exits 1 when any case
/// regressed or lost coverage (the CI failure signal).
fn cmd_perf_compare(args: &[String]) {
    let (Some(base_path), Some(cand_path)) = (args.first(), args.get(1)) else {
        usage()
    };
    let threshold = flag_value(args, "--threshold").map_or(
        watchdog::bench::perfdiff::DEFAULT_THRESHOLD_PCT,
        |v| {
            v.parse::<f64>()
                .ok()
                .filter(|t| *t >= 0.0)
                .unwrap_or_else(|| {
                    eprintln!("--threshold requires a non-negative number (percent)");
                    std::process::exit(2);
                })
        },
    );
    // A missing or unreadable snapshot is a usage error (exit 2), kept
    // distinct from the regression signal (exit 1) so CI wiring mistakes
    // never masquerade as perf verdicts. For the baseline — the usual
    // victim of a stale path — list what `bench-history/` actually holds.
    let load = |path: &str, role: &str| -> watchdog::telemetry::BenchSnapshot {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            let mut avail: Vec<String> = std::fs::read_dir("bench-history")
                .into_iter()
                .flatten()
                .flatten()
                .map(|entry| entry.file_name().to_string_lossy().into_owned())
                .filter(|name| name.ends_with(".json"))
                .collect();
            avail.sort();
            let hint = if avail.is_empty() {
                "no snapshots in bench-history/ — run `watchdog-cli perf` to create one".to_string()
            } else {
                format!("available in bench-history/: {}", avail.join(", "))
            };
            eprintln!("cannot read {role} snapshot {path}: {e} ({hint})");
            std::process::exit(2);
        });
        watchdog::telemetry::BenchSnapshot::from_json(&text).unwrap_or_else(|e| {
            eprintln!("{path}: invalid {role} bench snapshot: {e}");
            std::process::exit(2);
        })
    };
    let diff = watchdog::bench::perfdiff::PerfDiff::compare(
        &load(base_path, "baseline"),
        &load(cand_path, "candidate"),
        threshold,
    );
    let rows: Vec<(String, Vec<String>)> = diff
        .cases
        .iter()
        .map(|c| {
            (
                c.name.clone(),
                vec![
                    format!("{:.1}", c.base_ns),
                    format!("{:.1}", c.cand_ns),
                    format!("{:+.1}%", c.delta_pct),
                    c.verdict.label().to_string(),
                ],
            )
        })
        .collect();
    watchdog::bench::print_table(
        &format!(
            "perf compare: {} -> {} (noise threshold {threshold:.1}%)",
            diff.baseline_rev, diff.candidate_rev
        ),
        &["base ns/iter", "cand ns/iter", "delta", "verdict"],
        &rows,
    );
    if let Some(out) = flag_value(args, "-o").or_else(|| flag_value(args, "--out")) {
        if let Err(e) = std::fs::write(&out, diff.to_json()) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote delta report -> {out}");
    }
    if diff.has_failures() {
        eprintln!(
            "perf compare: FAIL — {} case(s) regressed or lost coverage",
            diff.failures().count()
        );
        std::process::exit(1);
    }
    println!(
        "perf compare: PASS — {} case(s) within {threshold:.1}% of rev {}",
        diff.cases.len(),
        diff.baseline_rev
    );
}

/// `watchdog-cli events validate` — schema-checks a campaign `--events`
/// JSONL flight record against the `watchdog-campaign-events-v1`
/// vocabulary and, with `--ledger`, cross-checks its durable done/fail
/// outcomes against the campaign ledger.
fn cmd_events_validate(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let lines = watchdog::campaign::parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    let summary = watchdog::campaign::validate_events(&lines).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    println!(
        "{path}: {} event line(s) valid against {}",
        summary.lines,
        watchdog::campaign::EVENTS_SCHEMA
    );
    let counts: Vec<String> = summary
        .counts
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    println!("events:          {}", counts.join(" "));
    println!(
        "cells:           {} declared, {} resumed, {} completed in stream{}",
        summary.cells,
        summary.resumed,
        summary.outcomes.len(),
        if summary.end.is_some() {
            ", clean finish"
        } else {
            ", no campaign_end (crashed or still running)"
        }
    );
    if let Some(ledger_path) = flag_value(args, "--ledger") {
        let bytes = std::fs::read(&ledger_path).unwrap_or_else(|e| {
            eprintln!("cannot read {ledger_path}: {e}");
            std::process::exit(2);
        });
        let ledger = watchdog::campaign::ledger::parse_ledger(&bytes).unwrap_or_else(|e| {
            eprintln!("{ledger_path}: {e}");
            std::process::exit(1);
        });
        watchdog::campaign::cross_check(&summary, &ledger).unwrap_or_else(|e| {
            eprintln!("cross-check against {ledger_path} failed: {e}");
            std::process::exit(1);
        });
        println!(
            "ledger:          cross-check OK ({} durable record(s) agree)",
            ledger.records.len()
        );
    }
}

fn cmd_events(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("validate") => cmd_events_validate(&args[1..]),
        _ => usage(),
    }
}

/// Prints the standard per-run report block (shared by `run` and
/// `trace replay`, so the two render identically).
fn print_report(report: &RunReport) {
    println!("mode:            {}", report.mode);
    println!("instructions:    {}", report.machine.insts);
    println!("mem accesses:    {}", report.machine.mem_accesses);
    println!(
        "pointer ops:     {} ({:.1}%)",
        report.machine.ptr_classified,
        report.ptr_fraction() * 100.0
    );
    println!(
        "heap:            {} mallocs, {} frees, {} reused, peak {} bytes",
        report.heap.mallocs, report.heap.frees, report.heap.reused, report.heap.peak_live_bytes
    );
    println!(
        "footprint:       {} data words, {} shadow words, {} lock words ({:.1}% / {:.1}% word/page overhead)",
        report.footprint.data_words,
        report.footprint.shadow_words,
        report.footprint.lock_words,
        report.word_overhead() * 100.0,
        report.page_overhead() * 100.0
    );
    if let Some(t) = &report.timing {
        println!("cycles:          {} (IPC {:.2})", t.cycles, t.ipc());
        println!(
            "uops:            {} ({:+.1}% over baseline µops)",
            t.uops,
            t.uop_overhead() * 100.0
        );
        let [base, check, pl, ps, prop, alloc] = t.uops_by_tag;
        println!("  by tag:        base {base}, checks {check}, ptr-loads {pl}, ptr-stores {ps}, propagate {prop}, alloc {alloc}");
        println!(
            "bpred:           {:.2} cond mispredicts/1k branches; {} returns ({} mispredicted)",
            t.bpred.mpki(),
            t.bpred.returns,
            t.bpred.ret_mispredicts
        );
        println!(
            "caches:          L1D {:.2}% miss, LL$ {:.3} misses/1k insts, L2 {:.2}% miss",
            t.hierarchy.l1d.miss_rate() * 100.0,
            t.hierarchy.ll_mpk(t.insts),
            t.hierarchy.l2.miss_rate() * 100.0
        );
        println!(
            "rename:          {} copies eliminated, {} metadata allocs (high water {})",
            t.rename.eliminated_copies, t.rename.meta_allocs, t.rename.meta_high_water
        );
    }
    match report.violation {
        Some(v) => println!("violation:       {v}"),
        None => println!("violation:       none"),
    }
}

/// Builds the named benchmark or exits with the standard unknown-name
/// message.
fn build_bench(name: &str, scale: Scale) -> Program {
    let Some(spec) = benchmark(name) else {
        eprintln!("unknown benchmark {name:?}; see `watchdog-cli list`");
        std::process::exit(2);
    };
    spec.build(scale)
}

fn scale_arg(args: &[String], default: Scale) -> Scale {
    flag_value(args, "--scale").map_or(default, |s| {
        parse_scale(&s).unwrap_or_else(|| {
            eprintln!("unknown scale {s:?}");
            std::process::exit(2);
        })
    })
}

fn trace_file_arg(args: &[String]) -> Trace {
    let Some(path) = flag_value(args, "--trace") else {
        eprintln!("--trace FILE is required");
        std::process::exit(2);
    };
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    Trace::from_bytes(&bytes).unwrap_or_else(|e| {
        eprintln!("cannot decode {path}: {e}");
        std::process::exit(1);
    })
}

fn cmd_trace_record(args: &[String]) {
    let Some(name) = args.first() else { usage() };
    let mode = flag_value(args, "--mode").map_or(Mode::watchdog(), |m| {
        parse_mode(&m).unwrap_or_else(|| {
            eprintln!("unknown mode {m:?}; see `watchdog-cli modes`");
            std::process::exit(2);
        })
    });
    let scale = scale_arg(args, Scale::Small);
    let out = flag_value(args, "-o")
        .or_else(|| flag_value(args, "--out"))
        .unwrap_or_else(|| format!("{name}.wdtr"));
    let program = build_bench(name, scale);
    let trace = record(&program, mode, SimConfig::timed(mode).max_insts).unwrap_or_else(|e| {
        eprintln!("recording failed: {e}");
        std::process::exit(1);
    });
    let bytes = trace.to_bytes();
    std::fs::write(&out, &bytes).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    let info = trace.info();
    println!(
        "recorded {} under {} at {scale:?}: {} events over {} insts, {} bytes ({:.2} B/event) -> {out}",
        info.program, info.mode, info.events, info.insts, bytes.len(), info.bytes_per_event()
    );
}

fn cmd_trace_replay(args: &[String]) {
    let Some(name) = args.first() else { usage() };
    let scale = scale_arg(args, Scale::Small);
    let trace = trace_file_arg(args);
    let program = build_bench(name, scale);
    let report = replay(&program, &trace, &ReplayConfig::default()).unwrap_or_else(|e| {
        eprintln!("replay failed: {e}");
        std::process::exit(1);
    });
    println!(
        "benchmark:       {} (replayed from trace, {scale:?})",
        trace.program()
    );
    print_report(&report);
    if args.iter().any(|a| a == "--verify") {
        let live = Simulator::new(SimConfig::timed(trace.mode()))
            .run(&program)
            .unwrap_or_else(|e| {
                eprintln!("live verification run failed: {e}");
                std::process::exit(1);
            });
        if format!("{live:?}") == format!("{report:?}") {
            println!("verify:          replay is oracle-exact (identical RunReport)");
        } else {
            eprintln!("verify:          MISMATCH between live simulation and replay");
            eprintln!("live:   {live:?}");
            eprintln!("replay: {report:?}");
            std::process::exit(1);
        }
    }
}

fn cmd_trace_info(args: &[String]) {
    let trace = trace_file_arg(args);
    let info = trace.info();
    println!("format version:  {}", info.version);
    println!("program:         {}", info.program);
    println!("fingerprint:     {:#018x}", trace.fingerprint());
    println!("mode:            {}", info.mode);
    println!("instructions:    {}", info.insts);
    println!(
        "events:          {} ({:.3} per instruction)",
        info.events,
        info.events as f64 / info.insts.max(1) as f64
    );
    println!(
        "size:            {} bytes total, {} event bytes ({:.2} B/event)",
        info.total_bytes,
        info.event_bytes,
        info.bytes_per_event()
    );
    println!("outcome:         {}", info.outcome);
}

/// Record→replay→equivalence smoke: one benchmark plus a band of
/// fuzz-generated programs, each replayed (through a serialization round
/// trip, with both the batched and the per-instruction feed) and compared
/// field-for-field against the live timed simulation. Cases are sharded
/// across `--jobs`/`WATCHDOG_JOBS` workers. Exit code 0 = every
/// comparison identical.
fn cmd_trace_selftest(args: &[String]) {
    let bench_name = flag_value(args, "--bench").unwrap_or_else(|| "mcf".into());
    let scale = scale_arg(args, Scale::Test);
    let seeds = flag_value(args, "--seeds").map_or(25u64, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--seeds requires an unsigned integer");
            std::process::exit(2);
        })
    });
    // One shared recipe (`verify_replay`): live timed run (batched feed)
    // vs. record→serialize→deserialize→replay under both feeds, compared
    // field-for-field — the same helper the workspace equivalence tests
    // assert with, so the CI smoke and tier-1 can never check different
    // properties.
    let program = build_bench(&bench_name, scale);
    let gen_cfg = watchdog::gen::GenConfig::default();
    let cases: Vec<(Program, Mode)> = [Mode::watchdog_conservative(), Mode::watchdog()]
        .into_iter()
        .map(|m| (program.clone(), m))
        .chain((0..seeds).map(|seed| {
            (
                watchdog::gen::generate(seed, &gen_cfg).program,
                Mode::watchdog_conservative(),
            )
        }))
        .collect();
    let jobs = jobs_from_args();
    let failures: Vec<String> = watchdog::bench::parallel_map(cases.len(), jobs, |i| {
        let (program, mode) = &cases[i];
        verify_replay(program, &SimConfig::timed(*mode)).err()
    })
    .into_iter()
    .flatten()
    .collect();
    if failures.is_empty() {
        println!(
            "trace selftest: PASS — {} record→replay comparisons identical, batched + per-inst \
             feeds ({bench_name} under cons+isa at {scale:?}, {seeds} fuzz seeds under cons, \
             {jobs} worker thread(s))",
            cases.len()
        );
    } else {
        for f in &failures {
            eprintln!("{f}");
        }
        println!(
            "trace selftest: FAIL — {}/{} comparisons diverged",
            failures.len(),
            cases.len()
        );
        std::process::exit(1);
    }
}

fn cmd_trace(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("record") => cmd_trace_record(&args[1..]),
        Some("replay") => cmd_trace_replay(&args[1..]),
        Some("info") => cmd_trace_info(&args[1..]),
        Some("selftest") => cmd_trace_selftest(&args[1..]),
        _ => usage(),
    }
}

fn cmd_juliet(args: &[String]) {
    let mode = flag_value(args, "--mode").map_or(Mode::watchdog_conservative(), |m| {
        parse_mode(&m).unwrap_or_else(|| usage())
    });
    // Cases are sharded across the worker pool (`--jobs`/`WATCHDOG_JOBS`);
    // results are merged in suite order, identical to a serial run.
    let outcomes = run_juliet_with_jobs(mode, jobs_from_args(), None);
    let s = summarize_juliet(&outcomes);
    println!("mode:            {}", mode.label());
    println!(
        "bad detected:    {}/{} (missed or wrong kind: {})",
        s.detected,
        s.cases,
        s.missed + s.wrong_kind
    );
    println!("false positives: {}/{}", s.false_positives, s.cases);
}

fn cmd_fuzz(args: &[String]) {
    // The whole fuzz command line (flags, defaults, repro and campaign
    // reports) is shared with the standalone `fuzz` binary, so the two
    // entry points cannot drift.
    let code = fuzz_main(args);
    if code != 0 {
        std::process::exit(code);
    }
}

fn cmd_campaign(args: &[String]) {
    // Workers are this same binary, re-exec'd as `watchdog-cli worker`.
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate own executable to spawn workers: {e}");
        std::process::exit(1);
    });
    std::process::exit(watchdog::campaign::campaign_main(args, exe));
}

fn cmd_worker(args: &[String]) {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", watchdog::campaign::cli::WORKER_HELP);
        return;
    }
    std::process::exit(watchdog::campaign::worker_entry());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("modes") => cmd_modes(),
        Some("run") => cmd_run(&args[1..]),
        Some("perf") => cmd_perf(&args[1..]),
        Some("events") => cmd_events(&args[1..]),
        Some("juliet") => cmd_juliet(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        _ => usage(),
    }
}

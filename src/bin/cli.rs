//! `watchdog-cli` — command-line driver for the simulator.
//!
//! ```text
//! watchdog-cli list                         # registered benchmarks
//! watchdog-cli modes                        # available modes
//! watchdog-cli run mcf --mode isa           # simulate one benchmark
//! watchdog-cli run perl --mode cons --scale ref --sampled
//! watchdog-cli juliet                       # run the §9.2 security suite
//! watchdog-cli fuzz --seeds 1000            # differential fuzzing campaign
//! watchdog-cli fuzz --seed 42               # reproduce one generated case
//! ```

use watchdog::bench::{fuzz_main, jobs_from_args, run_juliet_with_jobs, summarize_juliet};
use watchdog::prelude::*;

fn parse_mode(s: &str) -> Option<Mode> {
    Some(match s {
        "baseline" | "base" => Mode::Baseline,
        "location" | "location-based" => Mode::LocationBased,
        "cons" | "conservative" => Mode::watchdog_conservative(),
        "isa" | "watchdog" | "isa-assisted" => Mode::watchdog(),
        "no-ll" | "no-lock-cache" => Mode::Watchdog {
            ptr: PointerId::IsaAssisted,
            lock_cache: false,
            ideal_shadow: false,
        },
        "ideal-shadow" => Mode::Watchdog {
            ptr: PointerId::IsaAssisted,
            lock_cache: true,
            ideal_shadow: true,
        },
        "bounds1" | "bounds-fused" => Mode::WatchdogBounds {
            ptr: PointerId::IsaAssisted,
            uops: BoundsUops::Fused,
        },
        "bounds2" | "bounds-split" => Mode::WatchdogBounds {
            ptr: PointerId::IsaAssisted,
            uops: BoundsUops::Split,
        },
        _ => return None,
    })
}

fn parse_scale(s: &str) -> Option<Scale> {
    Some(match s {
        "test" => Scale::Test,
        "small" => Scale::Small,
        "ref" | "reference" => Scale::Reference,
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  watchdog-cli list\n  watchdog-cli modes\n  watchdog-cli run <bench> \
         [--mode <mode>] [--scale test|small|ref] [--functional] [--sampled]\n  watchdog-cli juliet [--mode <mode>]\n  \
         watchdog-cli fuzz [--seeds N] [--seed-start K] [--jobs J]\n  watchdog-cli fuzz --seed <K>"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn cmd_list() {
    println!("{:<8} {:<8}", "name", "category");
    for b in all_benchmarks() {
        println!("{:<8} {:?}", b.name, b.category);
    }
}

fn cmd_modes() {
    for m in [
        "baseline",
        "location",
        "cons",
        "isa",
        "no-ll",
        "ideal-shadow",
        "bounds1",
        "bounds2",
    ] {
        println!("{:<14} -> {}", m, parse_mode(m).unwrap().label());
    }
}

fn cmd_run(args: &[String]) {
    let Some(name) = args.first() else { usage() };
    let Some(spec) = benchmark(name) else {
        eprintln!("unknown benchmark {name:?}; see `watchdog-cli list`");
        std::process::exit(2);
    };
    let mode = flag_value(args, "--mode").map_or(Mode::watchdog(), |m| {
        parse_mode(&m).unwrap_or_else(|| {
            eprintln!("unknown mode {m:?}; see `watchdog-cli modes`");
            std::process::exit(2);
        })
    });
    let scale = flag_value(args, "--scale").map_or(Scale::Small, |s| {
        parse_scale(&s).unwrap_or_else(|| {
            eprintln!("unknown scale {s:?}");
            std::process::exit(2);
        })
    });
    let functional = args.iter().any(|a| a == "--functional");
    let sampled = args.iter().any(|a| a == "--sampled");
    let cfg = if functional {
        SimConfig::functional(mode)
    } else if sampled {
        SimConfig::sampled(mode, Sampling::dense())
    } else {
        SimConfig::timed(mode)
    };

    let program = spec.build(scale);
    let report = match Simulator::new(cfg).run(&program) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "benchmark:       {} ({:?}, {scale:?})",
        spec.name, spec.category
    );
    println!("mode:            {}", report.mode);
    println!("instructions:    {}", report.machine.insts);
    println!("mem accesses:    {}", report.machine.mem_accesses);
    println!(
        "pointer ops:     {} ({:.1}%)",
        report.machine.ptr_classified,
        report.ptr_fraction() * 100.0
    );
    println!(
        "heap:            {} mallocs, {} frees, {} reused, peak {} bytes",
        report.heap.mallocs, report.heap.frees, report.heap.reused, report.heap.peak_live_bytes
    );
    println!(
        "footprint:       {} data words, {} shadow words, {} lock words ({:.1}% / {:.1}% word/page overhead)",
        report.footprint.data_words,
        report.footprint.shadow_words,
        report.footprint.lock_words,
        report.word_overhead() * 100.0,
        report.page_overhead() * 100.0
    );
    if let Some(t) = &report.timing {
        println!("cycles:          {} (IPC {:.2})", t.cycles, t.ipc());
        println!(
            "uops:            {} ({:+.1}% over baseline µops)",
            t.uops,
            t.uop_overhead() * 100.0
        );
        let [base, check, pl, ps, prop, alloc] = t.uops_by_tag;
        println!("  by tag:        base {base}, checks {check}, ptr-loads {pl}, ptr-stores {ps}, propagate {prop}, alloc {alloc}");
        println!(
            "bpred:           {:.2} cond mispredicts/1k branches; {} returns ({} mispredicted)",
            t.bpred.mpki(),
            t.bpred.returns,
            t.bpred.ret_mispredicts
        );
        println!(
            "caches:          L1D {:.2}% miss, LL$ {:.3} misses/1k insts, L2 {:.2}% miss",
            t.hierarchy.l1d.miss_rate() * 100.0,
            t.hierarchy.ll_mpk(t.insts),
            t.hierarchy.l2.miss_rate() * 100.0
        );
        println!(
            "rename:          {} copies eliminated, {} metadata allocs (high water {})",
            t.rename.eliminated_copies, t.rename.meta_allocs, t.rename.meta_high_water
        );
    }
    match report.violation {
        Some(v) => println!("violation:       {v}"),
        None => println!("violation:       none"),
    }
}

fn cmd_juliet(args: &[String]) {
    let mode = flag_value(args, "--mode").map_or(Mode::watchdog_conservative(), |m| {
        parse_mode(&m).unwrap_or_else(|| usage())
    });
    // Cases are sharded across the worker pool (`--jobs`/`WATCHDOG_JOBS`);
    // results are merged in suite order, identical to a serial run.
    let outcomes = run_juliet_with_jobs(mode, jobs_from_args(), None);
    let s = summarize_juliet(&outcomes);
    println!("mode:            {}", mode.label());
    println!(
        "bad detected:    {}/{} (missed or wrong kind: {})",
        s.detected,
        s.cases,
        s.missed + s.wrong_kind
    );
    println!("false positives: {}/{}", s.false_positives, s.cases);
}

fn cmd_fuzz(args: &[String]) {
    // The whole fuzz command line (flags, defaults, repro and campaign
    // reports) is shared with the standalone `fuzz` binary, so the two
    // entry points cannot drift.
    let code = fuzz_main(args);
    if code != 0 {
        std::process::exit(code);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("modes") => cmd_modes(),
        Some("run") => cmd_run(&args[1..]),
        Some("juliet") => cmd_juliet(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        _ => usage(),
    }
}

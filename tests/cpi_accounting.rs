//! The zero-slack CPI-accounting property (PR 9's tentpole invariant):
//! every issue/commit slot of every cycle is attributed to exactly one
//! cause, so the `cpi.*` registry namespace sums *exactly* — no slack,
//! no double counting — to `cycles × commit_width` on every suite cell,
//! under all four paper modes, for live and replayed feeds alike; and
//! the committed program/metadata slots agree with the report's
//! independent per-tag µop totals (the Fig. 8 breakdown cross-check).

use watchdog::bench::parallel_map;
use watchdog::pipeline::{STALL_CAUSE_NAMES, TAG_NAMES};
use watchdog::prelude::*;
use watchdog::telemetry::MetricsRegistry;
use watchdog::trace::{record, replay_instrumented, ReplayConfig};

/// The four modes of the paper's headline figures.
fn modes() -> [Mode; 4] {
    [
        Mode::Baseline,
        Mode::LocationBased,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ]
}

/// Asserts the zero-slack identity on one exported registry and returns
/// `(cycles, per-tag committed slots)` for caller cross-checks.
fn check_zero_slack(reg: &MetricsRegistry, label: &str) -> (u64, [u64; 6]) {
    let get = |n: &str| {
        reg.counter_value(n)
            .unwrap_or_else(|| panic!("[{label}] missing counter {n}"))
    };
    let cycles = get("cpi.cycles");
    let slots = get("cpi.slots");
    assert_eq!(
        slots,
        cycles * get("cpi.commit_width"),
        "[{label}] slots is not cycles × width"
    );
    let mut by_tag = [0u64; 6];
    for (slot, name) in by_tag.iter_mut().zip(TAG_NAMES) {
        *slot = get(&format!("cpi.commit.{name}"));
    }
    let committed: u64 = by_tag.iter().sum();
    let stalled: u64 = STALL_CAUSE_NAMES
        .iter()
        .map(|n| get(&format!("cpi.stall.{n}")))
        .sum::<u64>()
        + get("cpi.stall.drain");
    assert_eq!(
        committed + stalled,
        slots,
        "[{label}] accounting has slack: {committed} committed + {stalled} stalled != {slots}"
    );
    (cycles, by_tag)
}

/// Live feed: every registered benchmark × all four modes at test scale.
/// Beyond zero slack, the commit slots must agree with the report's
/// per-tag µop totals and the accounted cycle count with the report's —
/// two independent accounting paths meeting at the same numbers.
#[test]
fn cpi_stacks_are_zero_slack_on_every_suite_cell() {
    let cells: Vec<(String, Mode)> = all_benchmarks()
        .iter()
        .flat_map(|b| modes().map(|m| (b.name.to_string(), m)))
        .collect();
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let failures: Vec<String> = parallel_map(cells.len(), jobs, |i| {
        let (name, mode) = &cells[i];
        let label = format!("{name} under {}", mode.label());
        let program = benchmark(name).unwrap().build(Scale::Test);
        let (report, tele) = Simulator::new(SimConfig::timed(*mode))
            .run_instrumented(&program)
            .map_err(|e| format!("[{label}] failed: {e}"))?;
        let reg = watchdog::core::export_metrics(&report, Some(&tele));
        let (cycles, by_tag) = check_zero_slack(&reg, &label);
        let t = report.timing.as_ref().unwrap();
        if cycles != t.cycles {
            return Err(format!(
                "[{label}] accounted {cycles} cycles, report has {}",
                t.cycles
            ));
        }
        if by_tag != t.uops_by_tag {
            return Err(format!(
                "[{label}] commit slots {by_tag:?} != report µop totals {:?}",
                t.uops_by_tag
            ));
        }
        Ok(())
    })
    .into_iter()
    .filter_map(Result::err)
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Replayed feed: the trace replayer drives the same timing core from a
/// recorded event stream, batched and per-instruction. Both must hold
/// the zero-slack identity and reproduce the live run's `cpi.*` numbers
/// exactly — accounting is part of the timestamp state the equivalence
/// suites already pin, not a side effect of how µops arrive.
#[test]
fn replayed_feeds_reproduce_the_live_cpi_stack() {
    for bench in ["mcf", "perl"] {
        for mode in [Mode::watchdog_conservative(), Mode::watchdog()] {
            let label = format!("{bench} under {}", mode.label());
            let program = benchmark(bench).unwrap().build(Scale::Test);
            let sim_cfg = SimConfig::timed(mode);
            let (_, tele) = Simulator::new(sim_cfg.clone())
                .run_instrumented(&program)
                .unwrap();
            let live = &tele.core_metrics;
            check_zero_slack(live, &format!("{label}, live"));

            let trace = record(&program, mode, sim_cfg.max_insts).unwrap();
            for batch in [true, false] {
                let feed = format!("{label}, replay batch={batch}");
                let cfg = ReplayConfig {
                    batch,
                    ..ReplayConfig::from_sim(&sim_cfg)
                };
                let (_, reg) =
                    replay_instrumented(&program, &trace, &cfg, Default::default()).unwrap();
                check_zero_slack(&reg, &feed);
                for m in reg.iter().filter(|m| m.name.starts_with("cpi.")) {
                    assert_eq!(
                        m.counter,
                        Some(live.counter_value(m.name).unwrap()),
                        "[{feed}] {} diverges from the live feed",
                        m.name
                    );
                }
            }
        }
    }
}

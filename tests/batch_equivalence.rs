//! The batched µop-event pipeline's acceptance anchor at workspace scale:
//! feeding the timing core through [`UopBatch`] windows (the default) must
//! produce **field-identical** `RunReport`s — cycles, per-tag µop counts,
//! hierarchy/bpred/rename/stall counters, crack-cache counters, heap,
//! footprint, violation — to the per-instruction `consume` feed, on every
//! suite cell and across a band of fuzz-generated programs (violating
//! payloads included). The replay side is held to the same standard:
//! direct SoA fill from decoded trace events versus per-instruction
//! assembly.
//!
//! Reports are compared through their `Debug` rendering, which prints
//! every field of every nested statistic — the strongest practical
//! byte-identity check (the same discipline as `trace_equivalence.rs`).

use watchdog::bench::parallel_map;
use watchdog::gen::{generate, GenConfig};
use watchdog::prelude::*;
use watchdog::trace::{record, replay, ReplayConfig};

fn jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Live timed simulation, batched vs per-instruction feed. Returns the
/// divergence description, or `None` when the reports are identical.
fn check_live(program: &Program, mode: Mode) -> Option<String> {
    let batched_cfg = SimConfig::timed(mode);
    let mut per_inst_cfg = batched_cfg.clone();
    per_inst_cfg.batch = false;
    assert!(batched_cfg.batch, "batching is the default feed");
    let run = |cfg: SimConfig| Simulator::new(cfg).run(program);
    let (a, b) = match (run(batched_cfg), run(per_inst_cfg)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            return Some(format!(
                "{}/{}: run failed: {e}",
                program.name(),
                mode.label()
            ))
        }
    };
    let (a, b) = (format!("{a:?}"), format!("{b:?}"));
    (a != b).then(|| {
        format!(
            "{}/{}: batched feed diverges from per-inst\nbatched:  {a}\nper-inst: {b}",
            program.name(),
            mode.label()
        )
    })
}

/// Trace replay, batched (direct SoA fill) vs per-instruction assembly.
fn check_replay(program: &Program, mode: Mode) -> Option<String> {
    let sim = SimConfig::timed(mode);
    let trace = match record(program, mode, sim.max_insts) {
        Ok(t) => t,
        Err(e) => {
            return Some(format!(
                "{}/{}: record failed: {e}",
                program.name(),
                mode.label()
            ))
        }
    };
    let mut cfg = ReplayConfig::from_sim(&sim);
    let run = |cfg: &ReplayConfig| replay(program, &trace, cfg);
    let a = run(&cfg);
    cfg.batch = false;
    let b = run(&cfg);
    let (a, b) = match (a, b) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            return Some(format!(
                "{}/{}: replay failed: {e}",
                program.name(),
                mode.label()
            ))
        }
    };
    let (a, b) = (format!("{a:?}"), format!("{b:?}"));
    (a != b).then(|| {
        format!(
            "{}/{}: batched replay diverges from per-inst replay\nbatched:  {a}\nper-inst: {b}",
            program.name(),
            mode.label()
        )
    })
}

/// Every (benchmark × mode) cell of the suite grid is feed-invariant,
/// on the live path and on the replay path.
#[test]
fn every_suite_cell_is_feed_invariant() {
    let modes = [
        Mode::Baseline,
        Mode::LocationBased,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ];
    let specs = all_benchmarks();
    let programs: Vec<Program> = specs.iter().map(|s| s.build(Scale::Test)).collect();
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..modes.len()).map(move |m| (s, m)))
        .collect();
    let failures: Vec<String> = parallel_map(grid.len(), jobs(), |k| {
        let (si, mi) = grid[k];
        let mut out = Vec::new();
        out.extend(check_live(&programs[si], modes[mi]));
        // Replay-side invariance on the checked modes (the trace format
        // round-trips the same cells in trace_equivalence.rs; here the
        // axis under test is the feed).
        if modes[mi] != Mode::LocationBased {
            out.extend(check_replay(&programs[si], modes[mi]));
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} suite cell(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// 100 fuzz seeds — violating payloads included, so batches that end at a
/// detected violation are covered — are feed-invariant under the
/// conservative mode, with an ISA-assisted prefix.
#[test]
fn a_hundred_fuzz_seeds_are_feed_invariant() {
    let cfg = GenConfig::default();
    let failures: Vec<String> = parallel_map(100, jobs(), |seed| {
        let g = generate(seed as u64, &cfg);
        let mut out = Vec::new();
        out.extend(check_live(&g.program, Mode::watchdog_conservative()));
        out.extend(check_live(&g.twin, Mode::watchdog_conservative()));
        if seed < 25 {
            out.extend(check_live(&g.program, Mode::watchdog()));
            out.extend(check_replay(&g.program, Mode::watchdog_conservative()));
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} fuzz cell(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The sampled regime (§9.1) is feed-invariant too: batch flushes must
/// align with measurement-window snapshots.
#[test]
fn sampled_runs_are_feed_invariant() {
    let program = benchmark("mcf").expect("registered").build(Scale::Test);
    let base = SimConfig::sampled(Mode::watchdog_conservative(), Sampling::dense());
    let batched = Simulator::new(base.clone()).run(&program).unwrap();
    let mut per_inst_cfg = base;
    per_inst_cfg.batch = false;
    let per_inst = Simulator::new(per_inst_cfg).run(&program).unwrap();
    assert_eq!(format!("{batched:?}"), format!("{per_inst:?}"));
}

//! Telemetry cross-check: on every suite cell (each of the twenty
//! benchmarks under each evaluated mode), the metrics registry built by
//! `export_metrics` must agree exactly with the `RunReport` it was built
//! from, and the self-profiler's *independent* accounting (its own
//! inst/µop/dispatch counters, recorded inside the consume loop) must
//! agree with the timing model's. A drift in either direction — a
//! registry export lagging a report field, or the instrumented path
//! counting differently from the model — fails here with the cell named.

use watchdog::core::{export_metrics, RunTelemetry};
use watchdog::prelude::*;
use watchdog::telemetry::MetricsRegistry;

/// Counter lookup that panics with the cell label on a missing metric.
fn c(reg: &MetricsRegistry, cell: &str, name: &str) -> u64 {
    reg.counter_value(name)
        .unwrap_or_else(|| panic!("{cell}: metric {name} missing from the registry"))
}

/// Every registry counter that mirrors a `RunReport` field, checked for
/// exact agreement on one finished cell.
fn crosscheck_cell(cell: &str, report: &RunReport, tele: &RunTelemetry) {
    let reg = export_metrics(report, Some(tele));

    // Architectural counters mirror the functional machine verbatim.
    assert_eq!(c(&reg, cell, "run.insts"), report.machine.insts, "{cell}");
    assert_eq!(
        c(&reg, cell, "run.mem_accesses"),
        report.machine.mem_accesses,
        "{cell}"
    );
    assert_eq!(c(&reg, cell, "heap.mallocs"), report.heap.mallocs, "{cell}");
    assert_eq!(c(&reg, cell, "heap.frees"), report.heap.frees, "{cell}");
    assert_eq!(
        c(&reg, cell, "footprint.shadow_words"),
        report.footprint.shadow_words,
        "{cell}"
    );

    // Timing-model counters mirror the timed report.
    let t = report.timing.as_ref().expect("suite cells are timed");
    assert_eq!(c(&reg, cell, "timing.cycles"), t.cycles, "{cell}");
    assert_eq!(c(&reg, cell, "timing.insts"), t.insts, "{cell}");
    assert_eq!(c(&reg, cell, "timing.uops"), t.uops, "{cell}");
    let tag_sum: u64 = watchdog::core::telemetry::TAG_NAMES
        .iter()
        .map(|name| c(&reg, cell, &format!("timing.uops.{name}")))
        .sum();
    assert_eq!(tag_sum, t.uops, "{cell}: per-tag µop counters must sum");
    assert_eq!(c(&reg, cell, "stall.rob"), t.stalls.rob, "{cell}");
    assert_eq!(c(&reg, cell, "stall.iq"), t.stalls.iq, "{cell}");
    assert_eq!(
        c(&reg, cell, "mem.ll.accesses"),
        t.hierarchy.ll.accesses,
        "{cell}"
    );
    assert_eq!(
        c(&reg, cell, "mem.ll.misses"),
        t.hierarchy.ll.misses,
        "{cell}"
    );
    assert_eq!(
        c(&reg, cell, "mem.access.shadow"),
        t.hierarchy.shadow_accesses,
        "{cell}"
    );
    assert_eq!(
        c(&reg, cell, "rename.eliminated_copies"),
        t.rename.eliminated_copies,
        "{cell}"
    );

    // The self-profiler counts µops in the consume loop, independently
    // of the timing model's tag totals; both paths must land on the same
    // numbers, and the per-kind dispatch counters must sum to the total.
    assert_eq!(
        c(&reg, cell, "profile.insts"),
        t.insts,
        "{cell}: profiler inst count drifted from the timing model"
    );
    assert_eq!(
        c(&reg, cell, "profile.uops"),
        t.uops,
        "{cell}: profiler µop count drifted from the timing model"
    );
    let dispatch_sum: u64 = watchdog::pipeline::UOP_KIND_NAMES
        .iter()
        .map(|name| c(&reg, cell, &format!("profile.dispatch.{name}")))
        .sum();
    assert_eq!(
        dispatch_sum, t.uops,
        "{cell}: per-kind dispatch counters must sum to the µop total"
    );

    // The batched feed saw exactly what the model retired.
    assert_eq!(c(&reg, cell, "feed.insts"), t.insts, "{cell}");
    assert_eq!(c(&reg, cell, "feed.uops"), t.uops, "{cell}");
    assert!(c(&reg, cell, "feed.batches") > 0, "{cell}");

    // Host-side observations exist and are self-consistent.
    assert_eq!(c(&reg, cell, "host.run.ns"), tele.host_ns, "{cell}");
    assert!(c(&reg, cell, "section.run.ns") > 0, "{cell}");
    assert_eq!(
        c(&reg, cell, "mem.ll.memo_hits"),
        tele.ll_memo_hits,
        "{cell}"
    );
}

/// The full suite grid: twenty benchmarks × the three evaluated modes,
/// each run instrumented once and cross-checked field by field.
#[test]
fn registry_counters_agree_with_the_report_on_every_suite_cell() {
    for spec in all_benchmarks() {
        let p = spec.build(Scale::Test);
        for mode in [
            Mode::Baseline,
            Mode::watchdog_conservative(),
            Mode::watchdog(),
        ] {
            let cell = format!("{}/{}", spec.name, mode.label());
            let (report, tele) = Simulator::new(SimConfig::timed(mode))
                .run_instrumented(&p)
                .unwrap_or_else(|e| panic!("{cell}: {e}"));
            crosscheck_cell(&cell, &report, &tele);
        }
    }
}

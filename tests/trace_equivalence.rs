//! The trace subsystem's acceptance anchor at workspace scale: for every
//! suite cell and a band of fuzz seeds, trace-driven timed replay must
//! reproduce the live timed simulation's `RunReport` **exactly** — and the
//! trace-driven ablation sweep must produce byte-identical tables to the
//! full re-simulation path.
//!
//! Reports are compared through their `Debug` rendering, which prints
//! every field of every nested statistic (cycles, per-tag µop counts,
//! hierarchy/bpred/rename/stall counters, crack-cache counters, heap,
//! footprint, violation) — the strongest practical byte-identity check.

use watchdog::bench::{
    parallel_map, run_sweep_resim_with_jobs, run_sweep_traced_with_jobs, SweepPoint,
};
use watchdog::gen::{generate, GenConfig};
use watchdog::prelude::*;
use watchdog::trace::verify_replay;

fn jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Live timed simulation vs. record→serialize→deserialize→replay — the
/// one shared recipe (`verify_replay`, also behind the CI
/// `trace selftest` smoke). Returns the divergence description, or `None`
/// when the reports are identical.
fn check_cell(program: &Program, mode: Mode) -> Option<String> {
    verify_replay(program, &SimConfig::timed(mode)).err()
}

/// Every (benchmark × mode) cell of the suite grid replays exactly.
#[test]
fn every_suite_cell_replays_exactly() {
    let modes = [
        Mode::Baseline,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ];
    let specs = all_benchmarks();
    let programs: Vec<Program> = specs.iter().map(|s| s.build(Scale::Test)).collect();
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..modes.len()).map(move |m| (s, m)))
        .collect();
    let failures: Vec<String> = parallel_map(grid.len(), jobs(), |k| {
        let (si, mi) = grid[k];
        check_cell(&programs[si], modes[mi])
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} suite cell(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// 100 fuzz seeds — violating payloads included — replay exactly under
/// the conservative mode, and a prefix under ISA-assisted identification
/// (whose recording repeats the §5.2 profiling pass, like a live run).
#[test]
fn a_hundred_fuzz_seeds_replay_exactly() {
    let cfg = GenConfig::default();
    let failures: Vec<String> = parallel_map(100, jobs(), |seed| {
        let g = generate(seed as u64, &cfg);
        let mut out = Vec::new();
        out.extend(check_cell(&g.program, Mode::watchdog_conservative()));
        out.extend(check_cell(&g.twin, Mode::watchdog_conservative()));
        if seed < 25 {
            out.extend(check_cell(&g.program, Mode::watchdog()));
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} fuzz cell(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// `run_sweep_traced` (one functional pass + N replays per benchmark)
/// produces a byte-identical ablation table to the full-resimulation
/// path, under a profiled mode and across worker counts.
#[test]
fn traced_sweep_tables_are_byte_identical_to_resim() {
    let points = [SweepPoint::ll_size_kb(1), SweepPoint::ll_size_kb(16)];
    let mode = Mode::watchdog();
    let traced = run_sweep_traced_with_jobs(mode, Scale::Test, &points, jobs(), Some(4));
    let resim = run_sweep_resim_with_jobs(mode, Scale::Test, &points, 1, Some(4));
    assert_eq!(format!("{traced:?}"), format!("{resim:?}"));
}

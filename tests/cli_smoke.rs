//! Smoke tests for the `watchdog-cli` binary: every documented mode string
//! parses, and the `list`/`run`/`juliet` subcommands execute on tiny
//! programs without panicking.

use std::process::{Command, Output};

/// All mode spellings documented by `watchdog-cli modes` and the README.
const MODE_STRINGS: &[&str] = &[
    "base",
    "baseline",
    "location",
    "location-based",
    "cons",
    "conservative",
    "isa",
    "watchdog",
    "isa-assisted",
    "no-ll",
    "no-lock-cache",
    "ideal-shadow",
    "bounds1",
    "bounds-fused",
    "bounds2",
    "bounds-split",
];

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_watchdog-cli"))
        .args(args)
        .output()
        .expect("watchdog-cli spawns")
}

fn stdout_of(args: &[&str]) -> String {
    let out = cli(args);
    assert!(
        out.status.success(),
        "watchdog-cli {args:?} failed (status {:?}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn list_prints_the_twenty_benchmarks() {
    let out = stdout_of(&["list"]);
    // Header plus the paper's twenty SPEC lookalikes.
    assert_eq!(out.lines().count(), 21, "unexpected listing:\n{out}");
    for name in ["lbm", "mcf", "perl", "gzip", "hmmer"] {
        assert!(out.contains(name), "{name} missing from:\n{out}");
    }
}

#[test]
fn modes_subcommand_covers_every_documented_spelling() {
    // `modes` itself round-trips the canonical spellings through
    // parse_mode (it unwraps), so success proves they all parse.
    let out = stdout_of(&["modes"]);
    assert_eq!(out.lines().count(), 8, "unexpected mode table:\n{out}");
}

#[test]
fn every_mode_string_is_accepted_by_run() {
    // An unknown mode exits with a usage error before simulating, so a
    // successful tiny run proves the spelling parsed.
    for mode in MODE_STRINGS {
        let out = stdout_of(&[
            "run",
            "lbm",
            "--mode",
            mode,
            "--functional",
            "--scale",
            "test",
        ]);
        assert!(out.contains("violation:       none"), "mode {mode}:\n{out}");
    }
}

#[test]
fn run_rejects_unknown_mode_and_benchmark() {
    assert!(!cli(&["run", "lbm", "--mode", "nonsense"]).status.success());
    assert!(!cli(&["run", "nonsense"]).status.success());
    assert!(!cli(&["nonsense"]).status.success());
}

#[test]
fn timed_run_reports_cycles() {
    let out = stdout_of(&["run", "comp", "--scale", "test", "--mode", "cons"]);
    assert!(
        out.contains("cycles:"),
        "timed run must report cycles:\n{out}"
    );
    assert!(out.contains("IPC"), "timed run must report IPC:\n{out}");
}

#[test]
fn run_json_emits_the_stable_schema() {
    let out = stdout_of(&["run", "mcf", "--scale", "test", "--mode", "cons", "--json"]);
    let doc = watchdog::telemetry::JsonValue::parse(&out).expect("run --json parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(watchdog::core::RUN_SCHEMA)
    );
    assert_eq!(doc.get("benchmark").and_then(|v| v.as_str()), Some("mcf"));
    assert_eq!(doc.get("scale").and_then(|v| v.as_str()), Some("test"));
    let metrics = doc.get("metrics").expect("metrics object");
    for key in [
        "run.insts",
        "timing.cycles",
        "timing.ipc",
        "mem.ll.accesses",
        "profile.insts",
        "feed.batches",
        "section.run.ns",
        "host.run.ns",
    ] {
        assert!(metrics.get(key).is_some(), "{key} missing from:\n{out}");
    }
    // The human-readable telemetry view renders the same registry.
    let out = stdout_of(&[
        "run",
        "mcf",
        "--scale",
        "test",
        "--mode",
        "cons",
        "--telemetry",
    ]);
    assert!(out.contains("telemetry:"), "{out}");
    assert!(out.contains("profile.insts"), "{out}");
}

#[test]
fn perf_writes_a_validating_bench_snapshot() {
    let dir = std::env::temp_dir().join(format!("wdperf-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bench.json");
    let path_s = path.to_str().expect("utf-8 temp path");

    let out = stdout_of(&[
        "perf",
        "--samples",
        "1",
        "--filter",
        "mcf_wheel",
        "-o",
        path_s,
        "--rev",
        "smoke",
    ]);
    assert!(out.contains("mcf_wheel"), "{out}");

    let text = std::fs::read_to_string(&path).expect("snapshot written");
    let snap = watchdog::telemetry::BenchSnapshot::from_json(&text)
        .expect("snapshot passes the shared validator");
    assert_eq!(snap.rev, "smoke");
    assert!(
        snap.records
            .iter()
            .any(|r| r.name == "timing_wheel/mcf_wheel"),
        "expected case missing: {:?}",
        snap.records.iter().map(|r| &r.name).collect::<Vec<_>>()
    );
    assert!(
        snap.records
            .iter()
            .all(|r| r.ns_per_iter > 0.0 && r.iterations > 0),
        "degenerate measurements: {:?}",
        snap.records
    );

    // An over-narrow filter is an error, not an empty snapshot.
    assert!(!cli(&["perf", "--filter", "no-such-case"]).status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_cpi_renders_all_four_modes_with_full_shares() {
    let out = stdout_of(&["run", "mcf", "--cpi", "--scale", "test"]);
    assert!(out.contains("CPI stack: mcf"), "{out}");
    for row in [
        "baseline",
        "location-based",
        "watchdog/conservative",
        "watchdog/isa-assisted",
    ] {
        assert!(out.contains(row), "mode row {row} missing:\n{out}");
    }
    for col in [
        "cycles", "prog", "meta", "front", "fu", "dep", "miss", "drain",
    ] {
        assert!(out.contains(col), "column {col} missing:\n{out}");
    }
    // Watchdog modes must attribute some committed slots to metadata
    // µops — the Fig. 8 signal the table exists to show.
    let meta_share = |mode: &str| -> f64 {
        let line = out.lines().find(|l| l.starts_with(mode)).unwrap();
        let cells: Vec<&str> = line.split_whitespace().collect();
        cells[4].trim_end_matches('%').parse().unwrap()
    };
    assert_eq!(meta_share("baseline"), 0.0, "{out}");
    assert!(meta_share("watchdog/conservative") > 0.0, "{out}");
}

#[test]
fn perf_compare_gates_on_the_noise_threshold() {
    let dir = std::env::temp_dir().join(format!("wdperfdiff-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = |rev: &str, ns: f64| {
        format!(
            r#"{{"schema":"watchdog-bench-v1","rev":"{rev}","records":[{{"name":"timing_wheel/x","ns_per_iter":{ns},"melem_per_s":0.0,"iterations":3}}]}}"#
        )
    };
    let base = dir.join("base.json");
    let fast = dir.join("fast.json");
    let slow = dir.join("slow.json");
    std::fs::write(&base, snap("aaa", 100.0)).unwrap();
    std::fs::write(&fast, snap("bbb", 104.0)).unwrap();
    std::fs::write(&slow, snap("ccc", 150.0)).unwrap();
    let (base, fast, slow) = (
        base.to_str().unwrap(),
        fast.to_str().unwrap(),
        slow.to_str().unwrap(),
    );

    // Within the threshold: pass, exit 0.
    let out = stdout_of(&["perf", "compare", base, fast]);
    assert!(out.contains("PASS"), "{out}");

    // Past the threshold: regress verdict, exit 1, delta report written.
    let delta = dir.join("delta.json");
    let delta_s = delta.to_str().unwrap();
    let out = cli(&["perf", "compare", base, slow, "-o", delta_s]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    assert!(String::from_utf8_lossy(&out.stdout).contains("regress"));
    let doc = watchdog::telemetry::JsonValue::parse(&std::fs::read_to_string(&delta).unwrap())
        .expect("delta report parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("watchdog-perfdiff-v1")
    );

    // A generous explicit threshold lets the same pair pass.
    let out = stdout_of(&["perf", "compare", base, slow, "--threshold", "60"]);
    assert!(out.contains("PASS"), "{out}");

    // Unreadable snapshots are usage errors, not verdicts.
    assert_eq!(
        cli(&["perf", "compare", base, "/nonexistent.json"])
            .status
            .code(),
        Some(2)
    );

    // A missing *baseline* additionally points at the snapshot history
    // (the actionable fix when CI's baseline path goes stale).
    let out = cli(&["perf", "compare", "/nonexistent-base.json", base]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("baseline snapshot /nonexistent-base.json") && err.contains("bench-history"),
        "baseline error must name the role and the history directory: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn events_validate_checks_schema_and_ledger_agreement() {
    let dir = std::env::temp_dir().join(format!("wdevents-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ledger = dir.join("micro.wdlg");
    let events = dir.join("micro.events.jsonl");
    let (ledger_s, events_s) = (ledger.to_str().unwrap(), events.to_str().unwrap());

    let out = stdout_of(&[
        "campaign", "--seeds", "5", "--jobs", "2", "--ledger", ledger_s, "--events", events_s,
        "--quiet",
    ]);
    assert!(out.contains("result    : PASS"), "{out}");

    let out = stdout_of(&["events", "validate", events_s, "--ledger", ledger_s]);
    assert!(
        out.contains("valid against watchdog-campaign-events-v1"),
        "{out}"
    );
    assert!(out.contains("clean finish"), "{out}");
    assert!(out.contains("cross-check OK"), "{out}");

    // A stream whose verdicts disagree with the durable ledger must
    // fail the cross-check: flip every done event's verdict to a
    // failure while the ledger still records passes.
    let text = std::fs::read_to_string(&events).unwrap();
    let forged = text.replace("\"ok\":true", "\"ok\":false");
    std::fs::write(&events, forged).unwrap();
    let out = cli(&["events", "validate", events_s, "--ledger", ledger_s]);
    assert_eq!(out.status.code(), Some(1), "forged stream must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cross-check"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Structurally broken JSONL fails without a ledger at all.
    std::fs::write(&events, "{\"t_ms\":0.0}\n").unwrap();
    assert_eq!(
        cli(&["events", "validate", events_s]).status.code(),
        Some(1)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn juliet_suite_detects_everything_under_watchdog() {
    let out = stdout_of(&["juliet", "--mode", "cons"]);
    assert!(
        out.contains("bad detected:    291/291"),
        "detection regressed:\n{out}"
    );
    assert!(
        out.contains("false positives: 0/291"),
        "false positives appeared:\n{out}"
    );
}

#[test]
fn trace_record_info_replay_round_trip() {
    let dir = std::env::temp_dir().join(format!("wdtrace-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("gzip.wdtr");
    let path = path.to_str().expect("utf-8 temp path");

    let out = stdout_of(&[
        "trace", "record", "gzip", "--mode", "cons", "--scale", "test", "-o", path,
    ]);
    assert!(out.contains("recorded gzip"), "{out}");

    let out = stdout_of(&["trace", "info", "--trace", path]);
    assert!(out.contains("watchdog/conservative"), "{out}");
    assert!(out.contains("outcome:         halted"), "{out}");

    // --verify re-runs the live timed simulation and demands an identical
    // RunReport, so a successful exit is an end-to-end equivalence check.
    let out = stdout_of(&[
        "trace", "replay", "gzip", "--trace", path, "--scale", "test", "--verify",
    ]);
    assert!(out.contains("oracle-exact"), "{out}");
    assert!(out.contains("cycles:"), "replay reports timing:\n{out}");

    // A trace never silently replays against the wrong program or scale.
    assert!(
        !cli(&["trace", "replay", "mcf", "--trace", path, "--scale", "test"])
            .status
            .success()
    );
    assert!(
        !cli(&["trace", "replay", "gzip", "--trace", path, "--scale", "small"])
            .status
            .success()
    );
    assert!(!cli(&["trace", "info", "--trace", "/nonexistent.wdtr"])
        .status
        .success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_and_worker_help_texts_print() {
    let out = stdout_of(&["campaign", "--help"]);
    for flag in [
        "--seeds",
        "--jobs",
        "--ledger",
        "--resume",
        "--fault",
        "--timeout-secs",
    ] {
        assert!(out.contains(flag), "{flag} missing from help:\n{out}");
    }
    let out = stdout_of(&["worker", "--help"]);
    assert!(out.contains("WATCHDOG_FAULT"), "{out}");
    assert!(out.contains("stdin/stdout"), "{out}");
}

#[test]
fn campaign_flag_errors_list_the_valid_alternatives_and_exit_2() {
    let cases: &[(&[&str], &str)] = &[
        (&["campaign", "--seedz", "5"], "valid flags are"),
        (&["campaign", "--scale", "huge"], "test, small, ref"),
        (&["campaign", "--seeds", "many"], "unsigned integer"),
        (&["campaign", "--jobs", "0"], "positive"),
        (
            &["campaign", "--fault", "boom@1"],
            "panic, exit, hang, corrupt, truncate",
        ),
        (&["campaign", "--ledger"], "requires a value"),
    ];
    for (args, needle) in cases {
        let out = cli(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{args:?}: {needle:?} not in:\n{err}");
    }
}

#[test]
fn micro_campaign_runs_and_resumes() {
    let dir = std::env::temp_dir().join(format!("wdlg-cli-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("micro.wdlg");
    let path = path.to_str().expect("utf-8 temp path");

    let out = stdout_of(&[
        "campaign", "--seeds", "4", "--jobs", "2", "--ledger", path, "--quiet",
    ]);
    assert!(out.contains("result    : PASS"), "{out}");
    assert!(out.contains("ran       : 4"), "{out}");

    // Resuming a completed campaign schedules nothing and still passes.
    let out = stdout_of(&[
        "campaign", "--seeds", "4", "--jobs", "2", "--ledger", path, "--quiet", "--resume",
    ]);
    assert!(out.contains("resumed   : 4"), "{out}");
    assert!(out.contains("ran       : 0"), "{out}");
    assert!(out.contains("result    : PASS"), "{out}");

    // A worker fed a clean EOF on stdin exits 0 (the shutdown path the
    // coordinator uses when it closes the pipe).
    let worker = Command::new(env!("CARGO_BIN_EXE_watchdog-cli"))
        .arg("worker")
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::piped())
        .output()
        .expect("worker spawns");
    assert!(
        worker.status.success(),
        "worker EOF exit: {:?}",
        worker.status
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_selftest_smoke_passes() {
    let out = stdout_of(&[
        "trace", "selftest", "--bench", "gzip", "--scale", "test", "--seeds", "3",
    ]);
    assert!(out.contains("trace selftest: PASS"), "{out}");
}

//! Resume semantics: a campaign killed at any ledger prefix — record
//! boundaries or arbitrary byte-level cuts (proptest-shim generated) —
//! resumes to a final ledger byte-identical to the uninterrupted one,
//! and a ledger from a different campaign, build, or format version is
//! refused outright.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use proptest::{seed_from_name, TestRng};
use watchdog::campaign::ledger::{parse_ledger, LedgerWriter, LEDGER_VERSION};
use watchdog::campaign::{
    run_campaign, serial_ledger_bytes, CampaignConfig, CampaignError, CampaignSpec, LedgerError,
    LedgerHeader,
};

const CELLS: usize = 12;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_watchdog-cli"))
}

fn cfg() -> CampaignConfig {
    let mut cfg = CampaignConfig::new(worker_exe());
    cfg.jobs = 2;
    cfg.timeout = Duration::from_secs(60);
    cfg
}

fn temp_ledger(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wdlg-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.wdlg"))
}

fn header_for(spec: &CampaignSpec) -> LedgerHeader {
    LedgerHeader {
        version: LEDGER_VERSION,
        spec_hash: spec.spec_hash(),
        probe_fingerprint: spec.probe_fingerprint(),
        cells: spec.cells.len() as u32,
    }
}

/// Writes `prefix` to a fresh ledger file, resumes a real multi-process
/// campaign from it, and asserts the final file equals the uninterrupted
/// serial ledger. Returns the resumed-cell count the campaign reported.
fn resume_from_prefix(tag: &str, prefix: &[u8], serial: &[u8], spec: &CampaignSpec) -> u32 {
    let path = temp_ledger(tag);
    std::fs::write(&path, prefix).expect("write prefix");
    let stats = run_campaign(spec, &cfg(), &path, true)
        .unwrap_or_else(|e| panic!("resume from {}-byte prefix: {e}", prefix.len()));
    let bytes = std::fs::read(&path).expect("ledger readable");
    assert_eq!(
        bytes,
        serial,
        "resume from a {}-byte prefix must converge to the serial ledger",
        prefix.len()
    );
    assert!(u64::from(stats.resumed + stats.completed) >= spec.cells.len() as u64);
    std::fs::remove_file(&path).ok();
    stats.resumed
}

/// Kill points at every record boundary: 0 records, half, all-but-one,
/// all (resume is a no-op that still rewrites canonically).
#[test]
fn record_boundary_cuts_resume_to_the_serial_ledger() {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let serial = serial_ledger_bytes(&spec);
    let parsed = parse_ledger(&serial).unwrap();
    let header_len = header_for(&spec).to_bytes().len();
    let mut boundaries = vec![header_len];
    for r in &parsed.records {
        boundaries.push(boundaries.last().unwrap() + r.to_bytes().len());
    }
    for keep in [0, CELLS / 2, CELLS - 1, CELLS] {
        let cut = boundaries[keep];
        let resumed =
            resume_from_prefix(&format!("boundary-{keep}"), &serial[..cut], &serial, &spec);
        assert_eq!(resumed as usize, keep, "exactly the kept records resume");
    }
}

/// Byte-level kill points drawn from the proptest shim's deterministic
/// RNG: a cut mid-record leaves a torn final record, which resume must
/// truncate and re-run — never mis-parse.
#[test]
fn random_byte_cuts_resume_to_the_serial_ledger() {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let serial = serial_ledger_bytes(&spec);
    let header_len = header_for(&spec).to_bytes().len();
    let mut rng = TestRng::new(seed_from_name(
        "random_byte_cuts_resume_to_the_serial_ledger",
    ));
    for i in 0..6 {
        let cut = header_len + rng.below((serial.len() - header_len) as u64 + 1) as usize;
        resume_from_prefix(&format!("byte-{i}"), &serial[..cut], &serial, &spec);
    }
}

/// A ledger written by a different campaign (different seed list) is
/// refused with a spec-hash mismatch, not silently merged.
#[test]
fn foreign_spec_hash_is_refused() {
    let other = CampaignSpec::fuzz(1, CELLS); // shifted seed range
    let serial_other = serial_ledger_bytes(&other);
    let path = temp_ledger("foreign-spec");
    std::fs::write(&path, &serial_other).expect("write");
    let spec = CampaignSpec::fuzz(0, CELLS);
    match run_campaign(&spec, &cfg(), &path, true) {
        Err(CampaignError::Ledger(LedgerError::Mismatch { field, .. })) => {
            assert_eq!(field, "spec hash")
        }
        other => panic!("expected spec-hash refusal, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// A ledger whose program fingerprint disagrees — same cell list, but
/// written by a different generator or workload build — is refused.
#[test]
fn mismatched_program_fingerprint_is_refused() {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let mut h = header_for(&spec);
    h.probe_fingerprint ^= 0xdead_beef;
    let path = temp_ledger("foreign-fingerprint");
    drop(LedgerWriter::create(&path, h).expect("create"));
    match run_campaign(&spec, &cfg(), &path, true) {
        Err(CampaignError::Ledger(LedgerError::Mismatch { field, .. })) => {
            assert_eq!(field, "program fingerprint")
        }
        other => panic!("expected fingerprint refusal, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// A ledger with the right spec hash but wrong cell count (a corrupted
/// or hand-edited header) is refused on the cell-count field.
#[test]
fn mismatched_cell_count_is_refused() {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let mut h = header_for(&spec);
    h.cells += 1;
    let path = temp_ledger("foreign-count");
    drop(LedgerWriter::create(&path, h).expect("create"));
    match run_campaign(&spec, &cfg(), &path, true) {
        Err(CampaignError::Ledger(LedgerError::Mismatch { field, .. })) => {
            assert_eq!(field, "cell count")
        }
        other => panic!("expected cell-count refusal, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// An unknown format version is refused before any record is read.
#[test]
fn foreign_format_version_is_refused() {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let mut bytes = header_for(&spec).to_bytes();
    bytes[4] = 2; // single-byte version varint
    let path = temp_ledger("foreign-version");
    std::fs::write(&path, &bytes).expect("write");
    match run_campaign(&spec, &cfg(), &path, true) {
        Err(CampaignError::Ledger(LedgerError::BadVersion(2))) => {}
        other => panic!("expected version refusal, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// The headline acceptance scenario, end to end through the CLI: a
/// 1000-seed fuzz campaign with one injected worker crash is killed
/// mid-run (the whole coordinator process), resumed with `--resume`, and
/// the final ledger is byte-identical to the serial single-process run.
#[test]
fn thousand_seed_campaign_survives_kill_and_resume() {
    const SEEDS: usize = 1000;
    let spec = CampaignSpec::fuzz(0, SEEDS);
    let serial = serial_ledger_bytes(&spec);
    let path = temp_ledger("acceptance");
    let path_s = path.to_str().expect("utf-8 temp path");

    // First coordinator: injected worker crash at cell 137, killed
    // mid-campaign from outside (SIGKILL — no cleanup, the crash-safety
    // worst case).
    let mut child = Command::new(worker_exe())
        .args([
            "campaign", "--seeds", "1000", "--jobs", "2", "--ledger", path_s, "--quiet", "--fault",
            "exit@137",
        ])
        .spawn()
        .expect("coordinator spawns");
    std::thread::sleep(Duration::from_millis(1500));
    child.kill().expect("kill coordinator");
    child.wait().expect("reap coordinator");

    // The interrupted ledger must already parse (modulo a torn tail).
    let interrupted = std::fs::read(&path).expect("ledger exists");
    let parsed = parse_ledger(&interrupted).expect("interrupted ledger parses");
    let progress = parsed.records.len();

    // Second coordinator: --resume finishes the job.
    let out = Command::new(worker_exe())
        .args([
            "campaign", "--seeds", "1000", "--jobs", "2", "--ledger", path_s, "--quiet", "--resume",
        ])
        .output()
        .expect("resume runs");
    assert!(
        out.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("result    : PASS"), "{stdout}");

    let final_bytes = std::fs::read(&path).expect("final ledger");
    assert_eq!(
        final_bytes, serial,
        "kill+resume ledger must be byte-identical to the serial run \
         (interrupted at {progress}/{SEEDS} records)"
    );
    std::fs::remove_file(&path).ok();
}

//! End-to-end detection matrix: every class of memory-safety bug, every
//! checking mode, across all five crates.

use watchdog::prelude::*;

fn g(n: u8) -> Gpr {
    Gpr::new(n)
}

fn run(p: &Program, mode: Mode) -> Option<ViolationKind> {
    Simulator::new(SimConfig::functional(mode))
        .run(p)
        .expect("no sim error")
        .violation
        .map(|v| v.kind)
}

fn heap_uaf() -> Program {
    let mut b = ProgramBuilder::new("heap-uaf");
    b.li(g(1), 64);
    b.malloc(g(0), g(1));
    b.free(g(0));
    b.ld8(g(2), g(0), 0);
    b.halt();
    b.build().unwrap()
}

fn uaf_after_realloc() -> Program {
    let mut b = ProgramBuilder::new("realloc-uaf");
    b.li(g(1), 64);
    b.malloc(g(0), g(1));
    b.mov(g(2), g(0));
    b.free(g(0));
    b.malloc(g(3), g(1));
    b.ld8(g(4), g(2), 0);
    b.halt();
    b.build().unwrap()
}

fn stack_uaf() -> Program {
    let mut b = ProgramBuilder::new("stack-uaf");
    let rsp = Gpr::RSP;
    let slot = b.global_u64(0);
    let func = b.label();
    b.call(func);
    b.lea_global(g(1), slot);
    b.ld8(g(0), g(1), 0);
    b.ld8(g(2), g(0), 0); // use-after-return
    b.halt();
    b.bind(func);
    b.alui(AluOp::Sub, rsp, rsp, 16);
    b.li(g(2), 1);
    b.st8(g(2), rsp, 0);
    b.mov(g(0), rsp);
    b.lea_global(g(1), slot);
    b.st8(g(0), g(1), 0);
    b.alui(AluOp::Add, rsp, rsp, 16);
    b.ret();
    b.build().unwrap()
}

fn overflow() -> Program {
    let mut b = ProgramBuilder::new("overflow");
    b.li(g(1), 64);
    b.malloc(g(0), g(1));
    b.ld8(g(2), g(0), 72); // past the end
    b.halt();
    b.build().unwrap()
}

fn double_free() -> Program {
    let mut b = ProgramBuilder::new("double-free");
    b.li(g(1), 32);
    b.malloc(g(0), g(1));
    b.free(g(0));
    b.free(g(0));
    b.halt();
    b.build().unwrap()
}

#[test]
fn the_paper_detection_matrix_holds() {
    let wd = Mode::watchdog_conservative();
    let bounds = Mode::WatchdogBounds {
        ptr: PointerId::Conservative,
        uops: BoundsUops::Fused,
    };

    // Heap UAF: everything but the baseline sees it.
    assert_eq!(run(&heap_uaf(), Mode::Baseline), None);
    assert_eq!(
        run(&heap_uaf(), Mode::LocationBased),
        Some(ViolationKind::UseAfterFree)
    );
    assert_eq!(run(&heap_uaf(), wd), Some(ViolationKind::UseAfterFree));

    // UAF after reallocation: Table 1's separator — only identifier-based
    // checking is comprehensive.
    assert_eq!(run(&uaf_after_realloc(), Mode::Baseline), None);
    assert_eq!(
        run(&uaf_after_realloc(), Mode::LocationBased),
        None,
        "location checking is blind"
    );
    assert_eq!(
        run(&uaf_after_realloc(), wd),
        Some(ViolationKind::UseAfterFree)
    );

    // Stack use-after-return (Fig. 1 right).
    assert_eq!(run(&stack_uaf(), Mode::Baseline), None);
    assert_eq!(run(&stack_uaf(), wd), Some(ViolationKind::UseAfterReturn));

    // Spatial violation: needs the §8 bounds extension.
    assert_eq!(
        run(&overflow(), wd),
        None,
        "UAF-only Watchdog allows in-lifetime overflows"
    );
    assert_eq!(run(&overflow(), bounds), Some(ViolationKind::OutOfBounds));

    // Double free: caught by the runtime's free-time identifier check.
    assert_eq!(run(&double_free(), wd), Some(ViolationKind::DoubleFree));
}

#[test]
fn detection_is_identical_with_and_without_timing() {
    for p in [heap_uaf(), uaf_after_realloc(), stack_uaf(), double_free()] {
        let f = Simulator::new(SimConfig::functional(Mode::watchdog_conservative()))
            .run(&p)
            .unwrap();
        let t = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()))
            .run(&p)
            .unwrap();
        assert_eq!(
            f.violation.map(|v| (v.kind, v.pc_index)),
            t.violation.map(|v| (v.kind, v.pc_index)),
            "{}: timing must not change detection",
            p.name()
        );
    }
}

#[test]
fn isa_assisted_detects_the_same_bugs() {
    // The profile-driven policy must not lose detection coverage on these
    // programs (the pointers are genuinely moved through memory).
    for p in [heap_uaf(), uaf_after_realloc(), stack_uaf()] {
        let r = Simulator::new(SimConfig::functional(Mode::watchdog()))
            .run(&p)
            .unwrap();
        assert!(
            r.violation.is_some(),
            "{}: ISA-assisted must still detect",
            p.name()
        );
    }
}

#[test]
fn violation_reports_point_at_the_faulting_instruction() {
    let p = heap_uaf();
    let r = Simulator::new(SimConfig::functional(Mode::watchdog_conservative()))
        .run(&p)
        .unwrap();
    let v = r.violation.unwrap();
    assert_eq!(v.pc_index, 3, "the dangling load is instruction 3");
    assert!(v.addr >= 0x2000_0000, "faulting address is in the heap");
}

//! Property-based tests (proptest) on the system's core invariants.

use proptest::prelude::*;
use watchdog::core::runtime::HeapAllocator;
use watchdog::isa::layout::{shadow_addr, META_BYTES_BOUNDS, META_BYTES_ID};
use watchdog::prelude::*;

fn g(n: u8) -> Gpr {
    Gpr::new(n)
}

proptest! {
    /// The shadow mapping is injective and order-preserving on word
    /// addresses — two different words never share a metadata record.
    #[test]
    fn shadow_mapping_is_injective(a in 0u64..0x7000_0000, b in 0u64..0x7000_0000) {
        let (wa, wb) = (a & !7, b & !7);
        for meta in [META_BYTES_ID, META_BYTES_BOUNDS] {
            if wa != wb {
                prop_assert_ne!(shadow_addr(wa, meta), shadow_addr(wb, meta));
            }
            if wa < wb {
                prop_assert!(shadow_addr(wa, meta) < shadow_addr(wb, meta));
            }
        }
    }

    /// Sub-word addresses map to their containing word's record.
    #[test]
    fn shadow_mapping_is_word_granular(a in 0u64..0x7000_0000, off in 0u64..8) {
        let w = a & !7;
        prop_assert_eq!(shadow_addr(w, META_BYTES_ID), shadow_addr(w + off, META_BYTES_ID));
    }

    /// Under any malloc/free sequence, live allocations never overlap and
    /// double frees are always reported.
    #[test]
    fn allocator_never_overlaps_live_chunks(ops in proptest::collection::vec((0u8..2, 1u64..5000), 1..120)) {
        let mut h = HeapAllocator::new();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (op, size) in ops {
            if op == 0 {
                let m = h.malloc(size).expect("heap is large enough for this test");
                for (a, e) in &live {
                    prop_assert!(m.addr + m.size <= *a || m.addr >= *e,
                        "overlap: [{:#x},{:#x}) vs [{a:#x},{e:#x})", m.addr, m.addr + m.size);
                }
                prop_assert!(m.size >= size);
                live.push((m.addr, m.addr + m.size));
            } else if let Some((a, _)) = live.pop() {
                prop_assert!(h.free(a).is_some(), "freeing a live chunk must succeed");
                prop_assert!(h.free(a).is_none(), "double free must be reported");
            }
        }
        prop_assert_eq!(h.live_count(), live.len());
    }

    /// A benign program — allocate, write/read within bounds through
    /// derived pointers, free — never violates under any checking mode and
    /// computes the same result everywhere.
    #[test]
    fn no_false_positives_on_random_benign_programs(
        words in 2u64..64,
        offsets in proptest::collection::vec(0u64..64, 1..24),
        seed in 0u64..1000,
    ) {
        let mut b = ProgramBuilder::new("prop");
        let (p, q, sz, v, acc) = (g(0), g(1), g(2), g(3), g(4));
        b.li(sz, (words * 8) as i64);
        b.malloc(p, sz);
        b.li(acc, seed as i64);
        for (k, off) in offsets.iter().enumerate() {
            let off = (off % words) * 8;
            // Derive a pointer via arithmetic, store, reload, accumulate.
            b.lea(q, p, off as i32);
            b.li(v, (seed + k as u64) as i64);
            b.st8(v, q, 0);
            b.ld8(v, q, 0);
            b.add(acc, acc, v);
        }
        b.free(p);
        b.halt();
        let program = b.build().unwrap();

        let mut results = Vec::new();
        for mode in [
            Mode::Baseline,
            Mode::LocationBased,
            Mode::watchdog_conservative(),
            Mode::watchdog(),
            Mode::WatchdogBounds { ptr: PointerId::Conservative, uops: BoundsUops::Fused },
            Mode::WatchdogBounds { ptr: PointerId::Conservative, uops: BoundsUops::Split },
        ] {
            let r = Simulator::new(SimConfig::functional(mode)).run(&program).unwrap();
            prop_assert!(r.violation.is_none(), "false positive under {}: {:?}", mode.label(), r.violation);
            results.push(r.machine.insts);
        }
        prop_assert!(results.windows(2).all(|w| w[0] == w[1]), "instruction counts diverged: {results:?}");
    }

    /// Any dereference after free is detected regardless of how the
    /// pointer was derived (arithmetic chain depth, alias count).
    #[test]
    fn uaf_is_always_detected_through_derived_pointers(
        hops in 1usize..8,
        off in 0i32..7,
    ) {
        let mut b = ProgramBuilder::new("prop-uaf");
        let (p, q, sz) = (g(0), g(1), g(2));
        b.li(sz, 128);
        b.malloc(p, sz);
        b.mov(q, p);
        for _ in 0..hops {
            b.addi(q, q, off as i64);    // copy-eliminated metadata
            b.lea(q, q, -off);           // and back, via lea
        }
        b.free(p);
        b.ld8(g(3), q, 0);
        b.halt();
        let program = b.build().unwrap();
        let r = Simulator::new(SimConfig::functional(Mode::watchdog_conservative())).run(&program).unwrap();
        prop_assert_eq!(r.violation.map(|v| v.kind), Some(ViolationKind::UseAfterFree));
    }

    /// Bounds checking admits every in-bounds access and rejects every
    /// out-of-bounds one, at exact byte granularity. Sizes are exact
    /// allocator classes so the usable size equals the requested size
    /// (malloc may round up otherwise, legally widening the bounds).
    #[test]
    fn bounds_are_byte_precise(words_pow in 1u32..6, past in 0u64..4) {
        let words = 1u64 << words_pow;
        let size = words * 8;
        let mut b = ProgramBuilder::new("prop-bounds");
        let (p, sz, v) = (g(0), g(1), g(2));
        b.li(sz, size as i64);
        b.malloc(p, sz);
        // Last fully in-bounds word:
        b.ld8(v, p, (size - 8) as i32);
        // First word `past` words past the end:
        b.ld8(v, p, (size + past * 8) as i32);
        b.halt();
        let program = b.build().unwrap();
        let mode = Mode::WatchdogBounds { ptr: PointerId::Conservative, uops: BoundsUops::Fused };
        let r = Simulator::new(SimConfig::functional(mode)).run(&program).unwrap();
        let v = r.violation.expect("past-the-end load must be caught");
        prop_assert_eq!(v.kind, ViolationKind::OutOfBounds);
        prop_assert_eq!(v.pc_index, 3, "the in-bounds load (instruction 2) must pass");
    }
}

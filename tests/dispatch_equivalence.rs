//! The table-driven dispatch path's acceptance anchor at workspace scale:
//! the lane-streaming production dispatcher (descriptor-table routed,
//! per-kind homogeneous runs) must produce **field-identical**
//! `RunReport`s — cycles, per-tag µop counts, hierarchy/bpred/rename/
//! stall counters, crack-cache counters, heap, footprint, violation — to
//! the preserved match-based reference dispatcher, on every suite cell ×
//! mode, across a band of fuzz-generated programs (violating payloads
//! included), on the live, trace-replayed and sampled paths; and the
//! exported `cpi.*` stack must agree **bit for bit**, not just the
//! report.
//!
//! Alongside the report equivalence, this file holds the adversarial
//! lane-splitting property: over real committed µop streams, for batch
//! fills of every size from one instruction to the whole stream, lane
//! runs must tile the µop arrays exactly, stay homogeneous, respect
//! instruction boundaries (the order-admissibility rule), be maximal,
//! and be invariant to where the batch boundaries fall.
//!
//! Reports are compared through their `Debug` rendering, which prints
//! every field of every nested statistic — the strongest practical
//! byte-identity check (the same discipline as `wheel_equivalence.rs`).

use watchdog::bench::parallel_map;
use watchdog::core::machine::{Machine, MachineConfig, Step};
use watchdog::gen::{generate, GenConfig};
use watchdog::isa::crack::CrackedInst;
use watchdog::isa::{Lane, KIND_DESCS};
use watchdog::pipeline::UopBatch;
use watchdog::prelude::*;
use watchdog::trace::{record, replay, ReplayConfig};

fn jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The timed configuration on the preserved match-based reference
/// dispatch path (the lane path is the default).
fn match_cfg(mode: Mode) -> SimConfig {
    SimConfig {
        match_dispatch: true,
        ..SimConfig::timed(mode)
    }
}

/// Live timed simulation, lane-streaming vs match-based dispatch.
/// Returns the divergence description, or `None` when the reports are
/// identical.
fn check_live(program: &Program, mode: Mode) -> Option<String> {
    let lane = Simulator::new(SimConfig::timed(mode)).run(program);
    let reference = Simulator::new(match_cfg(mode)).run(program);
    let (a, b) = match (lane, reference) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            return Some(format!(
                "{}/{}: run failed: {e}",
                program.name(),
                mode.label()
            ))
        }
    };
    let (a, b) = (format!("{a:?}"), format!("{b:?}"));
    (a != b).then(|| {
        format!(
            "{}/{}: lane dispatch diverges from match reference\nlane:  {a}\nmatch: {b}",
            program.name(),
            mode.label()
        )
    })
}

/// Trace replay, lane-streaming vs match-based dispatch.
fn check_replay(program: &Program, mode: Mode) -> Option<String> {
    let sim = SimConfig::timed(mode);
    let trace = match record(program, mode, sim.max_insts) {
        Ok(t) => t,
        Err(e) => {
            return Some(format!(
                "{}/{}: record failed: {e}",
                program.name(),
                mode.label()
            ))
        }
    };
    let lane_cfg = ReplayConfig::from_sim(&sim);
    let ref_cfg = ReplayConfig {
        match_dispatch: true,
        ..lane_cfg.clone()
    };
    let (a, b) = match (
        replay(program, &trace, &lane_cfg),
        replay(program, &trace, &ref_cfg),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            return Some(format!(
                "{}/{}: replay failed: {e}",
                program.name(),
                mode.label()
            ))
        }
    };
    let (a, b) = (format!("{a:?}"), format!("{b:?}"));
    (a != b).then(|| {
        format!(
            "{}/{}: lane replay diverges from match replay\nlane:  {a}\nmatch: {b}",
            program.name(),
            mode.label()
        )
    })
}

/// Every (benchmark × mode) cell of the suite grid is dispatch-path
/// invariant, on the live path and on the replay path.
#[test]
fn every_suite_cell_is_dispatch_invariant() {
    let modes = [
        Mode::Baseline,
        Mode::LocationBased,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ];
    let specs = all_benchmarks();
    let programs: Vec<Program> = specs.iter().map(|s| s.build(Scale::Test)).collect();
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..modes.len()).map(move |m| (s, m)))
        .collect();
    let failures: Vec<String> = parallel_map(grid.len(), jobs(), |k| {
        let (si, mi) = grid[k];
        let mut out = Vec::new();
        out.extend(check_live(&programs[si], modes[mi]));
        // Replay-side invariance on the checked modes (the trace format
        // round-trips the same cells in trace_equivalence.rs; here the
        // axis under test is the dispatch path).
        if modes[mi] != Mode::LocationBased {
            out.extend(check_replay(&programs[si], modes[mi]));
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} suite cell(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// 100 fuzz seeds — violating payloads included, so runs that end at a
/// detected violation are covered — are dispatch-path invariant under
/// the conservative mode, with an ISA-assisted prefix.
#[test]
fn a_hundred_fuzz_seeds_are_dispatch_invariant() {
    let cfg = GenConfig::default();
    let failures: Vec<String> = parallel_map(100, jobs(), |seed| {
        let g = generate(seed as u64, &cfg);
        let mut out = Vec::new();
        out.extend(check_live(&g.program, Mode::watchdog_conservative()));
        out.extend(check_live(&g.twin, Mode::watchdog_conservative()));
        if seed < 25 {
            out.extend(check_live(&g.program, Mode::watchdog()));
            out.extend(check_replay(&g.program, Mode::watchdog_conservative()));
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} fuzz cell(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The sampled regime (§9.1) is dispatch-path invariant too: homogeneous
/// runs carry the sampled-window flag exactly as the per-µop match path
/// does.
#[test]
fn sampled_runs_are_dispatch_invariant() {
    let program = benchmark("mcf").expect("registered").build(Scale::Test);
    let lane = Simulator::new(SimConfig::sampled(
        Mode::watchdog_conservative(),
        Sampling::dense(),
    ))
    .run(&program)
    .unwrap();
    let reference = Simulator::new(SimConfig {
        match_dispatch: true,
        ..SimConfig::sampled(Mode::watchdog_conservative(), Sampling::dense())
    })
    .run(&program)
    .unwrap();
    assert_eq!(format!("{lane:?}"), format!("{reference:?}"));
}

/// The exported CPI stack — every `cpi.*` counter — is bit-identical
/// across dispatch paths: stall attribution is part of the timestamp
/// state the report equivalence pins, not a side effect of dispatch
/// order inside the consume loop.
#[test]
fn cpi_counters_are_bit_identical_across_dispatch_paths() {
    for bench in ["mcf", "perl"] {
        for mode in [Mode::watchdog_conservative(), Mode::watchdog()] {
            let label = format!("{bench} under {}", mode.label());
            let program = benchmark(bench).unwrap().build(Scale::Test);
            let (_, lane) = Simulator::new(SimConfig::timed(mode))
                .run_instrumented(&program)
                .unwrap();
            let (_, reference) = Simulator::new(match_cfg(mode))
                .run_instrumented(&program)
                .unwrap();
            let mut compared = 0usize;
            for m in lane
                .core_metrics
                .iter()
                .filter(|m| m.name.starts_with("cpi."))
            {
                assert_eq!(
                    m.counter,
                    reference.core_metrics.counter_value(m.name),
                    "[{label}] {} diverges across dispatch paths",
                    m.name
                );
                compared += 1;
            }
            assert!(compared > 10, "[{label}] cpi namespace missing");
        }
    }
}

/// Materializes the committed µop stream of one suite cell, exactly as
/// the live batched feed would see it.
fn committed_stream(bench: &str, mode: Mode) -> Vec<CrackedInst> {
    let program = benchmark(bench).expect("registered").build(Scale::Test);
    let mcfg = match mode {
        Mode::Baseline => MachineConfig::baseline(),
        _ => MachineConfig::watchdog(),
    };
    let mut machine = Machine::new(&program, mcfg);
    let mut stream = Vec::new();
    while let Step::Executed(ci) = machine.step().expect("ok") {
        stream.push(ci.expect("µop-emitting machine").clone());
    }
    assert!(!stream.is_empty(), "{bench} produced no committed insts");
    stream
}

/// The per-instruction lane-run shape of one filled batch: for each
/// instruction, the `(len, lane)` sequence of the runs inside it.
fn run_shapes(batch: &UopBatch) -> Vec<Vec<(u16, Lane)>> {
    let runs = batch.lane_runs();
    let mut ri = 0usize;
    let mut shapes = Vec::with_capacity(batch.len());
    for i in 0..batch.len() {
        let r = batch.uop_range(i);
        let mut shape = Vec::new();
        while ri < runs.len() && (runs[ri].start as usize) < r.end {
            let run = runs[ri];
            ri += 1;
            let (s, e) = (
                run.start as usize,
                (run.start + u32::from(run.len)) as usize,
            );
            assert!(
                s >= r.start && e <= r.end,
                "run {run:?} crosses instruction {i} ({r:?})"
            );
            shape.push((run.len, run.lane));
        }
        shapes.push(shape);
    }
    assert_eq!(ri, runs.len(), "runs left over past the last instruction");
    shapes
}

/// Adversarial lane-splitting property over a real committed stream:
/// for batch sizes from one instruction up to the whole stream, the
/// lane runs (1) tile the µop arrays exactly, (2) are homogeneous under
/// `KIND_DESCS`, (3) never cross an instruction boundary, (4) are
/// maximal — adjacent runs differ in lane unless an instruction
/// boundary forced the split — and (5) have a per-instruction shape
/// invariant to where the batch boundaries fall.
#[test]
fn lane_splitting_is_exact_on_adversarial_batch_sizes() {
    let stream = committed_stream("perl", Mode::watchdog());
    let n = stream.len();
    let mut baseline_shapes: Option<Vec<Vec<(u16, Lane)>>> = None;
    for target in [1usize, 2, 3, 5, 7, 13, 33, UopBatch::TARGET_INSTS, n] {
        let mut shapes: Vec<Vec<(u16, Lane)>> = Vec::with_capacity(n);
        let mut batch = UopBatch::with_capacity(target.min(UopBatch::TARGET_INSTS));
        let flush = |batch: &mut UopBatch, shapes: &mut Vec<Vec<(u16, Lane)>>| {
            let runs = batch.lane_runs();
            // (1) Runs tile the µop arrays: contiguous, in order, total
            // length equal to the µop count.
            let mut next = 0u32;
            for run in runs {
                assert_eq!(run.start, next, "gap or overlap before {run:?}");
                assert!(run.len > 0, "empty run {run:?}");
                next += u32::from(run.len);
            }
            assert_eq!(next as usize, batch.uops(), "runs do not cover the batch");
            // (2) Homogeneous: every µop agrees with its run's lane.
            for run in runs {
                for u in
                    &batch.uop_descs()[run.start as usize..run.start as usize + run.len as usize]
                {
                    assert_eq!(
                        KIND_DESCS[u.kind as usize].lane, run.lane,
                        "µop {:?} in a {:?} run",
                        u.kind, run.lane
                    );
                }
            }
            // (4) Maximal: a same-lane split only ever happens at an
            // instruction boundary.
            let starts: std::collections::HashSet<u32> =
                batch.insts().iter().map(|i| i.uop_start).collect();
            for w in runs.windows(2) {
                assert!(
                    w[0].lane != w[1].lane || starts.contains(&w[1].start),
                    "adjacent same-lane runs not at an instruction boundary: {w:?}"
                );
            }
            // (3) + per-inst shapes for (5).
            shapes.extend(run_shapes(batch));
            batch.clear();
        };
        for ci in &stream {
            batch.push_cracked(ci);
            if batch.len() >= target {
                flush(&mut batch, &mut shapes);
            }
        }
        flush(&mut batch, &mut shapes);
        assert_eq!(shapes.len(), n);
        // (5) Batch-boundary invariance: the same instruction splits into
        // the same runs no matter which batch it landed in.
        match &baseline_shapes {
            None => baseline_shapes = Some(shapes),
            Some(base) => assert_eq!(
                base, &shapes,
                "lane shapes changed under batch target {target}"
            ),
        }
    }
}

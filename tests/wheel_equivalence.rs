//! The calendar-queue timing core's acceptance anchor at workspace scale:
//! the wheel-scheduled production core (`ScheduledCore<WheelSched>` —
//! rings, calendar wheel, rotating-cursor FU pools) must produce
//! **field-identical** `RunReport`s — cycles, per-tag µop counts,
//! hierarchy/bpred/rename/stall counters, crack-cache counters, heap,
//! footprint, violation — to the PR 5 heap-scheduled reference
//! (`ScheduledCore<HeapSched>`), on every suite cell × mode, across a
//! band of fuzz-generated programs (violating payloads included), on the
//! live, trace-replayed and sampled paths.
//!
//! Reports are compared through their `Debug` rendering, which prints
//! every field of every nested statistic — the strongest practical
//! byte-identity check (the same discipline as `batch_equivalence.rs`).

use watchdog::bench::parallel_map;
use watchdog::gen::{generate, GenConfig};
use watchdog::prelude::*;
use watchdog::trace::{record, replay, replay_reference, ReplayConfig};

fn jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Live timed simulation, wheel-scheduled vs heap-scheduled. Returns the
/// divergence description, or `None` when the reports are identical.
fn check_live(program: &Program, mode: Mode) -> Option<String> {
    let cfg = SimConfig::timed(mode);
    let sim = Simulator::new(cfg);
    let (a, b) = match (sim.run(program), sim.run_reference(program)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            return Some(format!(
                "{}/{}: run failed: {e}",
                program.name(),
                mode.label()
            ))
        }
    };
    let (a, b) = (format!("{a:?}"), format!("{b:?}"));
    (a != b).then(|| {
        format!(
            "{}/{}: wheel core diverges from heap reference\nwheel: {a}\nheap:  {b}",
            program.name(),
            mode.label()
        )
    })
}

/// Trace replay, wheel-scheduled vs heap-scheduled.
fn check_replay(program: &Program, mode: Mode) -> Option<String> {
    let sim = SimConfig::timed(mode);
    let trace = match record(program, mode, sim.max_insts) {
        Ok(t) => t,
        Err(e) => {
            return Some(format!(
                "{}/{}: record failed: {e}",
                program.name(),
                mode.label()
            ))
        }
    };
    let cfg = ReplayConfig::from_sim(&sim);
    let (a, b) = match (
        replay(program, &trace, &cfg),
        replay_reference(program, &trace, &cfg),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            return Some(format!(
                "{}/{}: replay failed: {e}",
                program.name(),
                mode.label()
            ))
        }
    };
    let (a, b) = (format!("{a:?}"), format!("{b:?}"));
    (a != b).then(|| {
        format!(
            "{}/{}: wheel replay diverges from heap replay\nwheel: {a}\nheap:  {b}",
            program.name(),
            mode.label()
        )
    })
}

/// Every (benchmark × mode) cell of the suite grid is scheduling-model
/// invariant, on the live path and on the replay path.
#[test]
fn every_suite_cell_is_schedule_invariant() {
    let modes = [
        Mode::Baseline,
        Mode::LocationBased,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ];
    let specs = all_benchmarks();
    let programs: Vec<Program> = specs.iter().map(|s| s.build(Scale::Test)).collect();
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..modes.len()).map(move |m| (s, m)))
        .collect();
    let failures: Vec<String> = parallel_map(grid.len(), jobs(), |k| {
        let (si, mi) = grid[k];
        let mut out = Vec::new();
        out.extend(check_live(&programs[si], modes[mi]));
        // Replay-side invariance on the checked modes (the trace format
        // round-trips the same cells in trace_equivalence.rs; here the
        // axis under test is the scheduling model).
        if modes[mi] != Mode::LocationBased {
            out.extend(check_replay(&programs[si], modes[mi]));
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} suite cell(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// 100 fuzz seeds — violating payloads included, so runs that end at a
/// detected violation are covered — are scheduling-model invariant under
/// the conservative mode, with an ISA-assisted prefix.
#[test]
fn a_hundred_fuzz_seeds_are_schedule_invariant() {
    let cfg = GenConfig::default();
    let failures: Vec<String> = parallel_map(100, jobs(), |seed| {
        let g = generate(seed as u64, &cfg);
        let mut out = Vec::new();
        out.extend(check_live(&g.program, Mode::watchdog_conservative()));
        out.extend(check_live(&g.twin, Mode::watchdog_conservative()));
        if seed < 25 {
            out.extend(check_live(&g.program, Mode::watchdog()));
            out.extend(check_replay(&g.program, Mode::watchdog_conservative()));
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} fuzz cell(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The sampled regime (§9.1) is scheduling-model invariant too: the
/// wheel's drain points line up with measurement-window snapshots.
#[test]
fn sampled_runs_are_schedule_invariant() {
    let program = benchmark("mcf").expect("registered").build(Scale::Test);
    let sim = Simulator::new(SimConfig::sampled(
        Mode::watchdog_conservative(),
        Sampling::dense(),
    ));
    let wheel = sim.run(&program).unwrap();
    let heap = sim.run_reference(&program).unwrap();
    assert_eq!(format!("{wheel:?}"), format!("{heap:?}"));
}

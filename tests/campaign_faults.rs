//! Fault-injection matrix for the campaign service: workers that panic,
//! hard-exit, hang past the heartbeat timeout, or emit corrupt/truncated
//! frames — at the first, a middle, and the last cell — must never
//! change the final ledger. Every campaign here runs real re-exec'd
//! worker processes and is compared **byte-for-byte** against the
//! in-process serial reference.

use std::path::PathBuf;
use std::time::Duration;

use watchdog::campaign::cell::KIND_RETRIES_EXHAUSTED;
use watchdog::campaign::{
    parse_jsonl, run_campaign, serial_ledger_bytes, CampaignConfig, CampaignSpec, CellOutcome,
    EVENTS_SCHEMA,
};
use watchdog::telemetry::JsonValue;

const CELLS: usize = 10;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_watchdog-cli"))
}

fn cfg(fault: &str, timeout: Duration) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(worker_exe());
    cfg.jobs = 2;
    cfg.timeout = timeout;
    cfg.fault = Some(fault.to_string());
    cfg
}

fn ledger_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wdlg-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.wdlg"))
}

/// One fault-injected campaign; returns (final file bytes, stats).
fn run_with_fault(
    tag: &str,
    fault: &str,
    timeout: Duration,
) -> (Vec<u8>, watchdog::campaign::CampaignStats) {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let path = ledger_path(tag);
    let stats = run_campaign(&spec, &cfg(fault, timeout), &path, false)
        .unwrap_or_else(|e| panic!("campaign {tag} ({fault}): {e}"));
    let bytes = std::fs::read(&path).expect("ledger readable");
    std::fs::remove_file(&path).ok();
    (bytes, stats)
}

/// The full matrix: every fault kind at the first, a middle, and the
/// last cell. Single-shot faults fire on attempt 0 only, so one retry
/// recovers each cell and the final ledger must be byte-identical to the
/// undisturbed serial run.
#[test]
fn every_fault_kind_at_first_middle_last_leaves_the_ledger_untouched() {
    let serial = serial_ledger_bytes(&CampaignSpec::fuzz(0, CELLS));
    for kind in ["panic", "exit", "hang", "corrupt", "truncate"] {
        for cell in [0, CELLS / 2, CELLS - 1] {
            // Hung workers are only released by the heartbeat timeout, so
            // those cases run with a short one; crash-style faults keep a
            // generous timeout to stay robust on slow machines.
            let timeout = if kind == "hang" {
                Duration::from_secs(2)
            } else {
                Duration::from_secs(60)
            };
            let fault = format!("{kind}@{cell}");
            let (bytes, stats) = run_with_fault(&format!("{kind}-{cell}"), &fault, timeout);
            assert_eq!(
                bytes, serial,
                "{fault}: final ledger must be byte-identical to the serial run"
            );
            assert_eq!(stats.failures, 0, "{fault}: no recorded failures");
            assert!(
                stats.retries >= 1,
                "{fault}: the faulted cell must have been retried"
            );
            assert!(
                stats.retries <= 3,
                "{fault}: retries must stay bounded, got {}",
                stats.retries
            );
        }
    }
}

/// Several simultaneous fault points in one campaign still converge to
/// the serial ledger.
#[test]
fn stacked_faults_in_one_campaign_still_converge() {
    let serial = serial_ledger_bytes(&CampaignSpec::fuzz(0, CELLS));
    let (bytes, stats) = run_with_fault(
        "stacked",
        "panic@0,exit@3,corrupt@5,truncate@9",
        Duration::from_secs(60),
    );
    assert_eq!(bytes, serial);
    assert_eq!(stats.failures, 0);
    assert!(stats.retries >= 4, "all four faulted cells retried");
    assert!(stats.respawns >= 1, "crashed workers were respawned");
}

/// A fault that fires on **every** attempt exhausts the retry budget:
/// the cell is recorded as retries-exhausted rather than looping
/// forever, and every other cell still completes normally.
#[test]
fn persistent_fault_exhausts_retries_and_is_recorded() {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let path = ledger_path("persistent");
    let mut c = cfg("exit@4!", Duration::from_secs(60));
    c.max_retries = 2;
    let stats = run_campaign(&spec, &c, &path, false).expect("campaign completes");
    assert_eq!(stats.failures, 1, "exactly the poisoned cell fails");
    assert_eq!(stats.retries, 2, "retry budget spent exactly");

    let canon = watchdog::campaign::read_canonical(&path).expect("ledger parses");
    let parsed = watchdog::campaign::ledger::parse_ledger(&canon).expect("canonical parses");
    assert_eq!(parsed.records.len(), CELLS);
    let bad = &parsed.records[4];
    assert_eq!(bad.cell, 4);
    match &bad.outcome {
        CellOutcome::Fail { kind, .. } => assert_eq!(*kind, KIND_RETRIES_EXHAUSTED),
        other => panic!("cell 4 must be recorded retries-exhausted, got {other:?}"),
    }
    // All other cells match the serial reference outcome exactly.
    let serial_records = watchdog::campaign::run_campaign_serial(&spec);
    for (i, rec) in parsed.records.iter().enumerate() {
        if i != 4 {
            assert_eq!(rec, &serial_records[i], "cell {i} unaffected");
        }
    }
    std::fs::remove_file(&path).ok();
}

/// A worker hang is reaped by the heartbeat timeout, the worker is
/// respawned, and the campaign still finishes with the serial ledger.
/// With a single worker slot the respawn is mandatory — there is no
/// other worker to drain the queue. The JSONL flight record must show
/// the same story: a timeout reap, a respawn, and the retry.
#[test]
fn hang_reaping_respawns_the_worker() {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let serial = serial_ledger_bytes(&spec);
    let path = ledger_path("hang-mid");
    let events_path = ledger_path("hang-mid-events");
    let mut c = cfg("hang@2", Duration::from_secs(2));
    c.jobs = 1;
    c.events = Some(events_path.clone());
    let stats = run_campaign(&spec, &c, &path, false).expect("campaign completes");
    let bytes = std::fs::read(&path).expect("ledger readable");
    let lines = parse_jsonl(&std::fs::read_to_string(&events_path).expect("events readable"))
        .expect("events parse");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&events_path).ok();
    assert_eq!(bytes, serial);
    assert!(
        stats.respawns >= 1,
        "the hung worker was killed and respawned"
    );
    assert!(stats.retries >= 1, "the hung cell was retried");
    let reaps = events_of(&lines, "reap");
    assert!(
        reaps
            .iter()
            .any(|e| e.get("reason").and_then(JsonValue::as_str) == Some("timeout")),
        "the hang must surface as a timeout reap in the event stream"
    );
    assert_eq!(
        events_of(&lines, "respawn").len() as u32,
        stats.respawns,
        "respawn events match the stats counter"
    );
}

/// Pulls every event line of one kind out of a parsed JSONL stream.
fn events_of<'a>(lines: &'a [JsonValue], kind: &str) -> Vec<&'a JsonValue> {
    lines
        .iter()
        .filter(|l| l.get("event").and_then(JsonValue::as_str) == Some(kind))
        .collect()
}

/// Satellite of the telemetry layer: the JSONL event stream is the
/// campaign's flight recorder, and every injected `WATCHDOG_FAULT` must
/// leave its full trail there — a reap for the killed worker, a retry
/// for its cell, respawns matching the stats, and a `done` line (with a
/// ledger-fsync timing) for every cell that ultimately completed.
#[test]
fn event_stream_records_every_injected_fault() {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let serial = serial_ledger_bytes(&spec);
    let path = ledger_path("events");
    let events_path = ledger_path("events-jsonl");
    let faulted_cells: &[u64] = &[0, 3, 5, 9];
    let mut c = cfg(
        "panic@0,exit@3,corrupt@5,truncate@9",
        Duration::from_secs(60),
    );
    c.events = Some(events_path.clone());
    let stats = run_campaign(&spec, &c, &path, false).expect("campaign completes");
    let bytes = std::fs::read(&path).expect("ledger readable");
    let text = std::fs::read_to_string(&events_path).expect("events readable");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&events_path).ok();
    assert_eq!(bytes, serial, "faults never change the final ledger");

    let lines = parse_jsonl(&text).expect("every event line parses as JSON");

    // Envelope: starts with a schema-tagged campaign_start, ends with
    // campaign_end, and every line carries a monotone-readable t_ms.
    let first = lines.first().expect("nonempty stream");
    assert_eq!(
        first.get("event").and_then(JsonValue::as_str),
        Some("campaign_start")
    );
    assert_eq!(
        first.get("schema").and_then(JsonValue::as_str),
        Some(EVENTS_SCHEMA)
    );
    assert_eq!(
        first.get("cells").and_then(JsonValue::as_u64),
        Some(CELLS as u64)
    );
    let last = lines.last().expect("nonempty stream");
    assert_eq!(
        last.get("event").and_then(JsonValue::as_str),
        Some("campaign_end")
    );
    assert_eq!(
        last.get("completed").and_then(JsonValue::as_u64),
        Some(u64::from(stats.completed))
    );
    for l in &lines {
        assert!(
            l.get("t_ms").and_then(JsonValue::as_f64).is_some(),
            "every event carries t_ms: {l:?}"
        );
    }

    // Every injected fault kills a worker: its cell must show a retry
    // event, and the kill itself a reap event. Single-shot faults fire
    // on attempt 0 only, so retry counts match the stats exactly.
    let retries = events_of(&lines, "retry");
    assert_eq!(retries.len() as u32, stats.retries, "retry events == stats");
    for &cell in faulted_cells {
        assert!(
            retries
                .iter()
                .any(|e| e.get("cell").and_then(JsonValue::as_u64) == Some(cell)),
            "faulted cell {cell} must have a retry event"
        );
    }
    assert!(
        events_of(&lines, "reap").len() >= faulted_cells.len(),
        "each injected fault reaps a worker"
    );
    assert_eq!(
        events_of(&lines, "respawn").len() as u32,
        stats.respawns,
        "respawn events match the stats counter"
    );

    // Every completed cell has a done event with the ledger fsync time;
    // dispatches cover at least one attempt per cell; hellos follow
    // spawns.
    let dones = events_of(&lines, "done");
    assert_eq!(dones.len() as u32, stats.completed, "one done per cell");
    for cell in 0..CELLS as u64 {
        let d = dones
            .iter()
            .find(|e| e.get("cell").and_then(JsonValue::as_u64) == Some(cell))
            .unwrap_or_else(|| panic!("cell {cell} has a done event"));
        assert_eq!(d.get("ok"), Some(&JsonValue::Bool(true)));
        assert!(
            d.get("fsync_ms")
                .and_then(JsonValue::as_f64)
                .is_some_and(|ms| ms >= 0.0),
            "done events time the ledger fsync"
        );
    }
    assert!(
        events_of(&lines, "dispatch").len() >= CELLS,
        "every cell dispatched"
    );
    let spawns = events_of(&lines, "spawn").len();
    assert!(spawns >= 2, "both worker slots spawned");
    assert!(
        !events_of(&lines, "hello").is_empty(),
        "workers announced themselves with a measured hello latency"
    );
}

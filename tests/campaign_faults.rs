//! Fault-injection matrix for the campaign service: workers that panic,
//! hard-exit, hang past the heartbeat timeout, or emit corrupt/truncated
//! frames — at the first, a middle, and the last cell — must never
//! change the final ledger. Every campaign here runs real re-exec'd
//! worker processes and is compared **byte-for-byte** against the
//! in-process serial reference.

use std::path::PathBuf;
use std::time::Duration;

use watchdog::campaign::cell::KIND_RETRIES_EXHAUSTED;
use watchdog::campaign::{
    run_campaign, serial_ledger_bytes, CampaignConfig, CampaignSpec, CellOutcome,
};

const CELLS: usize = 10;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_watchdog-cli"))
}

fn cfg(fault: &str, timeout: Duration) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(worker_exe());
    cfg.jobs = 2;
    cfg.timeout = timeout;
    cfg.fault = Some(fault.to_string());
    cfg
}

fn ledger_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wdlg-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.wdlg"))
}

/// One fault-injected campaign; returns (final file bytes, stats).
fn run_with_fault(
    tag: &str,
    fault: &str,
    timeout: Duration,
) -> (Vec<u8>, watchdog::campaign::CampaignStats) {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let path = ledger_path(tag);
    let stats = run_campaign(&spec, &cfg(fault, timeout), &path, false)
        .unwrap_or_else(|e| panic!("campaign {tag} ({fault}): {e}"));
    let bytes = std::fs::read(&path).expect("ledger readable");
    std::fs::remove_file(&path).ok();
    (bytes, stats)
}

/// The full matrix: every fault kind at the first, a middle, and the
/// last cell. Single-shot faults fire on attempt 0 only, so one retry
/// recovers each cell and the final ledger must be byte-identical to the
/// undisturbed serial run.
#[test]
fn every_fault_kind_at_first_middle_last_leaves_the_ledger_untouched() {
    let serial = serial_ledger_bytes(&CampaignSpec::fuzz(0, CELLS));
    for kind in ["panic", "exit", "hang", "corrupt", "truncate"] {
        for cell in [0, CELLS / 2, CELLS - 1] {
            // Hung workers are only released by the heartbeat timeout, so
            // those cases run with a short one; crash-style faults keep a
            // generous timeout to stay robust on slow machines.
            let timeout = if kind == "hang" {
                Duration::from_secs(2)
            } else {
                Duration::from_secs(60)
            };
            let fault = format!("{kind}@{cell}");
            let (bytes, stats) = run_with_fault(&format!("{kind}-{cell}"), &fault, timeout);
            assert_eq!(
                bytes, serial,
                "{fault}: final ledger must be byte-identical to the serial run"
            );
            assert_eq!(stats.failures, 0, "{fault}: no recorded failures");
            assert!(
                stats.retries >= 1,
                "{fault}: the faulted cell must have been retried"
            );
            assert!(
                stats.retries <= 3,
                "{fault}: retries must stay bounded, got {}",
                stats.retries
            );
        }
    }
}

/// Several simultaneous fault points in one campaign still converge to
/// the serial ledger.
#[test]
fn stacked_faults_in_one_campaign_still_converge() {
    let serial = serial_ledger_bytes(&CampaignSpec::fuzz(0, CELLS));
    let (bytes, stats) = run_with_fault(
        "stacked",
        "panic@0,exit@3,corrupt@5,truncate@9",
        Duration::from_secs(60),
    );
    assert_eq!(bytes, serial);
    assert_eq!(stats.failures, 0);
    assert!(stats.retries >= 4, "all four faulted cells retried");
    assert!(stats.respawns >= 1, "crashed workers were respawned");
}

/// A fault that fires on **every** attempt exhausts the retry budget:
/// the cell is recorded as retries-exhausted rather than looping
/// forever, and every other cell still completes normally.
#[test]
fn persistent_fault_exhausts_retries_and_is_recorded() {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let path = ledger_path("persistent");
    let mut c = cfg("exit@4!", Duration::from_secs(60));
    c.max_retries = 2;
    let stats = run_campaign(&spec, &c, &path, false).expect("campaign completes");
    assert_eq!(stats.failures, 1, "exactly the poisoned cell fails");
    assert_eq!(stats.retries, 2, "retry budget spent exactly");

    let canon = watchdog::campaign::read_canonical(&path).expect("ledger parses");
    let parsed = watchdog::campaign::ledger::parse_ledger(&canon).expect("canonical parses");
    assert_eq!(parsed.records.len(), CELLS);
    let bad = &parsed.records[4];
    assert_eq!(bad.cell, 4);
    match &bad.outcome {
        CellOutcome::Fail { kind, .. } => assert_eq!(*kind, KIND_RETRIES_EXHAUSTED),
        other => panic!("cell 4 must be recorded retries-exhausted, got {other:?}"),
    }
    // All other cells match the serial reference outcome exactly.
    let serial_records = watchdog::campaign::run_campaign_serial(&spec);
    for (i, rec) in parsed.records.iter().enumerate() {
        if i != 4 {
            assert_eq!(rec, &serial_records[i], "cell {i} unaffected");
        }
    }
    std::fs::remove_file(&path).ok();
}

/// A worker hang is reaped by the heartbeat timeout, the worker is
/// respawned, and the campaign still finishes with the serial ledger.
/// With a single worker slot the respawn is mandatory — there is no
/// other worker to drain the queue.
#[test]
fn hang_reaping_respawns_the_worker() {
    let spec = CampaignSpec::fuzz(0, CELLS);
    let serial = serial_ledger_bytes(&spec);
    let path = ledger_path("hang-mid");
    let mut c = cfg("hang@2", Duration::from_secs(2));
    c.jobs = 1;
    let stats = run_campaign(&spec, &c, &path, false).expect("campaign completes");
    let bytes = std::fs::read(&path).expect("ledger readable");
    std::fs::remove_file(&path).ok();
    assert_eq!(bytes, serial);
    assert!(
        stats.respawns >= 1,
        "the hung worker was killed and respawned"
    );
    assert!(stats.retries >= 1, "the hung cell was retried");
}

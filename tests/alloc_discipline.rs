//! Zero-allocation discipline for the steady-state timed loop.
//!
//! A counting global allocator wraps the system allocator; the test
//! pre-assembles a full `mcf` suite-cell commit stream and constructs the
//! timing core and batch scratch *before* sampling the counter, then
//! asserts the batched feed — `push_cracked` + `consume_batch` over the
//! whole cell — performs **exactly zero** heap allocations. This pins the
//! calendar-queue refactor's contract: wheels, rings, FU pools, the TLB
//! table, the prefetcher scratch and the batch arenas are all
//! preallocated, so the hot loop never touches the allocator.
//!
//! The loop runs with **telemetry enabled**: the metrics registry,
//! self-profiler histograms and section counters preallocate at
//! registration time, so recording must be allocation-free too — that is
//! the telemetry layer's zero-overhead-when-disabled contract's sharper
//! sibling, zero-allocation-when-enabled.
//!
//! This file holds a single `#[test]` on purpose: the counter is
//! process-global, and a concurrent test thread would alias it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use watchdog_core::machine::{Machine, MachineConfig, Step};
use watchdog_isa::crack::CrackedInst;
use watchdog_mem::HierarchyConfig;
use watchdog_pipeline::{CoreConfig, TelemetryConfig, TimingCore, UopBatch};
use watchdog_workloads::{benchmark, Scale};

/// Counts every allocation (fresh or growing) routed through the global
/// allocator. Deallocations are free of charge — the discipline under
/// test is "no acquisition in steady state", and counting `dealloc`
/// would only double-report the same events.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counter has no effect on layout or
// pointer validity.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The batched feed over a full `mcf` suite cell — with the telemetry
/// self-profiler recording dispatch counters, occupancy histograms and
/// FU utilization throughout — allocates nothing after construction:
/// the allocation count across every `push_cracked` and `consume_batch`
/// call is exactly zero.
#[test]
fn steady_state_timed_loop_is_allocation_free() {
    // Setup (allocates freely): materialize the committed µop stream the
    // live simulator would feed the core, then build the core and the
    // batch scratch at their preallocated capacities.
    let program = benchmark("mcf").expect("registered").build(Scale::Test);
    let mut machine = Machine::new(&program, MachineConfig::watchdog());
    let mut stream: Vec<CrackedInst> = Vec::new();
    while let Step::Executed(ci) = machine.step().expect("ok") {
        stream.push(ci.expect("µop-emitting machine").clone());
    }
    assert!(!stream.is_empty(), "mcf cell produced no committed insts");

    let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
    core.enable_telemetry(TelemetryConfig::default());
    let mut batch = UopBatch::with_capacity(UopBatch::TARGET_INSTS);

    // Measured region: the steady-state loop, exactly as the live path
    // and the replay path drive it.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for ci in &stream {
        batch.push_cracked(ci);
        if batch.len() >= UopBatch::TARGET_INSTS {
            core.consume_batch(&batch);
            batch.clear();
        }
    }
    core.consume_batch(&batch);
    batch.clear();
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;

    // The zero-allocation claim is only meaningful if the profiler was
    // actually recording through the measured region.
    let tele = core.take_telemetry().expect("telemetry stays attached");
    assert_eq!(
        tele.insts,
        stream.len() as u64,
        "the self-profiler saw every instruction"
    );
    assert!(tele.uops >= tele.insts, "µop counters recorded");

    let report = core.finish();
    assert!(report.cycles > 0, "timed model reported no cycles");
    assert_eq!(
        delta,
        0,
        "steady-state timed loop allocated {delta} time(s) over {} insts",
        stream.len()
    );
}

//! Cross-crate integration: the full benchmark suite under the evaluated
//! modes, checking the paper's qualitative claims end to end.

use watchdog::prelude::*;

/// Timed runs of every benchmark under baseline + both Watchdog policies.
/// This is the integration backbone: functional machine → cracker →
/// renaming → timing core → hierarchy, for twenty distinct programs.
#[test]
fn suite_runs_clean_and_ordered_under_all_policies() {
    let mut cons_overheads = Vec::new();
    let mut isa_overheads = Vec::new();
    for spec in all_benchmarks() {
        let p = spec.build(Scale::Test);
        let base = Simulator::new(SimConfig::timed(Mode::Baseline))
            .run(&p)
            .unwrap();
        let cons = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()))
            .run(&p)
            .unwrap();
        let isa = Simulator::new(SimConfig::timed(Mode::watchdog()))
            .run(&p)
            .unwrap();
        for (label, r) in [("base", &base), ("cons", &cons), ("isa", &isa)] {
            assert!(
                r.violation.is_none(),
                "{}/{label}: spurious violation {:?}",
                spec.name,
                r.violation
            );
            assert!(r.cycles() > 0, "{}/{label}: no cycles", spec.name);
        }
        // Fig. 5 invariant: ISA-assisted classifies a subset.
        assert!(
            isa.ptr_fraction() <= cons.ptr_fraction() + 1e-9,
            "{}: isa fraction above conservative",
            spec.name
        );
        // µop ordering: baseline < isa <= cons.
        assert!(
            cons.uops() >= isa.uops(),
            "{}: isa must not add µops over conservative",
            spec.name
        );
        assert!(
            isa.uops() >= base.uops(),
            "{}: watchdog adds µops",
            spec.name
        );
        let oc = cons.slowdown_vs(&base);
        let oi = isa.slowdown_vs(&base);
        assert!(
            oc >= -0.01,
            "{}: conservative can't speed things up ({oc})",
            spec.name
        );
        assert!(
            oi <= oc + 0.02,
            "{}: isa slower than conservative ({oi} vs {oc})",
            spec.name
        );
        // Checks execute off the critical path: runtime overhead is well
        // below µop overhead (the §9.3 argument).
        assert!(
            oi < isa.uop_overhead() + 0.02,
            "{}: runtime overhead {oi} exceeds µop overhead {}",
            spec.name,
            isa.uop_overhead()
        );
        cons_overheads.push(oc);
        isa_overheads.push(oi);
    }
    let gc = watchdog::core::report::geomean_overhead(&cons_overheads);
    let gi = watchdog::core::report::geomean_overhead(&isa_overheads);
    // Band check, not exact numbers: the paper reports 25% / 15%.
    assert!(
        gc > 0.05 && gc < 0.50,
        "conservative geomean {gc} out of band"
    );
    assert!(gi > 0.03 && gi < 0.35, "isa geomean {gi} out of band");
    assert!(gc > gi, "conservative must cost more than ISA-assisted");
}

/// Fig. 9's qualitative claim: removing the lock-location cache makes
/// checking more expensive in aggregate.
#[test]
fn removing_the_lock_location_cache_hurts() {
    let no_ll = Mode::Watchdog {
        ptr: PointerId::IsaAssisted,
        lock_cache: false,
        ideal_shadow: false,
    };
    let mut with_total = 0u64;
    let mut without_total = 0u64;
    for spec in all_benchmarks().into_iter().take(8) {
        let p = spec.build(Scale::Test);
        let w = Simulator::new(SimConfig::timed(Mode::watchdog()))
            .run(&p)
            .unwrap();
        let wo = Simulator::new(SimConfig::timed(no_ll)).run(&p).unwrap();
        with_total += w.cycles();
        without_total += wo.cycles();
        assert!(
            wo.cycles() + 50 >= w.cycles(),
            "{}: LL$ removal helped?!",
            spec.name
        );
    }
    assert!(
        without_total > with_total,
        "aggregate cost must rise without the LL$"
    );
}

/// Fig. 11's ordering: UAF-only ≤ fused bounds ≤ split bounds.
#[test]
fn bounds_checking_cost_ordering() {
    let fused = Mode::WatchdogBounds {
        ptr: PointerId::IsaAssisted,
        uops: BoundsUops::Fused,
    };
    let split = Mode::WatchdogBounds {
        ptr: PointerId::IsaAssisted,
        uops: BoundsUops::Split,
    };
    let mut t_wd = 0u64;
    let mut t_fused = 0u64;
    let mut t_split = 0u64;
    for spec in ["mcf", "gzip", "hmmer", "milc", "perl"] {
        let p = benchmark(spec).unwrap().build(Scale::Test);
        t_wd += Simulator::new(SimConfig::timed(Mode::watchdog()))
            .run(&p)
            .unwrap()
            .cycles();
        t_fused += Simulator::new(SimConfig::timed(fused))
            .run(&p)
            .unwrap()
            .cycles();
        t_split += Simulator::new(SimConfig::timed(split))
            .run(&p)
            .unwrap()
            .cycles();
    }
    assert!(
        t_fused >= t_wd,
        "fused bounds cannot be cheaper than UAF-only"
    );
    assert!(
        t_split >= t_fused,
        "split bounds cannot be cheaper than fused"
    );
}

/// Fig. 10's structural claims: metadata exists only under Watchdog, page
/// overhead ≥ word overhead, and bounds metadata is wider.
#[test]
fn memory_overhead_structure() {
    for name in ["mcf", "perl", "lbm"] {
        let p = benchmark(name).unwrap().build(Scale::Test);
        let base = Simulator::new(SimConfig::functional(Mode::Baseline))
            .run(&p)
            .unwrap();
        assert_eq!(
            base.footprint.shadow_words, 0,
            "{name}: baseline has no shadow"
        );
        let wd = Simulator::new(SimConfig::functional(Mode::watchdog()))
            .run(&p)
            .unwrap();
        if name != "lbm" {
            assert!(
                wd.footprint.shadow_words > 0,
                "{name}: watchdog writes metadata"
            );
            assert!(wd.footprint.lock_words > 0, "{name}: lock locations exist");
        }
        let bounds = Simulator::new(SimConfig::functional(Mode::WatchdogBounds {
            ptr: PointerId::IsaAssisted,
            uops: BoundsUops::Fused,
        }))
        .run(&p)
        .unwrap();
        assert!(
            bounds.footprint.shadow_words >= wd.footprint.shadow_words,
            "{name}: 256-bit records cannot shrink the shadow"
        );
    }
}

/// Timed runs are deterministic (same program, same config → same cycle
/// count) — required for reproducible figures.
#[test]
fn timed_runs_are_deterministic() {
    let p = benchmark("twolf").unwrap().build(Scale::Test);
    let a = Simulator::new(SimConfig::timed(Mode::watchdog()))
        .run(&p)
        .unwrap();
    let b = Simulator::new(SimConfig::timed(Mode::watchdog()))
        .run(&p)
        .unwrap();
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.uops(), b.uops());
}

/// The ideal-shadow ablation can only help (it removes cache pressure).
#[test]
fn ideal_shadow_never_hurts() {
    let ideal = Mode::Watchdog {
        ptr: PointerId::IsaAssisted,
        lock_cache: true,
        ideal_shadow: true,
    };
    for name in ["comp", "mcf", "milc"] {
        let p = benchmark(name).unwrap().build(Scale::Test);
        let real = Simulator::new(SimConfig::timed(Mode::watchdog()))
            .run(&p)
            .unwrap();
        let idl = Simulator::new(SimConfig::timed(ideal)).run(&p).unwrap();
        assert!(
            idl.cycles() <= real.cycles() + 50,
            "{name}: idealizing shadow accesses hurt"
        );
    }
}

/// Rename-stage copy elimination is active on real workloads: a
/// significant fraction of metadata movement is handled without µops.
#[test]
fn copy_elimination_fires_on_real_code() {
    let p = benchmark("mcf").unwrap().build(Scale::Test);
    let r = Simulator::new(SimConfig::timed(Mode::watchdog()))
        .run(&p)
        .unwrap();
    let rn = r.timing.as_ref().unwrap().rename;
    assert!(
        rn.eliminated_copies > 1000,
        "copy elimination barely fired: {rn:?}"
    );
    assert!(rn.meta_allocs > 0);
    assert!(
        rn.meta_high_water <= 24,
        "metadata pool pressure is bounded by logical registers"
    );
}

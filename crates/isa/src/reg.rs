//! Architectural registers and the logical-register namespace.
//!
//! Watchdog conceptually extends every register with a *sidecar* identifier
//! register (§3.4 of the paper). We model that by giving every
//! general-purpose register [`Gpr`] a metadata twin in the logical-register
//! namespace [`LReg`]: `LReg::G(r)` names the data half and `LReg::M(r)` the
//! 128-/256-bit metadata half. The rename stage maps the two halves to
//! *separate* physical registers (decoupled metadata, §6.2).

use std::fmt;

/// A general-purpose 64-bit integer register, `r0`–`r15`.
///
/// `r15` doubles as the stack pointer ([`Gpr::RSP`]), mirroring x86-64's
/// `%rsp`; it receives the stack-frame identifier on calls and returns
/// (Fig. 3c/3d).
///
/// # Example
///
/// ```
/// use watchdog_isa::Gpr;
/// let r3 = Gpr::new(3);
/// assert_eq!(r3.index(), 3);
/// assert_eq!(Gpr::RSP.index(), 15);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gpr(u8);

impl Gpr {
    /// Number of architectural general-purpose registers.
    pub const COUNT: usize = 16;

    /// The stack-pointer register (`r15`).
    pub const RSP: Gpr = Gpr(15);

    /// Creates register `r{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub const fn new(n: u8) -> Self {
        assert!(n < Self::COUNT as u8, "GPR index out of range");
        Gpr(n)
    }

    /// The register's index, `0..16`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all general-purpose registers.
    pub fn all() -> impl Iterator<Item = Gpr> {
        (0..Self::COUNT as u8).map(Gpr)
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::RSP {
            write!(f, "rsp")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl fmt::Debug for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A floating-point register, `f0`–`f7`.
///
/// Floating-point values are never pointers, so FP registers carry no
/// metadata sidecar (§5.1).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fpr(u8);

impl Fpr {
    /// Number of architectural floating-point registers.
    pub const COUNT: usize = 8;

    /// Creates register `f{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub const fn new(n: u8) -> Self {
        assert!(n < Self::COUNT as u8, "FPR index out of range");
        Fpr(n)
    }

    /// The register's index, `0..8`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all floating-point registers.
    pub fn all() -> impl Iterator<Item = Fpr> {
        (0..Self::COUNT as u8).map(Fpr)
    }
}

impl fmt::Display for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Debug for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Number of data temporaries available to the cracker.
pub const NUM_TEMPS: usize = 4;
/// Number of metadata temporaries available to the cracker.
pub const NUM_META_TEMPS: usize = 2;
/// Size of the compact logical-register index space (see [`LReg::index`]).
pub const NUM_LREGS: usize = Gpr::COUNT + Fpr::COUNT + Gpr::COUNT + NUM_TEMPS + NUM_META_TEMPS + 2;

/// A logical register as seen by µops, *after* cracking but *before*
/// renaming.
///
/// The namespace contains the architectural data registers (`G`, `F`), the
/// per-GPR metadata sidecars (`M`), cracking temporaries (`T`, `Tm`) and the
/// two Watchdog control registers that manage stack-frame identifiers
/// (`StackKey`, `StackLock`, §4.1).
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub enum LReg {
    /// Data half of a general-purpose register.
    G(Gpr),
    /// A floating-point register.
    F(Fpr),
    /// Metadata sidecar of a general-purpose register.
    M(Gpr),
    /// Cracker data temporary.
    T(u8),
    /// Cracker metadata temporary.
    Tm(u8),
    /// The `stack_key` control register: next stack-frame key to allocate.
    StackKey,
    /// The `stack_lock` control register: top of the in-memory lock stack.
    StackLock,
}

impl LReg {
    /// Compact index in `0..NUM_LREGS`, suitable for table lookups in the
    /// rename stage and timing model.
    ///
    /// ```
    /// use watchdog_isa::{LReg, Gpr};
    /// assert_eq!(LReg::G(Gpr::new(0)).index(), 0);
    /// assert!(LReg::StackLock.index() < watchdog_isa::reg::NUM_LREGS);
    /// ```
    pub const fn index(self) -> usize {
        match self {
            LReg::G(g) => g.index(),
            LReg::F(f) => Gpr::COUNT + f.index(),
            LReg::M(g) => Gpr::COUNT + Fpr::COUNT + g.index(),
            LReg::T(t) => Gpr::COUNT + Fpr::COUNT + Gpr::COUNT + t as usize,
            LReg::Tm(t) => Gpr::COUNT + Fpr::COUNT + Gpr::COUNT + NUM_TEMPS + t as usize,
            LReg::StackKey => NUM_LREGS - 2,
            LReg::StackLock => NUM_LREGS - 1,
        }
    }

    /// Whether this logical register names metadata (a sidecar, metadata
    /// temporary or identifier control register).
    pub const fn is_metadata(self) -> bool {
        matches!(
            self,
            LReg::M(_) | LReg::Tm(_) | LReg::StackKey | LReg::StackLock
        )
    }
}

impl fmt::Display for LReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LReg::G(g) => write!(f, "{g}"),
            LReg::F(r) => write!(f, "{r}"),
            LReg::M(g) => write!(f, "{g}.id"),
            LReg::T(t) => write!(f, "t{t}"),
            LReg::Tm(t) => write!(f, "tm{t}"),
            LReg::StackKey => write!(f, "stack_key"),
            LReg::StackLock => write!(f, "stack_lock"),
        }
    }
}

impl fmt::Debug for LReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn gpr_roundtrip_and_display() {
        for (i, g) in Gpr::all().enumerate() {
            assert_eq!(g.index(), i);
        }
        assert_eq!(Gpr::new(4).to_string(), "r4");
        assert_eq!(Gpr::RSP.to_string(), "rsp");
    }

    #[test]
    #[should_panic(expected = "GPR index out of range")]
    fn gpr_out_of_range_panics() {
        let _ = Gpr::new(16);
    }

    #[test]
    fn fpr_roundtrip() {
        for (i, f) in Fpr::all().enumerate() {
            assert_eq!(f.index(), i);
        }
        assert_eq!(Fpr::new(7).to_string(), "f7");
    }

    #[test]
    fn lreg_indices_are_unique_and_dense() {
        let mut seen = HashSet::new();
        let mut all: Vec<LReg> = Vec::new();
        all.extend(Gpr::all().map(LReg::G));
        all.extend(Fpr::all().map(LReg::F));
        all.extend(Gpr::all().map(LReg::M));
        all.extend((0..NUM_TEMPS as u8).map(LReg::T));
        all.extend((0..NUM_META_TEMPS as u8).map(LReg::Tm));
        all.push(LReg::StackKey);
        all.push(LReg::StackLock);
        assert_eq!(all.len(), NUM_LREGS);
        for r in all {
            let i = r.index();
            assert!(i < NUM_LREGS, "{r} index {i} out of range");
            assert!(seen.insert(i), "{r} collides at index {i}");
        }
    }

    #[test]
    fn metadata_classification() {
        assert!(LReg::M(Gpr::new(0)).is_metadata());
        assert!(LReg::StackKey.is_metadata());
        assert!(LReg::StackLock.is_metadata());
        assert!(LReg::Tm(0).is_metadata());
        assert!(!LReg::G(Gpr::new(0)).is_metadata());
        assert!(!LReg::F(Fpr::new(0)).is_metadata());
        assert!(!LReg::T(0).is_metadata());
    }
}

//! Program container and assembler-style builder.
//!
//! A [`Program`] is a fully-resolved sequence of macro-instructions plus a
//! description of its global data segment. Workloads construct programs with
//! [`ProgramBuilder`], which provides labels, forward references and global
//! allocation, in the style of a small assembler.

use crate::insn::{AluOp, Cond, FpOp, FpWidth, Inst, MemAddr, PtrHint, Width};
use crate::layout::{CODE_BASE, GLOBAL_BASE, GLOBAL_SIZE};
use crate::reg::{Fpr, Gpr};
use std::fmt;

/// An opaque branch-target label issued by [`ProgramBuilder::label`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

impl Label {
    /// The label's ordinal (for disassembly display).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Error building a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was created but never bound to a position.
    UnboundLabel(u32),
    /// The program contains no instructions.
    Empty,
    /// The global segment overflowed [`GLOBAL_SIZE`].
    GlobalOverflow {
        /// Bytes requested in total.
        requested: u64,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel(l) => write!(f, "label {l} was never bound"),
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::GlobalOverflow { requested } => {
                write!(f, "global segment overflow: {requested} bytes requested")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A fully-resolved guest program.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    addrs: Vec<u64>,
    targets: Vec<usize>,
    globals_size: u64,
    global_words: Vec<(u64, u64)>,
    global_ptrs: Vec<(u64, u64)>,
}

impl Program {
    /// Human-readable program name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of macro-instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn inst(&self, idx: usize) -> &Inst {
        &self.insts[idx]
    }

    /// Byte address of the instruction at `idx` (for fetch modelling).
    pub fn addr_of(&self, idx: usize) -> u64 {
        self.addrs[idx]
    }

    /// Resolves a label to its instruction index.
    pub fn target(&self, label: Label) -> usize {
        self.targets[label.0 as usize]
    }

    /// Total bytes reserved in the global segment.
    pub fn globals_size(&self) -> u64 {
        self.globals_size
    }

    /// Initialized 64-bit global words: `(absolute address, value)`.
    pub fn global_words(&self) -> &[(u64, u64)] {
        &self.global_words
    }

    /// Initialized global *pointer* slots: `(absolute slot address, absolute
    /// target address)`. These receive the global identifier in their shadow
    /// metadata at program load (§7: "Watchdog also initializes the entire
    /// metadata shadow space for the global data segment").
    pub fn global_ptrs(&self) -> &[(u64, u64)] {
        &self.global_ptrs
    }

    /// Disassembles the program: one line per instruction with its byte
    /// address, resolving branch targets to instruction indices.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{:>5}  {:#010x}  {}", i, self.addrs[i], inst);
        }
        out
    }
}

/// Incremental builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use watchdog_isa::{ProgramBuilder, Gpr, Cond};
/// let mut b = ProgramBuilder::new("count");
/// let (r0, r1) = (Gpr::new(0), Gpr::new(1));
/// let top = b.label();
/// b.li(r0, 0);
/// b.li(r1, 10);
/// b.bind(top);
/// b.addi(r0, r0, 1);
/// b.branch(Cond::Lt, r0, r1, top);
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.target(top), 2);
/// # Ok::<(), watchdog_isa::ProgramError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    label_targets: Vec<Option<usize>>,
    global_cursor: u64,
    global_words: Vec<(u64, u64)>,
    global_ptrs: Vec<(u64, u64)>,
}

impl ProgramBuilder {
    /// Starts an empty program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Issues a fresh (unbound) label.
    pub fn label(&mut self) -> Label {
        self.label_targets.push(None);
        Label(self.label_targets.len() as u32 - 1)
    }

    /// Binds `label` to the *next* instruction emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (builder misuse).
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.label_targets[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len());
    }

    /// Issues a label already bound to the next instruction.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Index the *next* emitted instruction will occupy.
    ///
    /// Program generators use this to record ground-truth positions (e.g.
    /// the exact instruction a constructed memory-safety violation must
    /// trap at) while the program is still being built.
    pub fn next_index(&self) -> usize {
        self.insts.len()
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    // ------------------------------------------------------------------
    // Convenience emitters.
    // ------------------------------------------------------------------

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// `halt`
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// `dst = imm`
    pub fn li(&mut self, dst: Gpr, imm: i64) -> &mut Self {
        self.push(Inst::MovImm { dst, imm })
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Gpr, src: Gpr) -> &mut Self {
        self.push(Inst::Mov { dst, src })
    }

    /// Three-operand ALU.
    pub fn alu(&mut self, op: AluOp, dst: Gpr, a: Gpr, b: Gpr) -> &mut Self {
        self.push(Inst::Alu { op, dst, a, b })
    }

    /// ALU with immediate.
    pub fn alui(&mut self, op: AluOp, dst: Gpr, a: Gpr, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op, dst, a, imm })
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: Gpr, a: Gpr, b: Gpr) -> &mut Self {
        self.alu(AluOp::Add, dst, a, b)
    }

    /// `dst = a + imm`
    pub fn addi(&mut self, dst: Gpr, a: Gpr, imm: i64) -> &mut Self {
        self.alui(AluOp::Add, dst, a, imm)
    }

    /// `dst = base + offset` (pointer arithmetic; metadata propagates).
    pub fn lea(&mut self, dst: Gpr, base: Gpr, offset: i32) -> &mut Self {
        self.push(Inst::Lea {
            dst,
            addr: MemAddr::offset(base, offset),
        })
    }

    /// `dst = &global` — receives the global identifier.
    pub fn lea_global(&mut self, dst: Gpr, addr: u64) -> &mut Self {
        self.push(Inst::LeaGlobal { dst, addr })
    }

    /// Typed integer load.
    pub fn load(&mut self, dst: Gpr, base: Gpr, offset: i32, width: Width) -> &mut Self {
        self.push(Inst::Load {
            dst,
            addr: MemAddr::offset(base, offset),
            width,
            hint: PtrHint::Auto,
        })
    }

    /// 8-byte load (pointer-capable).
    pub fn ld8(&mut self, dst: Gpr, base: Gpr, offset: i32) -> &mut Self {
        self.load(dst, base, offset, Width::B8)
    }

    /// 4-byte load.
    pub fn ld4(&mut self, dst: Gpr, base: Gpr, offset: i32) -> &mut Self {
        self.load(dst, base, offset, Width::B4)
    }

    /// 1-byte load.
    pub fn ld1(&mut self, dst: Gpr, base: Gpr, offset: i32) -> &mut Self {
        self.load(dst, base, offset, Width::B1)
    }

    /// Typed integer store.
    pub fn store(&mut self, src: Gpr, base: Gpr, offset: i32, width: Width) -> &mut Self {
        self.push(Inst::Store {
            src,
            addr: MemAddr::offset(base, offset),
            width,
            hint: PtrHint::Auto,
        })
    }

    /// 8-byte store (pointer-capable).
    pub fn st8(&mut self, src: Gpr, base: Gpr, offset: i32) -> &mut Self {
        self.store(src, base, offset, Width::B8)
    }

    /// 4-byte store.
    pub fn st4(&mut self, src: Gpr, base: Gpr, offset: i32) -> &mut Self {
        self.store(src, base, offset, Width::B4)
    }

    /// 1-byte store.
    pub fn st1(&mut self, src: Gpr, base: Gpr, offset: i32) -> &mut Self {
        self.store(src, base, offset, Width::B1)
    }

    /// Floating-point load.
    pub fn ldf(&mut self, dst: Fpr, base: Gpr, offset: i32, width: FpWidth) -> &mut Self {
        self.push(Inst::LoadFp {
            dst,
            addr: MemAddr::offset(base, offset),
            width,
        })
    }

    /// Floating-point store.
    pub fn stf(&mut self, src: Fpr, base: Gpr, offset: i32, width: FpWidth) -> &mut Self {
        self.push(Inst::StoreFp {
            src,
            addr: MemAddr::offset(base, offset),
            width,
        })
    }

    /// FP three-operand ALU.
    pub fn falu(&mut self, op: FpOp, dst: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.push(Inst::FpAlu { op, dst, a, b })
    }

    /// `dst = imm` (FP).
    pub fn fli(&mut self, dst: Fpr, imm: f64) -> &mut Self {
        self.push(Inst::FpMovImm { dst, imm })
    }

    /// Integer→FP conversion.
    pub fn i2f(&mut self, dst: Fpr, src: Gpr) -> &mut Self {
        self.push(Inst::IntToFp { dst, src })
    }

    /// FP→integer conversion.
    pub fn f2i(&mut self, dst: Gpr, src: Fpr) -> &mut Self {
        self.push(Inst::FpToInt { dst, src })
    }

    /// Conditional branch.
    pub fn branch(&mut self, cond: Cond, a: Gpr, b: Gpr, target: Label) -> &mut Self {
        self.push(Inst::Branch { cond, a, b, target })
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.push(Inst::Jump { target })
    }

    /// Direct call.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.push(Inst::Call { target })
    }

    /// Return.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst::Ret)
    }

    /// `dst = malloc(size_reg)`
    pub fn malloc(&mut self, dst: Gpr, size: Gpr) -> &mut Self {
        self.push(Inst::Malloc { dst, size })
    }

    /// `free(ptr)`
    pub fn free(&mut self, ptr: Gpr) -> &mut Self {
        self.push(Inst::Free { ptr })
    }

    /// `(key, lock) = new_ident()` — custom-allocator runtime call (§7).
    pub fn new_ident(&mut self, key: Gpr, lock: Gpr) -> &mut Self {
        self.push(Inst::NewIdent { key, lock })
    }

    /// `kill_ident(key, lock)` — invalidate a custom allocation's
    /// identifier (§7).
    pub fn kill_ident(&mut self, key: Gpr, lock: Gpr) -> &mut Self {
        self.push(Inst::KillIdent { key, lock })
    }

    /// `setident(ptr, key, lock)` — associate an identifier with a pointer.
    pub fn set_ident(&mut self, ptr: Gpr, key: Gpr, lock: Gpr) -> &mut Self {
        self.push(Inst::SetIdent { ptr, key, lock })
    }

    /// `setbounds(ptr, base, bound)` — bounds-extension pointer narrowing.
    pub fn set_bounds(&mut self, ptr: Gpr, base: Gpr, bound: Gpr) -> &mut Self {
        self.push(Inst::SetBounds { ptr, base, bound })
    }

    // ------------------------------------------------------------------
    // Globals.
    // ------------------------------------------------------------------

    /// Reserves `size` bytes in the global segment with the given alignment
    /// and returns the **absolute address** of the reservation.
    pub fn global_bytes(&mut self, size: u64, align: u64) -> u64 {
        let align = align.max(1);
        self.global_cursor = (self.global_cursor + align - 1) & !(align - 1);
        let addr = GLOBAL_BASE + self.global_cursor;
        self.global_cursor += size;
        addr
    }

    /// Reserves and initializes one 64-bit global word; returns its address.
    pub fn global_u64(&mut self, value: u64) -> u64 {
        let addr = self.global_bytes(8, 8);
        self.global_words.push((addr, value));
        addr
    }

    /// Reserves a global pointer slot initialized to point at
    /// `target` (another global). Its shadow metadata will carry the global
    /// identifier at load time (§7).
    pub fn global_ptr(&mut self, target: u64) -> u64 {
        let addr = self.global_bytes(8, 8);
        self.global_ptrs.push((addr, target));
        addr
    }

    /// Reserves an array of `n` 64-bit words; returns the base address.
    pub fn global_array_u64(&mut self, n: u64) -> u64 {
        self.global_bytes(n * 8, 8)
    }

    /// Finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if any issued label was never
    /// bound, [`ProgramError::Empty`] for an instruction-less program and
    /// [`ProgramError::GlobalOverflow`] if global reservations exceed the
    /// segment size.
    pub fn build(self) -> Result<Program, ProgramError> {
        if self.insts.is_empty() {
            return Err(ProgramError::Empty);
        }
        if self.global_cursor > GLOBAL_SIZE {
            return Err(ProgramError::GlobalOverflow {
                requested: self.global_cursor,
            });
        }
        let mut targets = Vec::with_capacity(self.label_targets.len());
        for (i, t) in self.label_targets.iter().enumerate() {
            match t {
                Some(idx) => targets.push(*idx),
                None => return Err(ProgramError::UnboundLabel(i as u32)),
            }
        }
        let mut addrs = Vec::with_capacity(self.insts.len());
        let mut pc = CODE_BASE;
        for inst in &self.insts {
            addrs.push(pc);
            pc += u64::from(inst.encoded_len());
        }
        Ok(Program {
            name: self.name,
            insts: self.insts,
            addrs,
            targets,
            globals_size: self.global_cursor,
            global_words: self.global_words,
            global_ptrs: self.global_ptrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_resolves_labels_and_addresses() {
        let mut b = ProgramBuilder::new("t");
        let r0 = Gpr::new(0);
        let end = b.label();
        b.li(r0, 1);
        b.jmp(end);
        b.nop();
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.name(), "t");
        assert_eq!(p.len(), 4);
        assert_eq!(p.target(end), 3);
        assert_eq!(p.addr_of(0), CODE_BASE);
        assert!(p.addr_of(1) > p.addr_of(0));
    }

    #[test]
    fn next_index_tracks_emission() {
        let mut b = ProgramBuilder::new("t");
        assert_eq!(b.next_index(), 0);
        b.nop();
        assert_eq!(b.next_index(), 1);
        let r0 = Gpr::new(0);
        b.li(r0, 1);
        let at = b.next_index();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(at, 2);
        assert!(matches!(p.inst(at), Inst::Halt));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.jmp(l);
        assert!(matches!(b.build(), Err(ProgramError::UnboundLabel(0))));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert!(matches!(
            ProgramBuilder::new("t").build(),
            Err(ProgramError::Empty)
        ));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.nop();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn globals_are_aligned_and_sequential() {
        let mut b = ProgramBuilder::new("t");
        let a = b.global_bytes(3, 1);
        let c = b.global_bytes(8, 8);
        assert_eq!(a, GLOBAL_BASE);
        assert_eq!(c % 8, 0);
        assert!(c >= a + 3);
        let w = b.global_u64(42);
        let p = b.global_ptr(w);
        b.halt();
        let prog = b.build().unwrap();
        assert_eq!(prog.global_words(), &[(w, 42)]);
        assert_eq!(prog.global_ptrs(), &[(p, w)]);
        assert!(prog.globals_size() >= 16);
    }

    #[test]
    fn global_overflow_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        b.global_bytes(GLOBAL_SIZE + 1, 1);
        b.halt();
        assert!(matches!(
            b.build(),
            Err(ProgramError::GlobalOverflow { .. })
        ));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            ProgramError::Empty.to_string(),
            "program has no instructions"
        );
        assert!(ProgramError::UnboundLabel(3).to_string().contains('3'));
    }
}

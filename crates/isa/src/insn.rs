//! The guest macro-instruction set.
//!
//! A 64-bit, RISC-flavoured instruction set with an x86-64-like register
//! file. The Watchdog-specific instructions mirror the paper:
//!
//! * [`Inst::SetIdent`] / [`Inst::GetIdent`] — the runtime↔hardware
//!   interface for heap identifier management (Fig. 3a/3b).
//! * [`Inst::SetBounds`] — conveys base/bound at pointer-creation points for
//!   the bounds extension (§8).
//! * [`Inst::Malloc`] / [`Inst::Free`] — entry points into the modified
//!   DL-malloc runtime; the cracker expands them into the representative
//!   µop sequence of the allocator (including the lock-location store and
//!   `setident`).
//!
//! Pointer-identification hints ([`PtrHint`]) model the ISA-assisted
//! load/store variants of §5.2: `Auto` defers to the active policy
//! (conservative or profiled), while `Pointer` / `NotPointer` are the
//! compiler-annotated variants.

use crate::program::Label;
use crate::reg::{Fpr, Gpr};
use std::fmt;

/// Access width of an integer memory operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes (the only width that can hold a pointer, §5.1).
    B8,
}

impl Width {
    /// Width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }
}

/// Access width of a floating-point memory operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FpWidth {
    /// 4-byte single precision.
    F4,
    /// 8-byte double precision.
    F8,
}

impl FpWidth {
    /// Width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            FpWidth::F4 => 4,
            FpWidth::F8 => 8,
        }
    }
}

/// Integer ALU operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sar,
    /// Wrapping multiplication (long-latency unit).
    Mul,
    /// Unsigned division; division by zero yields `u64::MAX` (long-latency,
    /// unpipelined unit).
    Div,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Rem,
    /// Set-if-less-than, unsigned: `dst = (a < b) as u64`.
    Sltu,
    /// Set-if-less-than, signed.
    Slt,
}

impl AluOp {
    /// Whether the operation executes on the multiply/divide unit.
    pub const fn is_long_latency(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }

    /// Evaluates the operation on two 64-bit values.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32 & 63),
            AluOp::Shr => a.wrapping_shr(b as u32 & 63),
            AluOp::Sar => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::Sltu => u64::from(a < b),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
        }
    }
}

/// Floating-point ALU operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// `dst = max(a, b)`.
    Max,
    /// `dst = min(a, b)`.
    Min,
}

impl FpOp {
    /// Evaluates the operation.
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            FpOp::Add => a + b,
            FpOp::Sub => a - b,
            FpOp::Mul => a * b,
            FpOp::Div => a / b,
            FpOp::Max => a.max(b),
            FpOp::Min => a.min(b),
        }
    }
}

/// Branch condition comparing two integer registers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// signed `a < b`
    Lt,
    /// signed `a <= b`
    Le,
    /// signed `a > b`
    Gt,
    /// signed `a >= b`
    Ge,
    /// unsigned `a < b`
    Ltu,
    /// unsigned `a >= b`
    Geu,
}

impl Cond {
    /// Evaluates the condition.
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => sa < sb,
            Cond::Le => sa <= sb,
            Cond::Gt => sa > sb,
            Cond::Ge => sa >= sb,
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }
}

/// A base-plus-displacement memory operand.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemAddr {
    /// Base register; its metadata sidecar is what the injected `check` µop
    /// validates.
    pub base: Gpr,
    /// Signed byte displacement.
    pub offset: i32,
}

impl MemAddr {
    /// Operand with zero displacement.
    pub const fn base(base: Gpr) -> Self {
        MemAddr { base, offset: 0 }
    }

    /// Operand with displacement.
    pub const fn offset(base: Gpr, offset: i32) -> Self {
        MemAddr { base, offset }
    }

    /// Effective address for a given base-register value.
    #[inline]
    pub fn resolve(self, base_val: u64) -> u64 {
        base_val.wrapping_add(self.offset as i64 as u64)
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{}]", self.base)
        } else {
            write!(f, "[{}{:+}]", self.base, self.offset)
        }
    }
}

/// Pointer-identification hint on a load/store (§5.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum PtrHint {
    /// Defer to the active identification policy (conservative heuristic or
    /// profile-derived marking).
    #[default]
    Auto,
    /// Compiler-annotated pointer load/store variant: always propagate
    /// metadata.
    Pointer,
    /// Compiler-annotated non-pointer variant: never propagate metadata.
    NotPointer,
}

/// A macro-instruction of the guest ISA.
///
/// Each variant documents its Watchdog-relevant metadata behaviour; the
/// exact µop expansion lives in [`crate::crack`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Stop the machine; the program's architectural state is final.
    Halt,
    /// `dst = imm`. Metadata of `dst` becomes invalid (an immediate is never
    /// a valid pointer).
    MovImm {
        /// Destination register.
        dst: Gpr,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = src`, copying the metadata sidecar (eliminated at rename).
    Mov {
        /// Destination register.
        dst: Gpr,
        /// Source register.
        src: Gpr,
    },
    /// Three-operand ALU op. Either source may be the pointer, so a `select`
    /// µop picks whichever metadata is valid (§6.2); long-latency ops
    /// (`Mul`/`Div`/`Rem`) instead invalidate the destination metadata
    /// (their result is never a valid pointer).
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Gpr,
        /// First source.
        a: Gpr,
        /// Second source.
        b: Gpr,
    },
    /// ALU op with immediate: `dst = a op imm`. Metadata copies from `a`
    /// (eliminated at rename, Fig. 2c).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Gpr,
        /// Source register.
        a: Gpr,
        /// Immediate operand.
        imm: i64,
    },
    /// Address computation `dst = base + offset`; inherits the base's
    /// metadata.
    Lea {
        /// Destination register.
        dst: Gpr,
        /// Address operand.
        addr: MemAddr,
    },
    /// PC-relative address of a global: `dst = addr`. Receives the single
    /// *global* identifier (§7).
    LeaGlobal {
        /// Destination register.
        dst: Gpr,
        /// Absolute address of the global (in the global segment).
        addr: u64,
    },
    /// Integer load. For 8-byte loads classified as pointer operations the
    /// cracker injects a `shadow_load` of the metadata (Fig. 2a); every load
    /// gets a `check` µop.
    Load {
        /// Destination register.
        dst: Gpr,
        /// Address operand.
        addr: MemAddr,
        /// Access width.
        width: Width,
        /// Pointer-identification hint.
        hint: PtrHint,
    },
    /// Integer store; pointer stores also shadow-store the metadata
    /// (Fig. 2b).
    Store {
        /// Source register.
        src: Gpr,
        /// Address operand.
        addr: MemAddr,
        /// Access width.
        width: Width,
        /// Pointer-identification hint.
        hint: PtrHint,
    },
    /// Floating-point load (never a pointer operation).
    LoadFp {
        /// Destination FP register.
        dst: Fpr,
        /// Address operand.
        addr: MemAddr,
        /// Access width.
        width: FpWidth,
    },
    /// Floating-point store (never a pointer operation).
    StoreFp {
        /// Source FP register.
        src: Fpr,
        /// Address operand.
        addr: MemAddr,
        /// Access width.
        width: FpWidth,
    },
    /// Floating-point three-operand ALU op.
    FpAlu {
        /// Operation.
        op: FpOp,
        /// Destination FP register.
        dst: Fpr,
        /// First source.
        a: Fpr,
        /// Second source.
        b: Fpr,
    },
    /// `dst = imm` (floating point).
    FpMovImm {
        /// Destination FP register.
        dst: Fpr,
        /// Immediate value.
        imm: f64,
    },
    /// FP register move.
    FpMov {
        /// Destination FP register.
        dst: Fpr,
        /// Source FP register.
        src: Fpr,
    },
    /// Convert integer to double.
    IntToFp {
        /// Destination FP register.
        dst: Fpr,
        /// Integer source.
        src: Gpr,
    },
    /// Convert double to integer (truncating); destination metadata becomes
    /// invalid.
    FpToInt {
        /// Integer destination.
        dst: Gpr,
        /// FP source.
        src: Fpr,
    },
    /// Conditional branch on two registers.
    Branch {
        /// Condition.
        cond: Cond,
        /// First compared register.
        a: Gpr,
        /// Second compared register.
        b: Gpr,
        /// Branch target.
        target: Label,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target.
        target: Label,
    },
    /// Direct call: pushes the return address and enters the callee. The
    /// Watchdog cracker appends the four stack-frame identifier-allocation
    /// µops (Fig. 3c).
    Call {
        /// Callee entry label.
        target: Label,
    },
    /// Return: pops the return address. The Watchdog cracker appends the
    /// four identifier-deallocation µops (Fig. 3d).
    Ret,
    /// Runtime→hardware: associate identifier `(key, lock)` with the pointer
    /// in `ptr` (Fig. 3a).
    SetIdent {
        /// Pointer register whose sidecar is written.
        ptr: Gpr,
        /// Register holding the 64-bit key.
        key: Gpr,
        /// Register holding the 64-bit lock address.
        lock: Gpr,
    },
    /// Hardware→runtime: read the identifier associated with `ptr` into
    /// `key`/`lock` (Fig. 3b).
    GetIdent {
        /// Pointer register whose sidecar is read.
        ptr: Gpr,
        /// Destination for the key.
        key: Gpr,
        /// Destination for the lock address.
        lock: Gpr,
    },
    /// Bounds extension: set `[base, bound)` on the pointer in `ptr` (§8).
    SetBounds {
        /// Pointer register whose sidecar is updated.
        ptr: Gpr,
        /// Register holding the inclusive lower bound.
        base: Gpr,
        /// Register holding the exclusive upper bound.
        bound: Gpr,
    },
    /// Runtime entry point: `dst = malloc(size)`. Expands to the
    /// representative allocator µop sequence; under Watchdog this includes
    /// the lock-location store and `setident` (and `setbounds` in bounds
    /// mode).
    Malloc {
        /// Receives the allocated pointer.
        dst: Gpr,
        /// Register holding the requested size in bytes.
        size: Gpr,
    },
    /// Runtime entry point: `free(ptr)`. Under Watchdog the runtime checks
    /// the identifier (catching double/invalid frees), invalidates the lock
    /// location and recycles it.
    Free {
        /// Register holding the pointer to free.
        ptr: Gpr,
    },
    /// Runtime entry point for *instrumented custom allocators* (§7):
    /// allocate a fresh never-reused key and a lock location, write the key
    /// into the lock, and return both. Pair with [`Inst::SetIdent`] to give
    /// a sub-allocation its own identifier so Watchdog performs "exact
    /// checking for these allocators".
    NewIdent {
        /// Receives the fresh 64-bit key.
        key: Gpr,
        /// Receives the lock-location address.
        lock: Gpr,
    },
    /// Runtime entry point for instrumented custom allocators (§7):
    /// invalidate the identifier `(key, lock)` — every pointer carrying it
    /// becomes dangling — and recycle the lock location.
    KillIdent {
        /// Register holding the key.
        key: Gpr,
        /// Register holding the lock-location address.
        lock: Gpr,
    },
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
            Inst::MovImm { dst, imm } => write!(f, "li {dst}, {imm}"),
            Inst::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::Alu { op, dst, a, b } => write!(f, "{op:?} {dst}, {a}, {b}"),
            Inst::AluImm { op, dst, a, imm } => write!(f, "{op:?}i {dst}, {a}, {imm}"),
            Inst::Lea { dst, addr } => write!(f, "lea {dst}, {addr}"),
            Inst::LeaGlobal { dst, addr } => write!(f, "lea {dst}, global:{addr:#x}"),
            Inst::Load {
                dst, addr, width, ..
            } => write!(f, "ld{} {dst}, {addr}", width.bytes()),
            Inst::Store {
                src, addr, width, ..
            } => write!(f, "st{} {src}, {addr}", width.bytes()),
            Inst::LoadFp { dst, addr, width } => write!(f, "ldf{} {dst}, {addr}", width.bytes()),
            Inst::StoreFp { src, addr, width } => write!(f, "stf{} {src}, {addr}", width.bytes()),
            Inst::FpAlu { op, dst, a, b } => write!(f, "f{op:?} {dst}, {a}, {b}"),
            Inst::FpMovImm { dst, imm } => write!(f, "fli {dst}, {imm}"),
            Inst::FpMov { dst, src } => write!(f, "fmov {dst}, {src}"),
            Inst::IntToFp { dst, src } => write!(f, "i2f {dst}, {src}"),
            Inst::FpToInt { dst, src } => write!(f, "f2i {dst}, {src}"),
            Inst::Branch { cond, a, b, target } => {
                write!(f, "b{cond:?} {a}, {b}, L{}", target.index())
            }
            Inst::Jump { target } => write!(f, "jmp L{}", target.index()),
            Inst::Call { target } => write!(f, "call L{}", target.index()),
            Inst::Ret => write!(f, "ret"),
            Inst::SetIdent { ptr, key, lock } => write!(f, "setident {ptr}, {key}, {lock}"),
            Inst::GetIdent { ptr, key, lock } => write!(f, "getident {ptr} -> {key}, {lock}"),
            Inst::SetBounds { ptr, base, bound } => write!(f, "setbounds {ptr}, {base}, {bound}"),
            Inst::Malloc { dst, size } => write!(f, "malloc {dst}, {size}"),
            Inst::Free { ptr } => write!(f, "free {ptr}"),
            Inst::NewIdent { key, lock } => write!(f, "newident {key}, {lock}"),
            Inst::KillIdent { key, lock } => write!(f, "killident {key}, {lock}"),
        }
    }
}

impl Inst {
    /// Approximate encoded length in bytes, used by the fetch-bandwidth
    /// model (16 fetch bytes per cycle, Table 2).
    pub fn encoded_len(&self) -> u8 {
        match self {
            Inst::Nop | Inst::Ret | Inst::Halt => 1,
            Inst::Mov { .. } | Inst::FpMov { .. } => 3,
            Inst::Alu { .. } | Inst::FpAlu { .. } => 3,
            Inst::AluImm { imm, .. } => {
                if i32::try_from(*imm).is_ok() {
                    5
                } else {
                    10
                }
            }
            Inst::MovImm { imm, .. } => {
                if i32::try_from(*imm).is_ok() {
                    6
                } else {
                    10
                }
            }
            Inst::FpMovImm { .. } => 10,
            Inst::Lea { .. } | Inst::LeaGlobal { .. } => 7,
            Inst::Load { .. } | Inst::Store { .. } | Inst::LoadFp { .. } | Inst::StoreFp { .. } => {
                5
            }
            Inst::IntToFp { .. } | Inst::FpToInt { .. } => 4,
            Inst::Branch { .. } => 6,
            Inst::Jump { .. } | Inst::Call { .. } => 5,
            Inst::SetIdent { .. } | Inst::GetIdent { .. } | Inst::SetBounds { .. } => 4,
            Inst::Malloc { .. } | Inst::Free { .. } => 5,
            Inst::NewIdent { .. } | Inst::KillIdent { .. } => 5,
        }
    }

    /// Whether the instruction accesses data memory (excluding the injected
    /// metadata accesses).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::LoadFp { .. } | Inst::StoreFp { .. }
        )
    }

    /// Whether the instruction is a control-flow transfer.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::Call { .. } | Inst::Ret
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u64::MAX);
        assert_eq!(AluOp::Shl.eval(1, 65), 2, "shift amounts are mod 64");
        assert_eq!(AluOp::Sar.eval(-8i64 as u64, 1), -4i64 as u64);
        assert_eq!(AluOp::Div.eval(7, 0), u64::MAX, "div-by-zero saturates");
        assert_eq!(AluOp::Rem.eval(7, 0), 7);
        assert_eq!(AluOp::Slt.eval(-1i64 as u64, 0), 1);
        assert_eq!(AluOp::Sltu.eval(-1i64 as u64, 0), 0);
    }

    #[test]
    fn cond_signed_vs_unsigned() {
        assert!(Cond::Lt.eval(-1i64 as u64, 0));
        assert!(!Cond::Ltu.eval(-1i64 as u64, 0));
        assert!(Cond::Geu.eval(-1i64 as u64, 0));
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Le.eval(5, 5));
        assert!(Cond::Gt.eval(6, 5));
        assert!(Cond::Ge.eval(5, 5));
    }

    #[test]
    fn mem_addr_resolution_wraps() {
        let a = MemAddr::offset(Gpr::new(0), -8);
        assert_eq!(a.resolve(16), 8);
        assert_eq!(a.resolve(0), (-8i64) as u64);
        assert_eq!(format!("{a}"), "[r0-8]");
        assert_eq!(format!("{}", MemAddr::base(Gpr::new(2))), "[r2]");
    }

    #[test]
    fn widths() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B8.bytes(), 8);
        assert_eq!(FpWidth::F4.bytes(), 4);
        assert_eq!(FpWidth::F8.bytes(), 8);
    }

    #[test]
    fn long_latency_classification() {
        assert!(AluOp::Mul.is_long_latency());
        assert!(AluOp::Div.is_long_latency());
        assert!(AluOp::Rem.is_long_latency());
        assert!(!AluOp::Add.is_long_latency());
    }

    #[test]
    fn encoded_lengths_are_reasonable() {
        let small = Inst::MovImm {
            dst: Gpr::new(0),
            imm: 1,
        };
        let big = Inst::MovImm {
            dst: Gpr::new(0),
            imm: i64::MAX,
        };
        assert!(small.encoded_len() < big.encoded_len());
        assert_eq!(Inst::Ret.encoded_len(), 1);
    }

    #[test]
    fn fp_eval() {
        assert_eq!(FpOp::Add.eval(1.5, 2.5), 4.0);
        assert_eq!(FpOp::Max.eval(1.0, 2.0), 2.0);
        assert_eq!(FpOp::Min.eval(1.0, 2.0), 1.0);
        assert_eq!(FpOp::Div.eval(1.0, 2.0), 0.5);
    }
}

//! The µop vocabulary.
//!
//! Watchdog "uses micro-ops to access metadata and perform checks" (§1). The
//! cracker expands every macro-instruction into µops from this vocabulary;
//! the timing model schedules them onto functional units and cache ports.
//!
//! The Watchdog-injected kinds are:
//!
//! * [`UopKind::Check`] — lock-location load + key comparison, a single µop
//!   (§4.1, Fig. 4b). Routed to the dedicated lock-location cache when
//!   present (§4.2).
//! * [`UopKind::CheckCombined`] — identifier *and* bounds check fused into
//!   one µop (§8, alternative 2).
//! * [`UopKind::BoundsCheck`] — the separate bounds-check µop (§8,
//!   alternative 1); pure comparison, no memory access.
//! * [`UopKind::ShadowLoad`] / [`UopKind::ShadowStore`] — metadata accesses
//!   to the disjoint shadow space (Fig. 2a/2b).
//! * [`UopKind::LockLoad`] / [`UopKind::LockStore`] — lock-location
//!   reads/writes performed during identifier allocation/deallocation
//!   (Fig. 3).
//! * [`UopKind::SelectMeta`] — metadata select for two-source pointer
//!   arithmetic (§6.2).

use crate::reg::LReg;
use std::fmt;

/// Maximum µops a single macro-instruction cracks into (the Watchdog
/// `malloc` runtime expansion is the largest).
pub const MAX_UOPS: usize = 24;

/// Functional classification of a µop.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Pipelined FP add/sub/convert.
    FpAlu,
    /// Pipelined FP multiply.
    FpMul,
    /// Unpipelined FP divide.
    FpDiv,
    /// Branch/jump resolution.
    Branch,
    /// Data load (program data space).
    Load,
    /// Data store.
    Store,
    /// Metadata load from the shadow space.
    ShadowLoad,
    /// Metadata store to the shadow space.
    ShadowStore,
    /// Lock-location load (identifier management).
    LockLoad,
    /// Lock-location store (identifier management).
    LockStore,
    /// Use-after-free check: load lock location, compare with key.
    Check,
    /// Bounds-only check: two inequality comparisons, no memory access.
    BoundsCheck,
    /// Fused identifier + bounds check (one lock-location access).
    CheckCombined,
    /// Metadata select between two source sidecars.
    SelectMeta,
    /// No-op placeholder.
    Nop,
}

impl UopKind {
    /// Number of µop kinds (one per enum variant).
    pub const COUNT: usize = 18;

    /// Every µop kind, in discriminant order. Indexing this array with
    /// `kind as usize` yields `kind` back — the property that makes dense
    /// per-kind tables (dispatch descriptors, telemetry counters) safe to
    /// index without a `match`.
    pub const ALL: [UopKind; UopKind::COUNT] = [
        UopKind::IntAlu,
        UopKind::IntMul,
        UopKind::IntDiv,
        UopKind::FpAlu,
        UopKind::FpMul,
        UopKind::FpDiv,
        UopKind::Branch,
        UopKind::Load,
        UopKind::Store,
        UopKind::ShadowLoad,
        UopKind::ShadowStore,
        UopKind::LockLoad,
        UopKind::LockStore,
        UopKind::Check,
        UopKind::BoundsCheck,
        UopKind::CheckCombined,
        UopKind::SelectMeta,
        UopKind::Nop,
    ];

    /// Whether the µop accesses memory (and therefore needs an address and a
    /// cache port).
    pub const fn is_mem(self) -> bool {
        matches!(
            self,
            UopKind::Load
                | UopKind::Store
                | UopKind::ShadowLoad
                | UopKind::ShadowStore
                | UopKind::LockLoad
                | UopKind::LockStore
                | UopKind::Check
                | UopKind::CheckCombined
        )
    }

    /// Whether the µop writes memory.
    pub const fn is_mem_write(self) -> bool {
        matches!(
            self,
            UopKind::Store | UopKind::ShadowStore | UopKind::LockStore
        )
    }

    /// Whether the µop accesses a lock location (eligible for the
    /// lock-location cache).
    pub const fn is_lock_access(self) -> bool {
        matches!(
            self,
            UopKind::Check | UopKind::CheckCombined | UopKind::LockLoad | UopKind::LockStore
        )
    }

    /// Whether the µop accesses the shadow metadata space.
    pub const fn is_shadow_access(self) -> bool {
        matches!(self, UopKind::ShadowLoad | UopKind::ShadowStore)
    }
}

/// Accounting category for µop-overhead attribution (Fig. 8).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum UopTag {
    /// µop the unmodified baseline would also execute.
    Base,
    /// Injected validity check.
    Check,
    /// Injected metadata load for a pointer load.
    PtrLoad,
    /// Injected metadata store for a pointer store.
    PtrStore,
    /// Injected metadata propagation (`select`).
    Propagate,
    /// Identifier allocation/deallocation work (heap runtime additions and
    /// the call/return µops of Fig. 3).
    AllocDealloc,
}

impl UopTag {
    /// Whether this µop is Watchdog overhead (i.e. not executed by the
    /// baseline).
    pub const fn is_overhead(self) -> bool {
        !matches!(self, UopTag::Base)
    }
}

/// A single µop: kind, register operands and accounting tag.
///
/// Operands are *logical* registers; renaming happens in the pipeline model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Uop {
    /// Functional kind.
    pub kind: UopKind,
    /// Destination register, if any.
    pub dst: Option<LReg>,
    /// First source register, if any.
    pub src1: Option<LReg>,
    /// Second source register, if any.
    pub src2: Option<LReg>,
    /// Accounting tag.
    pub tag: UopTag,
}

impl Uop {
    /// Builds a µop.
    pub const fn new(
        kind: UopKind,
        dst: Option<LReg>,
        src1: Option<LReg>,
        src2: Option<LReg>,
        tag: UopTag,
    ) -> Self {
        Uop {
            kind,
            dst,
            src1,
            src2,
            tag,
        }
    }

    /// Convenience constructor for a base-tagged µop.
    pub const fn base(
        kind: UopKind,
        dst: Option<LReg>,
        src1: Option<LReg>,
        src2: Option<LReg>,
    ) -> Self {
        Self::new(kind, dst, src1, src2, UopTag::Base)
    }
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.kind)?;
        if let Some(d) = self.dst {
            write!(f, " {d} <-")?;
        }
        if let Some(s) = self.src1 {
            write!(f, " {s}")?;
        }
        if let Some(s) = self.src2 {
            write!(f, ", {s}")?;
        }
        Ok(())
    }
}

/// A µop with its dynamically-resolved execution facts: effective address
/// for memory µops, outcome for branches.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct UopExec {
    /// The static µop.
    pub uop: Uop,
    /// Resolved memory address (data, shadow or lock space) for memory µops.
    pub addr: Option<u64>,
    /// Branch outcome (meaningful only for `Branch` µops).
    pub taken: bool,
    /// Branch target byte-address (meaningful only for taken branches).
    pub target: u64,
}

impl UopExec {
    /// Wraps a µop with no dynamic facts attached yet.
    pub const fn plain(uop: Uop) -> Self {
        UopExec {
            uop,
            addr: None,
            taken: false,
            target: 0,
        }
    }
}

impl Default for UopExec {
    fn default() -> Self {
        UopExec::plain(Uop::base(UopKind::Nop, None, None, None))
    }
}

/// Fixed-capacity vector of [`UopExec`] (avoids per-instruction heap
/// allocation on the simulator fast path).
#[derive(Copy, Clone)]
pub struct UopVec {
    items: [UopExec; MAX_UOPS],
    len: u8,
}

impl fmt::Debug for UopVec {
    /// Formats only the populated prefix: entries past `len` are
    /// unreachable scratch (see [`UopVec::clone_from_compact`]) and must
    /// not leak into comparisons or logs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl UopVec {
    /// Empty vector.
    pub fn new() -> Self {
        UopVec {
            items: [UopExec::default(); MAX_UOPS],
            len: 0,
        }
    }

    /// Appends a µop.
    ///
    /// # Panics
    ///
    /// Panics if the vector already holds [`MAX_UOPS`] entries (a cracker
    /// bug, not a user error).
    pub fn push(&mut self, u: UopExec) {
        assert!((self.len as usize) < MAX_UOPS, "µop expansion overflow");
        self.items[self.len as usize] = u;
        self.len += 1;
    }

    /// Appends a static µop with no dynamic facts.
    pub fn push_uop(&mut self, u: Uop) {
        self.push(UopExec::plain(u));
    }

    /// Number of µops.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of the µops.
    pub fn as_slice(&self) -> &[UopExec] {
        &self.items[..self.len as usize]
    }

    /// Mutable view of the µops.
    pub fn as_mut_slice(&mut self) -> &mut [UopExec] {
        &mut self.items[..self.len as usize]
    }

    /// Length-aware overwrite: copies only `src`'s populated prefix into
    /// `self` and adopts its length. Entries past the new length are stale
    /// but unreachable (every accessor is bounded by `len`), so the
    /// ~1KB fixed-capacity tail is neither initialized nor copied — this is
    /// the cheap per-step copy the simulator's µop-emitting path uses to
    /// materialize a cached crack expansion.
    pub fn clone_from_compact(&mut self, src: &UopVec) {
        let n = src.len as usize;
        self.items[..n].copy_from_slice(&src.items[..n]);
        self.len = src.len;
    }

    /// In-place filter preserving order (used to drop a folded `select`
    /// µop without building a second vector).
    pub fn retain(&mut self, mut f: impl FnMut(&UopExec) -> bool) {
        let mut keep = 0usize;
        for i in 0..self.len as usize {
            if f(&self.items[i]) {
                self.items[keep] = self.items[i];
                keep += 1;
            }
        }
        self.len = keep as u8;
    }

    /// Inserts a µop at the front, shifting the populated prefix right.
    ///
    /// # Panics
    ///
    /// Panics if the vector already holds [`MAX_UOPS`] entries.
    pub fn insert_front(&mut self, u: UopExec) {
        let n = self.len as usize;
        assert!(n < MAX_UOPS, "µop expansion overflow");
        self.items.copy_within(0..n, 1);
        self.items[0] = u;
        self.len += 1;
    }

    /// Iterates over the µops.
    pub fn iter(&self) -> impl Iterator<Item = &UopExec> {
        self.as_slice().iter()
    }
}

impl Default for UopVec {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> IntoIterator for &'a UopVec {
    type Item = &'a UopExec;
    type IntoIter = std::slice::Iter<'a, UopExec>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Gpr, LReg};

    #[test]
    fn kind_classification() {
        assert!(UopKind::Check.is_mem());
        assert!(UopKind::Check.is_lock_access());
        assert!(!UopKind::Check.is_mem_write());
        assert!(!UopKind::BoundsCheck.is_mem());
        assert!(UopKind::ShadowStore.is_mem_write());
        assert!(UopKind::ShadowStore.is_shadow_access());
        assert!(UopKind::LockStore.is_lock_access());
        assert!(!UopKind::IntAlu.is_mem());
        assert!(UopKind::CheckCombined.is_lock_access());
    }

    #[test]
    fn all_is_in_discriminant_order_and_exhaustive() {
        for (i, k) in UopKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "{k:?} out of discriminant order");
        }
        // Exhaustiveness guard: fails to compile when a variant is added
        // without extending `ALL` (the match below must stay total).
        const fn covered(k: UopKind) -> bool {
            match k {
                UopKind::IntAlu
                | UopKind::IntMul
                | UopKind::IntDiv
                | UopKind::FpAlu
                | UopKind::FpMul
                | UopKind::FpDiv
                | UopKind::Branch
                | UopKind::Load
                | UopKind::Store
                | UopKind::ShadowLoad
                | UopKind::ShadowStore
                | UopKind::LockLoad
                | UopKind::LockStore
                | UopKind::Check
                | UopKind::BoundsCheck
                | UopKind::CheckCombined
                | UopKind::SelectMeta
                | UopKind::Nop => true,
            }
        }
        assert!(UopKind::ALL.iter().all(|&k| covered(k)));
    }

    #[test]
    fn tag_overhead() {
        assert!(!UopTag::Base.is_overhead());
        for t in [
            UopTag::Check,
            UopTag::PtrLoad,
            UopTag::PtrStore,
            UopTag::Propagate,
            UopTag::AllocDealloc,
        ] {
            assert!(t.is_overhead());
        }
    }

    #[test]
    fn uopvec_push_and_iterate() {
        let mut v = UopVec::new();
        assert!(v.is_empty());
        for i in 0..5u8 {
            v.push_uop(Uop::base(
                UopKind::IntAlu,
                Some(LReg::G(Gpr::new(i))),
                None,
                None,
            ));
        }
        assert_eq!(v.len(), 5);
        let dsts: Vec<_> = v.iter().map(|u| u.uop.dst.unwrap()).collect();
        assert_eq!(dsts[3], LReg::G(Gpr::new(3)));
    }

    #[test]
    #[should_panic(expected = "µop expansion overflow")]
    fn uopvec_overflow_panics() {
        let mut v = UopVec::new();
        for _ in 0..=MAX_UOPS {
            v.push_uop(Uop::base(UopKind::Nop, None, None, None));
        }
    }

    #[test]
    fn clone_from_compact_matches_a_full_copy() {
        let mut v = UopVec::new();
        for i in 0..7u8 {
            v.push_uop(Uop::base(
                UopKind::IntAlu,
                Some(LReg::G(Gpr::new(i))),
                None,
                None,
            ));
        }
        // A stale, longer destination: the compact copy must shrink it.
        let mut dst = UopVec::new();
        for _ in 0..MAX_UOPS {
            dst.push_uop(Uop::base(UopKind::Nop, None, None, None));
        }
        dst.clone_from_compact(&v);
        assert_eq!(dst.len(), v.len());
        assert_eq!(dst.as_slice(), v.as_slice());
    }

    #[test]
    fn retain_filters_in_place() {
        let mut v = UopVec::new();
        v.push_uop(Uop::base(UopKind::IntAlu, None, None, None));
        v.push_uop(Uop::new(
            UopKind::SelectMeta,
            None,
            None,
            None,
            UopTag::Propagate,
        ));
        v.push_uop(Uop::base(UopKind::Load, None, None, None));
        v.retain(|u| u.uop.kind != UopKind::SelectMeta);
        let kinds: Vec<_> = v.iter().map(|u| u.uop.kind).collect();
        assert_eq!(kinds, vec![UopKind::IntAlu, UopKind::Load]);
    }

    #[test]
    fn insert_front_shifts_the_prefix() {
        let mut v = UopVec::new();
        v.push_uop(Uop::base(UopKind::Load, None, None, None));
        v.push_uop(Uop::base(UopKind::Store, None, None, None));
        v.insert_front(UopExec::plain(Uop::new(
            UopKind::Check,
            None,
            None,
            None,
            UopTag::Check,
        )));
        let kinds: Vec<_> = v.iter().map(|u| u.uop.kind).collect();
        assert_eq!(kinds, vec![UopKind::Check, UopKind::Load, UopKind::Store]);
    }

    #[test]
    fn display_formats() {
        let u = Uop::base(
            UopKind::IntAlu,
            Some(LReg::G(Gpr::new(1))),
            Some(LReg::G(Gpr::new(2))),
            Some(LReg::G(Gpr::new(3))),
        );
        assert_eq!(u.to_string(), "IntAlu r1 <- r2, r3");
    }
}

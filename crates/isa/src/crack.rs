//! The decoder/cracker: macro-instruction → µop expansion with Watchdog
//! µop injection.
//!
//! This module reproduces Figures 2 and 3 of the paper:
//!
//! * every load/store gets a `check` µop (Fig. 2a/2b);
//! * loads/stores classified as *pointer operations* additionally get a
//!   `shadow_load`/`shadow_store` µop;
//! * pointer arithmetic with two register sources gets a `select` µop, while
//!   single-source copies are handled at rename via [`MetaEffect`] (§6.2 —
//!   copy elimination, no µop emitted);
//! * `call`/`ret` get the four stack-frame identifier µops (Fig. 3c/3d);
//! * `malloc`/`free` expand to the representative runtime sequence,
//!   including the lock-location store and `setident` under Watchdog
//!   (Fig. 3a/3b);
//! * under the bounds extension (§8) the check is either fused
//!   ([`UopKind::CheckCombined`]) or split into `check` + `bounds_check`
//!   ([`BoundsUops`]).

use crate::insn::Inst;
use crate::reg::{Gpr, LReg};
use crate::uop::{Uop, UopExec, UopKind, UopTag, UopVec};

/// How the bounds extension injects its check (§8).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BoundsUops {
    /// One combined µop performs identifier and bounds checking.
    Fused,
    /// A separate `bounds_check` µop is injected next to the identifier
    /// check.
    Split,
}

/// Static cracking configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CrackConfig {
    /// Whether Watchdog µop injection is active at all.
    pub watchdog: bool,
    /// Bounds-checking extension mode (requires `watchdog`).
    pub bounds: Option<BoundsUops>,
}

impl CrackConfig {
    /// Unmodified baseline: no injected µops.
    pub const fn baseline() -> Self {
        CrackConfig {
            watchdog: false,
            bounds: None,
        }
    }

    /// Use-after-free checking only (the paper's primary configuration).
    pub const fn watchdog() -> Self {
        CrackConfig {
            watchdog: true,
            bounds: None,
        }
    }

    /// Full memory safety: use-after-free + bounds checking.
    pub const fn with_bounds(mode: BoundsUops) -> Self {
        CrackConfig {
            watchdog: true,
            bounds: Some(mode),
        }
    }
}

/// Register-metadata effect handled entirely in the rename stage (§6.2).
///
/// These are the cases where Watchdog does *not* insert a µop: unambiguous
/// metadata copies and metadata invalidations are performed by remapping the
/// metadata entry of the destination register in the map table.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MetaEffect {
    /// Metadata mapping unchanged / produced by an emitted µop.
    None,
    /// Destination's metadata mapping becomes a second reference to the
    /// source's metadata physical register (copy elimination).
    Copy {
        /// Register whose metadata mapping is overwritten.
        dst: Gpr,
        /// Register whose metadata physical register is shared.
        src: Gpr,
    },
    /// Destination's metadata mapping points at the always-invalid physical
    /// register (the instruction can never produce a valid pointer).
    Invalidate(Gpr),
    /// Destination's metadata mapping points at the global-identifier
    /// physical register (PC-relative addressing, §7).
    Global(Gpr),
}

/// Control-flow class of a macro-instruction, used by the branch predictor
/// (direct branches use the PPM tables, calls/returns use the RAS).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CtrlKind {
    /// Not a control-flow instruction.
    None,
    /// Conditional branch.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Call (pushes the return-address stack).
    Call,
    /// Return (pops the return-address stack).
    Ret,
}

/// Result of cracking one macro-instruction.
#[derive(Clone, Debug)]
pub struct Cracked {
    /// The µop expansion, in program order.
    pub uops: UopVec,
    /// The rename-stage metadata effect.
    pub meta: MetaEffect,
    /// Control-flow class.
    pub ctrl: CtrlKind,
}

/// A cracked instruction with its dynamic execution facts, as handed to the
/// timing model.
#[derive(Clone, Debug)]
pub struct CrackedInst {
    /// Byte address of the macro-instruction.
    pub pc: u64,
    /// Encoded length in bytes.
    pub len: u8,
    /// µops with resolved addresses / branch outcomes.
    pub uops: UopVec,
    /// Rename-stage metadata effect.
    pub meta: MetaEffect,
    /// Control-flow class.
    pub ctrl: CtrlKind,
}

impl CrackedInst {
    /// An empty expansion (no µops, no control flow). The machine keeps one
    /// of these as its per-step scratch and refills it with a length-aware
    /// copy of the cached static expansion, so the ~1KB fixed-capacity µop
    /// array is never bulk-copied per step.
    pub fn empty() -> Self {
        CrackedInst {
            pc: 0,
            len: 0,
            uops: UopVec::new(),
            meta: MetaEffect::None,
            ctrl: CtrlKind::None,
        }
    }
}

/// Number of µops the *baseline* expansion of `inst` contains (used for
/// µop-overhead accounting, Fig. 8).
pub fn baseline_uop_count(inst: &Inst) -> usize {
    crack(inst, false, &CrackConfig::baseline()).uops.len()
}

/// Fills the resolved addresses of the memory µops in `uops`, in program
/// order, from `addrs`.
///
/// # Panics
///
/// Panics if the number of memory µops does not equal `addrs.len()` — that
/// indicates the functional machine and the cracker disagree about an
/// instruction's memory behaviour (an internal bug).
pub fn fill_mem_addrs(uops: &mut UopVec, addrs: &[u64]) {
    let mut it = addrs.iter();
    for u in uops.as_mut_slice() {
        if u.uop.kind.is_mem() {
            let a = it.next().expect("fewer addresses than memory µops");
            u.addr = Some(*a);
        }
    }
    assert!(it.next().is_none(), "more addresses than memory µops");
}

/// Dynamic per-commit facts needed to turn a static [`Cracked`] expansion
/// into the exact [`CrackedInst`] the timing model consumes.
///
/// The functional machine produces one of these per executed instruction;
/// the trace replayer decodes the same facts from a recorded event stream.
/// Both feed [`assemble_cracked`], so a replayed µop stream is equal to the
/// live one *by construction*, not by parallel re-implementation.
#[derive(Debug, Clone, Copy)]
pub struct CommitFacts<'a> {
    /// Byte address of the macro-instruction.
    pub pc: u64,
    /// Encoded length in bytes.
    pub len: u8,
    /// Rename-stage select folding: `Some(effect)` drops the `select` µop
    /// and replaces the expansion's [`MetaEffect`] (§6.2 — both inputs'
    /// metadata mappings were trivially invalid at execution time).
    pub select_fold: Option<MetaEffect>,
    /// Insert the §2.1 location-based allocation-status check µop in front
    /// (location-based checking mode, memory instructions only).
    pub location_check: bool,
    /// Resolved addresses of the memory µops, in µop program order.
    pub mem_addrs: &'a [u64],
    /// Branch outcome `(taken, target byte address)`; required exactly when
    /// the expansion is a control instruction.
    pub branch: Option<(bool, u64)>,
}

/// Assembles the full [`CrackedInst`] for one committed instruction into
/// `cur` (in place — the fixed-capacity µop tail is never bulk-copied) from
/// its cached static expansion and the dynamic [`CommitFacts`].
///
/// # Panics
///
/// Panics if the facts disagree with the expansion's shape: a missing
/// branch outcome on a control instruction, or a memory-address count that
/// does not match the expansion's memory µops (see [`fill_mem_addrs`]).
/// Both indicate an internal bug — or, on the replay path, a corrupt trace
/// (the replayer validates the shape before calling this).
pub fn assemble_cracked(cur: &mut CrackedInst, stat: &Cracked, facts: &CommitFacts<'_>) {
    cur.uops.clone_from_compact(&stat.uops);
    cur.meta = stat.meta;
    cur.ctrl = stat.ctrl;
    cur.pc = facts.pc;
    cur.len = facts.len;
    if let Some(effect) = facts.select_fold {
        // Drop the select µop; the rename stage handles the effect.
        cur.uops.retain(|u| u.uop.kind != UopKind::SelectMeta);
        cur.meta = effect;
    }
    if facts.location_check {
        // Location-based checking: one allocation-status check µop per
        // memory access (§2.1 hardware, e.g. MemTracker).
        cur.uops.insert_front(UopExec::plain(Uop::new(
            UopKind::Check,
            None,
            None,
            None,
            UopTag::Check,
        )));
    }
    fill_mem_addrs(&mut cur.uops, facts.mem_addrs);
    if cur.ctrl != CtrlKind::None {
        let n = cur.uops.len();
        let (taken, target) = facts.branch.expect("control instruction resolved");
        let last = &mut cur.uops.as_mut_slice()[n - 1];
        last.taken = taken;
        last.target = target;
    }
}

/// Execution lane of a µop: the streaming class under which `UopBatch`
/// groups homogeneous runs so the timing model's hot loop hoists its
/// kind-dependent branches out of the inner dispatch loop.
///
/// Lanes partition [`UopKind`] by *dispatch shape*, not by semantics: two
/// kinds share a lane exactly when the timing model executes them through
/// the same sequence of resource reservations and hierarchy accesses, so a
/// homogeneous run can be drained with every shape branch resolved once,
/// up front.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Fixed-latency compute (integer/FP ALU work, metadata select,
    /// bounds comparison, no-op): reserve one FU, complete after the
    /// kind's static latency. No memory access.
    Alu,
    /// Branch resolution: fixed-latency compute that additionally records
    /// the completion time the frontend redirects against.
    Branch,
    /// Program-data and shadow-space reads: address generation plus a
    /// load-port reservation and a read access into the hierarchy.
    Load,
    /// Program-data and shadow-space writes: store-port reservation plus
    /// a write access into the hierarchy.
    Store,
    /// Metadata *checks* — lock-location reads (`check`, fused
    /// check+bounds, identifier-management loads): routed to the
    /// lock-location port when the dedicated lock cache is present.
    MetaCheck,
    /// Metadata *updates* — lock-location writes during identifier
    /// allocation/deallocation.
    MetaUpdate,
}

impl Lane {
    /// Number of lanes (one per enum variant).
    pub const COUNT: usize = 6;

    /// Every lane, in discriminant order (`lane as usize` indexes this).
    pub const ALL: [Lane; Lane::COUNT] = [
        Lane::Alu,
        Lane::Branch,
        Lane::Load,
        Lane::Store,
        Lane::MetaCheck,
        Lane::MetaUpdate,
    ];

    /// Stable lowercase label used in metric names and diagnostics.
    pub const fn label(self) -> &'static str {
        match self {
            Lane::Alu => "alu",
            Lane::Branch => "branch",
            Lane::Load => "load",
            Lane::Store => "store",
            Lane::MetaCheck => "meta_check",
            Lane::MetaUpdate => "meta_update",
        }
    }
}

/// Static dispatch descriptor of one [`UopKind`]: its streaming [`Lane`]
/// plus the memory-shape bits the timing model and the hierarchy route on.
///
/// The bits are definitionally redundant with the `UopKind::is_*`
/// classifier functions — that is the point: the hot loop reads one dense
/// table entry (`KIND_DESCS[kind as usize]`) instead of re-deriving the
/// same facts through a chain of `matches!` tests, and an exhaustive test
/// pins the table to the classifiers for every kind.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KindDesc {
    /// Streaming lane (dispatch shape) of the kind.
    pub lane: Lane,
    /// Accesses memory (needs a resolved address and a cache port).
    pub mem: bool,
    /// Writes memory (store-shaped dispatch; reads are load-shaped).
    pub mem_write: bool,
    /// Accesses a lock location (routes to the lock-location cache).
    pub lock_access: bool,
    /// Accesses the shadow metadata space.
    pub shadow_access: bool,
}

/// Builds the descriptor of one µop kind. `const` so the dense table is
/// computed at compile time, and total over [`UopKind`] so adding a
/// variant without classifying it is a compile error.
pub const fn kind_desc(kind: UopKind) -> KindDesc {
    let lane = match kind {
        UopKind::IntAlu
        | UopKind::IntMul
        | UopKind::IntDiv
        | UopKind::FpAlu
        | UopKind::FpMul
        | UopKind::FpDiv
        | UopKind::BoundsCheck
        | UopKind::SelectMeta
        | UopKind::Nop => Lane::Alu,
        UopKind::Branch => Lane::Branch,
        UopKind::Load | UopKind::ShadowLoad => Lane::Load,
        UopKind::Store | UopKind::ShadowStore => Lane::Store,
        UopKind::Check | UopKind::CheckCombined | UopKind::LockLoad => Lane::MetaCheck,
        UopKind::LockStore => Lane::MetaUpdate,
    };
    KindDesc {
        lane,
        mem: kind.is_mem(),
        mem_write: kind.is_mem_write(),
        lock_access: kind.is_lock_access(),
        shadow_access: kind.is_shadow_access(),
    }
}

/// Dense dispatch-descriptor table, indexed by `kind as usize` (the
/// ordering guaranteed by [`UopKind::ALL`]). Generated from
/// [`kind_desc`] at compile time next to the µop assembly code it
/// describes, so the cracker and the timing model agree by construction.
pub const KIND_DESCS: [KindDesc; UopKind::COUNT] = {
    let mut table = [kind_desc(UopKind::Nop); UopKind::COUNT];
    let mut i = 0;
    while i < UopKind::COUNT {
        table[i] = kind_desc(UopKind::ALL[i]);
        i += 1;
    }
    table
};

/// Cracks one macro-instruction.
///
/// `ptr_op` says whether the active pointer-identification policy classified
/// this (load/store) instruction as a pointer operation; it is ignored for
/// non-memory instructions.
pub fn crack(inst: &Inst, ptr_op: bool, cfg: &CrackConfig) -> Cracked {
    let mut u = UopVec::new();
    let mut meta = MetaEffect::None;
    let mut ctrl = CtrlKind::None;
    let wd = cfg.watchdog;

    // Emits the check µop(s) guarding a memory access on `base`.
    let push_check = |u: &mut UopVec, base: Gpr| match cfg.bounds {
        None => {
            u.push_uop(Uop::new(
                UopKind::Check,
                None,
                Some(LReg::M(base)),
                None,
                UopTag::Check,
            ));
        }
        Some(BoundsUops::Fused) => {
            u.push_uop(Uop::new(
                UopKind::CheckCombined,
                None,
                Some(LReg::M(base)),
                Some(LReg::G(base)),
                UopTag::Check,
            ));
        }
        Some(BoundsUops::Split) => {
            u.push_uop(Uop::new(
                UopKind::Check,
                None,
                Some(LReg::M(base)),
                None,
                UopTag::Check,
            ));
            u.push_uop(Uop::new(
                UopKind::BoundsCheck,
                None,
                Some(LReg::M(base)),
                Some(LReg::G(base)),
                UopTag::Check,
            ));
        }
    };

    match *inst {
        Inst::Nop | Inst::Halt => {
            u.push_uop(Uop::base(UopKind::Nop, None, None, None));
        }
        Inst::MovImm { dst, .. } => {
            u.push_uop(Uop::base(UopKind::IntAlu, Some(LReg::G(dst)), None, None));
            meta = MetaEffect::Invalidate(dst);
        }
        Inst::Mov { dst, src } => {
            u.push_uop(Uop::base(
                UopKind::IntAlu,
                Some(LReg::G(dst)),
                Some(LReg::G(src)),
                None,
            ));
            meta = MetaEffect::Copy { dst, src };
        }
        Inst::Alu { op, dst, a, b } => {
            let kind = if op == crate::insn::AluOp::Mul {
                UopKind::IntMul
            } else if op.is_long_latency() {
                UopKind::IntDiv
            } else {
                UopKind::IntAlu
            };
            u.push_uop(Uop::base(
                kind,
                Some(LReg::G(dst)),
                Some(LReg::G(a)),
                Some(LReg::G(b)),
            ));
            if op.is_long_latency() {
                // Divide/multiply results are never valid pointers (§6.2).
                meta = MetaEffect::Invalidate(dst);
            } else if wd {
                // Either source may be the pointer: inject a select µop.
                u.push_uop(Uop::new(
                    UopKind::SelectMeta,
                    Some(LReg::M(dst)),
                    Some(LReg::M(a)),
                    Some(LReg::M(b)),
                    UopTag::Propagate,
                ));
            }
        }
        Inst::AluImm { op, dst, a, .. } => {
            let kind = if op == crate::insn::AluOp::Mul {
                UopKind::IntMul
            } else if op.is_long_latency() {
                UopKind::IntDiv
            } else {
                UopKind::IntAlu
            };
            u.push_uop(Uop::base(kind, Some(LReg::G(dst)), Some(LReg::G(a)), None));
            meta = if op.is_long_latency() {
                MetaEffect::Invalidate(dst)
            } else {
                // "Add immediate" unambiguously copies the metadata
                // (Fig. 2c) — eliminated at rename.
                MetaEffect::Copy { dst, src: a }
            };
        }
        Inst::Lea { dst, addr } => {
            u.push_uop(Uop::base(
                UopKind::IntAlu,
                Some(LReg::G(dst)),
                Some(LReg::G(addr.base)),
                None,
            ));
            meta = MetaEffect::Copy {
                dst,
                src: addr.base,
            };
        }
        Inst::LeaGlobal { dst, .. } => {
            u.push_uop(Uop::base(UopKind::IntAlu, Some(LReg::G(dst)), None, None));
            meta = MetaEffect::Global(dst);
        }
        Inst::Load { dst, addr, .. } => {
            if wd {
                push_check(&mut u, addr.base);
            }
            u.push_uop(Uop::base(
                UopKind::Load,
                Some(LReg::G(dst)),
                Some(LReg::G(addr.base)),
                None,
            ));
            if wd && ptr_op {
                u.push_uop(Uop::new(
                    UopKind::ShadowLoad,
                    Some(LReg::M(dst)),
                    Some(LReg::G(addr.base)),
                    None,
                    UopTag::PtrLoad,
                ));
            } else if wd {
                meta = MetaEffect::Invalidate(dst);
            }
        }
        Inst::Store { src, addr, .. } => {
            if wd {
                push_check(&mut u, addr.base);
            }
            u.push_uop(Uop::base(
                UopKind::Store,
                None,
                Some(LReg::G(src)),
                Some(LReg::G(addr.base)),
            ));
            if wd && ptr_op {
                u.push_uop(Uop::new(
                    UopKind::ShadowStore,
                    None,
                    Some(LReg::M(src)),
                    Some(LReg::G(addr.base)),
                    UopTag::PtrStore,
                ));
            }
        }
        Inst::LoadFp { dst, addr, .. } => {
            if wd {
                push_check(&mut u, addr.base);
            }
            u.push_uop(Uop::base(
                UopKind::Load,
                Some(LReg::F(dst)),
                Some(LReg::G(addr.base)),
                None,
            ));
        }
        Inst::StoreFp { src, addr, .. } => {
            if wd {
                push_check(&mut u, addr.base);
            }
            u.push_uop(Uop::base(
                UopKind::Store,
                None,
                Some(LReg::F(src)),
                Some(LReg::G(addr.base)),
            ));
        }
        Inst::FpAlu { op, dst, a, b } => {
            let kind = match op {
                crate::insn::FpOp::Mul => UopKind::FpMul,
                crate::insn::FpOp::Div => UopKind::FpDiv,
                _ => UopKind::FpAlu,
            };
            u.push_uop(Uop::base(
                kind,
                Some(LReg::F(dst)),
                Some(LReg::F(a)),
                Some(LReg::F(b)),
            ));
        }
        Inst::FpMovImm { dst, .. } => {
            u.push_uop(Uop::base(UopKind::FpAlu, Some(LReg::F(dst)), None, None));
        }
        Inst::FpMov { dst, src } => {
            u.push_uop(Uop::base(
                UopKind::FpAlu,
                Some(LReg::F(dst)),
                Some(LReg::F(src)),
                None,
            ));
        }
        Inst::IntToFp { dst, src } => {
            u.push_uop(Uop::base(
                UopKind::FpAlu,
                Some(LReg::F(dst)),
                Some(LReg::G(src)),
                None,
            ));
        }
        Inst::FpToInt { dst, src } => {
            u.push_uop(Uop::base(
                UopKind::FpAlu,
                Some(LReg::G(dst)),
                Some(LReg::F(src)),
                None,
            ));
            meta = MetaEffect::Invalidate(dst);
        }
        Inst::Branch { a, b, .. } => {
            u.push_uop(Uop::base(
                UopKind::Branch,
                None,
                Some(LReg::G(a)),
                Some(LReg::G(b)),
            ));
            ctrl = CtrlKind::CondBranch;
        }
        Inst::Jump { .. } => {
            u.push_uop(Uop::base(UopKind::Branch, None, None, None));
            ctrl = CtrlKind::Jump;
        }
        Inst::Call { .. } => {
            ctrl = CtrlKind::Call;
            let rsp = Gpr::RSP;
            // rsp -= 8 ; mem[rsp] = return address
            u.push_uop(Uop::base(
                UopKind::IntAlu,
                Some(LReg::G(rsp)),
                Some(LReg::G(rsp)),
                None,
            ));
            u.push_uop(Uop::base(UopKind::Store, None, None, Some(LReg::G(rsp))));
            if wd {
                // Fig. 3c: stack_key += 1 ; stack_lock += 8 ;
                // mem[stack_lock] = stack_key ; rsp.id = (key, lock).
                u.push_uop(Uop::new(
                    UopKind::IntAlu,
                    Some(LReg::StackKey),
                    Some(LReg::StackKey),
                    None,
                    UopTag::AllocDealloc,
                ));
                u.push_uop(Uop::new(
                    UopKind::IntAlu,
                    Some(LReg::StackLock),
                    Some(LReg::StackLock),
                    None,
                    UopTag::AllocDealloc,
                ));
                u.push_uop(Uop::new(
                    UopKind::LockStore,
                    None,
                    Some(LReg::StackKey),
                    Some(LReg::StackLock),
                    UopTag::AllocDealloc,
                ));
                u.push_uop(Uop::new(
                    UopKind::IntAlu,
                    Some(LReg::M(rsp)),
                    Some(LReg::StackKey),
                    Some(LReg::StackLock),
                    UopTag::AllocDealloc,
                ));
            }
            u.push_uop(Uop::base(UopKind::Branch, None, None, None));
        }
        Inst::Ret => {
            ctrl = CtrlKind::Ret;
            let rsp = Gpr::RSP;
            // t0 = mem[rsp] ; rsp += 8
            u.push_uop(Uop::base(
                UopKind::Load,
                Some(LReg::T(0)),
                Some(LReg::G(rsp)),
                None,
            ));
            u.push_uop(Uop::base(
                UopKind::IntAlu,
                Some(LReg::G(rsp)),
                Some(LReg::G(rsp)),
                None,
            ));
            if wd {
                // Fig. 3d: mem[stack_lock] = INVALID ; stack_lock -= 8 ;
                // current_key = mem[stack_lock] ; rsp.id = (key, lock).
                u.push_uop(Uop::new(
                    UopKind::LockStore,
                    None,
                    None,
                    Some(LReg::StackLock),
                    UopTag::AllocDealloc,
                ));
                u.push_uop(Uop::new(
                    UopKind::IntAlu,
                    Some(LReg::StackLock),
                    Some(LReg::StackLock),
                    None,
                    UopTag::AllocDealloc,
                ));
                u.push_uop(Uop::new(
                    UopKind::LockLoad,
                    Some(LReg::StackKey),
                    Some(LReg::StackLock),
                    None,
                    UopTag::AllocDealloc,
                ));
                u.push_uop(Uop::new(
                    UopKind::IntAlu,
                    Some(LReg::M(rsp)),
                    Some(LReg::StackKey),
                    Some(LReg::StackLock),
                    UopTag::AllocDealloc,
                ));
            }
            u.push_uop(Uop::base(UopKind::Branch, None, Some(LReg::T(0)), None));
        }
        Inst::SetIdent { ptr, key, lock } => {
            // In baseline mode the instruction still decodes (one plain
            // ALU µop) but performs no metadata work.
            let tag = if wd {
                UopTag::AllocDealloc
            } else {
                UopTag::Base
            };
            u.push_uop(Uop::new(
                UopKind::IntAlu,
                Some(LReg::M(ptr)),
                Some(LReg::G(key)),
                Some(LReg::G(lock)),
                tag,
            ));
        }
        Inst::GetIdent { ptr, key, lock } => {
            let tag = if wd {
                UopTag::AllocDealloc
            } else {
                UopTag::Base
            };
            u.push_uop(Uop::new(
                UopKind::IntAlu,
                Some(LReg::G(key)),
                Some(LReg::M(ptr)),
                None,
                tag,
            ));
            u.push_uop(Uop::new(
                UopKind::IntAlu,
                Some(LReg::G(lock)),
                Some(LReg::M(ptr)),
                None,
                tag,
            ));
        }
        Inst::SetBounds { ptr, base, bound } => {
            let tag = if wd {
                UopTag::AllocDealloc
            } else {
                UopTag::Base
            };
            u.push_uop(Uop::new(
                UopKind::IntAlu,
                Some(LReg::M(ptr)),
                Some(LReg::G(base)),
                Some(LReg::G(bound)),
                tag,
            ));
        }
        Inst::Malloc { dst, size } => {
            crack_malloc(&mut u, dst, size, cfg);
        }
        Inst::Free { ptr } => {
            crack_free(&mut u, ptr, cfg);
        }
        Inst::NewIdent { key, lock } => {
            // Custom-allocator runtime call (§7): key generation, lock pop,
            // lock write — the identifier half of Fig. 3a.
            u.push_uop(Uop::base(UopKind::IntAlu, Some(LReg::G(key)), None, None));
            u.push_uop(Uop::base(UopKind::IntAlu, Some(LReg::G(lock)), None, None));
            if wd {
                u.push_uop(Uop::new(
                    UopKind::LockLoad,
                    Some(LReg::T(0)),
                    None,
                    None,
                    UopTag::AllocDealloc,
                ));
                u.push_uop(Uop::new(
                    UopKind::LockStore,
                    None,
                    Some(LReg::G(key)),
                    Some(LReg::G(lock)),
                    UopTag::AllocDealloc,
                ));
            }
        }
        Inst::KillIdent { key, lock } => {
            u.push_uop(Uop::base(
                UopKind::IntAlu,
                Some(LReg::T(0)),
                Some(LReg::G(key)),
                None,
            ));
            if wd {
                // Validate, invalidate, recycle — the deallocation half of
                // Fig. 3b for a custom allocator.
                u.push_uop(Uop::new(
                    UopKind::LockLoad,
                    Some(LReg::T(1)),
                    Some(LReg::G(lock)),
                    None,
                    UopTag::AllocDealloc,
                ));
                u.push_uop(Uop::new(
                    UopKind::LockStore,
                    None,
                    None,
                    Some(LReg::G(lock)),
                    UopTag::AllocDealloc,
                ));
                u.push_uop(Uop::new(
                    UopKind::LockStore,
                    None,
                    Some(LReg::G(lock)),
                    None,
                    UopTag::AllocDealloc,
                ));
            }
        }
    }

    if !wd {
        meta = MetaEffect::None;
    }
    Cracked {
        uops: u,
        meta,
        ctrl,
    }
}

/// Representative µop expansion of the allocator fast path (segregated
/// free-list pop + header write), plus the Watchdog identifier work of
/// Fig. 3a: key generation, lock-location pop, lock write and `setident`.
fn crack_malloc(u: &mut UopVec, dst: Gpr, size: Gpr, cfg: &CrackConfig) {
    let (t0, t1, t2, t3) = (LReg::T(0), LReg::T(1), LReg::T(2), LReg::T(3));
    // size class computation
    u.push_uop(Uop::base(
        UopKind::IntAlu,
        Some(t0),
        Some(LReg::G(size)),
        None,
    ));
    u.push_uop(Uop::base(UopKind::IntAlu, Some(t0), Some(t0), None));
    // bin head load
    u.push_uop(Uop::base(UopKind::Load, Some(t1), Some(t0), None));
    u.push_uop(Uop::base(UopKind::IntAlu, Some(t1), Some(t1), None));
    // chunk->next load, bin head update
    u.push_uop(Uop::base(UopKind::Load, Some(t2), Some(t1), None));
    u.push_uop(Uop::base(UopKind::Store, None, Some(t2), Some(t0)));
    // header write + result
    u.push_uop(Uop::base(
        UopKind::Store,
        None,
        Some(LReg::G(size)),
        Some(t1),
    ));
    u.push_uop(Uop::base(
        UopKind::IntAlu,
        Some(LReg::G(dst)),
        Some(t1),
        None,
    ));
    u.push_uop(Uop::base(UopKind::IntAlu, Some(t2), Some(t2), None));
    u.push_uop(Uop::base(UopKind::IntAlu, Some(t3), Some(t3), None));
    if cfg.watchdog {
        // key = unique_identifier++ ; lock = pop free lock location ;
        // *lock = key ; setident(p, (key, lock)).
        u.push_uop(Uop::new(
            UopKind::IntAlu,
            Some(t3),
            Some(t3),
            None,
            UopTag::AllocDealloc,
        ));
        u.push_uop(Uop::new(
            UopKind::LockLoad,
            Some(t2),
            None,
            None,
            UopTag::AllocDealloc,
        ));
        u.push_uop(Uop::new(
            UopKind::LockStore,
            None,
            Some(t3),
            Some(t2),
            UopTag::AllocDealloc,
        ));
        u.push_uop(Uop::new(
            UopKind::IntAlu,
            Some(LReg::M(dst)),
            Some(t3),
            Some(t2),
            UopTag::AllocDealloc,
        ));
        if cfg.bounds.is_some() {
            // setbounds(p, p, p + size)
            u.push_uop(Uop::new(
                UopKind::IntAlu,
                Some(LReg::M(dst)),
                Some(LReg::G(dst)),
                Some(LReg::G(size)),
                UopTag::AllocDealloc,
            ));
        }
    }
}

/// Representative µop expansion of `free` (header read + free-list push),
/// plus the Watchdog work of Fig. 3b: `getident`, validity check (catching
/// double frees), lock invalidation and lock-location recycling.
fn crack_free(u: &mut UopVec, ptr: Gpr, cfg: &CrackConfig) {
    let (t0, t1, t2) = (LReg::T(0), LReg::T(1), LReg::T(2));
    u.push_uop(Uop::base(
        UopKind::IntAlu,
        Some(t0),
        Some(LReg::G(ptr)),
        None,
    ));
    u.push_uop(Uop::base(UopKind::Load, Some(t1), Some(t0), None));
    u.push_uop(Uop::base(UopKind::IntAlu, Some(t1), Some(t1), None));
    u.push_uop(Uop::base(UopKind::Load, Some(t2), Some(t1), None));
    u.push_uop(Uop::base(
        UopKind::Store,
        None,
        Some(t2),
        Some(LReg::G(ptr)),
    ));
    u.push_uop(Uop::base(
        UopKind::Store,
        None,
        Some(LReg::G(ptr)),
        Some(t1),
    ));
    if cfg.watchdog {
        // id = getident(p) ; check id valid ; *(id.lock) = INVALID ;
        // push lock location on the free list.
        u.push_uop(Uop::new(
            UopKind::IntAlu,
            Some(t2),
            Some(LReg::M(ptr)),
            None,
            UopTag::AllocDealloc,
        ));
        u.push_uop(Uop::new(
            UopKind::Check,
            None,
            Some(LReg::M(ptr)),
            None,
            UopTag::AllocDealloc,
        ));
        u.push_uop(Uop::new(
            UopKind::LockStore,
            None,
            None,
            Some(t2),
            UopTag::AllocDealloc,
        ));
        u.push_uop(Uop::new(
            UopKind::LockStore,
            None,
            Some(t2),
            None,
            UopTag::AllocDealloc,
        ));
    }
}

/// Convenience: number of memory µops (those needing a resolved address) in
/// a cracked expansion.
pub fn mem_uop_count(uops: &UopVec) -> usize {
    uops.iter().filter(|u| u.uop.kind.is_mem()).count()
}

/// Convenience: collect the kinds of an expansion (test helper).
pub fn kinds(uops: &UopVec) -> Vec<UopKind> {
    uops.iter().map(|u| u.uop.kind).collect()
}

#[allow(unused)]
fn _assert_exec_is_small(u: UopExec) -> UopExec {
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, Cond, FpOp, FpWidth, MemAddr, PtrHint, Width};

    fn g(n: u8) -> Gpr {
        Gpr::new(n)
    }

    fn load8(hint: PtrHint) -> Inst {
        Inst::Load {
            dst: g(0),
            addr: MemAddr::base(g(1)),
            width: Width::B8,
            hint,
        }
    }

    #[test]
    fn kind_desc_table_agrees_with_the_classifiers_for_every_kind() {
        // Exhaustive over the whole vocabulary, not sampled: the dense
        // table must agree with the `is_*` reference classifiers and with
        // its own generator for every kind, and `kind as usize` must
        // index the kind's own entry.
        for (i, &k) in UopKind::ALL.iter().enumerate() {
            let d = KIND_DESCS[k as usize];
            assert_eq!(k as usize, i);
            assert_eq!(d, kind_desc(k), "{k:?}: table diverges from generator");
            assert_eq!(d.mem, k.is_mem(), "{k:?}: mem bit");
            assert_eq!(d.mem_write, k.is_mem_write(), "{k:?}: mem_write bit");
            assert_eq!(d.lock_access, k.is_lock_access(), "{k:?}: lock bit");
            assert_eq!(d.shadow_access, k.is_shadow_access(), "{k:?}: shadow bit");
        }
    }

    #[test]
    fn lanes_partition_kinds_by_dispatch_shape() {
        for &k in &UopKind::ALL {
            let d = KIND_DESCS[k as usize];
            assert!((d.lane as usize) < Lane::COUNT);
            assert_eq!(Lane::ALL[d.lane as usize], d.lane);
            match d.lane {
                // Compute lanes never touch memory; the branch lane is
                // exactly the branch kind.
                Lane::Alu => assert!(!d.mem, "{k:?}: ALU lane with memory"),
                Lane::Branch => assert_eq!(k, UopKind::Branch),
                // Memory lanes: reads on Load/MetaCheck, writes on
                // Store/MetaUpdate; lock traffic only on the meta lanes.
                Lane::Load => assert!(d.mem && !d.mem_write && !d.lock_access),
                Lane::Store => assert!(d.mem && d.mem_write && !d.lock_access),
                Lane::MetaCheck => assert!(d.mem && !d.mem_write && d.lock_access),
                Lane::MetaUpdate => assert!(d.mem && d.mem_write && d.lock_access),
            }
        }
        // Every lane label is distinct (they name metrics).
        for (i, a) in Lane::ALL.iter().enumerate() {
            for b in &Lane::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn fig2a_pointer_load() {
        let c = crack(&load8(PtrHint::Auto), true, &CrackConfig::watchdog());
        assert_eq!(
            kinds(&c.uops),
            vec![UopKind::Check, UopKind::Load, UopKind::ShadowLoad]
        );
        assert_eq!(c.meta, MetaEffect::None);
        // The check consumes the *metadata* of the base register.
        assert_eq!(c.uops.as_slice()[0].uop.src1, Some(LReg::M(g(1))));
        // The shadow load writes the destination's metadata sidecar.
        assert_eq!(c.uops.as_slice()[2].uop.dst, Some(LReg::M(g(0))));
    }

    #[test]
    fn non_pointer_load_invalidates_metadata() {
        let c = crack(&load8(PtrHint::Auto), false, &CrackConfig::watchdog());
        assert_eq!(kinds(&c.uops), vec![UopKind::Check, UopKind::Load]);
        assert_eq!(c.meta, MetaEffect::Invalidate(g(0)));
    }

    #[test]
    fn baseline_load_has_no_injection() {
        let c = crack(&load8(PtrHint::Auto), true, &CrackConfig::baseline());
        assert_eq!(kinds(&c.uops), vec![UopKind::Load]);
        assert_eq!(c.meta, MetaEffect::None);
    }

    #[test]
    fn fig2b_pointer_store() {
        let st = Inst::Store {
            src: g(2),
            addr: MemAddr::base(g(1)),
            width: Width::B8,
            hint: PtrHint::Auto,
        };
        let c = crack(&st, true, &CrackConfig::watchdog());
        assert_eq!(
            kinds(&c.uops),
            vec![UopKind::Check, UopKind::Store, UopKind::ShadowStore]
        );
        // The shadow store reads the *source's* metadata.
        assert_eq!(c.uops.as_slice()[2].uop.src1, Some(LReg::M(g(2))));
    }

    #[test]
    fn fig2c_add_immediate_copies_metadata_without_uop() {
        let c = crack(
            &Inst::AluImm {
                op: AluOp::Add,
                dst: g(3),
                a: g(1),
                imm: 8,
            },
            false,
            &CrackConfig::watchdog(),
        );
        assert_eq!(kinds(&c.uops), vec![UopKind::IntAlu]);
        assert_eq!(
            c.meta,
            MetaEffect::Copy {
                dst: g(3),
                src: g(1)
            }
        );
    }

    #[test]
    fn fig2d_two_source_add_selects_metadata() {
        let c = crack(
            &Inst::Alu {
                op: AluOp::Add,
                dst: g(3),
                a: g(1),
                b: g(2),
            },
            false,
            &CrackConfig::watchdog(),
        );
        assert_eq!(kinds(&c.uops), vec![UopKind::IntAlu, UopKind::SelectMeta]);
        let sel = c.uops.as_slice()[1].uop;
        assert_eq!(sel.dst, Some(LReg::M(g(3))));
        assert_eq!(sel.src1, Some(LReg::M(g(1))));
        assert_eq!(sel.src2, Some(LReg::M(g(2))));
        assert_eq!(sel.tag, UopTag::Propagate);
    }

    #[test]
    fn divide_never_produces_a_pointer() {
        let c = crack(
            &Inst::Alu {
                op: AluOp::Div,
                dst: g(3),
                a: g(1),
                b: g(2),
            },
            false,
            &CrackConfig::watchdog(),
        );
        assert_eq!(kinds(&c.uops), vec![UopKind::IntDiv]);
        assert_eq!(c.meta, MetaEffect::Invalidate(g(3)));
    }

    #[test]
    fn fig3c_call_injects_four_ident_uops() {
        let mut b = crate::program::ProgramBuilder::new("x");
        let l = b.label();
        b.bind(l);
        b.nop();
        let call = Inst::Call { target: l };
        let base = crack(&call, false, &CrackConfig::baseline());
        let wd = crack(&call, false, &CrackConfig::watchdog());
        assert_eq!(
            wd.uops.len() - base.uops.len(),
            4,
            "Fig. 3c: 4 injected µops"
        );
        assert_eq!(wd.ctrl, CtrlKind::Call);
        let ks = kinds(&wd.uops);
        assert!(ks.contains(&UopKind::LockStore));
        assert_eq!(*ks.last().unwrap(), UopKind::Branch);
        let injected: Vec<_> = wd
            .uops
            .iter()
            .filter(|u| u.uop.tag == UopTag::AllocDealloc)
            .collect();
        assert_eq!(injected.len(), 4);
    }

    #[test]
    fn fig3d_ret_injects_four_ident_uops() {
        let base = crack(&Inst::Ret, false, &CrackConfig::baseline());
        let wd = crack(&Inst::Ret, false, &CrackConfig::watchdog());
        assert_eq!(
            wd.uops.len() - base.uops.len(),
            4,
            "Fig. 3d: 4 injected µops"
        );
        assert_eq!(wd.ctrl, CtrlKind::Ret);
        let ks = kinds(&wd.uops);
        assert!(
            ks.contains(&UopKind::LockLoad),
            "reads the previous frame's key"
        );
        assert!(
            ks.contains(&UopKind::LockStore),
            "invalidates the popped frame"
        );
    }

    #[test]
    fn bounds_fused_replaces_check() {
        let c = crack(
            &load8(PtrHint::Auto),
            true,
            &CrackConfig::with_bounds(BoundsUops::Fused),
        );
        assert_eq!(
            kinds(&c.uops),
            vec![UopKind::CheckCombined, UopKind::Load, UopKind::ShadowLoad]
        );
    }

    #[test]
    fn bounds_split_adds_a_uop() {
        let c = crack(
            &load8(PtrHint::Auto),
            true,
            &CrackConfig::with_bounds(BoundsUops::Split),
        );
        assert_eq!(
            kinds(&c.uops),
            vec![
                UopKind::Check,
                UopKind::BoundsCheck,
                UopKind::Load,
                UopKind::ShadowLoad
            ]
        );
        // The bounds check performs no memory access.
        assert!(!UopKind::BoundsCheck.is_mem());
    }

    #[test]
    fn malloc_watchdog_adds_ident_work() {
        let m = Inst::Malloc {
            dst: g(0),
            size: g(1),
        };
        let base = crack(&m, false, &CrackConfig::baseline());
        let wd = crack(&m, false, &CrackConfig::watchdog());
        let bounds = crack(&m, false, &CrackConfig::with_bounds(BoundsUops::Split));
        assert_eq!(wd.uops.len() - base.uops.len(), 4);
        assert_eq!(
            bounds.uops.len() - wd.uops.len(),
            1,
            "setbounds is one more µop"
        );
        assert!(
            kinds(&wd.uops).contains(&UopKind::LockStore),
            "key written to lock location"
        );
        assert!(
            kinds(&wd.uops).contains(&UopKind::LockLoad),
            "lock popped from free list"
        );
    }

    #[test]
    fn free_watchdog_checks_and_invalidates() {
        let f = Inst::Free { ptr: g(0) };
        let base = crack(&f, false, &CrackConfig::baseline());
        let wd = crack(&f, false, &CrackConfig::watchdog());
        assert_eq!(wd.uops.len() - base.uops.len(), 4);
        let ks = kinds(&wd.uops);
        assert!(
            ks.contains(&UopKind::Check),
            "free validates the identifier (double-free)"
        );
        assert_eq!(ks.iter().filter(|k| **k == UopKind::LockStore).count(), 2);
    }

    #[test]
    fn fp_ops_have_no_metadata_effect() {
        let c = crack(
            &Inst::FpAlu {
                op: FpOp::Mul,
                dst: crate::reg::Fpr::new(0),
                a: crate::reg::Fpr::new(1),
                b: crate::reg::Fpr::new(2),
            },
            false,
            &CrackConfig::watchdog(),
        );
        assert_eq!(kinds(&c.uops), vec![UopKind::FpMul]);
        assert_eq!(c.meta, MetaEffect::None);
    }

    #[test]
    fn fp_load_checks_but_never_propagates() {
        let ld = Inst::LoadFp {
            dst: crate::reg::Fpr::new(0),
            addr: MemAddr::base(g(1)),
            width: FpWidth::F8,
        };
        let c = crack(&ld, true, &CrackConfig::watchdog());
        assert_eq!(kinds(&c.uops), vec![UopKind::Check, UopKind::Load]);
    }

    #[test]
    fn branch_ctrl_kinds() {
        let mut b = crate::program::ProgramBuilder::new("x");
        let l = b.label();
        b.bind(l);
        b.nop();
        let br = Inst::Branch {
            cond: Cond::Eq,
            a: g(0),
            b: g(1),
            target: l,
        };
        assert_eq!(
            crack(&br, false, &CrackConfig::watchdog()).ctrl,
            CtrlKind::CondBranch
        );
        assert_eq!(
            crack(&Inst::Jump { target: l }, false, &CrackConfig::watchdog()).ctrl,
            CtrlKind::Jump
        );
    }

    #[test]
    fn fill_mem_addrs_assigns_in_order() {
        let mut c = crack(&load8(PtrHint::Auto), true, &CrackConfig::watchdog());
        assert_eq!(mem_uop_count(&c.uops), 3);
        fill_mem_addrs(&mut c.uops, &[0x100, 0x200, 0x300]);
        let addrs: Vec<_> = c.uops.iter().map(|u| u.addr).collect();
        assert_eq!(addrs, vec![Some(0x100), Some(0x200), Some(0x300)]);
    }

    #[test]
    #[should_panic(expected = "fewer addresses")]
    fn fill_mem_addrs_underflow_panics() {
        let mut c = crack(&load8(PtrHint::Auto), true, &CrackConfig::watchdog());
        fill_mem_addrs(&mut c.uops, &[0x100]);
    }

    #[test]
    fn setident_writes_sidecar() {
        let c = crack(
            &Inst::SetIdent {
                ptr: g(0),
                key: g(1),
                lock: g(2),
            },
            false,
            &CrackConfig::watchdog(),
        );
        assert_eq!(c.uops.as_slice()[0].uop.dst, Some(LReg::M(g(0))));
        assert_eq!(c.uops.as_slice()[0].uop.tag, UopTag::AllocDealloc);
    }

    #[test]
    fn newident_killident_custom_allocator_uops() {
        let ni = Inst::NewIdent {
            key: g(1),
            lock: g(2),
        };
        let base = crack(&ni, false, &CrackConfig::baseline());
        let wd = crack(&ni, false, &CrackConfig::watchdog());
        assert_eq!(wd.uops.len() - base.uops.len(), 2, "lock pop + key write");
        assert!(kinds(&wd.uops).contains(&UopKind::LockStore));
        let ki = Inst::KillIdent {
            key: g(1),
            lock: g(2),
        };
        let base = crack(&ki, false, &CrackConfig::baseline());
        let wd = crack(&ki, false, &CrackConfig::watchdog());
        assert_eq!(
            wd.uops.len() - base.uops.len(),
            3,
            "validate + invalidate + recycle"
        );
        assert_eq!(
            kinds(&wd.uops)
                .iter()
                .filter(|k| **k == UopKind::LockStore)
                .count(),
            2
        );
    }

    #[test]
    fn uop_overhead_matches_paper_structure() {
        // A pointer load under Watchdog: 3 µops vs 1 baseline → the overhead
        // is one check and one pointer-load metadata access.
        let c = crack(&load8(PtrHint::Auto), true, &CrackConfig::watchdog());
        let overhead: Vec<_> = c
            .uops
            .iter()
            .filter(|u| u.uop.tag.is_overhead())
            .map(|u| u.uop.tag)
            .collect();
        assert_eq!(overhead, vec![UopTag::Check, UopTag::PtrLoad]);
        assert_eq!(baseline_uop_count(&load8(PtrHint::Auto)), 1);
    }
}

//! Guest virtual-address-space layout, including the disjoint shadow space.
//!
//! The paper places the shadow space "in a dedicated region of the virtual
//! address space that mirrors the normal data space", reached by "simple bit
//! selection and concatenation" (§3.3). We reproduce that: the data space
//! occupies the low 31 bits, the shadow space sits at
//! [`SHADOW_BASE`], and [`shadow_addr`] maps a word address to its metadata
//! record with a shift and an add.
//!
//! Layout (all addresses are 48-bit canonical):
//!
//! ```text
//! 0x0000_0040_0000  CODE_BASE          program text
//! 0x0000_1000_0000  GLOBAL_BASE        data segment (never deallocated)
//! 0x0000_2000_0000  HEAP_BASE          dlmalloc-style heap
//! 0x0000_5000_0000  HEAP_LOCK_BASE     heap lock locations (LIFO free list)
//! 0x0000_5800_0000  STACK_LOCK_BASE    in-memory stack of frame lock locations
//! 0x0000_6000_0000  STACK_LIMIT        stack guard
//! 0x0000_7000_0000  STACK_TOP          initial %rsp, grows down
//! 0x4000_0000_0000  SHADOW_BASE        per-word pointer metadata
//! ```

/// Base address of program text.
pub const CODE_BASE: u64 = 0x0040_0000;

/// Base of the global data segment. Globals are never deallocated; all
/// pointers into this segment share the single global identifier (§7).
pub const GLOBAL_BASE: u64 = 0x1000_0000;
/// Size of the global data segment.
pub const GLOBAL_SIZE: u64 = 0x1000_0000;

/// Base of the heap managed by the runtime allocator.
pub const HEAP_BASE: u64 = 0x2000_0000;
/// Size of the heap region.
pub const HEAP_SIZE: u64 = 0x3000_0000;

/// Base of the heap lock-location region. The runtime allocates one 8-byte
/// lock location per live heap object from a LIFO free list (§4.1).
pub const HEAP_LOCK_BASE: u64 = 0x5000_0000;
/// Size of the heap lock-location region.
pub const HEAP_LOCK_SIZE: u64 = 0x0800_0000;

/// Base of the in-memory stack of lock locations used for stack-frame
/// identifiers; `stack_lock` points into this region (Fig. 3c/3d).
pub const STACK_LOCK_BASE: u64 = 0x5800_0000;
/// Size of the stack lock-location region.
pub const STACK_LOCK_SIZE: u64 = 0x0400_0000;

/// Lowest legal stack address (stack guard).
pub const STACK_LIMIT: u64 = 0x6000_0000;
/// Initial stack pointer; the stack grows down from here.
pub const STACK_TOP: u64 = 0x7000_0000;

/// Base of the disjoint shadow metadata space.
pub const SHADOW_BASE: u64 = 0x4000_0000_0000;

/// Lock location permanently associated with the single *global* identifier;
/// its contents always equal [`GLOBAL_KEY`], so validity checks on pointers
/// to globals always pass (§7).
pub const GLOBAL_LOCK_ADDR: u64 = 0x4FFF_FFF0;
/// Key of the single global identifier.
pub const GLOBAL_KEY: u64 = 1;

/// Lock location used by the *invalid* metadata value. Its contents are
/// initialized to a poison value that never equals any key, so dereferencing
/// a register with invalid metadata always raises an exception.
pub const INVALID_LOCK_ADDR: u64 = 0x4FFF_FFF8;
/// Poison stored at [`INVALID_LOCK_ADDR`] and written into lock locations on
/// deallocation. Never allocated as a key.
pub const INVALID_SENTINEL: u64 = 0xDEAD_DEAD_DEAD_DEAD;
/// The key value of invalid metadata. Never allocated to an object.
pub const INVALID_KEY: u64 = 0;

/// First key handed out for heap allocations. Key 0 is invalid and key 1 is
/// the global identifier.
pub const FIRST_HEAP_KEY: u64 = 2;

/// Bytes of metadata per 8-byte data word when tracking identifiers only
/// (64-bit key + 64-bit lock, §4.1).
pub const META_BYTES_ID: u64 = 16;
/// Bytes of metadata per 8-byte data word with the bounds extension
/// (key + lock + base + bound, §8).
pub const META_BYTES_BOUNDS: u64 = 32;

/// Maps a (word-aligned) data address to the address of its metadata record
/// in the shadow space.
///
/// With 16-byte records this is `SHADOW_BASE + (addr >> 3) * 16`, i.e. a
/// shift and a concatenation, exactly the cheap translation the paper relies
/// on. The mapping is injective on word addresses for any fixed record size.
///
/// ```
/// use watchdog_isa::layout::{shadow_addr, META_BYTES_ID, SHADOW_BASE};
/// assert_eq!(shadow_addr(0, META_BYTES_ID), SHADOW_BASE);
/// assert_eq!(shadow_addr(8, META_BYTES_ID), SHADOW_BASE + 16);
/// ```
#[inline]
pub const fn shadow_addr(addr: u64, meta_bytes: u64) -> u64 {
    SHADOW_BASE + (addr >> 3) * meta_bytes
}

/// Whether `addr` lies in the shadow metadata region.
#[inline]
pub const fn is_shadow(addr: u64) -> bool {
    addr >= SHADOW_BASE
}

/// Whether `addr` lies in either lock-location region (heap or stack) or is
/// one of the reserved global/invalid lock locations.
#[inline]
pub const fn is_lock_region(addr: u64) -> bool {
    (addr >= HEAP_LOCK_BASE && addr < STACK_LOCK_BASE + STACK_LOCK_SIZE)
        || addr == GLOBAL_LOCK_ADDR
        || addr == INVALID_LOCK_ADDR
}

/// 4KB page index of an address.
#[inline]
pub const fn page_of(addr: u64) -> u64 {
    addr >> 12
}

/// 8-byte word index of an address.
#[inline]
pub const fn word_of(addr: u64) -> u64 {
    addr >> 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // (base, end) pairs in ascending order.
        let regions = [
            (CODE_BASE, CODE_BASE + 0x40_0000),
            (GLOBAL_BASE, GLOBAL_BASE + GLOBAL_SIZE),
            (HEAP_BASE, HEAP_BASE + HEAP_SIZE),
            (HEAP_LOCK_BASE, HEAP_LOCK_BASE + HEAP_LOCK_SIZE),
            (STACK_LOCK_BASE, STACK_LOCK_BASE + STACK_LOCK_SIZE),
            (STACK_LIMIT, STACK_TOP),
        ];
        for w in regions.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "regions overlap: {:x?} vs {:x?}",
                w[0],
                w[1]
            );
        }
        // Shadow sits above everything (checked at compile time).
        const { assert!(SHADOW_BASE > STACK_TOP) };
    }

    #[test]
    fn shadow_mapping_is_injective_on_words() {
        for meta in [META_BYTES_ID, META_BYTES_BOUNDS] {
            let a = shadow_addr(0x2000_0000, meta);
            let b = shadow_addr(0x2000_0008, meta);
            assert_eq!(b - a, meta);
            assert!(is_shadow(a));
        }
    }

    #[test]
    fn shadow_of_stack_top_fits_in_48_bits() {
        let top = shadow_addr(STACK_TOP, META_BYTES_BOUNDS);
        assert!(top < 1 << 48, "shadow address {top:#x} exceeds 48-bit VA");
    }

    #[test]
    fn lock_region_classification() {
        assert!(is_lock_region(HEAP_LOCK_BASE));
        assert!(is_lock_region(STACK_LOCK_BASE + 8));
        assert!(is_lock_region(GLOBAL_LOCK_ADDR));
        assert!(is_lock_region(INVALID_LOCK_ADDR));
        assert!(!is_lock_region(HEAP_BASE));
        assert!(!is_lock_region(SHADOW_BASE));
    }

    #[test]
    fn sentinel_never_collides_with_keys() {
        assert_ne!(INVALID_SENTINEL, GLOBAL_KEY);
        assert_ne!(INVALID_SENTINEL, INVALID_KEY);
        const { assert!(FIRST_HEAP_KEY > GLOBAL_KEY) };
    }
}

//! Guest instruction-set architecture for the Watchdog reproduction.
//!
//! This crate defines everything the rest of the workspace agrees on at the
//! instruction level:
//!
//! * [`reg`] — architectural registers and the logical-register namespace
//!   (data registers, their metadata *sidecars*, cracking temporaries and the
//!   `stack_key` / `stack_lock` control registers of the paper's §4.1).
//! * [`insn`] — the macro-instruction set: a 64-bit RISC-style ISA with an
//!   x86-64-like register file, plus the Watchdog instructions
//!   (`setident`, `getident`, `setbounds`) and the runtime entry points
//!   (`malloc`, `free`) the modified allocator uses.
//! * [`uop`] — the µop vocabulary the core cracks macro-instructions into,
//!   including the injected `check`, `shadow_load`/`shadow_store`,
//!   lock-location and `select` µops of Figures 2 and 3.
//! * [`crack`] — the decoder/cracker that performs Watchdog µop injection
//!   for every mode (baseline, use-after-free only, bounds fused/split).
//! * [`crack_cache`] — a per-PC memo of crack expansions so the simulator's
//!   step loop does not re-crack the same static instruction every
//!   iteration.
//! * [`program`] — the program container and an assembler-style
//!   [`ProgramBuilder`] used by the workload suite.
//! * [`layout`] — the guest virtual-address-space layout, including the
//!   disjoint shadow space mapping (§3.3).
//!
//! # Example
//!
//! ```
//! use watchdog_isa::{ProgramBuilder, Gpr, crack::{crack, CrackConfig}, uop::UopKind};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let r0 = Gpr::new(0);
//! b.li(r0, 42);
//! b.halt();
//! let program = b.build().expect("valid program");
//! assert_eq!(program.len(), 2);
//!
//! // Cracking a pointer load injects a check and a shadow load (Fig. 2a).
//! let inst = watchdog_isa::Inst::Load {
//!     dst: r0,
//!     addr: watchdog_isa::MemAddr::base(Gpr::new(1)),
//!     width: watchdog_isa::Width::B8,
//!     hint: watchdog_isa::PtrHint::Auto,
//! };
//! let cracked = crack(&inst, true, &CrackConfig::watchdog());
//! let kinds: Vec<UopKind> = cracked.uops.iter().map(|u| u.uop.kind).collect();
//! assert_eq!(kinds, vec![UopKind::Check, UopKind::Load, UopKind::ShadowLoad]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crack;
pub mod crack_cache;
pub mod insn;
pub mod layout;
pub mod program;
pub mod reg;
pub mod uop;

pub use crack::{kind_desc, KindDesc, Lane, KIND_DESCS};
pub use crack_cache::{CrackCache, CrackCacheStats};
pub use insn::{AluOp, Cond, FpOp, FpWidth, Inst, MemAddr, PtrHint, Width};
pub use program::{Label, Program, ProgramBuilder, ProgramError};
pub use reg::{Fpr, Gpr, LReg};

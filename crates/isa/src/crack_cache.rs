//! Per-PC cache of crack expansions.
//!
//! Cracking a macro-instruction ([`crack`]) walks a large `match`, pushes
//! up to [`crate::uop::MAX_UOPS`] µops one at a time and re-derives the
//! rename-stage metadata effect — all of which is a pure function of
//! `(instruction, pointer classification, CrackConfig)`. The functional
//! machine sits in a loop that re-executes the same static instructions
//! millions of times, so re-cracking on every step is the hottest
//! redundant work on the simulator's fast path.
//!
//! [`CrackCache`] memoizes the expansion per *static* program counter
//! (instruction index). The guest has no self-modifying code, and the
//! pointer-identification policies are stable per PC within a run, so a
//! cached entry is almost always a hit; the classification bit is still
//! stored and compared so a policy that changes its mind mid-run is
//! handled correctly (the stale entry is re-cracked, counted as a miss).
//!
//! The cache deliberately stores the *static* [`Cracked`] result: dynamic
//! facts (resolved memory addresses, branch outcomes) are filled into a
//! fresh copy by the machine on every step, exactly as before.

use crate::crack::{crack, CrackConfig, Cracked};
use crate::insn::Inst;

/// Hit/miss/invalidation counters of a [`CrackCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrackCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to crack (cold entry, or a pointer-classification
    /// change that forced a re-crack).
    pub misses: u64,
    /// Entries explicitly dropped through [`CrackCache::invalidate`] /
    /// [`CrackCache::invalidate_all`].
    pub invalidations: u64,
}

impl CrackCacheStats {
    /// Fraction of lookups served from the cache (0.0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    /// The pointer classification the entry was cracked under.
    ptr_op: bool,
    cracked: Cracked,
}

/// A direct-indexed cache of [`Cracked`] expansions, keyed by instruction
/// index (PC).
///
/// # Examples
///
/// Hit/miss semantics — the first visit to a PC cracks the instruction,
/// subsequent visits reuse the stored expansion, and a changed pointer
/// classification re-cracks:
///
/// ```
/// use watchdog_isa::crack::CrackConfig;
/// use watchdog_isa::crack_cache::CrackCache;
/// use watchdog_isa::{Gpr, Inst, MemAddr, PtrHint, Width};
///
/// let load = Inst::Load {
///     dst: Gpr::new(0),
///     addr: MemAddr::base(Gpr::new(1)),
///     width: Width::B8,
///     hint: PtrHint::Auto,
/// };
/// let mut cache = CrackCache::new(CrackConfig::watchdog(), 4);
///
/// // Cold entry: the lookup cracks and stores (a miss).
/// let n = cache.get_or_crack(0, &load, true).uops.len();
/// assert_eq!((cache.stats().hits, cache.stats().misses), (0, 1));
///
/// // Warm entry: the stored expansion is returned (a hit).
/// assert_eq!(cache.get_or_crack(0, &load, true).uops.len(), n);
/// assert_eq!((cache.stats().hits, cache.stats().misses), (1, 1));
///
/// // A different classification for the same PC re-cracks (a miss): the
/// // non-pointer expansion of a load drops the shadow-load µop.
/// assert_eq!(cache.get_or_crack(0, &load, false).uops.len(), n - 1);
/// assert_eq!((cache.stats().hits, cache.stats().misses), (1, 2));
///
/// // Explicit invalidation drops the entry, so the next lookup misses.
/// cache.invalidate(0);
/// cache.get_or_crack(0, &load, false);
/// assert_eq!(cache.stats().misses, 3);
/// ```
#[derive(Debug, Clone)]
pub struct CrackCache {
    cfg: CrackConfig,
    entries: Vec<Option<Entry>>,
    stats: CrackCacheStats,
}

impl CrackCache {
    /// An empty cache for a program of `len` instructions, cracking under
    /// `cfg` on misses.
    pub fn new(cfg: CrackConfig, len: usize) -> Self {
        CrackCache {
            cfg,
            entries: vec![None; len],
            stats: CrackCacheStats::default(),
        }
    }

    /// The configuration misses are cracked under.
    pub fn config(&self) -> &CrackConfig {
        &self.cfg
    }

    /// Returns the expansion of `inst` at instruction index `pc`, cracking
    /// and caching it if absent or if it was cached under a different
    /// pointer classification.
    ///
    /// PCs beyond the capacity given to [`CrackCache::new`] grow the cache
    /// (the machine sizes it to the program, so this is a safety net, not
    /// the expected path).
    pub fn get_or_crack(&mut self, pc: usize, inst: &Inst, ptr_op: bool) -> &Cracked {
        if pc >= self.entries.len() {
            self.entries.resize(pc + 1, None);
        }
        let slot = &mut self.entries[pc];
        match slot {
            Some(e) if e.ptr_op == ptr_op => self.stats.hits += 1,
            _ => {
                self.stats.misses += 1;
                *slot = Some(Entry {
                    ptr_op,
                    cracked: crack(inst, ptr_op, &self.cfg),
                });
            }
        }
        &slot.as_ref().expect("entry just ensured").cracked
    }

    /// Invalidation hook: drops the entry for one PC (e.g. after a code
    /// patch). A no-op for PCs never cached.
    pub fn invalidate(&mut self, pc: usize) {
        if let Some(slot) = self.entries.get_mut(pc) {
            if slot.take().is_some() {
                self.stats.invalidations += 1;
            }
        }
    }

    /// Invalidation hook: drops every entry (e.g. after swapping the
    /// pointer-identification policy mid-run).
    pub fn invalidate_all(&mut self) {
        for slot in &mut self.entries {
            if slot.take().is_some() {
                self.stats.invalidations += 1;
            }
        }
    }

    /// Lookup/invalidation counters.
    pub fn stats(&self) -> CrackCacheStats {
        self.stats
    }

    /// Number of currently-populated entries.
    pub fn populated(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{MemAddr, PtrHint, Width};
    use crate::reg::Gpr;

    fn load() -> Inst {
        Inst::Load {
            dst: Gpr::new(0),
            addr: MemAddr::base(Gpr::new(1)),
            width: Width::B8,
            hint: PtrHint::Auto,
        }
    }

    #[test]
    fn cached_expansion_matches_a_fresh_crack() {
        let cfg = CrackConfig::watchdog();
        let mut cache = CrackCache::new(cfg, 8);
        let fresh = crack(&load(), true, &cfg);
        // Miss then hit: both must equal the uncached expansion.
        for _ in 0..2 {
            let c = cache.get_or_crack(3, &load(), true);
            assert_eq!(c.uops.len(), fresh.uops.len());
            assert_eq!(c.meta, fresh.meta);
            assert_eq!(c.ctrl, fresh.ctrl);
            let kinds: Vec<_> = c.uops.iter().map(|u| u.uop.kind).collect();
            let fresh_kinds: Vec<_> = fresh.uops.iter().map(|u| u.uop.kind).collect();
            assert_eq!(kinds, fresh_kinds);
        }
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.populated(), 1);
    }

    #[test]
    fn out_of_range_pc_grows_the_cache() {
        let mut cache = CrackCache::new(CrackConfig::baseline(), 2);
        cache.get_or_crack(100, &load(), false);
        assert_eq!(cache.stats().misses, 1);
        cache.get_or_crack(100, &load(), false);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn invalidate_all_counts_only_populated_entries() {
        let mut cache = CrackCache::new(CrackConfig::watchdog(), 16);
        cache.get_or_crack(0, &load(), true);
        cache.get_or_crack(5, &load(), false);
        cache.invalidate(9); // empty slot: no count
        cache.invalidate_all();
        assert_eq!(cache.stats().invalidations, 2);
        assert_eq!(cache.populated(), 0);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }
}

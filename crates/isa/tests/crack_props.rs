//! Property tests on the cracker: structural invariants that must hold for
//! every instruction under every configuration.

use proptest::prelude::*;
use watchdog_isa::crack::{baseline_uop_count, crack, BoundsUops, CrackConfig, CtrlKind};
use watchdog_isa::insn::{AluOp, Cond, FpOp, FpWidth, Inst, MemAddr, PtrHint, Width};
use watchdog_isa::reg::{Fpr, Gpr};
use watchdog_isa::uop::{UopKind, UopTag};
use watchdog_isa::ProgramBuilder;

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..16).prop_map(Gpr::new)
}

fn arb_fpr() -> impl Strategy<Value = Fpr> {
    (0u8..8).prop_map(Fpr::new)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::B1),
        Just(Width::B2),
        Just(Width::B4),
        Just(Width::B8)
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Sar),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

/// Generates a non-control instruction (control flow needs bound labels,
/// covered separately).
fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        (arb_gpr(), any::<i64>()).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
        (arb_gpr(), arb_gpr()).prop_map(|(dst, src)| Inst::Mov { dst, src }),
        (arb_alu_op(), arb_gpr(), arb_gpr(), arb_gpr()).prop_map(|(op, dst, a, b)| Inst::Alu {
            op,
            dst,
            a,
            b
        }),
        (arb_alu_op(), arb_gpr(), arb_gpr(), any::<i32>()).prop_map(|(op, dst, a, imm)| {
            Inst::AluImm {
                op,
                dst,
                a,
                imm: imm as i64,
            }
        }),
        (arb_gpr(), arb_gpr(), any::<i16>()).prop_map(|(dst, base, off)| Inst::Lea {
            dst,
            addr: MemAddr::offset(base, off as i32)
        }),
        (arb_gpr(), arb_gpr(), any::<i16>(), arb_width()).prop_map(|(dst, base, off, width)| {
            Inst::Load {
                dst,
                addr: MemAddr::offset(base, off as i32),
                width,
                hint: PtrHint::Auto,
            }
        }),
        (arb_gpr(), arb_gpr(), any::<i16>(), arb_width()).prop_map(|(src, base, off, width)| {
            Inst::Store {
                src,
                addr: MemAddr::offset(base, off as i32),
                width,
                hint: PtrHint::Auto,
            }
        }),
        (arb_fpr(), arb_gpr(), any::<i16>()).prop_map(|(dst, base, off)| Inst::LoadFp {
            dst,
            addr: MemAddr::offset(base, off as i32),
            width: FpWidth::F8
        }),
        (arb_fpr(), arb_fpr(), arb_fpr()).prop_map(|(dst, a, b)| Inst::FpAlu {
            op: FpOp::Mul,
            dst,
            a,
            b
        }),
        (arb_gpr(), arb_gpr()).prop_map(|(dst, size)| Inst::Malloc { dst, size }),
        arb_gpr().prop_map(|ptr| Inst::Free { ptr }),
        (arb_gpr(), arb_gpr(), arb_gpr()).prop_map(|(ptr, key, lock)| Inst::SetIdent {
            ptr,
            key,
            lock
        }),
        (arb_gpr(), arb_gpr()).prop_map(|(key, lock)| Inst::NewIdent { key, lock }),
        (arb_gpr(), arb_gpr()).prop_map(|(key, lock)| Inst::KillIdent { key, lock }),
        Just(Inst::Ret),
    ]
}

proptest! {
    /// Watchdog cracking only *adds* µops, never removes or reorders the
    /// baseline work, and baseline cracking never contains metadata µops.
    #[test]
    fn watchdog_is_additive(inst in arb_inst(), ptr_op in any::<bool>()) {
        let base = crack(&inst, ptr_op, &CrackConfig::baseline());
        let wd = crack(&inst, ptr_op, &CrackConfig::watchdog());
        let b2 = crack(&inst, ptr_op, &CrackConfig::with_bounds(BoundsUops::Split));
        prop_assert!(wd.uops.len() >= base.uops.len());
        prop_assert!(b2.uops.len() >= wd.uops.len(), "split bounds add µops");
        for u in base.uops.iter() {
            prop_assert_eq!(u.uop.tag, UopTag::Base, "baseline has only base µops");
            prop_assert!(!u.uop.kind.is_lock_access() && !u.uop.kind.is_shadow_access());
        }
        // The baseline µops appear, in order, within the Watchdog expansion
        // (except for the runtime-interface instructions, whose whole body
        // *is* identifier work under Watchdog).
        let runtime_iface = matches!(
            inst,
            Inst::SetIdent { .. } | Inst::GetIdent { .. } | Inst::SetBounds { .. }
        );
        if !runtime_iface {
            let wd_kinds: Vec<UopKind> =
                wd.uops.iter().filter(|u| u.uop.tag == UopTag::Base).map(|u| u.uop.kind).collect();
            let base_kinds: Vec<UopKind> = base.uops.iter().map(|u| u.uop.kind).collect();
            prop_assert_eq!(wd_kinds, base_kinds, "baseline work preserved");
        }
        prop_assert_eq!(base.uops.len(), baseline_uop_count(&inst));
    }

    /// Every memory access in a Watchdog expansion is guarded: if the
    /// expansion contains a program Load/Store, a check precedes it.
    #[test]
    fn every_program_access_is_checked(inst in arb_inst(), ptr_op in any::<bool>()) {
        if !inst.is_mem() {
            return Ok(());
        }
        let wd = crack(&inst, ptr_op, &CrackConfig::watchdog());
        let kinds: Vec<UopKind> = wd.uops.iter().map(|u| u.uop.kind).collect();
        let check_pos = kinds.iter().position(|k| matches!(k, UopKind::Check | UopKind::CheckCombined));
        let mem_pos = kinds.iter().position(|k| matches!(k, UopKind::Load | UopKind::Store));
        prop_assert!(check_pos.is_some(), "no check in {kinds:?}");
        prop_assert!(check_pos < mem_pos, "check must precede the access in {kinds:?}");
    }

    /// Control classification matches the instruction.
    #[test]
    fn ctrl_kind_is_consistent(inst in arb_inst()) {
        let c = crack(&inst, false, &CrackConfig::watchdog());
        prop_assert_eq!(c.ctrl == CtrlKind::None, !inst.is_control());
    }

    /// Shadow µops appear iff the access is a classified 8-byte operation.
    #[test]
    fn shadow_uops_track_classification(
        dst in arb_gpr(), base in arb_gpr(), width in arb_width(), ptr_op in any::<bool>()
    ) {
        let inst = Inst::Load { dst, addr: MemAddr::base(base), width, hint: PtrHint::Auto };
        let wd = crack(&inst, ptr_op, &CrackConfig::watchdog());
        let has_shadow = wd.uops.iter().any(|u| u.uop.kind.is_shadow_access());
        prop_assert_eq!(has_shadow, ptr_op, "shadow load iff classified");
    }

    /// Disassembly is total (never panics) and non-empty for any program.
    #[test]
    fn disassembly_is_total(insts in proptest::collection::vec(arb_inst(), 1..40)) {
        let mut b = ProgramBuilder::new("prop");
        // Replace Ret (needs a stack) placement constraints: it is fine
        // syntactically; we only disassemble.
        for i in &insts {
            b.push(*i);
        }
        b.halt();
        let p = b.build().unwrap();
        let text = p.disassemble();
        prop_assert_eq!(text.lines().count(), insts.len() + 1);
        prop_assert!(text.contains("halt"));
        let _ = Inst::Branch { cond: Cond::Eq, a: Gpr::new(0), b: Gpr::new(0), target: {
            let mut bb = ProgramBuilder::new("x");
            let l = bb.label();
            bb.bind(l);
            bb.nop();
            l
        } };
    }
}

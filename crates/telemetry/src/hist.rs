//! Fixed-footprint power-of-two histogram.
//!
//! Sixty-five inline buckets — one for zero, one per `ilog2` class of a
//! `u64` — so a histogram is a flat value type with no heap storage at
//! all: observing is a shift, an increment and three scalar updates.
//! That makes it safe to record from inside the allocation-disciplined
//! timing hot loop, and cheap enough to keep one per profiled quantity
//! (window occupancies, wheel-slot leads, FU utilization).

use crate::json::JsonValue;

/// Number of buckets: value `0`, then one bucket per power-of-two class
/// `[2^k, 2^(k+1))` for `k` in `0..64`.
pub const NUM_BUCKETS: usize = 65;

/// Power-of-two histogram with exact count/sum/min/max sidecars.
///
/// Bucket resolution is coarse (factor of two), which is exactly what
/// occupancy and latency *distributions* need; the exact moments come
/// from the sidecars. Percentiles are therefore upper bounds of the
/// bucket in which the requested rank falls.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: `0` for zero, `1 + ilog2(v)` otherwise.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            1 + v.ilog2() as usize
        }
    }

    /// Inclusive upper bound of a bucket (the value reported for ranks
    /// falling inside it).
    fn bucket_high(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Records one sample. Allocation-free.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all buckets and sidecars.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples (wrapping, which no simulated
    /// quantity approaches).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, `0` when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the `p`-th percentile rank
    /// (`0 < p <= 100`); `0` when empty. Exact for the min/max ends,
    /// within a factor of two elsewhere — the resolution this histogram
    /// trades for its fixed footprint.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, sample count)`
    /// pairs, lowest first.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_high(i), n))
    }

    /// The standard `(p50, p90, p99)` summary triple every renderer
    /// shows — one bucket walk per quantile via [`Histogram::percentile`].
    pub fn quantiles(&self) -> (u64, u64, u64) {
        (
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
        )
    }

    /// JSON summary: `{count, sum, min, max, mean, p50, p90, p99}` — the
    /// shape the `--json` export and the perf snapshots embed.
    pub fn to_json(&self) -> JsonValue {
        let (p50, p90, p99) = self.quantiles();
        JsonValue::Obj(vec![
            ("count".into(), JsonValue::Int(self.count)),
            ("sum".into(), JsonValue::Int(self.sum)),
            ("min".into(), JsonValue::Int(self.min())),
            ("max".into(), JsonValue::Int(self.max)),
            ("mean".into(), JsonValue::Num(self.mean())),
            ("p50".into(), JsonValue::Int(p50)),
            ("p90".into(), JsonValue::Int(p90)),
            ("p99".into(), JsonValue::Int(p99)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_classes_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn moments_are_exact() {
        let mut h = Histogram::new();
        for v in [5, 1, 9, 3] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 18);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_bound_the_true_rank_within_a_bucket() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        // p100 is the exact max; lower percentiles are bucket upper
        // bounds, never below the true value's bucket.
        assert_eq!(h.percentile(100.0), 100);
        let (p50, p90, p99) = h.quantiles();
        assert!((50..=63).contains(&p50), "p50={p50}");
        assert!((90..=100).contains(&p90), "p90={p90}");
        assert!((99..=100).contains(&p99), "p99={p99}");
        assert_eq!(h.percentile(1.0), 1);
    }

    #[test]
    fn merge_equals_interleaved_observation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..50u64 {
            a.observe(v * 3);
            both.observe(v * 3);
        }
        for v in 0..70u64 {
            b.observe(v * 7 + 1);
            both.observe(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.max(), both.max());
        assert_eq!(
            a.nonzero_buckets().collect::<Vec<_>>(),
            both.nonzero_buckets().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
    }
}

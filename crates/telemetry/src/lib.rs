//! Structured telemetry for the Watchdog reproduction: a preallocated
//! metrics registry, power-of-two histograms, hierarchical section
//! timers and a dependency-free JSON layer.
//!
//! The design follows two hard rules the rest of the workspace imposes:
//!
//! 1. **Out-of-band from [`RunReport`]** — every feed-equivalence suite
//!    (`wheel_equivalence`, `batch_equivalence`, `trace_equivalence`)
//!    compares `RunReport`s byte-for-byte across live / replayed /
//!    sampled feeds, and telemetry legitimately *differs* between feeds
//!    (batch counts, host timings, profile samples). Metrics therefore
//!    live in a separate [`MetricsRegistry`] carried next to — never
//!    inside — the report.
//! 2. **No steady-state allocation** — `tests/alloc_discipline.rs` pins
//!    the timed hot loop to zero allocations *with recording enabled*.
//!    A registry allocates only while metrics are being **registered**
//!    (returning dense [`MetricId`] handles); recording through a handle
//!    is an array write. [`Histogram`] is a fixed inline array, and the
//!    pipeline's self-profiler preallocates everything at construction.
//!
//! [`RunReport`]: https://docs.rs/watchdog-core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod hist;
pub mod json;
pub mod sections;

pub use bench::{BenchRecord, BenchSnapshot, BENCH_SCHEMA};
pub use hist::Histogram;
pub use json::JsonValue;
pub use sections::SectionTimers;

use std::fmt::Write as _;

/// Dense handle to one registered metric. Obtained from the registration
/// calls on [`MetricsRegistry`]; recording through it is a bounds-checked
/// array write with no lookup and no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(u32);

/// Unit tag rendered alongside a metric in human output and kept in the
/// JSON export so downstream tooling does not have to guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Plain event count.
    Count,
    /// Simulated core cycles.
    Cycles,
    /// Host nanoseconds.
    Nanos,
    /// Dimensionless ratio in `[0, 1]`.
    Ratio,
    /// Events per thousand instructions (e.g. misses per kilo-inst).
    PerKilo,
    /// Rate per host second.
    PerSec,
    /// Bytes.
    Bytes,
}

impl Unit {
    /// Short lowercase label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Cycles => "cycles",
            Unit::Nanos => "ns",
            Unit::Ratio => "ratio",
            Unit::PerKilo => "per_kinst",
            Unit::PerSec => "per_sec",
            Unit::Bytes => "bytes",
        }
    }
}

/// One metric's value storage.
#[derive(Debug, Clone)]
enum Slot {
    Counter(u64),
    Gauge(f64),
    Hist(Box<Histogram>),
}

/// A read-only view of one registered metric, yielded by
/// [`MetricsRegistry::iter`] in registration order (which is therefore
/// the rendering order of both the human and the JSON output).
#[derive(Debug)]
pub struct MetricView<'a> {
    /// Dotted metric path, e.g. `cache.ll.misses`.
    pub name: &'a str,
    /// Unit tag supplied at registration.
    pub unit: Unit,
    /// Counter value, if this metric is a counter.
    pub counter: Option<u64>,
    /// Gauge value, if this metric is a gauge.
    pub gauge: Option<f64>,
    /// Histogram contents, if this metric is a histogram.
    pub hist: Option<&'a Histogram>,
}

/// Preallocated registry of named counters, gauges and histograms.
///
/// Registration (`counter` / `gauge` / `histogram`) allocates and
/// returns a [`MetricId`]; recording (`add` / `set` / `observe`) never
/// allocates. Names are dotted paths (`timing.cycles`,
/// `profile.occupancy.rob`) and must be unique — re-registering a name
/// panics, because it is always a plumbing bug.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    names: Vec<String>,
    units: Vec<Unit>,
    slots: Vec<Slot>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, name: &str, unit: Unit, slot: Slot) -> MetricId {
        assert!(
            !self.names.iter().any(|n| n == name),
            "metric {name:?} registered twice"
        );
        let id = MetricId(u32::try_from(self.names.len()).expect("metric count fits u32"));
        self.names.push(name.to_string());
        self.units.push(unit);
        self.slots.push(slot);
        id
    }

    /// Registers a `u64` counter starting at zero.
    pub fn counter(&mut self, name: &str, unit: Unit) -> MetricId {
        self.register(name, unit, Slot::Counter(0))
    }

    /// Registers a counter with an initial value — the common shape when
    /// the registry is built once, after a run, from already-final
    /// statistics.
    pub fn counter_at(&mut self, name: &str, unit: Unit, value: u64) -> MetricId {
        self.register(name, unit, Slot::Counter(value))
    }

    /// Registers an `f64` gauge starting at zero.
    pub fn gauge(&mut self, name: &str, unit: Unit) -> MetricId {
        self.register(name, unit, Slot::Gauge(0.0))
    }

    /// Registers a gauge with an initial value.
    pub fn gauge_at(&mut self, name: &str, unit: Unit, value: f64) -> MetricId {
        self.register(name, unit, Slot::Gauge(value))
    }

    /// Registers an empty power-of-two [`Histogram`].
    pub fn histogram(&mut self, name: &str, unit: Unit) -> MetricId {
        self.register(name, unit, Slot::Hist(Box::default()))
    }

    /// Registers a histogram with already-accumulated contents (cloned).
    pub fn histogram_at(&mut self, name: &str, unit: Unit, hist: &Histogram) -> MetricId {
        self.register(name, unit, Slot::Hist(Box::new(hist.clone())))
    }

    /// Adds `n` to a counter. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a counter.
    pub fn add(&mut self, id: MetricId, n: u64) {
        match &mut self.slots[id.0 as usize] {
            Slot::Counter(c) => *c += n,
            _ => panic!("metric {:?} is not a counter", self.names[id.0 as usize]),
        }
    }

    /// Sets a gauge. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a gauge.
    pub fn set(&mut self, id: MetricId, v: f64) {
        match &mut self.slots[id.0 as usize] {
            Slot::Gauge(g) => *g = v,
            _ => panic!("metric {:?} is not a gauge", self.names[id.0 as usize]),
        }
    }

    /// Records one sample into a histogram. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a histogram.
    pub fn observe(&mut self, id: MetricId, v: u64) {
        match &mut self.slots[id.0 as usize] {
            Slot::Hist(h) => h.observe(v),
            _ => panic!("metric {:?} is not a histogram", self.names[id.0 as usize]),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks a counter up by name — the read side used by the
    /// cross-check tests and by renderers that want one specific value.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.index_of(name).and_then(|i| match &self.slots[i] {
            Slot::Counter(c) => Some(*c),
            _ => None,
        })
    }

    /// Looks a gauge up by name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.index_of(name).and_then(|i| match &self.slots[i] {
            Slot::Gauge(g) => Some(*g),
            _ => None,
        })
    }

    /// Looks a histogram up by name.
    pub fn hist_value(&self, name: &str) -> Option<&Histogram> {
        self.index_of(name).and_then(|i| match &self.slots[i] {
            Slot::Hist(h) => Some(&**h),
            _ => None,
        })
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Re-registers every metric of `other` into `self`, preserving
    /// `other`'s registration order and values. This is how a run-level
    /// registry folds in sub-registries exported by components that were
    /// consumed before export time (e.g. the timing core).
    ///
    /// # Panics
    ///
    /// Panics if any name in `other` is already registered here — merged
    /// namespaces are expected to be disjoint by construction.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for i in 0..other.names.len() {
            self.register(&other.names[i], other.units[i], other.slots[i].clone());
        }
    }

    /// Iterates metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = MetricView<'_>> {
        self.names.iter().enumerate().map(|(i, name)| {
            let (counter, gauge, hist) = match &self.slots[i] {
                Slot::Counter(c) => (Some(*c), None, None),
                Slot::Gauge(g) => (None, Some(*g), None),
                Slot::Hist(h) => (None, None, Some(&**h)),
            };
            MetricView {
                name,
                unit: self.units[i],
                counter,
                gauge,
                hist,
            }
        })
    }

    /// Renders the registry as one stable JSON object: metric path →
    /// value. Counters render as integers, gauges as floats, histograms
    /// as `{count, sum, min, max, mean, p50, p90, p99}` summary objects.
    /// Key order is registration order.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = Vec::with_capacity(self.len());
        for m in self.iter() {
            let v = if let Some(c) = m.counter {
                JsonValue::Int(c)
            } else if let Some(g) = m.gauge {
                JsonValue::Num(g)
            } else if let Some(h) = m.hist {
                h.to_json()
            } else {
                unreachable!("metric has exactly one storage kind")
            };
            obj.push((m.name.to_string(), v));
        }
        JsonValue::Obj(obj)
    }

    /// Renders the registry for human eyes: one `name value [unit]` line
    /// per metric, histograms summarized. Used by `watchdog-cli run
    /// --telemetry`-style output and by the diagnostics binary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for m in self.iter() {
            if let Some(c) = m.counter {
                let _ = writeln!(out, "  {:<34} {:>16} {}", m.name, c, m.unit.label());
            } else if let Some(g) = m.gauge {
                let _ = writeln!(out, "  {:<34} {:>16.3} {}", m.name, g, m.unit.label());
            } else if let Some(h) = m.hist {
                let (p50, p90, p99) = h.quantiles();
                let _ = writeln!(
                    out,
                    "  {:<34} n={} mean={:.1} p50={} p90={} p99={} max={}",
                    m.name,
                    h.count(),
                    h.mean(),
                    p50,
                    p90,
                    p99,
                    h.max()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip_by_name() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("a.count", Unit::Count);
        let g = reg.gauge("a.rate", Unit::PerSec);
        let h = reg.histogram("a.occ", Unit::Count);
        reg.add(c, 41);
        reg.add(c, 1);
        reg.set(g, 2.5);
        for v in [1, 2, 3, 4] {
            reg.observe(h, v);
        }
        assert_eq!(reg.counter_value("a.count"), Some(42));
        assert_eq!(reg.gauge_value("a.rate"), Some(2.5));
        assert_eq!(reg.hist_value("a.occ").unwrap().count(), 4);
        assert_eq!(reg.counter_value("missing"), None);
        assert_eq!(reg.counter_value("a.rate"), None, "wrong kind is None");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x", Unit::Count);
        reg.counter("x", Unit::Count);
    }

    #[test]
    fn recording_does_not_allocate_storage() {
        // The structural guarantee behind tests/alloc_discipline.rs:
        // after registration the vectors never grow.
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("c", Unit::Count);
        let h = reg.histogram("h", Unit::Cycles);
        let before = reg.slots.capacity();
        for i in 0..10_000 {
            reg.add(c, 1);
            reg.observe(h, i);
        }
        assert_eq!(reg.slots.capacity(), before);
        assert_eq!(reg.counter_value("c"), Some(10_000));
    }

    #[test]
    fn json_rendering_is_stable_and_ordered() {
        let mut reg = MetricsRegistry::new();
        reg.counter_at("b.second", Unit::Count, 7);
        reg.gauge_at("a.first", Unit::Ratio, 0.5);
        let json = reg.to_json().render();
        // Registration order, not alphabetical.
        let b = json.find("b.second").unwrap();
        let a = json.find("a.first").unwrap();
        assert!(b < a);
        let parsed = JsonValue::parse(&json).unwrap();
        assert_eq!(parsed.get("b.second").and_then(JsonValue::as_u64), Some(7));
    }
}

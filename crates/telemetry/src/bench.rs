//! The shared benchmark-snapshot format.
//!
//! One schema — `watchdog-bench-v1` — is produced by three writers (the
//! criterion shim's `--json`, `watchdog-cli perf`, and CI) and consumed
//! by anything that reads `BENCH_<rev>.json` perf history. Keeping the
//! record type and its parser here means the producers cannot drift
//! apart: the CLI validates shim output with the same code CI uses to
//! validate the CLI's.

use crate::json::{JsonError, JsonValue};

/// Schema tag every snapshot carries as its `schema` key.
pub const BENCH_SCHEMA: &str = "watchdog-bench-v1";

/// One measured benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Full case path, `group/case` (e.g. `timing_wheel/mcf_wheel`).
    pub name: String,
    /// Best observed wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Throughput in millions of elements per second; `0.0` when the
    /// case declares no element throughput.
    pub melem_per_s: f64,
    /// Total iterations executed while measuring.
    pub iterations: u64,
}

impl BenchRecord {
    /// Computes the `melem_per_s` field from an element count per
    /// iteration — the one formula both writers use.
    pub fn rate(elems_per_iter: u64, ns_per_iter: f64) -> f64 {
        if ns_per_iter > 0.0 {
            elems_per_iter as f64 * 1e3 / ns_per_iter
        } else {
            0.0
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("name".into(), JsonValue::str(self.name.clone())),
            ("ns_per_iter".into(), JsonValue::Num(self.ns_per_iter)),
            ("melem_per_s".into(), JsonValue::Num(self.melem_per_s)),
            ("iterations".into(), JsonValue::Int(self.iterations)),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let field = |key: &str| v.get(key).ok_or_else(|| format!("record missing {key:?}"));
        Ok(BenchRecord {
            name: field("name")?
                .as_str()
                .ok_or("record name is not a string")?
                .to_string(),
            ns_per_iter: field("ns_per_iter")?
                .as_f64()
                .ok_or("ns_per_iter is not a number")?,
            melem_per_s: field("melem_per_s")?
                .as_f64()
                .ok_or("melem_per_s is not a number")?,
            iterations: field("iterations")?
                .as_u64()
                .ok_or("iterations is not an integer")?,
        })
    }
}

/// A full snapshot: schema tag, source revision, records.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Git revision (short hash) the snapshot was measured at, or
    /// `"unknown"` outside a checkout.
    pub rev: String,
    /// Measured cases in execution order.
    pub records: Vec<BenchRecord>,
}

impl BenchSnapshot {
    /// Renders the snapshot (pretty-printed, schema tag first).
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::str(BENCH_SCHEMA)),
            ("rev".into(), JsonValue::str(self.rev.clone())),
            (
                "records".into(),
                JsonValue::Arr(self.records.iter().map(BenchRecord::to_json).collect()),
            ),
        ])
        .render_pretty()
    }

    /// Parses and validates a snapshot: the document must parse, carry
    /// the exact [`BENCH_SCHEMA`] tag, and every record must have all
    /// four fields with the right types. This is the validation CI's
    /// telemetry smoke step and the CLI smoke tests run.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(text).map_err(|e: JsonError| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema tag")?;
        if schema != BENCH_SCHEMA {
            return Err(format!("schema {schema:?}, expected {BENCH_SCHEMA:?}"));
        }
        let rev = doc
            .get("rev")
            .and_then(JsonValue::as_str)
            .ok_or("missing rev")?
            .to_string();
        let records = doc
            .get("records")
            .and_then(JsonValue::as_array)
            .ok_or("missing records array")?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchSnapshot { rev, records })
    }

    /// Record lookup by full case path.
    pub fn record(&self, name: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> BenchSnapshot {
        BenchSnapshot {
            rev: "abc1234".into(),
            records: vec![
                BenchRecord {
                    name: "timing_wheel/mcf_wheel".into(),
                    ns_per_iter: 142.5,
                    melem_per_s: BenchRecord::rate(1000, 142.5),
                    iterations: 77,
                },
                BenchRecord {
                    name: "bpred_observe/mix".into(),
                    ns_per_iter: 9.0,
                    melem_per_s: 0.0,
                    iterations: 100_000,
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let s = snapshot();
        let parsed = BenchSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
        assert!(parsed.record("timing_wheel/mcf_wheel").is_some());
        assert!(parsed.record("nope").is_none());
    }

    #[test]
    fn rate_formula() {
        // 1000 elements in 100 ns = 10 Gelem/s = 10_000 Melem/s.
        assert!((BenchRecord::rate(1000, 100.0) - 10_000.0).abs() < 1e-9);
        assert_eq!(BenchRecord::rate(1000, 0.0), 0.0);
    }

    #[test]
    fn validation_rejects_wrong_schema_and_shape() {
        assert!(BenchSnapshot::from_json("{}").is_err());
        assert!(
            BenchSnapshot::from_json(r#"{"schema":"other-v9","rev":"x","records":[]}"#).is_err()
        );
        assert!(BenchSnapshot::from_json(
            r#"{"schema":"watchdog-bench-v1","rev":"x","records":[{"name":"a"}]}"#
        )
        .is_err());
        let ok =
            BenchSnapshot::from_json(r#"{"schema":"watchdog-bench-v1","rev":"x","records":[]}"#)
                .unwrap();
        assert_eq!(ok.rev, "x");
    }
}

//! Dependency-free JSON tree: build, render, parse.
//!
//! The workspace ships no serde (the build environment is offline), and
//! every machine-readable surface — `watchdog-cli run --json`, the
//! `BENCH_<rev>.json` perf snapshots, the campaign's JSONL event stream
//! and the criterion shim's `--json` output — needs the same small
//! thing: escape-correct rendering and enough of a parser for schema
//! validation in tests and CI. This module is that one implementation.
//!
//! Values are an explicit tree ([`JsonValue`]); rendering is
//! deterministic (insertion order for object keys, `u64`-exact
//! integers), and the parser accepts exactly the JSON this crate — or
//! any standards-compliant producer — emits.

use std::fmt::Write as _;

/// A JSON value. Integers get their own variant so `u64` counters
/// render and re-parse exactly rather than round-tripping through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer, rendered without a decimal point.
    Int(u64),
    /// Any other number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object; key order is preserved on render.
    Obj(Vec<(String, JsonValue)>),
}

/// Parse failure: a message and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Renders to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders with two-space indentation — the shape written to
    /// `BENCH_<rev>.json` files so diffs between snapshots stay
    /// readable.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Num(x) => render_f64(*x, out),
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    v.render_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push(']');
            }
            JsonValue::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, depth + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the first offending byte offset.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Renders an `f64` so it re-parses as a number: finite values use the
/// shortest round-trip form, non-finite values (which JSON cannot carry)
/// become `null`.
fn render_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
        // `{}` prints integral floats without a point ("3"), which would
        // re-parse as Int; that is fine for consumers (as_f64 widens).
    } else {
        out.push_str("null");
    }
}

/// Escapes a string into `out`, quotes included.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { msg, at: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writers; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Byte length of the UTF-8 character starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = JsonValue::Obj(vec![
            ("schema".into(), JsonValue::str("watchdog-run-v1")),
            ("count".into(), JsonValue::Int(18_446_744_073_709_551_615)),
            ("rate".into(), JsonValue::Num(2.25)),
            ("ok".into(), JsonValue::Bool(true)),
            ("none".into(), JsonValue::Null),
            (
                "items".into(),
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::str("a\"b\\c\nd")]),
            ),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            let parsed = JsonValue::parse(&rendered).unwrap();
            assert_eq!(parsed, doc, "render/parse fixpoint: {rendered}");
        }
    }

    #[test]
    fn u64_counters_are_exact() {
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("{\"a\":").is_err());
        assert!(JsonValue::parse("[1,").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn lookup_helpers() {
        let v = JsonValue::parse(r#"{"a": {"b": [1, 2.5, "s"]}}"#).unwrap();
        let arr = v.get("a").and_then(|a| a.get("b")).unwrap();
        let items = arr.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("s"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn unicode_survives() {
        let doc = JsonValue::str("µop → wheel ✓");
        let parsed = JsonValue::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(JsonValue::parse(r#""µop""#).unwrap().as_str(), Some("µop"));
    }
}

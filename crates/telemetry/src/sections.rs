//! Hierarchical wall-clock section timers.
//!
//! A [`SectionTimers`] is a fixed table of named accumulators declared
//! up front — `run/fetch_crack`, `run/consume/wheel_drain`, … — where
//! `/`-separated names give the rendering its hierarchy. Declaring the
//! table fixes the allocation; accumulating into a section is two array
//! adds, cheap enough for the sampling self-profiler to charge
//! individual phases of the timing core's hot loop.
//!
//! Timers measure *host* time ([`Instant`]) and are therefore
//! deliberately outside the `RunReport`: two equivalent runs have
//! identical reports but never identical section times.

use std::time::{Duration, Instant};

use crate::json::JsonValue;
use crate::{MetricsRegistry, Unit};

/// Handle to one declared section (an index into the fixed table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionId(usize);

/// Fixed table of named nanosecond accumulators.
#[derive(Debug, Clone)]
pub struct SectionTimers {
    names: Vec<&'static str>,
    ns: Vec<u64>,
    hits: Vec<u64>,
}

impl SectionTimers {
    /// Declares the section table. Names are `/`-separated paths; a
    /// section's time is *self* time (parents do not need to enclose
    /// children arithmetically, though renderers show them nested).
    pub fn new(names: &[&'static str]) -> Self {
        SectionTimers {
            names: names.to_vec(),
            ns: vec![0; names.len()],
            hits: vec![0; names.len()],
        }
    }

    /// Handle for a declared section.
    ///
    /// # Panics
    ///
    /// Panics when `name` was not declared — always a plumbing bug.
    pub fn id(&self, name: &str) -> SectionId {
        SectionId(
            self.names
                .iter()
                .position(|n| *n == name)
                .unwrap_or_else(|| panic!("section {name:?} not declared")),
        )
    }

    /// Charges an elapsed duration to a section. Allocation-free.
    #[inline]
    pub fn add(&mut self, id: SectionId, elapsed: Duration) {
        self.add_ns(id, elapsed.as_nanos() as u64);
    }

    /// Charges raw nanoseconds to a section. Allocation-free.
    #[inline]
    pub fn add_ns(&mut self, id: SectionId, ns: u64) {
        self.ns[id.0] += ns;
        self.hits[id.0] += 1;
    }

    /// Charges pre-accumulated nanoseconds covering `hits` laps — for
    /// callers that batch their `Instant` arithmetic in local
    /// accumulators (the instrumented run loop) and fold in once.
    #[inline]
    pub fn add_batch(&mut self, id: SectionId, ns: u64, hits: u64) {
        self.ns[id.0] += ns;
        self.hits[id.0] += hits;
    }

    /// Charges the time since `t0` and returns a fresh `Instant` —
    /// the "lap" idiom for timing consecutive phases.
    #[inline]
    pub fn lap(&mut self, id: SectionId, t0: Instant) -> Instant {
        let now = Instant::now();
        self.add(id, now - t0);
        now
    }

    /// Accumulated nanoseconds for a declared section name.
    pub fn ns(&self, name: &str) -> u64 {
        self.ns[self.id(name).0]
    }

    /// Number of times a section was charged.
    pub fn hits(&self, name: &str) -> u64 {
        self.hits[self.id(name).0]
    }

    /// Folds another table (same declaration) into this one.
    ///
    /// # Panics
    ///
    /// Panics when the two tables declare different sections.
    pub fn merge(&mut self, other: &SectionTimers) {
        assert_eq!(self.names, other.names, "merging differently-shaped timers");
        for i in 0..self.ns.len() {
            self.ns[i] += other.ns[i];
            self.hits[i] += other.hits[i];
        }
    }

    /// Exports every section as `section.<path>.ns` counters (with a
    /// `.hits` sibling) into a registry.
    pub fn export_into(&self, reg: &mut MetricsRegistry) {
        for (i, name) in self.names.iter().enumerate() {
            let path = name.replace('/', ".");
            reg.counter_at(&format!("section.{path}.ns"), Unit::Nanos, self.ns[i]);
            reg.counter_at(&format!("section.{path}.hits"), Unit::Count, self.hits[i]);
        }
    }

    /// JSON object `{path: {ns, hits}}` in declaration order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(
            self.names
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    (
                        name.to_string(),
                        JsonValue::Obj(vec![
                            ("ns".into(), JsonValue::Int(self.ns[i])),
                            ("hits".into(), JsonValue::Int(self.hits[i])),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// Human rendering: indentation from path depth, percentages against
    /// the root total (sum of depth-0 sections).
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let total: u64 = self
            .names
            .iter()
            .zip(&self.ns)
            .filter(|(n, _)| !n.contains('/'))
            .map(|(_, ns)| *ns)
            .sum();
        let mut out = String::new();
        for (i, name) in self.names.iter().enumerate() {
            let depth = name.matches('/').count();
            let leaf = name.rsplit('/').next().unwrap_or(name);
            let pct = if total > 0 {
                self.ns[i] as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:indent$}{:<24} {:>12.3} ms {:>6.1}%  ({} laps)",
                "",
                leaf,
                self.ns[i] as f64 / 1e6,
                pct,
                self.hits[i],
                indent = depth * 2
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SectionTimers {
        SectionTimers::new(&["run", "run/fetch", "run/consume", "run/consume/drain"])
    }

    #[test]
    fn accumulation_and_lookup() {
        let mut t = table();
        let fetch = t.id("run/fetch");
        t.add_ns(fetch, 100);
        t.add_ns(fetch, 50);
        assert_eq!(t.ns("run/fetch"), 150);
        assert_eq!(t.hits("run/fetch"), 2);
        assert_eq!(t.ns("run/consume"), 0);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_section_panics() {
        table().id("run/nope");
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = table();
        let mut b = table();
        a.add_ns(a.id("run"), 10);
        b.add_ns(b.id("run"), 5);
        b.add_ns(b.id("run/consume/drain"), 7);
        a.merge(&b);
        assert_eq!(a.ns("run"), 15);
        assert_eq!(a.ns("run/consume/drain"), 7);
        assert_eq!(a.hits("run"), 2);
    }

    #[test]
    fn export_uses_dotted_paths() {
        let mut t = table();
        t.add_ns(t.id("run/consume/drain"), 42);
        let mut reg = MetricsRegistry::new();
        t.export_into(&mut reg);
        assert_eq!(reg.counter_value("section.run.consume.drain.ns"), Some(42));
        assert_eq!(reg.counter_value("section.run.fetch.hits"), Some(0));
    }

    #[test]
    fn human_rendering_nests_and_percentages_sum() {
        let mut t = table();
        t.add_ns(t.id("run"), 1_000_000);
        let text = t.render_human();
        assert!(text.contains("run"));
        assert!(text.contains("100.0%"));
        assert!(text.contains("drain"));
    }
}

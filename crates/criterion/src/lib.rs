//! Offline, API-compatible subset of the [`criterion`] crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim supports the workspace's `harness = false`
//! bench target: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Throughput`, `sample_size` and `Bencher::iter`. Timing is a simple
//! best-of-samples wall-clock measurement printed as `ns/iter` — adequate
//! for spotting order-of-magnitude simulator regressions, without the real
//! crate's statistical machinery (no outlier analysis, no HTML reports).
//!
//! To switch to the real crate, repoint the `criterion` entry in the
//! workspace `[workspace.dependencies]` at a registry version.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Command-line options accepted by `harness = false` bench binaries:
/// positional arguments are substring filters on the full benchmark name
/// (`group/function`), `--smoke` runs each selected benchmark exactly once
/// (a compile-and-run check for CI, not a measurement), and any other
/// dashed flag — notably the `--bench` cargo appends — is ignored, as the
/// real criterion does.
#[derive(Debug, Default, PartialEq, Eq)]
struct Cli {
    filters: Vec<String>,
    smoke: bool,
}

impl Cli {
    fn parse<I: Iterator<Item = String>>(args: I) -> Cli {
        let mut cli = Cli::default();
        for arg in args {
            if arg == "--smoke" {
                cli.smoke = true;
            } else if !arg.starts_with('-') {
                cli.filters.push(arg);
            }
        }
        cli
    }

    fn selects(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }
}

fn cli() -> &'static Cli {
    static CLI: OnceLock<Cli> = OnceLock::new();
    CLI.get_or_init(|| Cli::parse(std::env::args().skip(1)))
}

/// Per-iteration throughput annotation (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Target for [`Bencher::iter`] closures.
pub struct Bencher {
    samples: usize,
    smoke: bool,
    /// Best observed per-iteration time, filled in by [`Bencher::iter`].
    best_ns: f64,
}

impl Bencher {
    /// Times `f`, keeping the best of several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            // CI smoke mode: one real iteration, timed but not sampled —
            // proves the benchmark compiles and runs, at minimal cost.
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.best_ns = t0.elapsed().as_nanos() as f64;
            return;
        }
        // Calibrate: grow the batch until one batch takes >= 1ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                self.best_ns = elapsed.as_nanos() as f64 / batch as f64;
                break;
            }
            batch *= 4;
        }
        for _ in 1..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    if !cli().selects(name) {
        return;
    }
    let mut b = Bencher {
        samples,
        smoke: cli().smoke,
        best_ns: f64::NAN,
    };
    f(&mut b);
    let rate = match tp {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / b.best_ns)
        }
        Some(Throughput::Bytes(n)) => format!("  ({:.1} MB/s)", n as f64 * 1e3 / b.best_ns),
        None => String::new(),
    };
    println!("{name:<40} {:>14.1} ns/iter{rate}", b.best_ns);
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2).throughput(Throughput::Elements(1));
        group.bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
        group.finish();
    }

    criterion_group!(smoke_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1u32 + 1));
    }

    #[test]
    fn group_macro_expands() {
        smoke_group();
    }

    #[test]
    fn cli_parses_filters_and_smoke_and_ignores_cargo_flags() {
        let cli = Cli::parse(
            ["--bench", "timing_wheel", "--smoke", "consume_batch", "-q"]
                .into_iter()
                .map(String::from),
        );
        assert!(cli.smoke);
        assert_eq!(cli.filters, ["timing_wheel", "consume_batch"]);
        assert!(cli.selects("timing_wheel/mcf_wheel"));
        assert!(cli.selects("consume_batch/perl_batched"));
        assert!(!cli.selects("cache/l1_hit"));
        // No filters selects everything.
        assert!(Cli::parse(std::iter::empty()).selects("anything/at_all"));
    }
}

//! Offline, API-compatible subset of the [`criterion`] crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim supports the workspace's `harness = false`
//! bench target: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Throughput`, `sample_size` and `Bencher::iter`. Timing is a simple
//! best-of-samples wall-clock measurement printed as `ns/iter` — adequate
//! for spotting order-of-magnitude simulator regressions, without the real
//! crate's statistical machinery (no outlier analysis, no HTML reports).
//!
//! To switch to the real crate, repoint the `criterion` entry in the
//! workspace `[workspace.dependencies]` at a registry version.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Command-line options accepted by `harness = false` bench binaries:
/// positional arguments are substring filters on the full benchmark name
/// (`group/function`), `--smoke` runs each selected benchmark exactly once
/// (a compile-and-run check for CI, not a measurement), `--json PATH`
/// additionally writes every measured benchmark as a `watchdog-bench-v1`
/// snapshot — the same schema `watchdog-cli perf` emits and CI validates —
/// and any other dashed flag — notably the `--bench` cargo appends — is
/// ignored, as the real criterion does.
#[derive(Debug, Default, PartialEq, Eq)]
struct Cli {
    filters: Vec<String>,
    smoke: bool,
    json: Option<String>,
}

impl Cli {
    fn parse<I: Iterator<Item = String>>(args: I) -> Cli {
        let mut cli = Cli::default();
        let mut args = args;
        while let Some(arg) = args.next() {
            if arg == "--smoke" {
                cli.smoke = true;
            } else if arg == "--json" {
                cli.json = args.next();
            } else if !arg.starts_with('-') {
                cli.filters.push(arg);
            }
        }
        cli
    }

    fn selects(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }
}

fn cli() -> &'static Cli {
    static CLI: OnceLock<Cli> = OnceLock::new();
    CLI.get_or_init(|| Cli::parse(std::env::args().skip(1)))
}

/// Per-iteration throughput annotation (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Target for [`Bencher::iter`] closures.
pub struct Bencher {
    samples: usize,
    smoke: bool,
    /// Best observed per-iteration time, filled in by [`Bencher::iter`].
    best_ns: f64,
    /// Total iterations executed while measuring (calibration included).
    iters: u64,
}

impl Bencher {
    /// Times `f`, keeping the best of several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            // CI smoke mode: one real iteration, timed but not sampled —
            // proves the benchmark compiles and runs, at minimal cost.
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.best_ns = t0.elapsed().as_nanos() as f64;
            self.iters = 1;
            return;
        }
        // Calibrate: grow the batch until one batch takes >= 1ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.iters += batch;
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                self.best_ns = elapsed.as_nanos() as f64 / batch as f64;
                break;
            }
            batch *= 4;
        }
        for _ in 1..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.iters += batch;
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    if !cli().selects(name) {
        return;
    }
    let mut b = Bencher {
        samples,
        smoke: cli().smoke,
        best_ns: f64::NAN,
        iters: 0,
    };
    f(&mut b);
    let rate = match tp {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / b.best_ns)
        }
        Some(Throughput::Bytes(n)) => format!("  ({:.1} MB/s)", n as f64 * 1e3 / b.best_ns),
        None => String::new(),
    };
    println!("{name:<40} {:>14.1} ns/iter{rate}", b.best_ns);
    if cli().json.is_some() {
        // Only element throughput carries into the snapshot's rate column
        // (the schema defines `melem_per_s` as 0.0 without one).
        let melem = match tp {
            Some(Throughput::Elements(n)) if b.best_ns > 0.0 => n as f64 * 1e3 / b.best_ns,
            _ => 0.0,
        };
        let ns = if b.best_ns.is_finite() {
            b.best_ns
        } else {
            0.0
        };
        records().lock().expect("bench record lock").push(Record {
            name: name.to_string(),
            ns_per_iter: ns,
            melem_per_s: melem,
            iterations: b.iters,
        });
    }
}

/// One measured case destined for the `--json` snapshot.
struct Record {
    name: String,
    ns_per_iter: f64,
    melem_per_s: f64,
    iterations: u64,
}

fn records() -> &'static Mutex<Vec<Record>> {
    static RECORDS: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// enough for benchmark names and revision strings, standards-correct for
/// anything else.
fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the collected records as a `watchdog-bench-v1` snapshot —
/// field-for-field the document `watchdog-cli perf` writes (the shim is
/// dependency-free, so the rendering is inlined rather than shared; the
/// workspace's CLI smoke test parses this output with the shared
/// validator to keep the two producers in lock-step). The revision comes
/// from `WATCHDOG_BENCH_REV` when CI exports it.
fn render_snapshot(rev: &str, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"watchdog-bench-v1\",\n  \"rev\": ");
    escape_json(rev, &mut out);
    out.push_str(",\n  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\n      \"name\": ");
        escape_json(&r.name, &mut out);
        out.push_str(&format!(
            ",\n      \"ns_per_iter\": {},\n      \"melem_per_s\": {},\n      \"iterations\": {}\n    }}",
            r.ns_per_iter, r.melem_per_s, r.iterations
        ));
    }
    if records.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Writes the `--json` snapshot, if requested. `criterion_main!` calls
/// this after every group has run; calling it without `--json` is a
/// no-op.
pub fn finalize() {
    let Some(path) = cli().json.as_deref() else {
        return;
    };
    let rev = std::env::var("WATCHDOG_BENCH_REV").unwrap_or_else(|_| "unknown".to_string());
    let recs = records().lock().expect("bench record lock");
    let doc = render_snapshot(&rev, &recs);
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("cannot write bench snapshot {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} bench record(s) -> {path}", recs.len());
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2).throughput(Throughput::Elements(1));
        group.bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
        group.finish();
    }

    criterion_group!(smoke_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1u32 + 1));
    }

    #[test]
    fn group_macro_expands() {
        smoke_group();
    }

    #[test]
    fn cli_parses_filters_and_smoke_and_ignores_cargo_flags() {
        let cli = Cli::parse(
            ["--bench", "timing_wheel", "--smoke", "consume_batch", "-q"]
                .into_iter()
                .map(String::from),
        );
        assert!(cli.smoke);
        assert!(cli.json.is_none());
        assert_eq!(cli.filters, ["timing_wheel", "consume_batch"]);
        assert!(cli.selects("timing_wheel/mcf_wheel"));
        assert!(cli.selects("consume_batch/perl_batched"));
        assert!(!cli.selects("cache/l1_hit"));
        // No filters selects everything.
        assert!(Cli::parse(std::iter::empty()).selects("anything/at_all"));
    }

    #[test]
    fn cli_parses_json_path() {
        let cli = Cli::parse(
            ["--json", "out/BENCH_x.json", "timing_wheel"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(cli.json.as_deref(), Some("out/BENCH_x.json"));
        assert_eq!(cli.filters, ["timing_wheel"]);
    }

    #[test]
    fn rendered_snapshot_passes_the_shared_validator() {
        // The shim's hand-rolled writer must emit exactly what
        // `watchdog-telemetry`'s shared parser (used by `watchdog-cli
        // perf` and CI) validates — this is the no-drift guarantee.
        let records = vec![
            Record {
                name: "timing_wheel/mcf_wheel".into(),
                ns_per_iter: 1234.5,
                melem_per_s: 810.0,
                iterations: 42,
            },
            Record {
                name: "quote\"and\\slash".into(),
                ns_per_iter: 9.0,
                melem_per_s: 0.0,
                iterations: 1,
            },
        ];
        let doc = render_snapshot("abc1234", &records);
        let snap = watchdog_telemetry::BenchSnapshot::from_json(&doc).expect("validates");
        assert_eq!(snap.rev, "abc1234");
        assert_eq!(snap.records.len(), 2);
        let r = snap.record("timing_wheel/mcf_wheel").unwrap();
        assert_eq!(r.ns_per_iter, 1234.5);
        assert_eq!(r.melem_per_s, 810.0);
        assert_eq!(r.iterations, 42);
        assert!(snap.record("quote\"and\\slash").is_some());
        // Empty snapshots are still valid documents.
        let empty = render_snapshot("unknown", &[]);
        assert!(watchdog_telemetry::BenchSnapshot::from_json(&empty)
            .expect("validates")
            .records
            .is_empty());
    }
}

//! The parallel suite runner must be a pure performance optimisation:
//! fanning the (benchmark × mode) grid across worker threads may not
//! change a single byte of the results relative to a serial run.

use watchdog_bench::run_suite_with_jobs;
use watchdog_core::prelude::*;
use watchdog_workloads::Scale;

/// Serial (`jobs = 1`) and parallel (`jobs = 4`) runs of the full suite
/// under two modes at [`Scale::Test`] must render identically — same
/// benchmarks, same mode labels, same statistics, in the same
/// [`std::collections::BTreeMap`] order.
#[test]
fn parallel_suite_is_byte_identical_to_serial() {
    let modes = [Mode::Baseline, Mode::watchdog_conservative()];
    let serial = run_suite_with_jobs(&modes, Scale::Test, false, 1);
    let parallel = run_suite_with_jobs(&modes, Scale::Test, false, 4);

    assert_eq!(serial.len(), 20);
    assert_eq!(parallel.len(), 20);
    for per_mode in serial.values() {
        assert_eq!(per_mode.len(), modes.len());
    }

    // Byte-identical: the full Debug rendering covers every field of every
    // report (stats, heap, footprint, violations) and the map ordering.
    let s = format!("{serial:#?}");
    let p = format!("{parallel:#?}");
    assert_eq!(s, p, "parallel run diverged from the serial run");
}

/// Two parallel runs must also agree with each other (no scheduling
/// sensitivity), including when oversubscribed relative to the machine.
#[test]
fn parallel_suite_is_schedule_insensitive() {
    let modes = [Mode::Baseline];
    let a = run_suite_with_jobs(&modes, Scale::Test, false, 2);
    let b = run_suite_with_jobs(&modes, Scale::Test, false, 16);
    assert_eq!(format!("{a:#?}"), format!("{b:#?}"));
}

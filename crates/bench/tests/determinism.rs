//! The parallel runners must be pure performance optimisations: fanning
//! the (benchmark × mode) grid, the Juliet suite or a fuzzing campaign
//! across worker threads may not change a single byte of the results
//! relative to a serial run.

use watchdog_bench::{
    run_fuzz_with_jobs, run_juliet_with_jobs, run_suite_with_jobs, summarize_juliet,
};
use watchdog_core::prelude::*;
use watchdog_workloads::Scale;

/// Serial (`jobs = 1`) and parallel (`jobs = 4`) runs of the full suite
/// under two modes at [`Scale::Test`] must render identically — same
/// benchmarks, same mode labels, same statistics, in the same
/// [`std::collections::BTreeMap`] order.
#[test]
fn parallel_suite_is_byte_identical_to_serial() {
    let modes = [Mode::Baseline, Mode::watchdog_conservative()];
    let serial = run_suite_with_jobs(&modes, Scale::Test, false, 1);
    let parallel = run_suite_with_jobs(&modes, Scale::Test, false, 4);

    assert_eq!(serial.len(), 20);
    assert_eq!(parallel.len(), 20);
    for per_mode in serial.values() {
        assert_eq!(per_mode.len(), modes.len());
    }

    // Byte-identical: the full Debug rendering covers every field of every
    // report (stats, heap, footprint, violations) and the map ordering.
    let s = format!("{serial:#?}");
    let p = format!("{parallel:#?}");
    assert_eq!(s, p, "parallel run diverged from the serial run");
}

/// Two parallel runs must also agree with each other (no scheduling
/// sensitivity), including when oversubscribed relative to the machine.
#[test]
fn parallel_suite_is_schedule_insensitive() {
    let modes = [Mode::Baseline];
    let a = run_suite_with_jobs(&modes, Scale::Test, false, 2);
    let b = run_suite_with_jobs(&modes, Scale::Test, false, 16);
    assert_eq!(format!("{a:#?}"), format!("{b:#?}"));
}

/// The sharded Juliet runner (one case per work unit) must render
/// byte-identically to its serial run: same cases, same order, same
/// verdicts, whatever the worker count.
#[test]
fn sharded_juliet_is_byte_identical_to_serial() {
    let mode = Mode::watchdog_conservative();
    let serial = run_juliet_with_jobs(mode, 1, Some(60));
    let parallel = run_juliet_with_jobs(mode, 8, Some(60));
    assert_eq!(serial.len(), 60);
    assert_eq!(
        format!("{serial:#?}"),
        format!("{parallel:#?}"),
        "sharded Juliet run diverged from the serial run"
    );
    let s = summarize_juliet(&serial);
    assert_eq!((s.detected, s.false_positives), (60, 0), "{s:?}");
}

/// Generator determinism across the worker pool: the same seed band must
/// produce identical programs, oracles and per-mode results (down to the
/// report digests) for a serial and a parallel campaign.
#[test]
fn fuzz_campaign_is_schedule_insensitive() {
    let serial = run_fuzz_with_jobs(100, 16, 1);
    let parallel = run_fuzz_with_jobs(100, 16, 4);
    assert!(serial.ok(), "failures: {:?}", serial.failures);
    assert_eq!(
        serial, parallel,
        "sharded fuzz campaign diverged from the serial run"
    );
    // The digests cover the generated program bytes, the oracle and every
    // mode's architectural results — byte-identical generation and
    // simulation per seed, independent of scheduling.
    for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(a.program_digest, b.program_digest);
        assert_eq!(a.report_digest, b.report_digest);
    }
}

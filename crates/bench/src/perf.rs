//! Machine-readable perf snapshots: the shared case list behind
//! `watchdog-cli perf` and the criterion `timing_wheel` /
//! `consume_batch` groups.
//!
//! Both consumers measure the same thing — the calendar-queue timing
//! core draining a pre-assembled committed µop stream — so the stream
//! assembly and the feed loops live here once. The criterion benches
//! wrap them in statistical sampling for interactive use; [`run_perf`]
//! wraps them in a cheap best-of-N loop and emits
//! [`BenchRecord`]s under the `watchdog-bench-v1` schema, which is what
//! CI archives as `BENCH_<rev>.json`.

use std::time::Instant;
use watchdog_core::machine::{Machine, MachineConfig, Step};
use watchdog_isa::crack::CrackedInst;
use watchdog_mem::HierarchyConfig;
use watchdog_pipeline::{
    CoreConfig, SchedModel, ScheduledCore, TelemetryConfig, TimingCore, UopBatch,
};
use watchdog_telemetry::{BenchRecord, BenchSnapshot};
use watchdog_workloads::{benchmark, Scale};

/// The workloads every perf snapshot measures: `mcf` is the paper's
/// pointer-chaser, `perl` the allocation/call-heavy contrast.
pub const PERF_WORKLOADS: [&str; 2] = ["mcf", "perl"];

/// Runs the functional machine once and returns the committed cracked
/// stream — the input every timing-core case drains.
pub fn committed_stream(name: &str, scale: Scale) -> Vec<CrackedInst> {
    let program = benchmark(name).expect("registered benchmark").build(scale);
    let mut machine = Machine::new(&program, MachineConfig::watchdog());
    let mut stream = Vec::new();
    while let Step::Executed(ci) = machine.step().expect("benchmark executes") {
        stream.push(ci.expect("µop-emitting machine").clone());
    }
    stream
}

/// Drains `stream` through a fresh `ScheduledCore<S>` with the batched
/// feed, optionally with the self-profiler attached (the telemetry
/// overhead gauge), returning final cycles.
pub fn feed_stream<S: SchedModel>(
    stream: &[CrackedInst],
    telemetry: Option<TelemetryConfig>,
) -> u64 {
    feed_stream_dispatch::<S>(stream, telemetry, false)
}

/// [`feed_stream`] with the dispatch path selectable: `match_dispatch`
/// drives the preserved match-based reference dispatcher instead of the
/// table-driven lane-streaming default — the `dispatch_table/*` cases
/// measure both on the same stream so the gap between them is the lane
/// path's contribution.
pub fn feed_stream_dispatch<S: SchedModel>(
    stream: &[CrackedInst],
    telemetry: Option<TelemetryConfig>,
    match_dispatch: bool,
) -> u64 {
    let mut core = ScheduledCore::<S>::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
    core.set_match_dispatch(match_dispatch);
    if let Some(cfg) = telemetry {
        core.enable_telemetry(cfg);
    }
    let mut batch = UopBatch::with_capacity(UopBatch::TARGET_INSTS);
    for ci in stream {
        batch.push_cracked(ci);
        if batch.len() >= UopBatch::TARGET_INSTS {
            core.consume_batch(&batch);
            batch.clear();
        }
    }
    core.consume_batch(&batch);
    core.finish().cycles
}

/// Drains `stream` through the per-instruction consume shim (the
/// `consume_batch/{name}_per_inst` reference point).
pub fn consume_per_inst(stream: &[CrackedInst]) -> u64 {
    let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
    for ci in stream {
        core.consume(ci);
    }
    core.finish().cycles
}

/// Best-of-`samples` wall-clock measurement of one case.
fn measure(name: &str, elems: u64, samples: u64, mut f: impl FnMut() -> u64) -> BenchRecord {
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let ns = t0.elapsed().as_nanos() as f64;
        // Per-iteration cost: each sample is one full drain of the stream.
        if ns < best {
            best = ns;
        }
    }
    BenchRecord {
        name: name.into(),
        ns_per_iter: best,
        melem_per_s: BenchRecord::rate(elems, best),
        iterations: samples.max(1),
    }
}

/// Measures every perf case whose `group/case` path contains `filter`
/// (all cases when `filter` is `None`), invoking `progress` per finished
/// record. The case list mirrors the criterion `timing_wheel` and
/// `consume_batch` / `dispatch_table` groups, plus a telemetry-enabled
/// wheel variant so the profiler's overhead is part of every snapshot.
pub fn run_perf(
    samples: u64,
    filter: Option<&str>,
    mut progress: impl FnMut(&BenchRecord),
) -> Vec<BenchRecord> {
    let mut records: Vec<BenchRecord> = Vec::new();
    let selected = |name: &str| filter.is_none_or(|f| name.contains(f));
    for name in PERF_WORKLOADS {
        let stream = committed_stream(name, Scale::Test);
        let elems = stream.len() as u64;
        // (case path, elements per iteration, runner); the throughput
        // denominator is guest instructions, matching the bench groups.
        type Runner<'a> = Box<dyn FnMut() -> u64 + 'a>;
        let cases: Vec<(String, Runner<'_>)> = vec![
            (
                format!("timing_wheel/{name}_wheel"),
                Box::new(|| feed_stream::<watchdog_pipeline::WheelSched>(&stream, None)),
            ),
            (
                format!("timing_wheel/{name}_wheel_telemetry"),
                Box::new(|| {
                    feed_stream::<watchdog_pipeline::WheelSched>(
                        &stream,
                        Some(TelemetryConfig::default()),
                    )
                }),
            ),
            (
                format!("timing_wheel/{name}_heap_reference"),
                Box::new(|| feed_stream::<watchdog_pipeline::HeapSched>(&stream, None)),
            ),
            (
                format!("dispatch_table/{name}_lane"),
                Box::new(|| {
                    feed_stream_dispatch::<watchdog_pipeline::WheelSched>(&stream, None, false)
                }),
            ),
            (
                format!("dispatch_table/{name}_match_reference"),
                Box::new(|| {
                    feed_stream_dispatch::<watchdog_pipeline::WheelSched>(&stream, None, true)
                }),
            ),
            (
                format!("consume_batch/{name}_per_inst"),
                Box::new(|| consume_per_inst(&stream)),
            ),
            (
                format!("consume_batch/{name}_batched"),
                Box::new(|| feed_stream::<watchdog_pipeline::WheelSched>(&stream, None)),
            ),
        ];
        for (case, mut run) in cases {
            if !selected(&case) {
                continue;
            }
            let rec = measure(&case, elems, samples, &mut run);
            progress(&rec);
            records.push(rec);
        }
    }
    records
}

/// [`run_perf`] packaged as a validated snapshot ready to be written to
/// `BENCH_<rev>.json`.
pub fn perf_snapshot(
    rev: &str,
    samples: u64,
    filter: Option<&str>,
    progress: impl FnMut(&BenchRecord),
) -> BenchSnapshot {
    BenchSnapshot {
        rev: rev.into(),
        records: run_perf(samples, filter, progress),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_and_batched_feeds_agree_with_per_inst() {
        let stream = committed_stream("mcf", Scale::Test);
        assert!(!stream.is_empty());
        let wheel = feed_stream::<watchdog_pipeline::WheelSched>(&stream, None);
        let wheel_tele =
            feed_stream::<watchdog_pipeline::WheelSched>(&stream, Some(TelemetryConfig::default()));
        let per_inst = consume_per_inst(&stream);
        let match_ref = feed_stream_dispatch::<watchdog_pipeline::WheelSched>(&stream, None, true);
        assert_eq!(wheel, per_inst, "batched and per-inst feeds agree");
        assert_eq!(wheel, wheel_tele, "telemetry never changes timing");
        assert_eq!(wheel, match_ref, "lane and match dispatch agree");
    }

    #[test]
    fn snapshot_round_trips_through_the_shared_schema() {
        let snap = perf_snapshot("testrev", 1, Some("mcf_wheel"), |_| {});
        assert!(snap.record("timing_wheel/mcf_wheel").is_some());
        assert!(snap.record("timing_wheel/mcf_wheel_telemetry").is_some());
        let parsed = BenchSnapshot::from_json(&snap.to_json()).expect("self-validates");
        assert_eq!(parsed, snap);
        for r in &parsed.records {
            assert!(r.ns_per_iter > 0.0 && r.melem_per_s > 0.0, "{r:?}");
        }
    }
}

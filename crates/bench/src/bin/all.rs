//! Regenerates every table and figure in sequence (EXPERIMENTS.md input).
fn main() {
    let scale = watchdog_bench::scale_from_args();
    watchdog_bench::figs::table2();
    watchdog_bench::figs::table1();
    watchdog_bench::figs::juliet();
    watchdog_bench::figs::fig05(scale);
    watchdog_bench::figs::fig07(scale);
    watchdog_bench::figs::fig08(scale);
    watchdog_bench::figs::fig09(scale);
    watchdog_bench::figs::ablation_ideal_shadow(scale);
    watchdog_bench::figs::fig10(scale);
    watchdog_bench::figs::fig11(scale);
}

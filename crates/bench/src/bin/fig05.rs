//! Regenerates Figure 05 of the paper. Usage: `cargo run -p watchdog-bench --bin fig05 [--scale test|small|ref]`.
fn main() {
    watchdog_bench::figs::fig05(watchdog_bench::scale_from_args());
}

//! Diagnostic: per-benchmark stall breakdown, cache behaviour and
//! crack-cache effectiveness under selected modes.
use watchdog_core::prelude::*;
use watchdog_workloads::{benchmark, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("milc");
    let p = benchmark(name).expect("known benchmark").build(Scale::Test);
    for mode in [
        Mode::Baseline,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ] {
        let r = Simulator::new(SimConfig::timed(mode)).run(&p).unwrap();
        let t = r.timing.as_ref().unwrap();
        let cc = match r.crack_cache {
            Some(s) => format!("h={} m={} ({:.1}%)", s.hits, s.misses, s.hit_rate() * 100.0),
            None => "off".into(),
        };
        println!(
            "{:<28} cycles={:<8} uops={:<8} ipc={:.2} stalls rob={} iq={} lq={} sq={} ic={} br={} | l1d m={} ({:.2}%) ll acc={} m={} ({:.2}%, {:.2}/1k insts) shadow={} | crack$ {}",
            mode.label(), t.cycles, t.uops, t.ipc(),
            t.stalls.rob, t.stalls.iq, t.stalls.lq, t.stalls.sq, t.stalls.icache, t.stalls.redirect,
            t.hierarchy.l1d.misses, t.hierarchy.l1d.miss_rate() * 100.0,
            t.hierarchy.ll.accesses, t.hierarchy.ll.misses, t.hierarchy.ll.miss_rate() * 100.0,
            t.hierarchy.ll_mpk(t.insts), t.hierarchy.shadow_accesses,
            cc,
        );
    }
}

//! Diagnostic: per-benchmark stall breakdown, cache behaviour,
//! crack-cache effectiveness, trace-subsystem figures (trace size,
//! events/inst, replay-vs-live speedup) and batched-feed statistics
//! (batch occupancy, batches/1k insts, per-inst vs batched consume
//! speedup, lock-probe memo hits) under selected modes.
use std::time::Instant;
use watchdog_core::prelude::*;
use watchdog_trace::{record, replay, replay_with_stats, ReplayConfig};
use watchdog_workloads::{benchmark, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("milc");
    let p = benchmark(name).expect("known benchmark").build(Scale::Test);
    let mut live: Vec<(Mode, RunReport, f64)> = Vec::new();
    for mode in [
        Mode::Baseline,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ] {
        let t0 = Instant::now();
        let r = Simulator::new(SimConfig::timed(mode)).run(&p).unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let t = r.timing.as_ref().unwrap();
        let cc = match r.crack_cache {
            Some(s) => format!("h={} m={} ({:.1}%)", s.hits, s.misses, s.hit_rate() * 100.0),
            None => "off".into(),
        };
        // Simulator throughput: how fast the timed model itself runs on
        // this host (guest instructions retired per host second) and how
        // many guest cycles each host nanosecond buys.
        let insts_per_sec = t.insts as f64 / secs.max(1e-9);
        let cycles_per_host_ns = t.cycles as f64 / (secs.max(1e-9) * 1e9);
        println!(
            "{:<28} cycles={:<8} uops={:<8} ipc={:.2} stalls rob={} iq={} lq={} sq={} ic={} br={} | l1d m={} ({:.2}%) ll acc={} m={} ({:.2}%, {:.2}/1k insts) shadow={} | crack$ {} | host {:.2} Minsts/s {:.3} cyc/ns",
            mode.label(), t.cycles, t.uops, t.ipc(),
            t.stalls.rob, t.stalls.iq, t.stalls.lq, t.stalls.sq, t.stalls.icache, t.stalls.redirect,
            t.hierarchy.l1d.misses, t.hierarchy.l1d.miss_rate() * 100.0,
            t.hierarchy.ll.accesses, t.hierarchy.ll.misses, t.hierarchy.ll.miss_rate() * 100.0,
            t.hierarchy.ll_mpk(t.insts), t.hierarchy.shadow_accesses,
            cc,
            insts_per_sec / 1e6,
            cycles_per_host_ns,
        );
        live.push((mode, r, secs));
    }

    // Trace subsystem: capture once per mode, replay, and show what the
    // trace-driven sweep path costs next to the live timed simulation.
    println!("-- trace: record once, replay per ablation point --");
    let mut traces = Vec::new();
    for (mode, live_report, live_secs) in &live {
        let t0 = Instant::now();
        let trace = record(&p, *mode, SimConfig::timed(*mode).max_insts).unwrap();
        let record_secs = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let replayed = replay(&p, &trace, &ReplayConfig::default()).unwrap();
        let replay_secs = t0.elapsed().as_secs_f64();
        let exact = format!("{live_report:?}") == format!("{replayed:?}");
        let info = trace.info();
        println!(
            "{:<28} trace={}B ({:.2} B/event, {:.3} events/inst) record={:.3}s replay={:.3}s live={:.3}s speedup={:.1}x oracle-exact={}",
            mode.label(),
            info.total_bytes,
            info.bytes_per_event(),
            info.events as f64 / info.insts.max(1) as f64,
            record_secs,
            replay_secs,
            live_secs,
            live_secs / replay_secs.max(1e-9),
            if exact { "yes" } else { "NO (BUG)" },
        );
        traces.push((*mode, trace));
    }

    // Batched µop-event pipeline: how the committed stream reaches the
    // timing core, and what batching buys over the per-instruction shim.
    // Timed on the replay path, where both feeds drain the same recorded
    // events (the live loop uses the same batched consume).
    println!("-- batched µop-event feed: per-inst vs batched consume --");
    for (mode, trace) in &traces {
        let best = |batch: bool| {
            let cfg = ReplayConfig {
                batch,
                ..ReplayConfig::default()
            };
            // Best of three: replay is fast enough at diag scale that a
            // single run is noise-dominated.
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    let out = replay_with_stats(&p, trace, &cfg).unwrap();
                    (t0.elapsed().as_secs_f64(), out)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("three runs")
        };
        let (batched_secs, (batched_report, stats)) = best(true);
        let (per_inst_secs, (per_inst_report, _)) = best(false);
        let exact = format!("{batched_report:?}") == format!("{per_inst_report:?}");
        println!(
            "{:<28} occupancy={:.1} insts/batch batches/1k-insts={:.2} ll-memo-hits={} per-inst={:.3}s batched={:.3}s consume-speedup={:.2}x feed-exact={}",
            mode.label(),
            stats.feed.mean_occupancy(),
            stats.feed.batches_per_kinst(),
            stats.ll_memo_hits,
            per_inst_secs,
            batched_secs,
            per_inst_secs / batched_secs.max(1e-9),
            if exact { "yes" } else { "NO (BUG)" },
        );
    }
}

//! Diagnostic: per-benchmark stall breakdown, cache behaviour,
//! crack-cache effectiveness, trace-subsystem figures (trace size,
//! events/inst, replay-vs-live speedup) and batched-feed statistics
//! (batch occupancy, batches/1k insts, per-inst vs batched consume
//! speedup, lock-probe memo hits) under selected modes.
//!
//! Every live-run figure is read back out of the [`MetricsRegistry`]
//! built by `export_metrics` — the same registry `watchdog-cli run
//! --json` serializes — so the human diagnostics and the machine
//! export cannot drift apart.
use std::time::Instant;
use watchdog_core::{export_metrics, prelude::*};
use watchdog_telemetry::MetricsRegistry;
use watchdog_trace::{record, replay, replay_with_stats, ReplayConfig};
use watchdog_workloads::{benchmark, Scale};

/// Counter lookup that treats an absent metric as zero (e.g. `crack.*`
/// under the baseline mode).
fn c(reg: &MetricsRegistry, name: &str) -> u64 {
    reg.counter_value(name).unwrap_or(0)
}

/// Gauge lookup, zero when absent.
fn g(reg: &MetricsRegistry, name: &str) -> f64 {
    reg.gauge_value(name).unwrap_or(0.0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("milc");
    let p = benchmark(name).expect("known benchmark").build(Scale::Test);
    let mut live: Vec<(Mode, RunReport, f64)> = Vec::new();
    for mode in [
        Mode::Baseline,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ] {
        let (r, tele) = Simulator::new(SimConfig::timed(mode))
            .run_instrumented(&p)
            .unwrap();
        let secs = tele.host_ns as f64 / 1e9;
        let reg = export_metrics(&r, Some(&tele));
        let cc = if reg.counter_value("crack.hits").is_some() {
            format!(
                "h={} m={} ({:.1}%)",
                c(&reg, "crack.hits"),
                c(&reg, "crack.misses"),
                g(&reg, "crack.hit_rate") * 100.0
            )
        } else {
            "off".into()
        };
        // Simulator throughput: how fast the timed model itself runs on
        // this host (guest instructions retired per host second) and how
        // many guest cycles each host nanosecond buys.
        let insts_per_sec = c(&reg, "timing.insts") as f64 / secs.max(1e-9);
        println!(
            "{:<28} cycles={:<8} uops={:<8} ipc={:.2} stalls rob={} iq={} lq={} sq={} ic={} br={} | l1d m={} ({:.2}%) ll acc={} m={} ({:.2}%, {:.2}/1k insts) shadow={} memo={} | crack$ {} | feed occ={:.1} | host {:.2} Minsts/s {:.3} cyc/ns",
            mode.label(),
            c(&reg, "timing.cycles"),
            c(&reg, "timing.uops"),
            g(&reg, "timing.ipc"),
            c(&reg, "stall.rob"), c(&reg, "stall.iq"), c(&reg, "stall.lq"),
            c(&reg, "stall.sq"), c(&reg, "stall.icache"), c(&reg, "stall.redirect"),
            c(&reg, "mem.l1d.misses"), g(&reg, "mem.l1d.miss_rate") * 100.0,
            c(&reg, "mem.ll.accesses"), c(&reg, "mem.ll.misses"),
            g(&reg, "mem.ll.miss_rate") * 100.0,
            g(&reg, "mem.ll.mpk"),
            c(&reg, "mem.access.shadow"),
            c(&reg, "mem.ll.memo_hits"),
            cc,
            g(&reg, "feed.occupancy.mean"),
            insts_per_sec / 1e6,
            g(&reg, "host.cycles_per_ns"),
        );
        live.push((mode, r, secs));
    }

    // Trace subsystem: capture once per mode, replay, and show what the
    // trace-driven sweep path costs next to the live timed simulation.
    println!("-- trace: record once, replay per ablation point --");
    let mut traces = Vec::new();
    for (mode, live_report, live_secs) in &live {
        let t0 = Instant::now();
        let trace = record(&p, *mode, SimConfig::timed(*mode).max_insts).unwrap();
        let record_secs = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let replayed = replay(&p, &trace, &ReplayConfig::default()).unwrap();
        let replay_secs = t0.elapsed().as_secs_f64();
        let exact = format!("{live_report:?}") == format!("{replayed:?}");
        let info = trace.info();
        println!(
            "{:<28} trace={}B ({:.2} B/event, {:.3} events/inst) record={:.3}s replay={:.3}s live={:.3}s speedup={:.1}x oracle-exact={}",
            mode.label(),
            info.total_bytes,
            info.bytes_per_event(),
            info.events as f64 / info.insts.max(1) as f64,
            record_secs,
            replay_secs,
            live_secs,
            live_secs / replay_secs.max(1e-9),
            if exact { "yes" } else { "NO (BUG)" },
        );
        traces.push((*mode, trace));
    }

    // Batched µop-event pipeline: how the committed stream reaches the
    // timing core, and what batching buys over the per-instruction shim.
    // Timed on the replay path, where both feeds drain the same recorded
    // events (the live loop uses the same batched consume).
    println!("-- batched µop-event feed: per-inst vs batched consume --");
    for (mode, trace) in &traces {
        let best = |batch: bool| {
            let cfg = ReplayConfig {
                batch,
                ..ReplayConfig::default()
            };
            // Best of three: replay is fast enough at diag scale that a
            // single run is noise-dominated.
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    let out = replay_with_stats(&p, trace, &cfg).unwrap();
                    (t0.elapsed().as_secs_f64(), out)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("three runs")
        };
        let (batched_secs, (batched_report, stats)) = best(true);
        let (per_inst_secs, (per_inst_report, _)) = best(false);
        let exact = format!("{batched_report:?}") == format!("{per_inst_report:?}");
        println!(
            "{:<28} occupancy={:.1} insts/batch batches/1k-insts={:.2} ll-memo-hits={} per-inst={:.3}s batched={:.3}s consume-speedup={:.2}x feed-exact={}",
            mode.label(),
            stats.feed.mean_occupancy(),
            stats.feed.batches_per_kinst(),
            stats.ll_memo_hits,
            per_inst_secs,
            batched_secs,
            per_inst_secs / batched_secs.max(1e-9),
            if exact { "yes" } else { "NO (BUG)" },
        );
    }

    // Lane-streaming dispatch: how the descriptor-table dispatcher sees
    // the committed stream — per-lane occupancy (share of µops each lane
    // carries) and how much of the stream drained through homogeneous
    // runs (length ≥ 2) versus falling back to singleton, mixed-order
    // dispatch.
    println!("-- lane streaming: per-lane occupancy and homogeneous-run coverage --");
    for (mode, trace) in &traces {
        let (_, stats) = replay_with_stats(&p, trace, &ReplayConfig::default()).unwrap();
        let f = &stats.feed;
        let total: u64 = f.lane_uops.iter().sum();
        let lanes = watchdog_isa::Lane::ALL
            .iter()
            .zip(f.lane_uops)
            .map(|(lane, n)| {
                format!(
                    "{}={:.1}%",
                    lane.label(),
                    100.0 * n as f64 / total.max(1) as f64
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<28} {lanes} | runs={} mean-len={:.2} streamed={:.1}% fallback={:.1}%",
            mode.label(),
            f.lane_runs,
            f.mean_run_len(),
            100.0 * f.streamed_fraction(),
            100.0 * (1.0 - f.streamed_fraction()),
        );
    }
}

//! Regenerates Figure 11 of the paper. Usage: `cargo run -p watchdog-bench --bin fig11 [--scale test|small|ref]`.
fn main() {
    watchdog_bench::figs::fig11(watchdog_bench::scale_from_args());
}

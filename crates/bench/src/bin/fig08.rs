//! Regenerates Figure 08 of the paper. Usage: `cargo run -p watchdog-bench --bin fig08 [--scale test|small|ref]`.
fn main() {
    watchdog_bench::figs::fig08(watchdog_bench::scale_from_args());
}

//! Runs the §9.2 Juliet-style security evaluation.
fn main() {
    watchdog_bench::figs::juliet();
}

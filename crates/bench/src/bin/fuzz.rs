//! Differential fuzzing campaign over `watchdog-gen` seeds.
//!
//! ```text
//! fuzz [--seeds N] [--seed-start K] [--jobs J]   # campaign (default 1000 seeds from 0)
//! fuzz --seed K                                  # verbose single-seed repro
//! ```
//!
//! Every seed generates one adversarial heap-lifetime program (plus its
//! benign twin) and runs the differential matrix of
//! `watchdog_gen::check_seed`. Any divergence — a missed violation, a
//! false positive, a wrong faulting instruction, a timed/functional
//! disagreement — is reported with a one-line repro command. Exit status
//! is non-zero iff any seed failed.
//!
//! The entire command line lives in [`watchdog_bench::fuzz_main`], shared
//! with `watchdog-cli fuzz`.

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let code = watchdog_bench::fuzz_main(&argv[1..]);
    if code != 0 {
        std::process::exit(code);
    }
}

//! Prints Table 2: the simulated processor configuration.
fn main() {
    watchdog_bench::figs::table2();
}

//! Regenerates Figure 10 of the paper. Usage: `cargo run -p watchdog-bench --bin fig10 [--scale test|small|ref]`.
fn main() {
    watchdog_bench::figs::fig10(watchdog_bench::scale_from_args());
}

//! Regenerates Table 1 (with an empirical comprehensiveness demonstration).
fn main() {
    watchdog_bench::figs::table1();
}

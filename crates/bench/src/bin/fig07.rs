//! Regenerates Figure 07 of the paper. Usage: `cargo run -p watchdog-bench --bin fig07 [--scale test|small|ref]`.
fn main() {
    watchdog_bench::figs::fig07(watchdog_bench::scale_from_args());
}

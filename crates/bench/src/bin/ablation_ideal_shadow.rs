//! Regenerates the §9.3 idealized-shadow ablation.
fn main() {
    watchdog_bench::figs::ablation_ideal_shadow(watchdog_bench::scale_from_args());
}

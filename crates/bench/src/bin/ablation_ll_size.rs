//! Lock-location cache size sensitivity (§4.2 / §9.3).
//!
//! The paper: "These results are not particularly sensitive to the exact
//! size of the lock location cache; for a 4KB cache, the miss rate is less
//! than 1 miss per 1000 instructions for seventeen of the twenty
//! benchmarks." This sweep varies the LL$ from 1KB to 16KB and reports the
//! geometric-mean overhead and the <1-miss/1k-instructions count.

use watchdog_bench::{figure_order, geomean, pct, scale_from_args};
use watchdog_core::prelude::*;
use watchdog_mem::CacheConfig;
use watchdog_workloads::all_benchmarks;

fn main() {
    let scale = scale_from_args();
    println!("\n== Ablation: lock-location cache size sweep ==");
    println!(
        "{:<8} {:>12} {:>22}",
        "LL$ size", "geo overhead", "benchmarks < 1 mpki"
    );

    // Baselines once.
    let mut base_cycles = std::collections::BTreeMap::new();
    for spec in all_benchmarks() {
        let p = spec.build(scale);
        let r = Simulator::new(SimConfig::timed(Mode::Baseline))
            .run(&p)
            .unwrap();
        base_cycles.insert(spec.name.to_string(), r.cycles());
    }

    for kb in [1u64, 2, 4, 8, 16] {
        let mut overheads = Vec::new();
        let mut low_mpk = 0;
        for spec in all_benchmarks() {
            let p = spec.build(scale);
            let mut cfg = SimConfig::timed(Mode::watchdog());
            cfg.hierarchy.ll = CacheConfig::new(kb * 1024, 8, 64);
            let r = Simulator::new(cfg).run(&p).unwrap();
            let t = r.timing.as_ref().unwrap();
            overheads.push(r.cycles() as f64 / base_cycles[spec.name] as f64 - 1.0);
            if t.hierarchy.ll_mpk(t.insts) < 1.0 {
                low_mpk += 1;
            }
        }
        println!(
            "{:>5}KB  {:>12} {:>19}/20",
            kb,
            pct(geomean(&overheads)),
            low_mpk
        );
    }
    let _ = figure_order();
    println!("(paper: not particularly sensitive; 4KB gives <1 miss/1k insts on 17/20)");
}

//! Lock-location cache size sensitivity (§4.2 / §9.3).
//!
//! The paper: "These results are not particularly sensitive to the exact
//! size of the lock location cache; for a 4KB cache, the miss rate is less
//! than 1 miss per 1000 instructions for seventeen of the twenty
//! benchmarks." This sweep varies the LL$ from 1KB to 16KB and reports the
//! geometric-mean overhead and the <1-miss/1k-instructions count.
//!
//! The sweep is **trace-driven**: each benchmark's functional machine runs
//! once (`watchdog_trace::record`), and every LL$ size is a cheap timing
//! replay of that trace — identical to a full re-simulation (the
//! equivalence tests assert byte-for-byte), at a fraction of the cost.

use watchdog_bench::{figure_order, geomean, pct, run_sweep_traced, scale_from_args, SweepPoint};
use watchdog_core::prelude::*;

const SIZES_KB: [u64; 5] = [1, 2, 4, 8, 16];

fn main() {
    let scale = scale_from_args();
    println!("\n== Ablation: lock-location cache size sweep (trace-driven) ==");
    println!(
        "{:<8} {:>12} {:>22}",
        "LL$ size", "geo overhead", "benchmarks < 1 mpki"
    );

    // Baselines: one functional pass + one replay per benchmark (the
    // baseline's cycles do not depend on the LL$, which it never touches).
    let base = run_sweep_traced(Mode::Baseline, scale, &[SweepPoint::table2("table2")]);
    // Watchdog: one functional pass per benchmark, five replayed sizes.
    let points: Vec<SweepPoint> = SIZES_KB
        .iter()
        .map(|&kb| SweepPoint::ll_size_kb(kb))
        .collect();
    let wd = run_sweep_traced(Mode::watchdog(), scale, &points);

    for (pi, kb) in SIZES_KB.into_iter().enumerate() {
        let mut overheads = Vec::new();
        let mut low_mpk = 0;
        for name in figure_order() {
            let r = &wd[&name][pi];
            let t = r.timing.as_ref().expect("replays are timed");
            overheads.push(r.cycles() as f64 / base[&name][0].cycles() as f64 - 1.0);
            if t.hierarchy.ll_mpk(t.insts) < 1.0 {
                low_mpk += 1;
            }
        }
        println!(
            "{kb:>5}KB  {:>12} {:>19}/20",
            pct(geomean(&overheads)),
            low_mpk
        );
    }
    println!("(paper: not particularly sensitive; 4KB gives <1 miss/1k insts on 17/20)");
    println!(
        "({} functional passes + {} timing replays instead of {} full simulations)",
        2 * figure_order().len(),
        (SIZES_KB.len() + 1) * figure_order().len(),
        (SIZES_KB.len() + 1) * figure_order().len(),
    );
}

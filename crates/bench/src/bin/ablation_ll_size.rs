//! Lock-location cache size × associativity sensitivity (§4.2 / §9.3).
//!
//! The paper: "These results are not particularly sensitive to the exact
//! size of the lock location cache; for a 4KB cache, the miss rate is less
//! than 1 miss per 1000 instructions for seventeen of the twenty
//! benchmarks." This sweep varies the LL$ from 1KB to 16KB across 2/4/8/16
//! ways and reports, per point, the geometric-mean overhead, the mean LL$
//! misses per 1000 instructions ([`HierarchyStats::ll_mpk`]) and the
//! <1-miss/1k-instructions benchmark count — the first data toward the
//! §4.2 "4KB captures the working set of lock locations" claim.
//!
//! The sweep is **trace-driven**: each benchmark's functional machine runs
//! once (`watchdog_trace::record`), and every LL$ geometry is a cheap
//! batched timing replay of that trace — identical to a full
//! re-simulation (the equivalence tests assert byte-for-byte), at a
//! fraction of the cost, which is what makes the extra associativity axis
//! nearly free.

use watchdog_bench::{
    figure_order, geomean, mean, pct, run_sweep_traced, scale_from_args, SweepPoint,
};
use watchdog_core::prelude::*;
use watchdog_mem::HierarchyStats;

const SIZES_KB: [u64; 5] = [1, 2, 4, 8, 16];
const WAYS: [u64; 4] = [2, 4, 8, 16];

fn main() {
    let scale = scale_from_args();
    println!("\n== Ablation: lock-location cache size x associativity sweep (trace-driven) ==");
    println!(
        "{:<16} {:>12} {:>10} {:>22}",
        "LL$ geometry", "geo overhead", "mean mpki", "benchmarks < 1 mpki"
    );

    // Baselines: one functional pass + one replay per benchmark (the
    // baseline's cycles do not depend on the LL$, which it never touches).
    let base = run_sweep_traced(Mode::Baseline, scale, &[SweepPoint::table2("table2")]);
    // Watchdog: one functional pass per benchmark, then every (size, ways)
    // geometry as a replay.
    let points: Vec<SweepPoint> = WAYS
        .iter()
        .flat_map(|&ways| {
            SIZES_KB
                .iter()
                .map(move |&kb| SweepPoint::ll_geometry(kb, ways))
        })
        .collect();
    let wd = run_sweep_traced(Mode::watchdog(), scale, &points);

    for (pi, point) in points.iter().enumerate() {
        let mut overheads = Vec::new();
        let mut mpkis = Vec::new();
        let mut low_mpk = 0;
        for name in figure_order() {
            let r = &wd[&name][pi];
            let t = r.timing.as_ref().expect("replays are timed");
            overheads.push(r.cycles() as f64 / base[&name][0].cycles() as f64 - 1.0);
            let mpki = HierarchyStats::ll_mpk(&t.hierarchy, t.insts);
            mpkis.push(mpki);
            if mpki < 1.0 {
                low_mpk += 1;
            }
        }
        println!(
            "{:<16} {:>12} {:>10.3} {:>19}/20",
            point.label,
            pct(geomean(&overheads)),
            mean(&mpkis),
            low_mpk
        );
        if pi % SIZES_KB.len() == SIZES_KB.len() - 1 {
            println!();
        }
    }
    println!("(paper: not particularly sensitive; 4KB gives <1 miss/1k insts on 17/20)");
    println!(
        "({} functional passes + {} batched timing replays instead of {} full simulations)",
        2 * figure_order().len(),
        (points.len() + 1) * figure_order().len(),
        (points.len() + 1) * figure_order().len(),
    );
}

//! Regenerates Figure 09 of the paper. Usage: `cargo run -p watchdog-bench --bin fig09 [--scale test|small|ref]`.
fn main() {
    watchdog_bench::figs::fig09(watchdog_bench::scale_from_args());
}

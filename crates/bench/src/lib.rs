//! Shared harness for the per-table / per-figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§9). This library provides the common machinery:
//! running the twenty-benchmark suite under a set of [`Mode`]s — fanned
//! out across a scoped thread pool, since the (benchmark × mode) grid is
//! embarrassingly parallel — formatting aligned tables, and computing the
//! paper's geometric-mean aggregates.
//!
//! Scale selection: pass `--scale test|small|ref` (default `small`).
//! Parallelism: pass `--jobs N` or set `WATCHDOG_JOBS=N` (default: all
//! available cores).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use watchdog_core::prelude::*;
use watchdog_workloads::{all_benchmarks, Scale};

/// Scans for `flag` among the arguments before the first `--` separator
/// (everything after `--` belongs to someone else, e.g. a test harness).
///
/// Returns `None` when the flag is absent, `Some(None)` when it is the
/// last argument (no value), and `Some(Some(value))` otherwise.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<Option<&'a str>> {
    let flags = args.split(|a| a == "--").next().unwrap_or(args);
    let mut it = flags.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return Some(it.next().map(String::as_str));
        }
    }
    None
}

/// Parses a `--scale` value from an argument list, considering only the
/// arguments before the first `--` separator.
///
/// # Errors
///
/// Returns a message listing the valid values when the flag's value is
/// unknown or missing.
pub fn parse_scale(args: &[String]) -> Result<Scale, String> {
    match flag_value(args, "--scale") {
        None => Ok(Scale::Small),
        Some(Some("test")) => Ok(Scale::Test),
        Some(Some("small")) => Ok(Scale::Small),
        Some(Some("ref")) | Some(Some("reference")) => Ok(Scale::Reference),
        Some(Some(other)) => Err(format!(
            "unknown scale {other:?}: valid values are test, small, ref (or reference)"
        )),
        Some(None) => {
            Err("--scale requires a value: valid values are test, small, ref (or reference)".into())
        }
    }
}

/// Parses the `--scale` argument (default [`Scale::Small`]).
///
/// On an invalid value this prints the error — including the list of valid
/// values — to stderr and exits with status 2, rather than panicking.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    parse_scale(&args[1..]).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Parses a `--jobs` value from an argument list (flags after `--` are
/// ignored), falling back to the `WATCHDOG_JOBS` value when the flag is
/// absent. Returns `None` when neither is present.
///
/// # Errors
///
/// Returns a message when either source is present but not a positive
/// integer.
pub fn parse_jobs(args: &[String], env: Option<&str>) -> Result<Option<usize>, String> {
    match flag_value(args, "--jobs") {
        Some(Some(v)) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err("--jobs requires a positive integer".into()),
        },
        Some(None) => Err("--jobs requires a value (a positive integer)".into()),
        None => match env {
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => Err(format!(
                    "WATCHDOG_JOBS must be a positive integer, got {v:?}"
                )),
            },
            None => Ok(None),
        },
    }
}

/// Resolves the worker-thread count for suite runs: `--jobs` beats
/// `WATCHDOG_JOBS` beats the number of available cores.
///
/// Unlike [`scale_from_args`] (a helper for a binary's `main`), this is
/// called from library paths ([`run_suite`] et al.), so an invalid value
/// must never abort the embedding process: it prints a warning to stderr
/// and falls back to the core-count default instead.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let env = std::env::var("WATCHDOG_JOBS").ok();
    match parse_jobs(&args[1..], env.as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => default_jobs(),
        Err(e) => {
            let d = default_jobs();
            eprintln!("warning: {e}; falling back to {d} worker thread(s)");
            d
        }
    }
}

/// The default worker-thread count: all available cores.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Results of running the full suite under several modes:
/// `results[benchmark][mode_label] -> RunReport`.
pub type SuiteResults = BTreeMap<String, BTreeMap<String, RunReport>>;

/// Runs all twenty benchmarks under each mode (timed), in parallel across
/// [`jobs_from_args`] worker threads.
pub fn run_suite(modes: &[Mode], scale: Scale) -> SuiteResults {
    run_suite_with_jobs(modes, scale, true, jobs_from_args())
}

/// Runs all twenty benchmarks under each mode, functionally only (fast; no
/// cycle numbers, but full footprint and classification statistics), in
/// parallel across [`jobs_from_args`] worker threads.
pub fn run_suite_functional(modes: &[Mode], scale: Scale) -> SuiteResults {
    run_suite_with_jobs(modes, scale, false, jobs_from_args())
}

/// Runs one (benchmark, mode) cell of the suite grid. Failure messages
/// carry no bench/mode label here — [`run_grid`] is the single labelling
/// point for every cell failure.
fn run_cell(program: &watchdog_isa::Program, mode: Mode, timing: bool) -> RunReport {
    let cfg = if timing {
        SimConfig::timed(mode)
    } else {
        SimConfig::functional(mode)
    };
    let report = Simulator::new(cfg)
        .run(program)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(
        report.violation.is_none(),
        "unexpected violation {:?}",
        report.violation
    );
    report
}

/// Runs the suite with an explicit worker-thread count.
///
/// Each benchmark program is built once and shared read-only across the
/// modes (and worker threads) that simulate it. The (benchmark × mode)
/// grid is distributed over `jobs` scoped worker threads pulling from a
/// shared queue. Every cell is an independent deterministic simulation,
/// and the merged results land in the same [`BTreeMap`] ordering
/// regardless of completion order, so the output is identical to a serial
/// run (`jobs == 1` takes a strictly serial path).
///
/// # Panics
///
/// Panics if any cell fails — a simulator error or an unexpected
/// violation — with the benchmark/mode label of every failed cell in the
/// message, whichever thread it ran on.
pub fn run_suite_with_jobs(
    modes: &[Mode],
    scale: Scale,
    timing: bool,
    jobs: usize,
) -> SuiteResults {
    let specs = all_benchmarks();
    let programs: Vec<watchdog_isa::Program> = specs.iter().map(|s| s.build(scale)).collect();
    let cells = run_grid(&specs, modes, jobs, |si, mi| {
        run_cell(&programs[si], modes[mi], timing)
    });
    let mut out = SuiteResults::new();
    for (si, mi, report) in cells {
        out.entry(specs[si].name.to_string())
            .or_default()
            .insert(modes[mi].label(), report);
    }
    out
}

/// Formats a caught panic payload (labels are added by the caller).
fn payload_msg(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("non-string panic payload")
}

/// Executes `run` for every `(spec index, mode index)` cell across `jobs`
/// scoped worker threads (serially when `jobs <= 1`), returning the
/// unordered `(spec index, mode index, report)` triples.
///
/// Cell panics are caught and re-raised on the caller's thread with the
/// bench/mode label prepended, so a failure deep inside a simulation is
/// attributable no matter which thread ran it.
fn run_grid<F>(
    specs: &[watchdog_workloads::BenchSpec],
    modes: &[Mode],
    jobs: usize,
    run: F,
) -> Vec<(usize, usize, RunReport)>
where
    F: Fn(usize, usize) -> RunReport + Sync,
{
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..modes.len()).map(move |m| (s, m)))
        .collect();
    let jobs = jobs.max(1).min(grid.len().max(1));

    let label = |si: usize, mi: usize, payload: &(dyn std::any::Any + Send)| {
        format!(
            "[{} under {}] {}",
            specs[si].name,
            modes[mi].label(),
            payload_msg(payload)
        )
    };
    let report_failures = |mut failures: Vec<String>| -> ! {
        failures.sort(); // deterministic message regardless of scheduling
        panic!(
            "{} suite cell(s) failed:\n{}",
            failures.len(),
            failures.join("\n")
        );
    };

    if jobs <= 1 {
        return grid
            .into_iter()
            .map(|(si, mi)| {
                // Fail fast, in the same message format as the parallel
                // path.
                let report = panic::catch_unwind(AssertUnwindSafe(|| run(si, mi))).unwrap_or_else(
                    |payload| report_failures(vec![label(si, mi, payload.as_ref())]),
                );
                (si, mi, report)
            })
            .collect();
    }

    // Work queue: an atomic cursor over the grid. Workers catch panics so
    // every failure is reported with its bench/mode label instead of
    // std::thread::scope's anonymous re-panic. The first failure raises
    // `abort`, so workers stop pulling new cells instead of burning
    // through the rest of the grid (in-flight cells still finish).
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let done: Mutex<Vec<(usize, usize, RunReport)>> = Mutex::new(Vec::with_capacity(grid.len()));
    let failed: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(si, mi)) = grid.get(i) else { break };
                match panic::catch_unwind(AssertUnwindSafe(|| run(si, mi))) {
                    Ok(report) => done.lock().unwrap().push((si, mi, report)),
                    Err(payload) => {
                        failed.lock().unwrap().push(label(si, mi, payload.as_ref()));
                        abort.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let failures = failed.into_inner().unwrap();
    if !failures.is_empty() {
        report_failures(failures);
    }
    done.into_inner().unwrap()
}

/// Benchmark names in the paper's figure order (the suite map is sorted
/// alphabetically; figures should not be).
pub fn figure_order() -> Vec<String> {
    all_benchmarks()
        .iter()
        .map(|b| b.name.to_string())
        .collect()
}

/// Prints an aligned table: `name` column plus one column per header.
pub fn print_table(title: &str, headers: &[&str], rows: &[(String, Vec<String>)]) {
    println!("\n== {title} ==");
    let name_w = rows
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once("bench".len()))
        .max()
        .unwrap_or(8);
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for (_, vals) in rows {
        for (i, v) in vals.iter().enumerate() {
            widths[i] = widths[i].max(v.len());
        }
    }
    print!("{:name_w$}", "bench");
    for (h, w) in headers.iter().zip(&widths) {
        print!("  {h:>w$}");
    }
    println!();
    for (name, vals) in rows {
        print!("{name:name_w$}");
        for (v, w) in vals.iter().zip(&widths) {
            print!("  {v:>w$}");
        }
        println!();
    }
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of overhead fractions (re-exported convenience).
pub fn geomean(xs: &[f64]) -> f64 {
    watchdog_core::report::geomean_overhead(xs)
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    watchdog_core::report::mean(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_order_is_the_paper_order() {
        let order = figure_order();
        assert_eq!(order.len(), 20);
        assert_eq!(order[0], "lbm");
        assert_eq!(order[19], "perl");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.153), "15.3%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn suite_functional_smoke() {
        let r = run_suite_functional(&[Mode::Baseline], Scale::Test);
        assert_eq!(r.len(), 20);
        for (name, modes) in &r {
            assert!(modes.contains_key("baseline"), "{name} missing baseline");
        }
    }

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_scale_accepts_valid_values() {
        assert_eq!(parse_scale(&args(&[])), Ok(Scale::Small));
        assert_eq!(parse_scale(&args(&["--scale", "test"])), Ok(Scale::Test));
        assert_eq!(parse_scale(&args(&["--scale", "small"])), Ok(Scale::Small));
        assert_eq!(
            parse_scale(&args(&["--scale", "ref"])),
            Ok(Scale::Reference)
        );
        assert_eq!(
            parse_scale(&args(&["--scale", "reference"])),
            Ok(Scale::Reference)
        );
    }

    #[test]
    fn parse_scale_rejects_unknown_values_with_the_valid_list() {
        let e = parse_scale(&args(&["--scale", "huge"])).unwrap_err();
        assert!(e.contains("huge") && e.contains("test, small, ref"), "{e}");
        let e = parse_scale(&args(&["--scale"])).unwrap_err();
        assert!(e.contains("requires a value"), "{e}");
    }

    #[test]
    fn parse_scale_ignores_flags_after_double_dash() {
        // `--scale` after `--` belongs to someone else (e.g. a test
        // harness): the default applies and no error is raised.
        assert_eq!(
            parse_scale(&args(&["--", "--scale", "bogus"])),
            Ok(Scale::Small)
        );
        assert_eq!(
            parse_scale(&args(&["--scale", "test", "--", "--scale", "bogus"])),
            Ok(Scale::Test)
        );
    }

    #[test]
    fn parse_jobs_precedence_and_errors() {
        assert_eq!(parse_jobs(&args(&[]), None), Ok(None));
        assert_eq!(parse_jobs(&args(&["--jobs", "4"]), None), Ok(Some(4)));
        // The flag beats the environment.
        assert_eq!(parse_jobs(&args(&["--jobs", "2"]), Some("8")), Ok(Some(2)));
        assert_eq!(parse_jobs(&args(&[]), Some("8")), Ok(Some(8)));
        assert_eq!(parse_jobs(&args(&["--", "--jobs", "9"]), None), Ok(None));
        assert!(parse_jobs(&args(&["--jobs", "0"]), None).is_err());
        assert!(parse_jobs(&args(&["--jobs", "many"]), None).is_err());
        assert!(parse_jobs(&args(&["--jobs"]), None).is_err());
        assert!(parse_jobs(&args(&[]), Some("-3")).is_err());
    }

    #[test]
    fn oversubscribed_jobs_are_clamped_to_the_grid() {
        // More workers than cells must not hang or drop results.
        let r = run_suite_with_jobs(&[Mode::Baseline], Scale::Test, false, 1000);
        assert_eq!(r.len(), 20);
    }

    #[test]
    fn worker_panics_carry_the_bench_and_mode_label() {
        let specs = all_benchmarks();
        let modes = [Mode::Baseline];
        let programs: Vec<_> = specs.iter().map(|s| s.build(Scale::Test)).collect();
        let got = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_grid(&specs, &modes, 4, |si, mi| {
                if specs[si].name == "mcf" {
                    panic!("synthetic cell failure");
                }
                run_cell(&programs[si], modes[mi], false)
            })
        }))
        .expect_err("the grid must fail");
        let msg = got
            .downcast_ref::<String>()
            .expect("labelled failures are formatted strings");
        assert!(
            msg.contains("[mcf under baseline] synthetic cell failure"),
            "label lost: {msg}"
        );
        // The other 19 cells must not mask or reorder the failure report.
        assert!(msg.contains("1 suite cell(s) failed"), "{msg}");

        // The strictly serial path labels failures identically.
        let got = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_grid(&specs, &modes, 1, |si, _| {
                panic!("early failure in {}", specs[si].name)
            })
        }))
        .expect_err("the serial grid must fail");
        let msg = got.downcast_ref::<String>().unwrap();
        assert!(
            msg.contains("[lbm under baseline] early failure in lbm"),
            "serial label lost: {msg}"
        );
    }
}
pub mod figs;

//! Shared harness for the per-table / per-figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§9). This library provides the common machinery:
//! running the twenty-benchmark suite under a set of [`Mode`]s, formatting
//! aligned tables, and computing the paper's geometric-mean aggregates.
//!
//! Scale selection: pass `--scale test|small|ref` (default `small`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use watchdog_core::prelude::*;
use watchdog_workloads::{all_benchmarks, Scale};

/// Parses the `--scale` argument (default [`Scale::Small`]).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--scale" {
            return match w[1].as_str() {
                "test" => Scale::Test,
                "small" => Scale::Small,
                "ref" | "reference" => Scale::Reference,
                other => panic!("unknown scale {other:?} (expected test|small|ref)"),
            };
        }
    }
    Scale::Small
}

/// Results of running the full suite under several modes:
/// `results[benchmark][mode_label] -> RunReport`.
pub type SuiteResults = BTreeMap<String, BTreeMap<String, RunReport>>;

/// Runs all twenty benchmarks under each mode (timed).
pub fn run_suite(modes: &[Mode], scale: Scale) -> SuiteResults {
    run_suite_inner(modes, scale, true)
}

/// Runs all twenty benchmarks under each mode, functionally only (fast; no
/// cycle numbers, but full footprint and classification statistics).
pub fn run_suite_functional(modes: &[Mode], scale: Scale) -> SuiteResults {
    run_suite_inner(modes, scale, false)
}

fn run_suite_inner(modes: &[Mode], scale: Scale, timing: bool) -> SuiteResults {
    let mut out = SuiteResults::new();
    for spec in all_benchmarks() {
        let program = spec.build(scale);
        let mut per_mode = BTreeMap::new();
        for &mode in modes {
            let cfg = if timing {
                SimConfig::timed(mode)
            } else {
                SimConfig::functional(mode)
            };
            let report = Simulator::new(cfg)
                .run(&program)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", spec.name, mode.label()));
            assert!(
                report.violation.is_none(),
                "{} under {}: unexpected violation {:?}",
                spec.name,
                mode.label(),
                report.violation
            );
            per_mode.insert(mode.label(), report);
        }
        out.insert(spec.name.to_string(), per_mode);
    }
    out
}

/// Benchmark names in the paper's figure order (the suite map is sorted
/// alphabetically; figures should not be).
pub fn figure_order() -> Vec<String> {
    all_benchmarks()
        .iter()
        .map(|b| b.name.to_string())
        .collect()
}

/// Prints an aligned table: `name` column plus one column per header.
pub fn print_table(title: &str, headers: &[&str], rows: &[(String, Vec<String>)]) {
    println!("\n== {title} ==");
    let name_w = rows
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once("bench".len()))
        .max()
        .unwrap_or(8);
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for (_, vals) in rows {
        for (i, v) in vals.iter().enumerate() {
            widths[i] = widths[i].max(v.len());
        }
    }
    print!("{:name_w$}", "bench");
    for (h, w) in headers.iter().zip(&widths) {
        print!("  {h:>w$}");
    }
    println!();
    for (name, vals) in rows {
        print!("{name:name_w$}");
        for (v, w) in vals.iter().zip(&widths) {
            print!("  {v:>w$}");
        }
        println!();
    }
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of overhead fractions (re-exported convenience).
pub fn geomean(xs: &[f64]) -> f64 {
    watchdog_core::report::geomean_overhead(xs)
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    watchdog_core::report::mean(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_order_is_the_paper_order() {
        let order = figure_order();
        assert_eq!(order.len(), 20);
        assert_eq!(order[0], "lbm");
        assert_eq!(order[19], "perl");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.153), "15.3%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn suite_functional_smoke() {
        let r = run_suite_functional(&[Mode::Baseline], Scale::Test);
        assert_eq!(r.len(), 20);
        for (name, modes) in &r {
            assert!(modes.contains_key("baseline"), "{name} missing baseline");
        }
    }
}
pub mod figs;

//! Shared harness for the per-table / per-figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§9). This library provides the common machinery:
//! running the twenty-benchmark suite under a set of [`Mode`]s — fanned
//! out across a scoped thread pool, since the (benchmark × mode) grid is
//! embarrassingly parallel — formatting aligned tables, and computing the
//! paper's geometric-mean aggregates.
//!
//! Scale selection: pass `--scale test|small|ref` (default `small`).
//! Parallelism: pass `--jobs N` or set `WATCHDOG_JOBS=N` (default: all
//! available cores).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use watchdog_core::prelude::*;
use watchdog_gen::{DiffFailure, DiffOutcome, GenConfig};
use watchdog_workloads::juliet::SUITE_SIZE;
use watchdog_workloads::{all_benchmarks, benign_suite_prefix, juliet_suite_prefix, Cwe, Scale};

/// Scans for `flag` among the arguments before the first `--` separator
/// (everything after `--` belongs to someone else, e.g. a test harness).
///
/// Returns `None` when the flag is absent, `Some(None)` when it is the
/// last argument (no value), and `Some(Some(value))` otherwise.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<Option<&'a str>> {
    let flags = args.split(|a| a == "--").next().unwrap_or(args);
    let mut it = flags.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return Some(it.next().map(String::as_str));
        }
    }
    None
}

/// Parses a `--scale` value from an argument list, considering only the
/// arguments before the first `--` separator.
///
/// # Errors
///
/// Returns a message listing the valid values when the flag's value is
/// unknown or missing.
pub fn parse_scale(args: &[String]) -> Result<Scale, String> {
    match flag_value(args, "--scale") {
        None => Ok(Scale::Small),
        Some(Some("test")) => Ok(Scale::Test),
        Some(Some("small")) => Ok(Scale::Small),
        Some(Some("ref")) | Some(Some("reference")) => Ok(Scale::Reference),
        Some(Some(other)) => Err(format!(
            "unknown scale {other:?}: valid values are test, small, ref (or reference)"
        )),
        Some(None) => {
            Err("--scale requires a value: valid values are test, small, ref (or reference)".into())
        }
    }
}

/// Parses the `--scale` argument (default [`Scale::Small`]).
///
/// On an invalid value this prints the error — including the list of valid
/// values — to stderr and exits with status 2, rather than panicking.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    parse_scale(&args[1..]).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Parses a `--jobs` value from an argument list (flags after `--` are
/// ignored), falling back to the `WATCHDOG_JOBS` value when the flag is
/// absent. Returns `None` when neither is present.
///
/// # Errors
///
/// Returns a message when either source is present but not a positive
/// integer.
pub fn parse_jobs(args: &[String], env: Option<&str>) -> Result<Option<usize>, String> {
    match flag_value(args, "--jobs") {
        Some(Some(v)) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err("--jobs requires a positive integer".into()),
        },
        Some(None) => Err("--jobs requires a value (a positive integer)".into()),
        None => match env {
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => Err(format!(
                    "WATCHDOG_JOBS must be a positive integer, got {v:?}"
                )),
            },
            None => Ok(None),
        },
    }
}

/// Resolves the worker-thread count for suite runs: `--jobs` beats
/// `WATCHDOG_JOBS` beats the number of available cores.
///
/// Unlike [`scale_from_args`] (a helper for a binary's `main`), this is
/// called from library paths ([`run_suite`] et al.), so an invalid value
/// must never abort the embedding process: it prints a warning to stderr
/// and falls back to the core-count default instead.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let env = std::env::var("WATCHDOG_JOBS").ok();
    match parse_jobs(&args[1..], env.as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => default_jobs(),
        Err(e) => {
            let d = default_jobs();
            eprintln!("warning: {e}; falling back to {d} worker thread(s)");
            d
        }
    }
}

/// The default worker-thread count: all available cores.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Results of running the full suite under several modes:
/// `results[benchmark][mode_label] -> RunReport`.
pub type SuiteResults = BTreeMap<String, BTreeMap<String, RunReport>>;

/// Runs all twenty benchmarks under each mode (timed), in parallel across
/// [`jobs_from_args`] worker threads.
pub fn run_suite(modes: &[Mode], scale: Scale) -> SuiteResults {
    run_suite_with_jobs(modes, scale, true, jobs_from_args())
}

/// Runs all twenty benchmarks under each mode, functionally only (fast; no
/// cycle numbers, but full footprint and classification statistics), in
/// parallel across [`jobs_from_args`] worker threads.
pub fn run_suite_functional(modes: &[Mode], scale: Scale) -> SuiteResults {
    run_suite_with_jobs(modes, scale, false, jobs_from_args())
}

/// Runs one (benchmark, mode) cell of the suite grid. Failure messages
/// carry no bench/mode label here — [`run_grid`] is the single labelling
/// point for every cell failure.
fn run_cell(program: &watchdog_isa::Program, mode: Mode, timing: bool) -> RunReport {
    let cfg = if timing {
        SimConfig::timed(mode)
    } else {
        SimConfig::functional(mode)
    };
    let report = Simulator::new(cfg)
        .run(program)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(
        report.violation.is_none(),
        "unexpected violation {:?}",
        report.violation
    );
    report
}

/// Runs the suite with an explicit worker-thread count.
///
/// Each benchmark program is built once and shared read-only across the
/// modes (and worker threads) that simulate it. The (benchmark × mode)
/// grid is distributed over `jobs` scoped worker threads pulling from a
/// shared queue. Every cell is an independent deterministic simulation,
/// and the merged results land in the same [`BTreeMap`] ordering
/// regardless of completion order, so the output is identical to a serial
/// run (`jobs == 1` takes a strictly serial path).
///
/// # Panics
///
/// Panics if any cell fails — a simulator error or an unexpected
/// violation — with the benchmark/mode label of every failed cell in the
/// message, whichever thread it ran on.
pub fn run_suite_with_jobs(
    modes: &[Mode],
    scale: Scale,
    timing: bool,
    jobs: usize,
) -> SuiteResults {
    let specs = all_benchmarks();
    let programs: Vec<watchdog_isa::Program> = specs.iter().map(|s| s.build(scale)).collect();
    let cells = run_grid(&specs, modes, jobs, |si, mi| {
        run_cell(&programs[si], modes[mi], timing)
    });
    let mut out = SuiteResults::new();
    for (si, mi, report) in cells {
        out.entry(specs[si].name.to_string())
            .or_default()
            .insert(modes[mi].label(), report);
    }
    out
}

/// Formats a caught panic payload (labels are added by the caller).
fn payload_msg(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("non-string panic payload")
}

/// Runs `run(i)` for every `i` in `0..n` across `jobs` scoped worker
/// threads pulling from a shared atomic cursor (strictly serial when
/// `jobs <= 1`), returning the results **in index order** regardless of
/// scheduling.
///
/// This is the one worker pool every sharded workload in this crate rides
/// on: the (benchmark × mode) suite grid, the 291-case Juliet suite and
/// the `watchdog-gen` fuzzing campaign. A panicking closure propagates
/// out of the enclosing [`std::thread::scope`]; callers that want
/// labelled failures catch panics inside `run` (see [`run_suite_with_jobs`]).
pub fn parallel_map<T, F>(n: usize, jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = run(i);
                done.lock().unwrap()[i] = Some(r);
            });
        }
    });
    done.into_inner()
        .unwrap()
        .into_iter()
        .map(|t| t.expect("every index completes"))
        .collect()
}

/// Executes `run` for every `(spec index, mode index)` cell over
/// [`parallel_map`], returning the `(spec index, mode index, report)`
/// triples.
///
/// Cell panics are caught and re-raised on the caller's thread with the
/// bench/mode label prepended, so a failure deep inside a simulation is
/// attributable no matter which thread ran it. The first failure raises
/// an abort flag so workers stop pulling new cells (in-flight cells still
/// finish and may contribute their own labelled failures).
fn run_grid<F>(
    specs: &[watchdog_workloads::BenchSpec],
    modes: &[Mode],
    jobs: usize,
    run: F,
) -> Vec<(usize, usize, RunReport)>
where
    F: Fn(usize, usize) -> RunReport + Sync,
{
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..modes.len()).map(move |m| (s, m)))
        .collect();

    let label = |si: usize, mi: usize, payload: &(dyn std::any::Any + Send)| {
        format!(
            "[{} under {}] {}",
            specs[si].name,
            modes[mi].label(),
            payload_msg(payload)
        )
    };
    let abort = AtomicBool::new(false);
    let cells = parallel_map(grid.len(), jobs, |i| {
        if abort.load(Ordering::Relaxed) {
            return None;
        }
        let (si, mi) = grid[i];
        match panic::catch_unwind(AssertUnwindSafe(|| run(si, mi))) {
            Ok(report) => Some(Ok((si, mi, report))),
            Err(payload) => {
                abort.store(true, Ordering::Relaxed);
                Some(Err(label(si, mi, payload.as_ref())))
            }
        }
    });

    let mut failures: Vec<String> = Vec::new();
    let mut done = Vec::with_capacity(grid.len());
    for cell in cells.into_iter().flatten() {
        match cell {
            Ok(t) => done.push(t),
            Err(f) => failures.push(f),
        }
    }
    if !failures.is_empty() {
        failures.sort(); // deterministic message regardless of scheduling
        panic!(
            "{} suite cell(s) failed:\n{}",
            failures.len(),
            failures.join("\n")
        );
    }
    done
}

/// One ablation point of a configuration sweep: a label plus the
/// timing-side knobs that vary between points (the memory hierarchy and
/// the crack-cache toggle; core parameters stay at Table 2).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable point label (table column).
    pub label: String,
    /// Memory-hierarchy parameters for this point.
    pub hierarchy: watchdog_mem::HierarchyConfig,
    /// Whether the per-PC crack cache serves static expansions.
    pub crack_cache: bool,
}

impl SweepPoint {
    /// The Table 2 default configuration.
    pub fn table2(label: impl Into<String>) -> Self {
        SweepPoint {
            label: label.into(),
            hierarchy: watchdog_mem::HierarchyConfig::default(),
            crack_cache: true,
        }
    }

    /// Table 2 with the lock-location cache resized to `kb` kilobytes
    /// (the §4.2 / §9.3 LL$ sensitivity sweep).
    pub fn ll_size_kb(kb: u64) -> Self {
        Self::ll_geometry(kb, 8)
    }

    /// Table 2 with the lock-location cache set to `kb` kilobytes and
    /// `ways`-way associativity (the widened §4.2 size × associativity
    /// sweep; Table 2's LL$ is 4KB 8-way).
    pub fn ll_geometry(kb: u64, ways: u64) -> Self {
        let mut p = Self::table2(format!("{kb}KB/{ways}-way LL$"));
        p.hierarchy.ll = watchdog_mem::CacheConfig::new(kb * 1024, ways, 64);
        p
    }
}

/// Results of a configuration sweep: `results[benchmark][point index]`,
/// with points in the order they were passed.
pub type SweepResults = BTreeMap<String, Vec<RunReport>>;

/// Trace-driven configuration sweep with [`jobs_from_args`] workers: one
/// functional recording pass per benchmark, then every ablation point
/// replayed from the trace. See [`run_sweep_traced_with_jobs`].
pub fn run_sweep_traced(mode: Mode, scale: Scale, points: &[SweepPoint]) -> SweepResults {
    run_sweep_traced_with_jobs(mode, scale, points, jobs_from_args(), None)
}

/// Trace-driven configuration sweep: records each benchmark **once**
/// (a functional pass via [`watchdog_trace::record()`]), then replays every
/// [`SweepPoint`] from the trace through the timing model — turning
/// O(points × full simulations) into O(1 functional pass + points cheap
/// replays) per benchmark. Recording and the (benchmark × point) replay
/// grid are both sharded across the [`parallel_map`] worker pool.
///
/// The output is byte-identical to [`run_sweep_resim_with_jobs`] — replay
/// is oracle-exact — which the workspace equivalence tests assert.
///
/// `limit` restricts the sweep to the first `limit` benchmarks (fast
/// tests); `None` runs all twenty.
///
/// # Panics
///
/// Panics with a benchmark/mode/point label if recording or replay fails,
/// or if any benchmark raises an unexpected violation.
pub fn run_sweep_traced_with_jobs(
    mode: Mode,
    scale: Scale,
    points: &[SweepPoint],
    jobs: usize,
    limit: Option<usize>,
) -> SweepResults {
    let mut specs = all_benchmarks();
    specs.truncate(limit.unwrap_or(usize::MAX));
    let programs: Vec<watchdog_isa::Program> = specs.iter().map(|s| s.build(scale)).collect();
    let max_insts = SimConfig::timed(mode).max_insts;
    let traces = parallel_map(programs.len(), jobs, |i| {
        watchdog_trace::record(&programs[i], mode, max_insts).unwrap_or_else(|e| {
            panic!(
                "[{} under {}] trace recording failed: {e}",
                specs[i].name,
                mode.label()
            )
        })
    });
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..points.len()).map(move |p| (s, p)))
        .collect();
    let cells = parallel_map(grid.len(), jobs, |k| {
        let (si, pi) = grid[k];
        let point = &points[pi];
        // Start from the timing slice of the live configuration the resim
        // path uses, so the two sweeps can never drift apart on the core
        // parameters; the point only overrides what an ablation varies.
        let mut cfg = watchdog_trace::ReplayConfig::from_sim(&SimConfig::timed(mode));
        cfg.hierarchy = point.hierarchy;
        cfg.crack_cache = point.crack_cache;
        let report = watchdog_trace::replay(&programs[si], &traces[si], &cfg).unwrap_or_else(|e| {
            panic!(
                "[{} under {} @ {}] trace replay failed: {e}",
                specs[si].name,
                mode.label(),
                point.label
            )
        });
        assert!(
            report.violation.is_none(),
            "[{} under {} @ {}] unexpected violation {:?}",
            specs[si].name,
            mode.label(),
            point.label,
            report.violation
        );
        report
    });
    collect_sweep(&specs, points, cells)
}

/// The reference path [`run_sweep_traced_with_jobs`] is checked against: a
/// full functional+timed re-simulation per (benchmark × point) cell.
///
/// # Panics
///
/// As [`run_sweep_traced_with_jobs`].
pub fn run_sweep_resim_with_jobs(
    mode: Mode,
    scale: Scale,
    points: &[SweepPoint],
    jobs: usize,
    limit: Option<usize>,
) -> SweepResults {
    let mut specs = all_benchmarks();
    specs.truncate(limit.unwrap_or(usize::MAX));
    let programs: Vec<watchdog_isa::Program> = specs.iter().map(|s| s.build(scale)).collect();
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..points.len()).map(move |p| (s, p)))
        .collect();
    let cells = parallel_map(grid.len(), jobs, |k| {
        let (si, pi) = grid[k];
        let point = &points[pi];
        let mut cfg = SimConfig::timed(mode);
        cfg.hierarchy = point.hierarchy;
        cfg.crack_cache = point.crack_cache;
        let report = Simulator::new(cfg).run(&programs[si]).unwrap_or_else(|e| {
            panic!(
                "[{} under {} @ {}] simulation failed: {e}",
                specs[si].name,
                mode.label(),
                point.label
            )
        });
        assert!(
            report.violation.is_none(),
            "[{} under {} @ {}] unexpected violation {:?}",
            specs[si].name,
            mode.label(),
            point.label,
            report.violation
        );
        report
    });
    collect_sweep(&specs, points, cells)
}

/// Merges a flat (benchmark × point) cell vector — in grid order, as
/// [`parallel_map`] returns it — into [`SweepResults`].
fn collect_sweep(
    specs: &[watchdog_workloads::BenchSpec],
    points: &[SweepPoint],
    cells: Vec<RunReport>,
) -> SweepResults {
    let mut out = SweepResults::new();
    for (k, report) in cells.into_iter().enumerate() {
        let si = k / points.len();
        out.entry(specs[si].name.to_string())
            .or_default()
            .push(report);
    }
    out
}

/// Per-case result of the sharded Juliet evaluation (§9.2): the bad case
/// and its benign twin under the checked mode, plus the location-based
/// contrast run for CWE-416 cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JulietOutcome {
    /// Case name (the bad case; the twin shares it modulo the suffix).
    pub name: String,
    /// CWE class.
    pub cwe: Cwe,
    /// Expected violation kind of the bad case.
    pub expected: Option<ViolationKind>,
    /// What the checked mode detected on the bad case.
    pub detected: Option<ViolationKind>,
    /// What the checked mode detected on the benign twin (must be `None`).
    pub benign: Option<ViolationKind>,
    /// Location-based checker's verdict on the bad case (`None` for
    /// CWE-562 cases, which are heap-free and not run).
    pub location: Option<Option<ViolationKind>>,
}

/// Aggregated counts over a slice of [`JulietOutcome`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JulietSummary {
    /// Cases evaluated.
    pub cases: usize,
    /// Bad cases detected with the expected kind.
    pub detected: usize,
    /// Bad cases detected with a different kind.
    pub wrong_kind: usize,
    /// Bad cases missed entirely.
    pub missed: usize,
    /// Benign twins that (wrongly) raised a violation.
    pub false_positives: usize,
    /// CWE-416 cases the location-based checker detected.
    pub loc_detected: usize,
    /// CWE-416 cases the location-based checker was run on.
    pub loc_cases: usize,
}

/// Runs the Juliet-style suite sharded across [`parallel_map`] workers:
/// each case index is one unit of work (bad case + benign twin under
/// `mode`, plus the §2.1 location-based contrast on CWE-416 cases).
/// Results come back in suite order, so the output is byte-identical to a
/// serial run for any `jobs` (asserted in `tests/determinism.rs`).
///
/// `limit` restricts evaluation to the first `limit` cases (used by fast
/// determinism tests); `None` runs all 291.
///
/// # Panics
///
/// Panics with the case name if a simulation fails outright.
pub fn run_juliet_with_jobs(mode: Mode, jobs: usize, limit: Option<usize>) -> Vec<JulietOutcome> {
    // Construction honours the limit too: a prefix run never pays for
    // building the remaining programs.
    let n = limit.unwrap_or(SUITE_SIZE).min(SUITE_SIZE);
    let bad = juliet_suite_prefix(n);
    let good = benign_suite_prefix(n);
    let sim = Simulator::new(SimConfig::functional(mode));
    let loc = Simulator::new(SimConfig::functional(Mode::LocationBased));
    parallel_map(n, jobs, |i| {
        let (b, g) = (&bad[i], &good[i]);
        let run = |sim: &Simulator, p: &watchdog_isa::Program| {
            sim.run(p)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()))
                .violation_kind()
        };
        JulietOutcome {
            name: b.name.clone(),
            cwe: b.cwe,
            expected: b.expected,
            detected: run(&sim, &b.program),
            benign: run(&sim, &g.program),
            location: (b.cwe == Cwe::Cwe416).then(|| run(&loc, &b.program)),
        }
    })
}

/// Aggregates [`JulietOutcome`]s into the counts the §9.2 report prints.
pub fn summarize_juliet(outcomes: &[JulietOutcome]) -> JulietSummary {
    let mut s = JulietSummary {
        cases: outcomes.len(),
        ..JulietSummary::default()
    };
    for o in outcomes {
        match o.detected {
            Some(k) if Some(k) == o.expected => s.detected += 1,
            Some(_) => s.wrong_kind += 1,
            None => s.missed += 1,
        }
        if o.benign.is_some() {
            s.false_positives += 1;
        }
        if let Some(l) = o.location {
            s.loc_cases += 1;
            if l.is_some() {
                s.loc_detected += 1;
            }
        }
    }
    s
}

/// Result of a differential fuzzing campaign over `watchdog-gen` seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSummary {
    /// First seed of the campaign.
    pub seed_start: u64,
    /// Number of seeds (= generated programs, each with a benign twin).
    pub count: usize,
    /// Per-seed outcomes of the passing seeds, in seed order.
    pub outcomes: Vec<DiffOutcome>,
    /// Failing seeds with their divergence details, in seed order.
    pub failures: Vec<DiffFailure>,
}

impl FuzzSummary {
    /// Whether every seed passed the differential matrix.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total simulations performed across all passing seeds.
    pub fn total_runs(&self) -> usize {
        self.outcomes.iter().map(|o| o.runs).sum()
    }

    /// Total dynamic guest instructions of the conservative functional
    /// runs (a rough campaign-size indicator).
    pub fn total_insts(&self) -> u64 {
        self.outcomes.iter().map(|o| o.insts).sum()
    }
}

/// Runs `watchdog_gen::check_seed` for seeds `seed_start..seed_start+count`
/// sharded across the same [`parallel_map`] worker pool as the suite
/// runner. Panics inside a seed's matrix are converted into that seed's
/// [`DiffFailure`], so one bad seed never takes down the campaign.
pub fn run_fuzz_with_jobs(seed_start: u64, count: usize, jobs: usize) -> FuzzSummary {
    let cfg = GenConfig::default();
    let results = parallel_map(count, jobs, |i| {
        let seed = seed_start + i as u64;
        panic::catch_unwind(AssertUnwindSafe(|| watchdog_gen::check_seed(seed, &cfg)))
            .unwrap_or_else(|payload| {
                Err(DiffFailure {
                    seed,
                    detail: format!("panicked: {}", payload_msg(payload.as_ref())),
                })
            })
    });
    let mut outcomes = Vec::with_capacity(count);
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(o) => outcomes.push(o),
            Err(f) => failures.push(f),
        }
    }
    FuzzSummary {
        seed_start,
        count,
        outcomes,
        failures,
    }
}

/// Prints the generated case for `seed` — payload, oracle, disassembly —
/// then re-runs the differential matrix and prints the verdict. Returns
/// whether the seed passed. Shared by the `fuzz` binary and
/// `watchdog-cli fuzz --seed` so the repro format cannot drift.
pub fn print_seed_repro(seed: u64) -> bool {
    let g = watchdog_gen::generate(seed, &GenConfig::default());
    println!("seed:       {seed}");
    println!("payload:    {:?}", g.oracle.payload);
    println!(
        "oracle:     {:?} at instruction {:?} (location-blind: {})",
        g.oracle.expected, g.oracle.expected_pc, g.oracle.location_blind
    );
    println!(
        "\n-- {} ({} instructions) --",
        g.program.name(),
        g.program.len()
    );
    print!("{}", g.program.disassemble());
    match watchdog_gen::check_generated(&g) {
        Ok(o) => {
            println!(
                "\nPASS: {} simulations agree with the oracle ({} guest insts under cons/functional)",
                o.runs, o.insts
            );
            true
        }
        Err(f) => {
            println!("\nFAIL: {f}");
            false
        }
    }
}

/// Prints a fuzzing-campaign report (seed band, simulation counts, oracle
/// split, per-failure repro lines). Returns [`FuzzSummary::ok`]. Shared by
/// the `fuzz` binary and `watchdog-cli fuzz`.
pub fn print_fuzz_report(s: &FuzzSummary, jobs: usize, elapsed_secs: Option<f64>) -> bool {
    println!(
        "seeds:       {}..{} ({} programs + {} benign twins, {jobs} worker thread(s))",
        s.seed_start,
        s.seed_start + s.count as u64,
        s.count,
        s.count
    );
    let time = elapsed_secs.map_or(String::new(), |t| format!(" in {t:.2}s"));
    // `outcomes` holds passing seeds only; be explicit about that when
    // some seeds failed, so a failing campaign never under-reports its
    // own size without saying so.
    let scope = if s.failures.is_empty() {
        ""
    } else {
        ", passing seeds only"
    };
    println!(
        "simulations: {} ({} guest insts under cons/functional{scope}){time}",
        s.total_runs(),
        s.total_insts()
    );
    let violating = s.outcomes.iter().filter(|o| o.expected.is_some()).count();
    println!(
        "oracles:     {} violating, {} benign{scope} — 0 misses, 0 false positives required",
        violating,
        s.outcomes.len() - violating
    );
    if s.ok() {
        println!(
            "result:      PASS ({} seed(s), zero oracle mismatches)",
            s.count
        );
    } else {
        println!(
            "result:      FAIL ({} of {} seed(s) diverged)",
            s.failures.len(),
            s.count
        );
        for f in &s.failures {
            println!("{f}");
        }
    }
    s.ok()
}

/// Complete fuzz command line, shared verbatim by the standalone `fuzz`
/// binary and `watchdog-cli fuzz` so flags, defaults and report formats
/// cannot drift between the two entry points.
///
/// `args` are the arguments after the command name. `--seed K` runs a
/// verbose single-seed repro; otherwise `--seeds N` (default 1000) and
/// `--seed-start K` (default 0) run a campaign across
/// [`jobs_from_args`] workers. Returns the process exit code: 0 on
/// success, 1 on oracle divergence, 2 on a flag error.
#[must_use]
pub fn fuzz_main(args: &[String]) -> i32 {
    let mut flag_err = false;
    let mut get = |flag: &str| match parse_u64_flag(args, flag) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            flag_err = true;
            None
        }
    };
    let (seed, seeds, start) = (get("--seed"), get("--seeds"), get("--seed-start"));
    if flag_err {
        return 2;
    }
    if let Some(seed) = seed {
        return if print_seed_repro(seed) { 0 } else { 1 };
    }
    let count = seeds.unwrap_or(1000) as usize;
    let start = start.unwrap_or(0);
    let jobs = jobs_from_args();
    let t0 = std::time::Instant::now();
    let s = run_fuzz_with_jobs(start, count, jobs);
    println!("== watchdog-gen differential fuzz ==");
    if print_fuzz_report(&s, jobs, Some(t0.elapsed().as_secs_f64())) {
        0
    } else {
        1
    }
}

/// Parses an unsigned-integer flag from an argument list (flags after `--`
/// are ignored). Returns `None` when absent.
///
/// # Errors
///
/// Returns a message when the flag is present without a parseable value.
pub fn parse_u64_flag(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(Some(v)) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("{flag} requires an unsigned integer, got {v:?}")),
        Some(None) => Err(format!("{flag} requires a value (an unsigned integer)")),
    }
}

/// Benchmark names in the paper's figure order (the suite map is sorted
/// alphabetically; figures should not be).
pub fn figure_order() -> Vec<String> {
    all_benchmarks()
        .iter()
        .map(|b| b.name.to_string())
        .collect()
}

/// Prints an aligned table: `name` column plus one column per header.
pub fn print_table(title: &str, headers: &[&str], rows: &[(String, Vec<String>)]) {
    println!("\n== {title} ==");
    let name_w = rows
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once("bench".len()))
        .max()
        .unwrap_or(8);
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for (_, vals) in rows {
        for (i, v) in vals.iter().enumerate() {
            widths[i] = widths[i].max(v.len());
        }
    }
    print!("{:name_w$}", "bench");
    for (h, w) in headers.iter().zip(&widths) {
        print!("  {h:>w$}");
    }
    println!();
    for (name, vals) in rows {
        print!("{name:name_w$}");
        for (v, w) in vals.iter().zip(&widths) {
            print!("  {v:>w$}");
        }
        println!();
    }
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of overhead fractions (re-exported convenience).
pub fn geomean(xs: &[f64]) -> f64 {
    watchdog_core::report::geomean_overhead(xs)
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    watchdog_core::report::mean(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_order_is_the_paper_order() {
        let order = figure_order();
        assert_eq!(order.len(), 20);
        assert_eq!(order[0], "lbm");
        assert_eq!(order[19], "perl");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.153), "15.3%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn suite_functional_smoke() {
        let r = run_suite_functional(&[Mode::Baseline], Scale::Test);
        assert_eq!(r.len(), 20);
        for (name, modes) in &r {
            assert!(modes.contains_key("baseline"), "{name} missing baseline");
        }
    }

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_scale_accepts_valid_values() {
        assert_eq!(parse_scale(&args(&[])), Ok(Scale::Small));
        assert_eq!(parse_scale(&args(&["--scale", "test"])), Ok(Scale::Test));
        assert_eq!(parse_scale(&args(&["--scale", "small"])), Ok(Scale::Small));
        assert_eq!(
            parse_scale(&args(&["--scale", "ref"])),
            Ok(Scale::Reference)
        );
        assert_eq!(
            parse_scale(&args(&["--scale", "reference"])),
            Ok(Scale::Reference)
        );
    }

    #[test]
    fn parse_scale_rejects_unknown_values_with_the_valid_list() {
        let e = parse_scale(&args(&["--scale", "huge"])).unwrap_err();
        assert!(e.contains("huge") && e.contains("test, small, ref"), "{e}");
        let e = parse_scale(&args(&["--scale"])).unwrap_err();
        assert!(e.contains("requires a value"), "{e}");
    }

    #[test]
    fn parse_scale_ignores_flags_after_double_dash() {
        // `--scale` after `--` belongs to someone else (e.g. a test
        // harness): the default applies and no error is raised.
        assert_eq!(
            parse_scale(&args(&["--", "--scale", "bogus"])),
            Ok(Scale::Small)
        );
        assert_eq!(
            parse_scale(&args(&["--scale", "test", "--", "--scale", "bogus"])),
            Ok(Scale::Test)
        );
    }

    #[test]
    fn parse_jobs_precedence_and_errors() {
        assert_eq!(parse_jobs(&args(&[]), None), Ok(None));
        assert_eq!(parse_jobs(&args(&["--jobs", "4"]), None), Ok(Some(4)));
        // The flag beats the environment.
        assert_eq!(parse_jobs(&args(&["--jobs", "2"]), Some("8")), Ok(Some(2)));
        assert_eq!(parse_jobs(&args(&[]), Some("8")), Ok(Some(8)));
        assert_eq!(parse_jobs(&args(&["--", "--jobs", "9"]), None), Ok(None));
        assert!(parse_jobs(&args(&["--jobs", "0"]), None).is_err());
        assert!(parse_jobs(&args(&["--jobs", "many"]), None).is_err());
        assert!(parse_jobs(&args(&["--jobs"]), None).is_err());
        assert!(parse_jobs(&args(&[]), Some("-3")).is_err());
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for jobs in [1, 3, 16] {
            let r = parallel_map(40, jobs, |i| i * i);
            assert_eq!(r, (0..40).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn parse_u64_flag_parses_and_rejects() {
        assert_eq!(parse_u64_flag(&args(&[]), "--seeds"), Ok(None));
        assert_eq!(
            parse_u64_flag(&args(&["--seeds", "250"]), "--seeds"),
            Ok(Some(250))
        );
        assert!(parse_u64_flag(&args(&["--seeds", "many"]), "--seeds").is_err());
        assert!(parse_u64_flag(&args(&["--seeds"]), "--seeds").is_err());
        assert_eq!(
            parse_u64_flag(&args(&["--", "--seeds", "9"]), "--seeds"),
            Ok(None)
        );
    }

    #[test]
    fn juliet_shard_detects_everything_on_a_slice() {
        let outcomes = run_juliet_with_jobs(Mode::watchdog_conservative(), 4, Some(42));
        let s = summarize_juliet(&outcomes);
        assert_eq!(s.cases, 42);
        assert_eq!(s.detected, 42, "every bad case detected: {s:?}");
        assert_eq!(s.false_positives, 0, "no benign twin trips: {s:?}");
        assert!(s.loc_cases > 0);
        assert!(
            s.loc_detected < s.loc_cases,
            "location-based checking must miss the reallocation cases: {s:?}"
        );
    }

    #[test]
    fn fuzz_campaign_smoke() {
        let s = run_fuzz_with_jobs(0, 8, 4);
        assert!(s.ok(), "failures: {:?}", s.failures);
        assert_eq!(s.outcomes.len(), 8);
        assert!(
            s.total_runs() >= 8 * 8,
            "at least the 8-run main matrix per seed"
        );
        assert!(s.total_insts() > 0);
        // Seed order is stable regardless of scheduling.
        let seeds: Vec<u64> = s.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn traced_sweep_is_byte_identical_to_resim() {
        // The trace acceptance anchor at harness level: one functional
        // pass + N replays must produce the exact ablation table a full
        // re-simulation produces, for any worker count.
        let mut uncached = SweepPoint::table2("uncached crack$");
        uncached.crack_cache = false;
        let points = [
            SweepPoint::table2("table2"),
            SweepPoint::ll_size_kb(1),
            uncached,
        ];
        let mode = Mode::watchdog_conservative();
        let traced = run_sweep_traced_with_jobs(mode, Scale::Test, &points, 4, Some(3));
        let resim = run_sweep_resim_with_jobs(mode, Scale::Test, &points, 2, Some(3));
        assert_eq!(
            format!("{traced:?}"),
            format!("{resim:?}"),
            "trace-driven sweep diverges from full re-simulation"
        );
        let serial = run_sweep_traced_with_jobs(mode, Scale::Test, &points, 1, Some(3));
        assert_eq!(
            format!("{traced:?}"),
            format!("{serial:?}"),
            "sweep results depend on worker count"
        );
        assert_eq!(traced.len(), 3);
        for (name, reports) in &traced {
            assert_eq!(reports.len(), points.len(), "{name} missing points");
        }
    }

    #[test]
    fn oversubscribed_jobs_are_clamped_to_the_grid() {
        // More workers than cells must not hang or drop results.
        let r = run_suite_with_jobs(&[Mode::Baseline], Scale::Test, false, 1000);
        assert_eq!(r.len(), 20);
    }

    #[test]
    fn worker_panics_carry_the_bench_and_mode_label() {
        let specs = all_benchmarks();
        let modes = [Mode::Baseline];
        let programs: Vec<_> = specs.iter().map(|s| s.build(Scale::Test)).collect();
        let got = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_grid(&specs, &modes, 4, |si, mi| {
                if specs[si].name == "mcf" {
                    panic!("synthetic cell failure");
                }
                run_cell(&programs[si], modes[mi], false)
            })
        }))
        .expect_err("the grid must fail");
        let msg = got
            .downcast_ref::<String>()
            .expect("labelled failures are formatted strings");
        assert!(
            msg.contains("[mcf under baseline] synthetic cell failure"),
            "label lost: {msg}"
        );
        // The other 19 cells must not mask or reorder the failure report.
        assert!(msg.contains("1 suite cell(s) failed"), "{msg}");

        // The strictly serial path labels failures identically.
        let got = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_grid(&specs, &modes, 1, |si, _| {
                panic!("early failure in {}", specs[si].name)
            })
        }))
        .expect_err("the serial grid must fail");
        let msg = got.downcast_ref::<String>().unwrap();
        assert!(
            msg.contains("[lbm under baseline] early failure in lbm"),
            "serial label lost: {msg}"
        );
    }
}
pub mod figs;
pub mod perf;
pub mod perfdiff;

//! One function per reproduced table/figure. Each prints the same
//! rows/series the paper reports; the binaries in `src/bin/` are thin
//! wrappers.

use crate::{figure_order, geomean, mean, pct, print_table, run_suite, run_suite_functional};
use watchdog_core::prelude::*;
use watchdog_core::PointerId;
use watchdog_workloads::Scale;

/// Figure 5: percentage of memory accesses classified as pointer
/// operations, conservative vs ISA-assisted (paper: 31% / 18% average).
pub fn fig05(scale: Scale) {
    let modes = [Mode::watchdog_conservative(), Mode::watchdog()];
    let results = run_suite_functional(&modes, scale);
    let mut rows = Vec::new();
    let (mut cons, mut isa) = (Vec::new(), Vec::new());
    for name in figure_order() {
        let r = &results[&name];
        let c = r["watchdog/conservative"].ptr_fraction();
        let a = r["watchdog/isa-assisted"].ptr_fraction();
        cons.push(c);
        isa.push(a);
        rows.push((name, vec![pct(c), pct(a)]));
    }
    rows.push(("avg".into(), vec![pct(mean(&cons)), pct(mean(&isa))]));
    print_table(
        "Figure 5: % of memory accesses classified as pointer load/store",
        &["conservative", "ISA-assisted"],
        &rows,
    );
    println!("(paper: 31% conservative, 18% ISA-assisted on average)");
}

/// Figure 7: runtime overhead of use-after-free checking, conservative vs
/// ISA-assisted identification (paper: 25% / 15% geometric mean).
pub fn fig07(scale: Scale) {
    let modes = [
        Mode::Baseline,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ];
    let results = run_suite(&modes, scale);
    let mut rows = Vec::new();
    let (mut cons, mut isa) = (Vec::new(), Vec::new());
    for name in figure_order() {
        let r = &results[&name];
        let base = &r["baseline"];
        let c = r["watchdog/conservative"].slowdown_vs(base);
        let a = r["watchdog/isa-assisted"].slowdown_vs(base);
        cons.push(c);
        isa.push(a);
        rows.push((name, vec![pct(c), pct(a)]));
    }
    rows.push((
        "Geo. mean".into(),
        vec![pct(geomean(&cons)), pct(geomean(&isa))],
    ));
    print_table(
        "Figure 7: runtime overhead, conservative vs ISA-assisted",
        &["conservative", "ISA-assisted"],
        &rows,
    );
    println!("(paper: 25% conservative, 15% ISA-assisted geometric mean)");
}

/// Figure 8: µop overhead breakdown under ISA-assisted identification
/// (paper: 44% total — 29% checks, 4% pointer loads, 2% pointer stores,
/// 9% other).
pub fn fig08(scale: Scale) {
    let results = run_suite(&[Mode::watchdog()], scale);
    let mut rows = Vec::new();
    let (mut tc, mut tl, mut ts, mut to, mut tt) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for name in figure_order() {
        let r = &results[&name]["watchdog/isa-assisted"];
        let (c, l, s, o) = r.uop_overhead_breakdown();
        let total = r.uop_overhead();
        tc.push(c);
        tl.push(l);
        ts.push(s);
        to.push(o);
        tt.push(total);
        rows.push((name, vec![pct(c), pct(l), pct(s), pct(o), pct(total)]));
    }
    rows.push((
        "avg".into(),
        vec![
            pct(mean(&tc)),
            pct(mean(&tl)),
            pct(mean(&ts)),
            pct(mean(&to)),
            pct(mean(&tt)),
        ],
    ));
    print_table(
        "Figure 8: µop overhead breakdown (ISA-assisted)",
        &["checks", "ptr loads", "ptr stores", "other", "total"],
        &rows,
    );
    println!("(paper: 29% checks + 4% loads + 2% stores + 9% other = 44% total average)");
}

/// Figure 9: runtime overhead with and without the 4KB lock-location
/// cache (paper: 15% vs 24% geometric mean; hmmer/h264 hit hardest).
pub fn fig09(scale: Scale) {
    let no_ll = Mode::Watchdog {
        ptr: PointerId::IsaAssisted,
        lock_cache: false,
        ideal_shadow: false,
    };
    let modes = [Mode::Baseline, Mode::watchdog(), no_ll];
    let results = run_suite(&modes, scale);
    let mut rows = Vec::new();
    let (mut with, mut without) = (Vec::new(), Vec::new());
    for name in figure_order() {
        let r = &results[&name];
        let base = &r["baseline"];
        let w = r["watchdog/isa-assisted"].slowdown_vs(base);
        let wo = r["watchdog/isa-assisted/no-ll$"].slowdown_vs(base);
        with.push(w);
        without.push(wo);
        rows.push((name, vec![pct(w), pct(wo)]));
    }
    rows.push((
        "Geo. mean".into(),
        vec![pct(geomean(&with)), pct(geomean(&without))],
    ));
    print_table(
        "Figure 9: overhead with vs without the lock-location cache",
        &["with LL$", "without LL$"],
        &rows,
    );
    // The paper also reports LL$ miss rates: "<1 miss per 1000
    // instructions for seventeen of the twenty benchmarks".
    let mut low_mpk = 0;
    for name in figure_order() {
        let r = &results[&name]["watchdog/isa-assisted"];
        let t = r.timing.as_ref().expect("timed");
        if t.hierarchy.ll_mpk(t.insts) < 1.0 {
            low_mpk += 1;
        }
    }
    println!("(paper: 15% vs 24% geometric mean)");
    println!("LL$ misses < 1 per 1000 instructions on {low_mpk}/20 benchmarks (paper: 17/20)");
}

/// §9.3 ablation: idealized shadow accesses (paper: 15% → 11%).
pub fn ablation_ideal_shadow(scale: Scale) {
    let ideal = Mode::Watchdog {
        ptr: PointerId::IsaAssisted,
        lock_cache: true,
        ideal_shadow: true,
    };
    let modes = [Mode::Baseline, Mode::watchdog(), ideal];
    let results = run_suite(&modes, scale);
    let mut rows = Vec::new();
    let (mut real, mut ideal_v) = (Vec::new(), Vec::new());
    for name in figure_order() {
        let r = &results[&name];
        let base = &r["baseline"];
        let a = r["watchdog/isa-assisted"].slowdown_vs(base);
        let i = r["watchdog/isa-assisted/ideal-shadow"].slowdown_vs(base);
        real.push(a);
        ideal_v.push(i);
        rows.push((name, vec![pct(a), pct(i)]));
    }
    rows.push((
        "Geo. mean".into(),
        vec![pct(geomean(&real)), pct(geomean(&ideal_v))],
    ));
    print_table(
        "§9.3 ablation: real vs idealized shadow-metadata accesses",
        &["real shadow", "ideal shadow"],
        &rows,
    );
    println!("(paper: idealizing metadata cache effects lowers 15% to 11%)");
}

/// Figure 10: memory overhead in words and 4KB pages (paper: 32% / 56%
/// average, worst cases approaching 200%).
pub fn fig10(scale: Scale) {
    let results = run_suite_functional(&[Mode::watchdog()], scale);
    let mut rows = Vec::new();
    let (mut words, mut pages) = (Vec::new(), Vec::new());
    for name in figure_order() {
        let r = &results[&name]["watchdog/isa-assisted"];
        let w = r.word_overhead();
        let p = r.page_overhead();
        words.push(w);
        pages.push(p);
        rows.push((name, vec![pct(w), pct(p)]));
    }
    rows.push((
        "Geo. mean".into(),
        vec![pct(geomean(&words)), pct(geomean(&pages))],
    ));
    print_table(
        "Figure 10: memory overhead (shadow + lock locations)",
        &["words", "pages"],
        &rows,
    );
    println!("(paper: 32% words, 56% pages; several benchmarks near the 200% worst case)");
}

/// Figure 11: full memory safety — Watchdog alone vs bounds checking with
/// one fused or two split check µops (paper: 15% / 18% / 24%).
pub fn fig11(scale: Scale) {
    let b1 = Mode::WatchdogBounds {
        ptr: PointerId::IsaAssisted,
        uops: BoundsUops::Fused,
    };
    let b2 = Mode::WatchdogBounds {
        ptr: PointerId::IsaAssisted,
        uops: BoundsUops::Split,
    };
    let modes = [Mode::Baseline, Mode::watchdog(), b1, b2];
    let results = run_suite(&modes, scale);
    let mut rows = Vec::new();
    let (mut wd, mut f1, mut f2) = (Vec::new(), Vec::new(), Vec::new());
    for name in figure_order() {
        let r = &results[&name];
        let base = &r["baseline"];
        let a = r["watchdog/isa-assisted"].slowdown_vs(base);
        let x = r["watchdog+bounds/isa-assisted/1uop"].slowdown_vs(base);
        let y = r["watchdog+bounds/isa-assisted/2uop"].slowdown_vs(base);
        wd.push(a);
        f1.push(x);
        f2.push(y);
        rows.push((name, vec![pct(a), pct(x), pct(y)]));
    }
    rows.push((
        "Geo. mean".into(),
        vec![pct(geomean(&wd)), pct(geomean(&f1)), pct(geomean(&f2))],
    ));
    print_table(
        "Figure 11: runtime overhead with bounds checking",
        &["Watchdog", "+bounds (1 uop)", "+bounds (2 uop)"],
        &rows,
    );
    println!("(paper: 15% / 18% / 24% geometric mean)");
}

/// Table 1: the taxonomy of checking approaches, demonstrated empirically:
/// identifier-based checking is comprehensive under reallocation,
/// location-based checking is not.
pub fn table1() {
    println!("\n== Table 1: location-based vs identifier-based checking ==");
    println!(
        "{:<12} {:<11} {:>8} {:>9} {:>6} {:>8}",
        "approach", "instrument.", "runtime", "metadata", "casts", "compre."
    );
    for (a, i, r, m, c, k) in [
        ("Memcheck", "binary", "10x", "disjoint", "Y", "N"),
        ("J&K", "compiler", "10x", "disjoint", "Y", "N"),
        ("LBA/MTrac", "hardware", "1.2x", "disjoint", "Y", "N"),
        ("SafeC", "source", "10x", "inline", "N", "Y"),
        ("MSCC", "source", "2x", "split", "N", "Y"),
        ("Chuang", "hybrid", "1.2x", "inline", "N", "Y"),
        ("CETS", "compiler", "2x", "disjoint", "Y", "Y"),
        ("Watchdog", "hardware", "1.2x", "disjoint", "Y", "Y"),
    ] {
        println!("{a:<12} {i:<11} {r:>8} {m:>9} {c:>6} {k:>8}");
    }

    // Empirical demonstration: three adversarial programs × three systems.
    use watchdog_isa::{Gpr, ProgramBuilder};
    let g = Gpr::new;
    let simple_uaf = {
        let mut b = ProgramBuilder::new("simple-uaf");
        b.li(g(1), 64);
        b.malloc(g(0), g(1));
        b.free(g(0));
        b.ld8(g(2), g(0), 0);
        b.halt();
        b.build().unwrap()
    };
    let realloc_uaf = {
        let mut b = ProgramBuilder::new("uaf-after-realloc");
        b.li(g(1), 64);
        b.malloc(g(0), g(1));
        b.mov(g(2), g(0));
        b.free(g(0));
        b.malloc(g(3), g(1)); // recycles the address
        b.ld8(g(4), g(2), 0); // dangling pointer, *allocated* location
        b.halt();
        b.build().unwrap()
    };
    let double_free = {
        let mut b = ProgramBuilder::new("double-free");
        b.li(g(1), 64);
        b.malloc(g(0), g(1));
        b.free(g(0));
        b.free(g(0));
        b.halt();
        b.build().unwrap()
    };
    println!("\nEmpirical comprehensiveness check (detected = Y):");
    println!(
        "{:<20} {:>9} {:>15} {:>9}",
        "program", "baseline", "location-based", "watchdog"
    );
    for p in [&simple_uaf, &realloc_uaf, &double_free] {
        let mut cells = Vec::new();
        for mode in [
            Mode::Baseline,
            Mode::LocationBased,
            Mode::watchdog_conservative(),
        ] {
            let r = Simulator::new(SimConfig::functional(mode)).run(p).unwrap();
            cells.push(if r.violation.is_some() { "Y" } else { "N" });
        }
        println!(
            "{:<20} {:>9} {:>15} {:>9}",
            p.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!("(the reallocation row is the paper's key claim: only identifier-based checking detects it)");
}

/// Table 2: the simulated processor configuration.
pub fn table2() {
    println!("\n== Table 2: simulated processor configuration ==");
    for (k, v) in watchdog_pipeline::CoreConfig::sandy_bridge().describe() {
        println!("{k:<12} {v}");
    }
    let h = watchdog_mem::HierarchyConfig::default();
    println!(
        "{:<12} {}KB, {}-way, {}B blocks, {} cycles",
        "L1 I$",
        h.l1i.size / 1024,
        h.l1i.ways,
        h.l1i.block,
        h.l1_lat
    );
    println!(
        "{:<12} {}KB, {}-way, {}B blocks, {} cycles",
        "L1 D$",
        h.l1d.size / 1024,
        h.l1d.ways,
        h.l1d.block,
        h.l1_lat
    );
    println!(
        "{:<12} {}KB, {}-way, {}B blocks",
        "Lock Loc. $",
        h.ll.size / 1024,
        h.ll.ways,
        h.ll.block
    );
    println!(
        "{:<12} {}KB, {}-way, {}B blocks, {} cycles",
        "Private L2$",
        h.l2.size / 1024,
        h.l2.ways,
        h.l2.block,
        h.l1_lat + h.l2_lat
    );
    println!(
        "{:<12} {}MB, {}-way, {}B blocks, {} cycles",
        "Shared L3$",
        h.l3.size / 1024 / 1024,
        h.l3.ways,
        h.l3.block,
        h.l1_lat + h.l2_lat + h.l3_lat
    );
    println!(
        "{:<12} {} cycles",
        "Memory",
        h.l1_lat + h.l2_lat + h.l3_lat + h.mem_lat
    );
}

/// §9.2: the Juliet CWE-416/CWE-562 suite (paper: 291/291 detected, zero
/// false positives).
pub fn juliet() {
    // The 291 cases are sharded across the same worker pool as the suite
    // runner (`--jobs`/`WATCHDOG_JOBS`); results come back in suite order,
    // so the printed report is identical to a serial run.
    let outcomes =
        crate::run_juliet_with_jobs(Mode::watchdog_conservative(), crate::jobs_from_args(), None);
    let s = crate::summarize_juliet(&outcomes);
    println!("\n== §9.2: Juliet-style CWE-416/CWE-562 suite ==");
    println!(
        "bad cases detected:        {}/{} (expected kind; {} with other kind)",
        s.detected, s.cases, s.wrong_kind
    );
    println!(
        "benign false positives:    {}/{}",
        s.false_positives, s.cases
    );
    println!("(paper: 291/291 detected, no false positives)");
    println!(
        "location-based comparison: {}/{} CWE-416 cases detected (blind to reallocation)",
        s.loc_detected, s.loc_cases
    );
}

//! The perf-regression observatory: comparing two `watchdog-bench-v1`
//! snapshots case by case.
//!
//! `watchdog-cli perf compare <baseline> <candidate>` builds a
//! [`PerfDiff`] from a committed `bench-history/BENCH_<rev>.json`
//! baseline and a freshly measured candidate, classifies every case
//! against a noise threshold, and renders the result both for humans
//! (the CLI table) and machines (the [`PERFDIFF_SCHEMA`] JSON document
//! CI archives as a build artifact). The comparison is deliberately dumb
//! — per-case relative `ns_per_iter` delta against one committed
//! snapshot — because the history directory accumulates one snapshot per
//! revision, so trends live in the files, not in this code.

use watchdog_telemetry::{BenchSnapshot, JsonValue};

/// Schema tag carried by every `perf compare --json` delta report.
pub const PERFDIFF_SCHEMA: &str = "watchdog-perfdiff-v1";

/// Default noise threshold in percent: a candidate case is a regression
/// only when it is more than this much slower than the baseline. Shared
/// wall-clock benches on CI runners jitter by a few percent; ten keeps
/// the gate quiet without letting real cliffs through.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// Classification of one benchmark case across the two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Present in both, delta within the noise threshold (or faster).
    Pass,
    /// Present in both and slower than the threshold allows.
    Regress,
    /// Only in the candidate — a freshly added case, never a failure.
    New,
    /// Only in the baseline — the candidate lost coverage; fails the
    /// gate, because a silently dropped case hides exactly the
    /// regression the gate exists to catch.
    Missing,
}

impl Verdict {
    /// Stable lowercase label used in both the JSON report and the table.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Regress => "regress",
            Verdict::New => "new",
            Verdict::Missing => "missing",
        }
    }
}

/// One case's comparison: both measurements and the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseDiff {
    /// Full case path (`group/case`).
    pub name: String,
    /// Baseline `ns_per_iter`; `0.0` for [`Verdict::New`] cases.
    pub base_ns: f64,
    /// Candidate `ns_per_iter`; `0.0` for [`Verdict::Missing`] cases.
    pub cand_ns: f64,
    /// Relative delta in percent, `(cand − base) / base × 100` —
    /// positive is slower. `0.0` when either side is absent.
    pub delta_pct: f64,
    /// The classification.
    pub verdict: Verdict,
}

/// A full delta report between one baseline and one candidate snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDiff {
    /// Revision the baseline snapshot was measured at.
    pub baseline_rev: String,
    /// Revision the candidate snapshot was measured at.
    pub candidate_rev: String,
    /// Noise threshold (percent) the verdicts were computed with.
    pub threshold_pct: f64,
    /// Per-case comparisons: baseline cases in baseline order, then
    /// candidate-only cases in candidate order.
    pub cases: Vec<CaseDiff>,
}

impl PerfDiff {
    /// Compares `candidate` against `baseline` with the given noise
    /// threshold (percent).
    pub fn compare(
        baseline: &BenchSnapshot,
        candidate: &BenchSnapshot,
        threshold_pct: f64,
    ) -> Self {
        let mut cases = Vec::with_capacity(baseline.records.len() + 1);
        for b in &baseline.records {
            let case = match candidate.record(&b.name) {
                Some(c) => {
                    let delta_pct = if b.ns_per_iter > 0.0 {
                        (c.ns_per_iter - b.ns_per_iter) / b.ns_per_iter * 100.0
                    } else {
                        0.0
                    };
                    CaseDiff {
                        name: b.name.clone(),
                        base_ns: b.ns_per_iter,
                        cand_ns: c.ns_per_iter,
                        delta_pct,
                        verdict: if delta_pct > threshold_pct {
                            Verdict::Regress
                        } else {
                            Verdict::Pass
                        },
                    }
                }
                None => CaseDiff {
                    name: b.name.clone(),
                    base_ns: b.ns_per_iter,
                    cand_ns: 0.0,
                    delta_pct: 0.0,
                    verdict: Verdict::Missing,
                },
            };
            cases.push(case);
        }
        for c in &candidate.records {
            if baseline.record(&c.name).is_none() {
                cases.push(CaseDiff {
                    name: c.name.clone(),
                    base_ns: 0.0,
                    cand_ns: c.ns_per_iter,
                    delta_pct: 0.0,
                    verdict: Verdict::New,
                });
            }
        }
        PerfDiff {
            baseline_rev: baseline.rev.clone(),
            candidate_rev: candidate.rev.clone(),
            threshold_pct,
            cases,
        }
    }

    /// Cases that fail the gate: regressions and lost coverage.
    pub fn failures(&self) -> impl Iterator<Item = &CaseDiff> {
        self.cases
            .iter()
            .filter(|c| matches!(c.verdict, Verdict::Regress | Verdict::Missing))
    }

    /// Whether the gate should fail the build.
    pub fn has_failures(&self) -> bool {
        self.failures().next().is_some()
    }

    /// Renders the delta report as the stable [`PERFDIFF_SCHEMA`]
    /// document (pretty-printed, schema tag first).
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::str(PERFDIFF_SCHEMA)),
            ("baseline_rev".into(), JsonValue::str(&self.baseline_rev)),
            ("candidate_rev".into(), JsonValue::str(&self.candidate_rev)),
            ("threshold_pct".into(), JsonValue::Num(self.threshold_pct)),
            (
                "cases".into(),
                JsonValue::Arr(
                    self.cases
                        .iter()
                        .map(|c| {
                            JsonValue::Obj(vec![
                                ("name".into(), JsonValue::str(&c.name)),
                                ("base_ns".into(), JsonValue::Num(c.base_ns)),
                                ("cand_ns".into(), JsonValue::Num(c.cand_ns)),
                                ("delta_pct".into(), JsonValue::Num(c.delta_pct)),
                                ("verdict".into(), JsonValue::str(c.verdict.label())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchdog_telemetry::BenchRecord;

    fn snap(rev: &str, cases: &[(&str, f64)]) -> BenchSnapshot {
        BenchSnapshot {
            rev: rev.into(),
            records: cases
                .iter()
                .map(|(name, ns)| BenchRecord {
                    name: (*name).into(),
                    ns_per_iter: *ns,
                    melem_per_s: 0.0,
                    iterations: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn verdicts_cover_pass_regress_new_and_missing() {
        let base = snap(
            "aaa",
            &[("g/steady", 100.0), ("g/slower", 100.0), ("g/gone", 50.0)],
        );
        let cand = snap(
            "bbb",
            &[("g/steady", 104.0), ("g/slower", 125.0), ("g/added", 7.0)],
        );
        let diff = PerfDiff::compare(&base, &cand, 10.0);
        let verdict = |name: &str| {
            diff.cases
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.verdict)
                .unwrap()
        };
        assert_eq!(verdict("g/steady"), Verdict::Pass);
        assert_eq!(verdict("g/slower"), Verdict::Regress);
        assert_eq!(verdict("g/gone"), Verdict::Missing);
        assert_eq!(verdict("g/added"), Verdict::New);
        assert!(diff.has_failures());
        assert_eq!(diff.failures().count(), 2);
        let slower = diff.cases.iter().find(|c| c.name == "g/slower").unwrap();
        assert!((slower.delta_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn speedups_and_threshold_boundary_pass() {
        let base = snap("aaa", &[("g/fast", 100.0), ("g/edge", 100.0)]);
        let cand = snap("bbb", &[("g/fast", 60.0), ("g/edge", 110.0)]);
        let diff = PerfDiff::compare(&base, &cand, 10.0);
        assert!(!diff.has_failures(), "at-threshold and faster both pass");
        assert!(diff.cases[0].delta_pct < 0.0);
    }

    #[test]
    fn json_report_has_the_stable_shape() {
        let base = snap("aaa", &[("g/x", 100.0)]);
        let cand = snap("bbb", &[("g/x", 120.0)]);
        let diff = PerfDiff::compare(&base, &cand, 5.0);
        let doc = JsonValue::parse(&diff.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(PERFDIFF_SCHEMA)
        );
        assert_eq!(
            doc.get("baseline_rev").and_then(JsonValue::as_str),
            Some("aaa")
        );
        let cases = doc.get("cases").and_then(JsonValue::as_array).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(
            cases[0].get("verdict").and_then(JsonValue::as_str),
            Some("regress")
        );
    }
}

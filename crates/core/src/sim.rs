//! The simulator facade: couples the functional machine to the timing
//! model and produces [`RunReport`]s.
//!
//! A [`Mode`] selects one of the paper's evaluated configurations:
//!
//! | Mode | Paper reference |
//! |---|---|
//! | `Baseline` | uninstrumented baseline of §9.3 |
//! | `LocationBased` | §2.1 comparison checker (Table 1) |
//! | `Watchdog { ptr, lock_cache, ideal_shadow }` | §3–§6, Figs. 7–9 |
//! | `WatchdogBounds { ptr, uops }` | §8, Fig. 11 |
//!
//! For ISA-assisted pointer identification the simulator first runs the
//! §5.2 profiling pass (a functional-only run that records which static
//! instructions ever move valid metadata), then the measured run.

use std::time::Instant;

use watchdog_isa::crack::BoundsUops;
use watchdog_isa::program::Program;
use watchdog_mem::HierarchyConfig;
use watchdog_pipeline::core::Snapshot;
use watchdog_pipeline::{
    CoreConfig, HeapSched, SchedModel, ScheduledCore, TelemetryConfig, UopBatch, WheelSched,
};

use crate::error::SimError;
use crate::machine::{CheckMode, Machine, MachineConfig, Step};
use crate::pointer_id::{PointerId, PointerPolicy, Profile};
use crate::report::RunReport;
use crate::telemetry::RunTelemetry;

/// A simulated configuration of the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unmodified processor, no checking.
    Baseline,
    /// Location-based checker (allocation-status shadow, §2.1).
    LocationBased,
    /// Watchdog use-after-free checking.
    Watchdog {
        /// Pointer-identification policy (§5).
        ptr: PointerId,
        /// Use the dedicated lock-location cache (§4.2). Disabling it
        /// reproduces the "without lock location cache" bars of Fig. 9.
        lock_cache: bool,
        /// Idealize shadow accesses (§9.3 cache-pressure ablation).
        ideal_shadow: bool,
    },
    /// Watchdog + bounds checking = full memory safety (§8, Fig. 11).
    WatchdogBounds {
        /// Pointer-identification policy.
        ptr: PointerId,
        /// One fused check µop or two split µops.
        uops: BoundsUops,
    },
}

impl Mode {
    /// The paper's headline configuration: ISA-assisted identification with
    /// the lock-location cache.
    pub fn watchdog() -> Mode {
        Mode::Watchdog {
            ptr: PointerId::IsaAssisted,
            lock_cache: true,
            ideal_shadow: false,
        }
    }

    /// Watchdog with conservative pointer identification (no binary
    /// changes, §5.1).
    pub fn watchdog_conservative() -> Mode {
        Mode::Watchdog {
            ptr: PointerId::Conservative,
            lock_cache: true,
            ideal_shadow: false,
        }
    }

    /// Short human-readable label.
    pub fn label(&self) -> String {
        match self {
            Mode::Baseline => "baseline".into(),
            Mode::LocationBased => "location-based".into(),
            Mode::Watchdog {
                ptr,
                lock_cache,
                ideal_shadow,
            } => {
                let mut s = format!(
                    "watchdog/{}",
                    match ptr {
                        PointerId::Conservative => "conservative",
                        PointerId::IsaAssisted => "isa-assisted",
                    }
                );
                if !lock_cache {
                    s.push_str("/no-ll$");
                }
                if *ideal_shadow {
                    s.push_str("/ideal-shadow");
                }
                s
            }
            Mode::WatchdogBounds { ptr, uops } => format!(
                "watchdog+bounds/{}/{}",
                match ptr {
                    PointerId::Conservative => "conservative",
                    PointerId::IsaAssisted => "isa-assisted",
                },
                match uops {
                    BoundsUops::Fused => "1uop",
                    BoundsUops::Split => "2uop",
                }
            ),
        }
    }

    /// The machine-level checking scheme this mode enforces.
    pub fn check_mode(&self) -> CheckMode {
        match self {
            Mode::Baseline => CheckMode::None,
            Mode::LocationBased => CheckMode::Location,
            Mode::Watchdog { .. } | Mode::WatchdogBounds { .. } => CheckMode::Watchdog,
        }
    }

    /// The bounds-extension µop flavour, if this mode checks bounds (§8).
    pub fn bounds_uops(&self) -> Option<BoundsUops> {
        match self {
            Mode::WatchdogBounds { uops, .. } => Some(*uops),
            _ => None,
        }
    }

    /// The pointer-identification policy, for modes that classify at all.
    pub fn pointer_id(&self) -> Option<PointerId> {
        match self {
            Mode::Watchdog { ptr, .. } | Mode::WatchdogBounds { ptr, .. } => Some(*ptr),
            _ => None,
        }
    }

    /// The cracker configuration this mode decodes under — the same mapping
    /// [`Machine::new`] applies, exposed so trace replay cracks identically.
    pub fn crack_config(&self) -> watchdog_isa::crack::CrackConfig {
        use watchdog_isa::crack::CrackConfig;
        match (self.check_mode() == CheckMode::Watchdog, self.bounds_uops()) {
            (true, Some(b)) => CrackConfig::with_bounds(b),
            (true, None) => CrackConfig::watchdog(),
            (false, _) => CrackConfig::baseline(),
        }
    }

    /// Applies this mode's memory-hierarchy knobs (lock-location cache,
    /// idealized shadow) on top of a base configuration — exactly what
    /// [`Simulator::run`] does before building the timing core.
    pub fn apply_hierarchy(&self, hier: &mut HierarchyConfig) {
        if let Mode::Watchdog {
            lock_cache,
            ideal_shadow,
            ..
        } = *self
        {
            hier.lock_cache = lock_cache;
            hier.ideal_shadow = ideal_shadow;
        }
    }
}

/// Periodic-sampling configuration, reproducing the paper's methodology
/// (§9.1): "We used 2% periodic sampling with each sample of 10 million
/// instructions proceeded by a fast forward and a warmup of 480 and 10
/// million instructions per period, respectively." Between samples the
/// machine fast-forwards functionally (no timing); each sample window is
/// preceded by a warmup window that primes caches and predictors but is
/// excluded from the measured counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampling {
    /// Instructions per period (fast-forward + warmup + sample).
    pub period: u64,
    /// Warmup instructions per period (timed, not measured).
    pub warmup: u64,
    /// Measured instructions per period.
    pub sample: u64,
}

impl Sampling {
    /// The paper's 2% regime, scaled down 1000× to suit the synthetic
    /// kernels: 10k-instruction samples, 10k warmup, 480k fast-forward.
    pub const fn paper_scaled() -> Self {
        Sampling {
            period: 500_000,
            warmup: 10_000,
            sample: 10_000,
        }
    }

    /// A denser regime for small programs: 2% measured, 10% warmed.
    pub const fn dense() -> Self {
        Sampling {
            period: 50_000,
            warmup: 5_000,
            sample: 1_000,
        }
    }

    fn fast_forward(&self) -> u64 {
        self.period - self.warmup - self.sample
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// System mode.
    pub mode: Mode,
    /// Run the out-of-order timing model (slower; required for cycle
    /// numbers).
    pub timing: bool,
    /// Hard instruction limit (guards against runaway programs).
    pub max_insts: u64,
    /// Core parameters (Table 2 by default).
    pub core: CoreConfig,
    /// Memory-hierarchy parameters (Table 2 by default; the mode's
    /// lock-cache / ideal-shadow knobs are applied on top).
    pub hierarchy: HierarchyConfig,
    /// Periodic sampling (§9.1). `None` = measure every instruction.
    /// Requires `timing`.
    pub sampling: Option<Sampling>,
    /// Memoize crack expansions per PC in the functional machine (see
    /// [`watchdog_isa::crack_cache::CrackCache`]). On by default; only
    /// µop-emitting (timed) runs crack at all, so functional-only runs
    /// allocate no cache either way. Disable only to benchmark the
    /// uncached decoder.
    pub crack_cache: bool,
    /// Feed the timing core through the batched µop-event pipeline
    /// ([`UopBatch`] windows of [`UopBatch::TARGET_INSTS`] instructions)
    /// instead of one
    /// [`TimingCore::consume`](watchdog_pipeline::ScheduledCore::consume)
    /// call per instruction. On by
    /// default; the two feeds produce field-identical reports (asserted by
    /// the batch-equivalence suites), so disabling is only useful to
    /// benchmark the per-instruction path.
    pub batch: bool,
    /// Drive the timing core through the preserved match-based dispatch
    /// path instead of the table-driven lane-streaming default (see
    /// [`ScheduledCore::set_match_dispatch`](watchdog_pipeline::ScheduledCore::set_match_dispatch)).
    /// Off by default; the two paths produce field-identical reports
    /// (asserted by the dispatch-equivalence suite), so enabling is only
    /// useful as the equivalence oracle and for benchmarking.
    pub match_dispatch: bool,
    /// Self-profiler knobs for [`Simulator::run_instrumented`] (`None`
    /// uses [`TelemetryConfig::default`]). Plain [`Simulator::run`]
    /// ignores this: telemetry is collected only on instrumented runs,
    /// and never changes any report field either way.
    pub telemetry: Option<TelemetryConfig>,
}

impl SimConfig {
    /// Timed simulation of `mode` with Table 2 parameters.
    pub fn timed(mode: Mode) -> Self {
        SimConfig {
            mode,
            timing: true,
            max_insts: 200_000_000,
            core: CoreConfig::sandy_bridge(),
            hierarchy: HierarchyConfig::default(),
            sampling: None,
            crack_cache: true,
            batch: true,
            match_dispatch: false,
            telemetry: None,
        }
    }

    /// Timed simulation with the paper's (scaled) §9.1 sampling regime.
    pub fn sampled(mode: Mode, sampling: Sampling) -> Self {
        SimConfig {
            sampling: Some(sampling),
            ..Self::timed(mode)
        }
    }

    /// Functional-only simulation (fast; no cycle numbers).
    pub fn functional(mode: Mode) -> Self {
        SimConfig {
            timing: false,
            ..Self::timed(mode)
        }
    }
}

/// The simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Builds a simulator for one configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Simulator { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs the §5.2 profiling pass: a functional Watchdog run with
    /// conservative identification that records the static instructions
    /// ever loading/storing valid pointer metadata.
    ///
    /// # Errors
    ///
    /// Propagates simulator-level failures; a violation during profiling
    /// also ends the pass (the profile covers the executed prefix).
    pub fn profile(program: &Program, max_insts: u64) -> Result<Profile, SimError> {
        let cfg = MachineConfig {
            check: CheckMode::Watchdog,
            bounds: None,
            policy: PointerPolicy::Conservative,
            profiling: true,
            emit_uops: false,
            crack_cache: true,
        };
        let mut m = Machine::new(program, cfg);
        let mut executed = 0u64;
        while let Step::Executed(_) = m.step()? {
            executed += 1;
            if executed > max_insts {
                return Err(SimError::InstLimit { limit: max_insts });
            }
        }
        Ok(m.profile().clone())
    }

    /// Simulates `program` under the configured mode.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for simulator-level failures. Detected
    /// memory-safety violations are *not* errors — they are reported in
    /// [`RunReport::violation`].
    pub fn run(&self, program: &Program) -> Result<RunReport, SimError> {
        self.run_with::<WheelSched>(program)
    }

    /// [`Simulator::run`] on the heap-scheduled [`ReferenceCore`]
    /// (`ScheduledCore<HeapSched>`) — the PR 5 timing structures, kept as
    /// the oracle the wheel-scheduled production core is proven
    /// report-identical to (equivalence suites, benches). Not for
    /// production use.
    ///
    /// [`ReferenceCore`]: watchdog_pipeline::ReferenceCore
    ///
    /// # Errors
    ///
    /// Exactly as [`Simulator::run`].
    pub fn run_reference(&self, program: &Program) -> Result<RunReport, SimError> {
        self.run_with::<HeapSched>(program)
    }

    /// [`Simulator::run`] with the self-profiler attached: the timing
    /// core collects its [`CoreTelemetry`](watchdog_pipeline::CoreTelemetry)
    /// (per-kind dispatch counters, occupancy histograms, sampled phase
    /// timers) and the driver loop charges wall-clock section timers,
    /// all returned beside — never inside — the report. The report is
    /// byte-identical to an uninstrumented [`Simulator::run`] of the
    /// same configuration.
    ///
    /// # Errors
    ///
    /// Exactly as [`Simulator::run`].
    pub fn run_instrumented(
        &self,
        program: &Program,
    ) -> Result<(RunReport, RunTelemetry), SimError> {
        let mut tele = RunTelemetry::new();
        let report = self.run_impl::<WheelSched>(program, Some(&mut tele))?;
        Ok((report, tele))
    }

    /// The run loop, generic over the timing core's scheduling model.
    fn run_with<S: SchedModel>(&self, program: &Program) -> Result<RunReport, SimError> {
        self.run_impl::<S>(program, None)
    }

    /// The run loop proper; `tele`, when supplied, collects host-side
    /// observations without touching any report field.
    fn run_impl<S: SchedModel>(
        &self,
        program: &Program,
        tele: Option<&mut RunTelemetry>,
    ) -> Result<RunReport, SimError> {
        let policy = match self.cfg.mode.pointer_id() {
            Some(PointerId::IsaAssisted) => {
                PointerPolicy::Profiled(Self::profile(program, self.cfg.max_insts)?)
            }
            _ => PointerPolicy::Conservative,
        };
        let mcfg = MachineConfig {
            check: self.cfg.mode.check_mode(),
            bounds: self.cfg.mode.bounds_uops(),
            policy,
            profiling: false,
            emit_uops: self.cfg.timing,
            crack_cache: self.cfg.crack_cache,
        };
        let mut hier = self.cfg.hierarchy;
        self.cfg.mode.apply_hierarchy(&mut hier);
        let sampling = self.cfg.sampling;
        if let Some(s) = sampling {
            assert!(self.cfg.timing, "sampling requires the timing model");
            assert!(
                s.warmup + s.sample <= s.period && s.sample > 0,
                "sampling windows must fit in the period"
            );
        }
        let mut machine = Machine::new(program, mcfg);
        let mut core = self
            .cfg
            .timing
            .then(|| ScheduledCore::<S>::new(self.cfg.core, hier));
        if let Some(core) = core.as_mut() {
            core.set_match_dispatch(self.cfg.match_dispatch);
        }
        let tele_on = tele.is_some();
        let t_run = tele_on.then(Instant::now);
        if let (true, Some(core)) = (tele_on, core.as_mut()) {
            core.enable_telemetry(self.cfg.telemetry.unwrap_or_default());
        }
        // Section-timer accumulators, folded into `tele` once at the end.
        // Consume laps time every batch flush; fetch/crack laps sample the
        // steps of one batch-fill in 32 so the per-instruction `Instant`
        // cost stays off the common path.
        let (mut consume_ns, mut consume_hits) = (0u64, 0u64);
        let (mut fetch_crack_ns, mut fetch_crack_hits) = (0u64, 0u64);
        let (mut fills, mut fill_sampled) = (0u64, false);
        let mut violation = None;
        let mut executed = 0u64;
        // The batched µop-event feed: the machine appends committed
        // expansions straight into an SoA window (`Machine::step_batched`,
        // no scratch `CrackedInst`) and `consume_batch` drains it.
        // Draining an empty or partial window is always safe (batching is
        // timing-transparent), so the flush points below only have to
        // precede snapshots.
        let batching = self.cfg.batch && core.is_some();
        let mut batch = UopBatch::with_capacity(UopBatch::TARGET_INSTS);
        let mut flush = |core: &mut ScheduledCore<S>, batch: &mut UopBatch| {
            let t0 = tele_on.then(Instant::now);
            core.consume_batch(batch);
            batch.clear();
            if let Some(t0) = t0 {
                consume_ns += t0.elapsed().as_nanos() as u64;
                consume_hits += 1;
            }
        };
        // Sampling state: accumulated measured counters and the snapshot at
        // the start of the current sample window (if inside one).
        let mut measured = Snapshot::default();
        let mut window_start: Option<Snapshot> = None;
        loop {
            if let (Some(s), Some(core)) = (sampling, core.as_mut()) {
                let pos = executed % s.period;
                if pos == s.fast_forward() + s.warmup && window_start.is_none() {
                    flush(core, &mut batch);
                    window_start = Some(core.snapshot());
                }
                machine.set_emit_uops(pos >= s.fast_forward());
            }
            let step = if batching {
                if tele_on && batch.is_empty() {
                    fills += 1;
                    fill_sampled = fills % 32 == 1;
                }
                if fill_sampled {
                    let t0 = Instant::now();
                    let step = machine.step_batched(&mut batch);
                    fetch_crack_ns += t0.elapsed().as_nanos() as u64;
                    fetch_crack_hits += 1;
                    step?
                } else {
                    machine.step_batched(&mut batch)?
                }
            } else {
                machine.step()?
            };
            match step {
                Step::Executed(ci) => {
                    if let Some(core) = core.as_mut() {
                        if batching {
                            if batch.len() >= UopBatch::TARGET_INSTS {
                                flush(core, &mut batch);
                            }
                        } else if let Some(ci) = ci {
                            core.consume(ci);
                        }
                    }
                    executed += 1;
                    if let (Some(s), Some(core)) = (sampling, core.as_mut()) {
                        // Close the sample window at the period boundary.
                        if executed.is_multiple_of(s.period) {
                            if let Some(start) = window_start.take() {
                                flush(core, &mut batch);
                                measured.accumulate(&core.snapshot().delta(&start));
                            }
                        }
                    }
                    if executed > self.cfg.max_insts {
                        return Err(SimError::InstLimit {
                            limit: self.cfg.max_insts,
                        });
                    }
                }
                Step::Halted => break,
                Step::Violation(v) => {
                    violation = Some(v);
                    break;
                }
            }
        }
        if let Some(core) = core.as_mut() {
            flush(core, &mut batch);
        }
        // Close a partially-complete final window.
        if let (Some(start), Some(core)) = (window_start.take(), core.as_ref()) {
            measured.accumulate(&core.snapshot().delta(&start));
        }
        // Capture host-side observations before `finish` consumes the core.
        if let Some(t) = tele {
            if let Some(core) = core.as_ref() {
                core.export_telemetry_into(&mut t.core_metrics);
                t.ll_memo_hits = core.hierarchy().ll_memo_hits();
            }
            t.host_ns = t_run.expect("run timer started").elapsed().as_nanos() as u64;
            let run = t.sections.id("run");
            t.sections.add_batch(run, t.host_ns, 1);
            let fc = t.sections.id("run/fetch_crack");
            t.sections.add_batch(fc, fetch_crack_ns, fetch_crack_hits);
            let cons = t.sections.id("run/consume");
            t.sections.add_batch(cons, consume_ns, consume_hits);
        }
        let timing = core.map(|c| {
            let mut t = c.finish();
            if sampling.is_some() {
                // Report the *measured* windows only; hierarchy/predictor
                // statistics remain cumulative over all timed windows.
                t.cycles = measured.cycles;
                t.uops = measured.uops;
                t.insts = measured.insts;
                t.uops_by_tag = measured.uops_by_tag;
            }
            t
        });
        Ok(RunReport {
            program: program.name().to_string(),
            mode: self.cfg.mode.label(),
            machine: machine.stats(),
            heap: machine.heap_stats(),
            footprint: machine.footprint(),
            violation,
            timing,
            crack_cache: machine.crack_cache_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ViolationKind;
    use watchdog_isa::{Cond, Gpr, ProgramBuilder};

    fn g(n: u8) -> Gpr {
        Gpr::new(n)
    }

    /// A small pointer-heavy benign kernel: build a linked list on the
    /// heap, walk it, free it.
    fn list_program(nodes: i64) -> Program {
        let mut b = ProgramBuilder::new("list");
        let (head, cur, nxt, sz, i, n, acc) = (g(0), g(1), g(2), g(3), g(4), g(5), g(6));
        b.li(sz, 16);
        b.li(head, 0);
        b.li(i, 0);
        b.li(n, nodes);
        let build = b.here();
        b.malloc(nxt, sz);
        b.st8(head, nxt, 0); // node.next = head
        b.st8(i, nxt, 8); // node.val = i
        b.mov(head, nxt);
        b.addi(i, i, 1);
        b.branch(Cond::Lt, i, n, build);
        // Walk and sum.
        b.li(acc, 0);
        b.mov(cur, head);
        let walk = b.here();
        b.ld8(nxt, cur, 8);
        b.add(acc, acc, nxt);
        b.ld8(cur, cur, 0);
        b.branch(Cond::Ne, cur, g(15 - 1), walk); // g14 is 0

        // Free.
        b.mov(cur, head);
        let fr = b.here();
        b.ld8(nxt, cur, 0);
        b.free(cur);
        b.mov(cur, nxt);
        b.branch(Cond::Ne, cur, g(14), fr);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn timed_run_produces_cycles_and_uop_breakdown() {
        let p = list_program(200);
        let base = Simulator::new(SimConfig::timed(Mode::Baseline))
            .run(&p)
            .unwrap();
        let wd = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()))
            .run(&p)
            .unwrap();
        assert!(base.violation.is_none() && wd.violation.is_none());
        assert!(base.cycles() > 0);
        assert!(wd.uops() > base.uops(), "watchdog injects µops");
        assert!(wd.uop_overhead() > 0.0);
        let (checks, ptr_ld, ptr_st, other) = wd.uop_overhead_breakdown();
        assert!(checks > 0.0, "checks dominate");
        assert!(ptr_ld > 0.0 && ptr_st > 0.0);
        assert!(other > 0.0, "alloc/dealloc and propagation µops");
        let slow = wd.slowdown_vs(&base);
        assert!(slow >= 0.0, "watchdog cannot be faster ({slow})");
        assert!(
            slow < wd.uop_overhead(),
            "checks execute off the critical path"
        );
    }

    #[test]
    fn isa_assisted_classifies_fewer_accesses_than_conservative() {
        let p = list_program(200);
        let cons = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()))
            .run(&p)
            .unwrap();
        let isa = Simulator::new(SimConfig::timed(Mode::watchdog()))
            .run(&p)
            .unwrap();
        assert!(isa.ptr_fraction() <= cons.ptr_fraction());
        assert!(
            isa.violation.is_none(),
            "no false positives under the profile"
        );
        assert!(isa.uops() <= cons.uops());
    }

    #[test]
    fn functional_run_skips_timing() {
        let p = list_program(50);
        let r = Simulator::new(SimConfig::functional(Mode::watchdog()))
            .run(&p)
            .unwrap();
        assert!(r.timing.is_none());
        assert_eq!(r.cycles(), 0);
        assert!(r.machine.insts > 0);
    }

    #[test]
    fn inst_limit_guards_infinite_loops() {
        let mut b = ProgramBuilder::new("loop");
        let l = b.here();
        b.jmp(l);
        let p = b.build().unwrap();
        let mut cfg = SimConfig::functional(Mode::Baseline);
        cfg.max_insts = 1000;
        let e = Simulator::new(cfg).run(&p).unwrap_err();
        assert_eq!(e, SimError::InstLimit { limit: 1000 });
    }

    #[test]
    fn no_lock_cache_mode_routes_checks_to_l1d() {
        let p = list_program(100);
        let with = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()))
            .run(&p)
            .unwrap();
        let without = Simulator::new(SimConfig::timed(Mode::Watchdog {
            ptr: PointerId::Conservative,
            lock_cache: false,
            ideal_shadow: false,
        }))
        .run(&p)
        .unwrap();
        let h_with = &with.timing.as_ref().unwrap().hierarchy;
        let h_without = &without.timing.as_ref().unwrap().hierarchy;
        assert!(h_with.ll.accesses > 0);
        assert_eq!(h_without.ll.accesses, 0);
        assert!(
            without.cycles() >= with.cycles(),
            "losing the LL$ cannot help"
        );
    }

    #[test]
    fn violations_surface_in_reports_with_timing() {
        let mut b = ProgramBuilder::new("uaf");
        let (p, sz) = (g(0), g(1));
        b.li(sz, 64);
        b.malloc(p, sz);
        b.free(p);
        b.ld8(g(2), p, 0);
        b.halt();
        let prog = b.build().unwrap();
        let r = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()))
            .run(&prog)
            .unwrap();
        assert_eq!(r.violation.unwrap().kind, ViolationKind::UseAfterFree);
        assert!(r.cycles() > 0, "cycles up to the exception are reported");
    }

    #[test]
    fn sampled_runs_measure_a_subset() {
        let p = list_program(400);
        let full = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()))
            .run(&p)
            .unwrap();
        let sampled = Simulator::new(SimConfig::sampled(
            Mode::watchdog_conservative(),
            Sampling {
                period: 2_000,
                warmup: 200,
                sample: 200,
            },
        ))
        .run(&p)
        .unwrap();
        let (tf, ts) = (
            full.timing.as_ref().unwrap(),
            sampled.timing.as_ref().unwrap(),
        );
        assert!(ts.insts > 0, "some instructions were measured");
        assert!(ts.insts < tf.insts, "sampling measures a strict subset");
        assert!(ts.cycles < tf.cycles);
        // The sampled per-instruction cost is in the same ballpark as the
        // full-run cost (warmup removes cold-start bias).
        let cpi_full = tf.cycles as f64 / tf.insts as f64;
        let cpi_sampled = ts.cycles as f64 / ts.insts as f64;
        assert!(
            (cpi_sampled / cpi_full - 1.0).abs() < 0.6,
            "sampled CPI {cpi_sampled:.2} too far from full CPI {cpi_full:.2}"
        );
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let p = list_program(300);
        let cfg = SimConfig::sampled(Mode::watchdog(), Sampling::dense());
        let a = Simulator::new(cfg.clone()).run(&p).unwrap();
        let b = Simulator::new(cfg).run(&p).unwrap();
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.uops(), b.uops());
    }

    #[test]
    #[should_panic(expected = "sampling requires the timing model")]
    fn sampling_without_timing_is_rejected() {
        let p = list_program(10);
        let mut cfg = SimConfig::sampled(Mode::Baseline, Sampling::dense());
        cfg.timing = false;
        let _ = Simulator::new(cfg).run(&p);
    }

    #[test]
    fn crack_cache_does_not_change_timed_results() {
        let p = list_program(200);
        let cached = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()))
            .run(&p)
            .unwrap();
        let mut cfg = SimConfig::timed(Mode::watchdog_conservative());
        cfg.crack_cache = false;
        let uncached = Simulator::new(cfg).run(&p).unwrap();
        assert_eq!(cached.cycles(), uncached.cycles());
        assert_eq!(cached.uops(), uncached.uops());
        assert_eq!(
            cached.timing.as_ref().unwrap().uops_by_tag,
            uncached.timing.as_ref().unwrap().uops_by_tag
        );
    }

    #[test]
    fn batched_feed_matches_per_inst_feed() {
        // The batched µop-event pipeline is timing-transparent: disabling
        // it (one `consume` per committed instruction) must produce a
        // field-identical report, including under sampling, where batch
        // flushes have to line up with the measurement windows.
        let p = list_program(300);
        for cfg in [
            SimConfig::timed(Mode::watchdog_conservative()),
            SimConfig::timed(Mode::watchdog()),
            SimConfig::timed(Mode::Baseline),
            SimConfig::sampled(Mode::watchdog_conservative(), Sampling::dense()),
        ] {
            let batched = Simulator::new(cfg.clone()).run(&p).unwrap();
            let mut per_inst_cfg = cfg.clone();
            per_inst_cfg.batch = false;
            let per_inst = Simulator::new(per_inst_cfg).run(&p).unwrap();
            assert_eq!(
                format!("{batched:?}"),
                format!("{per_inst:?}"),
                "batched and per-instruction feeds diverge under {}",
                cfg.mode.label()
            );
        }
    }

    #[test]
    fn mode_labels_are_distinct() {
        let modes = [
            Mode::Baseline,
            Mode::LocationBased,
            Mode::watchdog(),
            Mode::watchdog_conservative(),
            Mode::Watchdog {
                ptr: PointerId::IsaAssisted,
                lock_cache: false,
                ideal_shadow: false,
            },
            Mode::Watchdog {
                ptr: PointerId::IsaAssisted,
                lock_cache: true,
                ideal_shadow: true,
            },
            Mode::WatchdogBounds {
                ptr: PointerId::IsaAssisted,
                uops: BoundsUops::Fused,
            },
            Mode::WatchdogBounds {
                ptr: PointerId::IsaAssisted,
                uops: BoundsUops::Split,
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for m in modes {
            assert!(seen.insert(m.label()), "duplicate label {}", m.label());
        }
    }
}

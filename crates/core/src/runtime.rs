//! The heap runtime: a DL-malloc-style segregated free-list allocator over
//! guest memory.
//!
//! The paper modified "the standard DL-malloc memory allocator to use the
//! new instruction\[s\] to inform the hardware of memory allocations and
//! deallocations" (§9.1). We build the same shape of allocator: power-of-two
//! size classes with LIFO free lists, an 8-byte chunk header holding the
//! size, and a bump cursor for fresh memory. LIFO reuse is essential to the
//! evaluation: it makes *freed addresses come back quickly*, which is the
//! exact scenario where location-based checkers go blind and identifier
//! checking must not (§2.1 vs §2.2, Table 1).
//!
//! The allocator's *data structures* (bin heads, chunk headers, free links)
//! live at real guest addresses so the runtime µops injected by the cracker
//! touch plausible memory.

use std::collections::HashMap;
use watchdog_isa::layout::{HEAP_BASE, HEAP_SIZE};

/// Size classes in bytes (payload). Requests above the last class are
/// rounded up to 4KB multiples and handled as "large".
const CLASSES: [u64; 10] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// First address handed to user chunks; the first heap page is reserved for
/// the allocator's bin-head words.
const CHUNK_BASE: u64 = HEAP_BASE + 4096;

/// Result of a successful `malloc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MallocInfo {
    /// Payload address handed to the program (16-byte aligned).
    pub addr: u64,
    /// Rounded payload size actually reserved.
    pub size: u64,
    /// Address of the chunk header word (at `addr - 8`).
    pub header_addr: u64,
    /// Guest address of the size-class bin head touched by the runtime.
    pub bin_head_addr: u64,
    /// Whether this allocation reuses a previously-freed chunk.
    pub reused: bool,
}

/// Result of a successful `free`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeInfo {
    /// Payload address freed.
    pub addr: u64,
    /// Rounded payload size returned.
    pub size: u64,
    /// Address of the chunk header word.
    pub header_addr: u64,
    /// Guest address of the size-class bin head touched by the runtime.
    pub bin_head_addr: u64,
}

/// Allocator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Successful allocations.
    pub mallocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Allocations that reused a freed chunk (address reuse — the
    /// use-after-free danger zone).
    pub reused: u64,
    /// Bytes currently live (rounded sizes).
    pub live_bytes: u64,
    /// Peak live bytes.
    pub peak_live_bytes: u64,
}

/// The segregated free-list heap allocator.
#[derive(Debug)]
pub struct HeapAllocator {
    bins: Vec<Vec<u64>>,
    large_bins: HashMap<u64, Vec<u64>>,
    cursor: u64,
    live: HashMap<u64, u64>, // payload addr -> rounded size
    stats: HeapStats,
}

impl Default for HeapAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapAllocator {
    /// An empty heap.
    pub fn new() -> Self {
        HeapAllocator {
            bins: vec![Vec::new(); CLASSES.len()],
            large_bins: HashMap::new(),
            cursor: CHUNK_BASE,
            live: HashMap::new(),
            stats: HeapStats::default(),
        }
    }

    fn class_of(size: u64) -> Option<usize> {
        CLASSES.iter().position(|c| size <= *c)
    }

    fn rounded(size: u64) -> u64 {
        match Self::class_of(size) {
            Some(c) => CLASSES[c],
            None => (size + 4095) & !4095,
        }
    }

    /// Guest address of the bin-head word for a rounded size.
    pub fn bin_head_addr(rounded: u64) -> u64 {
        match CLASSES.iter().position(|c| *c == rounded) {
            Some(c) => HEAP_BASE + 8 * c as u64,
            // Large sizes share one bin-head word.
            None => HEAP_BASE + 8 * CLASSES.len() as u64,
        }
    }

    /// Allocates `size` bytes (at least 1). Returns `None` when the heap
    /// region is exhausted.
    pub fn malloc(&mut self, size: u64) -> Option<MallocInfo> {
        let size = size.max(1);
        let rounded = Self::rounded(size);
        let bin_head_addr = Self::bin_head_addr(rounded);
        let (addr, reused) = match Self::class_of(size) {
            Some(c) => match self.bins[c].pop() {
                Some(a) => (a, true),
                None => (self.carve(rounded)?, false),
            },
            None => match self.large_bins.get_mut(&rounded).and_then(Vec::pop) {
                Some(a) => (a, true),
                None => (self.carve(rounded)?, false),
            },
        };
        self.live.insert(addr, rounded);
        self.stats.mallocs += 1;
        if reused {
            self.stats.reused += 1;
        }
        self.stats.live_bytes += rounded;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        Some(MallocInfo {
            addr,
            size: rounded,
            header_addr: addr - 8,
            bin_head_addr,
            reused,
        })
    }

    fn carve(&mut self, rounded: u64) -> Option<u64> {
        // 8-byte header + payload, kept 16-aligned.
        let total = (rounded + 8 + 15) & !15;
        if self.cursor + total > HEAP_BASE + HEAP_SIZE {
            return None;
        }
        let addr = self.cursor + 8;
        self.cursor += total;
        Some(addr)
    }

    /// Frees a payload address previously returned by
    /// [`HeapAllocator::malloc`]. Returns `None` if `addr` is not a live
    /// allocation (double or invalid free — the *caller* decides whether
    /// that is a detected violation or silent corruption, depending on the
    /// checking mode).
    pub fn free(&mut self, addr: u64) -> Option<FreeInfo> {
        let rounded = self.live.remove(&addr)?;
        match Self::class_of(rounded) {
            Some(c) if CLASSES[c] == rounded => self.bins[c].push(addr),
            _ => self.large_bins.entry(rounded).or_default().push(addr),
        }
        self.stats.frees += 1;
        self.stats.live_bytes -= rounded;
        Some(FreeInfo {
            addr,
            size: rounded,
            header_addr: addr - 8,
            bin_head_addr: Self::bin_head_addr(rounded),
        })
    }

    /// Rounded size of a live allocation, if `addr` is one.
    pub fn live_size(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).copied()
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut h = HeapAllocator::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for size in [1u64, 16, 17, 100, 4096, 5000, 100_000] {
            let m = h.malloc(size).unwrap();
            assert_eq!(m.addr % 8, 0);
            assert!(m.size >= size);
            assert_eq!(m.header_addr, m.addr - 8);
            for (a, e) in &spans {
                assert!(
                    m.addr + m.size <= *a || m.addr >= *e,
                    "overlap with [{a:#x},{e:#x})"
                );
            }
            spans.push((m.addr, m.addr + m.size));
        }
    }

    #[test]
    fn free_then_malloc_reuses_the_address_lifo() {
        let mut h = HeapAllocator::new();
        let a = h.malloc(64).unwrap();
        let b = h.malloc(64).unwrap();
        h.free(a.addr).unwrap();
        h.free(b.addr).unwrap();
        let c = h.malloc(64).unwrap();
        assert_eq!(c.addr, b.addr, "LIFO reuse");
        assert!(c.reused);
        let d = h.malloc(64).unwrap();
        assert_eq!(d.addr, a.addr);
    }

    #[test]
    fn different_classes_never_share_chunks() {
        let mut h = HeapAllocator::new();
        let a = h.malloc(16).unwrap();
        h.free(a.addr).unwrap();
        let b = h.malloc(4096).unwrap();
        assert_ne!(a.addr, b.addr, "a 16B chunk cannot satisfy a 4KB request");
    }

    #[test]
    fn double_free_is_reported_to_the_caller() {
        let mut h = HeapAllocator::new();
        let a = h.malloc(32).unwrap();
        assert!(h.free(a.addr).is_some());
        assert!(h.free(a.addr).is_none(), "second free of same address");
        assert!(
            h.free(0xDEAD_BEEF).is_none(),
            "free of never-allocated address"
        );
    }

    #[test]
    fn stats_track_live_bytes_and_reuse() {
        let mut h = HeapAllocator::new();
        let a = h.malloc(100).unwrap(); // rounds to 128
        assert_eq!(h.stats().live_bytes, 128);
        h.free(a.addr).unwrap();
        assert_eq!(h.stats().live_bytes, 0);
        assert_eq!(h.stats().peak_live_bytes, 128);
        let _ = h.malloc(100).unwrap();
        assert_eq!(h.stats().reused, 1);
        assert_eq!(h.live_count(), 1);
    }

    #[test]
    fn large_allocations_round_to_pages() {
        let mut h = HeapAllocator::new();
        let m = h.malloc(10_000).unwrap();
        assert_eq!(m.size, 12_288);
        h.free(m.addr).unwrap();
        let n = h.malloc(9_000).unwrap();
        assert_eq!(n.addr, m.addr, "large chunks reuse by rounded size");
    }

    #[test]
    fn heap_exhaustion_returns_none() {
        let mut h = HeapAllocator::new();
        // The heap region is 0x3000_0000 (768MB); ask for more than fits.
        assert!(h.malloc(HEAP_SIZE).is_none());
    }

    #[test]
    fn bin_heads_live_in_the_reserved_page() {
        for size in CLASSES {
            let a = HeapAllocator::bin_head_addr(size);
            assert!((HEAP_BASE..CHUNK_BASE).contains(&a));
        }
        assert!(HeapAllocator::bin_head_addr(12_288) < CHUNK_BASE);
    }

    #[test]
    fn live_size_queries() {
        let mut h = HeapAllocator::new();
        let m = h.malloc(48).unwrap();
        assert_eq!(h.live_size(m.addr), Some(64));
        assert_eq!(
            h.live_size(m.addr + 8),
            None,
            "interior pointers are not allocation bases"
        );
    }
}

//! Run-level telemetry: the one source of truth turning a finished run
//! into a [`MetricsRegistry`].
//!
//! Two inputs feed [`export_metrics`]:
//!
//! * the [`RunReport`] — everything the simulation *decided* (counters
//!   that are identical across equivalent feeds and replays);
//! * an optional [`RunTelemetry`] — everything the instrumented driver
//!   *observed* on the side (host timings, profile samples, feed shape),
//!   which legitimately differs run to run and therefore lives outside
//!   the report.
//!
//! Every consumer — `watchdog-cli run` human diagnostics, `run --json`,
//! the diagnostics binary, the telemetry cross-check suite — renders
//! from the registry this module builds, so a metric added here shows up
//! everywhere at once and cannot drift between the human and the
//! machine-readable output.

use watchdog_telemetry::{JsonValue, MetricsRegistry, SectionTimers, Unit};

use crate::report::RunReport;

/// Schema tag carried by every `watchdog-cli run --json` document.
pub const RUN_SCHEMA: &str = "watchdog-run-v1";

pub use watchdog_pipeline::TAG_NAMES;

/// Declared section paths of the instrumented run loop (see
/// [`RunTelemetry::new`]): whole run, the functional fetch/crack side
/// (sampled one batch-fill in 32), and the timing-core consume side
/// (every batch flush).
pub const RUN_SECTIONS: [&str; 3] = ["run", "run/fetch_crack", "run/consume"];

/// Host-side observations from one instrumented run
/// ([`Simulator::run_instrumented`](crate::sim::Simulator::run_instrumented)).
///
/// Deliberately *not* part of [`RunReport`]: the feed-equivalence suites
/// compare reports byte for byte, and none of this is equivalent across
/// feeds.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// Core-side metrics (`profile.*`, `feed.*`) exported from the
    /// timing core just before `finish()` consumed it.
    pub core_metrics: MetricsRegistry,
    /// Wall-clock section timers over the driver loop ([`RUN_SECTIONS`]).
    pub sections: SectionTimers,
    /// Lock-probe memo short circuits taken by the hierarchy.
    pub ll_memo_hits: u64,
    /// Host nanoseconds the whole run took (the `run` section total).
    pub host_ns: u64,
}

impl RunTelemetry {
    /// Empty observation block with the standard section table.
    pub fn new() -> Self {
        RunTelemetry {
            core_metrics: MetricsRegistry::new(),
            sections: SectionTimers::new(&RUN_SECTIONS),
            ll_memo_hits: 0,
            host_ns: 0,
        }
    }

    /// Simulated cycles per host nanosecond — the throughput figure the
    /// diagnostics binary tracks (0.0 when untimed or unmeasured).
    pub fn cycles_per_host_ns(&self, report: &RunReport) -> f64 {
        if self.host_ns == 0 {
            0.0
        } else {
            report.cycles() as f64 / self.host_ns as f64
        }
    }
}

impl Default for RunTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds the full metrics registry for one run: architectural counters
/// (`run.*`), heap and footprint statistics, timing-model results
/// (`timing.*`, `bpred.*`, `rename.*`, `stall.*`, `mem.*`, `crack.*`)
/// and — when an instrumented run supplied one — the host-side
/// [`RunTelemetry`] (`profile.*`, `feed.*`, `section.*`, `host.*`).
///
/// Registration order is fixed by this function, which makes the JSON
/// export key order stable across runs and revisions.
pub fn export_metrics(report: &RunReport, tele: Option<&RunTelemetry>) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();

    // Architectural (functional-machine) counters.
    let m = &report.machine;
    reg.counter_at("run.insts", Unit::Count, m.insts);
    reg.counter_at("run.mem_accesses", Unit::Count, m.mem_accesses);
    reg.counter_at("run.ptr_classified", Unit::Count, m.ptr_classified);
    reg.counter_at("run.calls", Unit::Count, m.calls);
    reg.counter_at("run.rets", Unit::Count, m.rets);
    reg.gauge_at("run.ptr_fraction", Unit::Ratio, report.ptr_fraction());
    reg.counter_at(
        "run.violations",
        Unit::Count,
        u64::from(report.violation.is_some()),
    );

    // Heap runtime.
    let h = &report.heap;
    reg.counter_at("heap.mallocs", Unit::Count, h.mallocs);
    reg.counter_at("heap.frees", Unit::Count, h.frees);
    reg.counter_at("heap.reused", Unit::Count, h.reused);
    reg.counter_at("heap.live_bytes", Unit::Bytes, h.live_bytes);
    reg.counter_at("heap.peak_live_bytes", Unit::Bytes, h.peak_live_bytes);

    // Memory footprint (Fig. 10's raw data).
    let f = &report.footprint;
    reg.counter_at("footprint.data_words", Unit::Count, f.data_words);
    reg.counter_at("footprint.shadow_words", Unit::Count, f.shadow_words);
    reg.counter_at("footprint.lock_words", Unit::Count, f.lock_words);
    reg.counter_at("footprint.data_pages", Unit::Count, f.data_pages);
    reg.counter_at("footprint.shadow_pages", Unit::Count, f.shadow_pages);
    reg.counter_at("footprint.lock_pages", Unit::Count, f.lock_pages);
    reg.gauge_at("footprint.word_overhead", Unit::Ratio, f.word_overhead());
    reg.gauge_at("footprint.page_overhead", Unit::Ratio, f.page_overhead());

    // Timing-model results.
    if let Some(t) = &report.timing {
        reg.counter_at("timing.cycles", Unit::Cycles, t.cycles);
        reg.counter_at("timing.insts", Unit::Count, t.insts);
        reg.counter_at("timing.uops", Unit::Count, t.uops);
        for (name, &n) in TAG_NAMES.iter().zip(&t.uops_by_tag) {
            reg.counter_at(&format!("timing.uops.{name}"), Unit::Count, n);
        }
        reg.gauge_at("timing.ipc", Unit::Ratio, t.ipc());
        reg.gauge_at("timing.upc", Unit::Ratio, t.uops_per_cycle());
        reg.gauge_at("timing.uop_overhead", Unit::Ratio, t.uop_overhead());

        let b = &t.bpred;
        reg.counter_at("bpred.cond_branches", Unit::Count, b.cond_branches);
        reg.counter_at("bpred.cond_mispredicts", Unit::Count, b.cond_mispredicts);
        reg.counter_at("bpred.returns", Unit::Count, b.returns);
        reg.counter_at("bpred.ret_mispredicts", Unit::Count, b.ret_mispredicts);
        reg.gauge_at("bpred.mpki", Unit::PerKilo, b.mpki());

        let r = &t.rename;
        reg.counter_at("rename.renamed_uops", Unit::Count, r.renamed_uops);
        reg.counter_at("rename.eliminated_copies", Unit::Count, r.eliminated_copies);
        reg.counter_at("rename.invalidations", Unit::Count, r.invalidations);
        reg.counter_at("rename.global_mappings", Unit::Count, r.global_mappings);
        reg.counter_at("rename.meta_allocs", Unit::Count, r.meta_allocs);
        reg.counter_at(
            "rename.meta_high_water",
            Unit::Count,
            r.meta_high_water as u64,
        );

        let s = &t.stalls;
        reg.counter_at("stall.rob", Unit::Cycles, s.rob);
        reg.counter_at("stall.iq", Unit::Cycles, s.iq);
        reg.counter_at("stall.lq", Unit::Cycles, s.lq);
        reg.counter_at("stall.sq", Unit::Cycles, s.sq);
        reg.counter_at("stall.icache", Unit::Cycles, s.icache);
        reg.counter_at("stall.redirect", Unit::Cycles, s.redirect);

        t.hierarchy.export_into(&mut reg);
        reg.gauge_at("mem.ll.mpk", Unit::PerKilo, t.hierarchy.ll_mpk(t.insts));
    }

    // Crack-cache counters (absent when the run never cracked).
    if let Some(c) = &report.crack_cache {
        reg.counter_at("crack.hits", Unit::Count, c.hits);
        reg.counter_at("crack.misses", Unit::Count, c.misses);
        reg.counter_at("crack.invalidations", Unit::Count, c.invalidations);
        reg.gauge_at("crack.hit_rate", Unit::Ratio, c.hit_rate());
    }

    // Host-side observations from an instrumented run.
    if let Some(tele) = tele {
        reg.absorb(&tele.core_metrics);
        reg.counter_at("mem.ll.memo_hits", Unit::Count, tele.ll_memo_hits);
        tele.sections.export_into(&mut reg);
        reg.counter_at("host.run.ns", Unit::Nanos, tele.host_ns);
        reg.gauge_at(
            "host.cycles_per_ns",
            Unit::PerSec,
            tele.cycles_per_host_ns(report),
        );
    }

    reg
}

/// Renders one run as the stable machine-readable document behind
/// `watchdog-cli run --json`: a [`RUN_SCHEMA`] tag, the run identity
/// (benchmark, mode, scale, violation) and the full metric registry from
/// [`export_metrics`] under `metrics`. Key order inside `metrics` is
/// registration order, so diffs between revisions stay readable.
pub fn run_json(
    benchmark: &str,
    scale: &str,
    report: &RunReport,
    tele: Option<&RunTelemetry>,
) -> String {
    let violation = match &report.violation {
        Some(v) => JsonValue::str(v.to_string()),
        None => JsonValue::Null,
    };
    JsonValue::Obj(vec![
        ("schema".into(), JsonValue::str(RUN_SCHEMA)),
        ("benchmark".into(), JsonValue::str(benchmark)),
        ("mode".into(), JsonValue::str(report.mode.clone())),
        ("scale".into(), JsonValue::str(scale)),
        ("violation".into(), violation),
        ("metrics".into(), export_metrics(report, tele).to_json()),
    ])
    .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Mode, SimConfig, Simulator};
    use watchdog_isa::{Cond, Gpr, ProgramBuilder};

    fn tiny_program() -> watchdog_isa::program::Program {
        let mut b = ProgramBuilder::new("tiny");
        let (p, sz, i, n) = (Gpr::new(0), Gpr::new(1), Gpr::new(2), Gpr::new(3));
        b.li(sz, 32);
        b.li(i, 0);
        b.li(n, 20);
        let l = b.here();
        b.malloc(p, sz);
        b.st8(i, p, 0);
        b.free(p);
        b.addi(i, i, 1);
        b.branch(Cond::Lt, i, n, l);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn report_only_export_covers_the_architectural_namespaces() {
        let r = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()))
            .run(&tiny_program())
            .unwrap();
        let reg = export_metrics(&r, None);
        assert_eq!(reg.counter_value("run.insts"), Some(r.machine.insts));
        assert_eq!(reg.counter_value("timing.cycles"), Some(r.cycles()));
        assert_eq!(reg.counter_value("heap.mallocs"), Some(r.heap.mallocs));
        let t = r.timing.as_ref().unwrap();
        assert_eq!(
            reg.counter_value("mem.ll.misses"),
            Some(t.hierarchy.ll.misses)
        );
        assert_eq!(
            reg.counter_value("timing.uops.check"),
            Some(t.uops_by_tag[1])
        );
        // No host-side metrics without a RunTelemetry.
        assert_eq!(reg.counter_value("host.run.ns"), None);
        assert_eq!(reg.counter_value("profile.insts"), None);
    }

    #[test]
    fn functional_runs_export_without_timing_namespaces() {
        let r = Simulator::new(SimConfig::functional(Mode::Baseline))
            .run(&tiny_program())
            .unwrap();
        let reg = export_metrics(&r, None);
        assert!(reg.counter_value("run.insts").is_some());
        assert_eq!(reg.counter_value("timing.cycles"), None);
        assert_eq!(reg.counter_value("crack.hits"), None);
    }

    #[test]
    fn instrumented_export_adds_profile_feed_and_sections() {
        let sim = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()));
        let p = tiny_program();
        let (r, tele) = sim.run_instrumented(&p).unwrap();
        let reg = export_metrics(&r, Some(&tele));
        let t = r.timing.as_ref().unwrap();
        // The self-profiler's independent accounting agrees with the
        // report (no sampling, so the counts are the full run).
        assert_eq!(reg.counter_value("profile.insts"), Some(t.insts));
        assert_eq!(reg.counter_value("profile.uops"), Some(t.uops));
        assert!(reg.counter_value("feed.batches").unwrap() > 0);
        assert!(reg.counter_value("section.run.ns").unwrap() > 0);
        assert!(reg.counter_value("host.run.ns").unwrap() > 0);
        assert!(tele.cycles_per_host_ns(&r) > 0.0);
        // And the instrumented report itself matches an uninstrumented
        // run byte for byte — telemetry is observation, not behaviour.
        let plain = sim.run(&p).unwrap();
        assert_eq!(format!("{plain:?}"), format!("{r:?}"));
    }

    #[test]
    fn json_export_parses_back() {
        let r = Simulator::new(SimConfig::timed(Mode::watchdog()))
            .run(&tiny_program())
            .unwrap();
        let json = export_metrics(&r, None).to_json().render_pretty();
        let parsed = watchdog_telemetry::JsonValue::parse(&json).unwrap();
        assert_eq!(
            parsed.get("timing.cycles").and_then(|v| v.as_u64()),
            Some(r.cycles())
        );
    }

    #[test]
    fn run_json_document_has_the_stable_shape() {
        let sim = Simulator::new(SimConfig::timed(Mode::watchdog_conservative()));
        let (r, tele) = sim.run_instrumented(&tiny_program()).unwrap();
        let doc = run_json("tiny", "test", &r, Some(&tele));
        let parsed = JsonValue::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some(RUN_SCHEMA)
        );
        assert_eq!(
            parsed.get("benchmark").and_then(JsonValue::as_str),
            Some("tiny")
        );
        assert_eq!(
            parsed.get("scale").and_then(JsonValue::as_str),
            Some("test")
        );
        // The dangling store in the loop body trips the checker.
        assert!(parsed.get("violation").is_some());
        let metrics = parsed.get("metrics").expect("metrics object");
        assert_eq!(
            metrics.get("run.insts").and_then(JsonValue::as_u64),
            Some(r.machine.insts)
        );
        assert!(metrics.get("host.run.ns").is_some());
        assert!(metrics.get("profile.insts").is_some());
    }
}

//! Lock-and-key identifier management (§4.1).
//!
//! "On each heap memory allocation, the software runtime allocates both a
//! unique 64-bit key and a new lock location from a list of free locations,
//! and the runtime writes the key value into the lock location." Lock
//! locations are recycled on a **LIFO** free list — which is what gives the
//! lock-location region its locality and lets a tiny 4KB cache cover it
//! (§4.2) — while *keys are never reused*, which is what makes detection
//! comprehensive under arbitrary reallocation.

use watchdog_isa::layout::{FIRST_HEAP_KEY, HEAP_LOCK_BASE, HEAP_LOCK_SIZE};

/// Base of the stack-frame key space. Stack keys are drawn from a disjoint
/// range so heap and stack identifiers can never collide.
pub const STACK_KEY_BASE: u64 = 1 << 48;

/// Allocates unique keys and recycles lock locations for the heap.
#[derive(Debug)]
pub struct LockManager {
    next_key: u64,
    free_locks: Vec<u64>,
    cursor: u64,
    live_locks: u64,
    peak_live_locks: u64,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// A fresh manager: no locks allocated, keys start at
    /// [`FIRST_HEAP_KEY`].
    pub fn new() -> Self {
        LockManager {
            next_key: FIRST_HEAP_KEY,
            free_locks: Vec::new(),
            // Slot 0 of the region is the conceptual free-list head the
            // runtime µops read/write; lock locations start one word in.
            cursor: HEAP_LOCK_BASE + 8,
            live_locks: 0,
            peak_live_locks: 0,
        }
    }

    /// Address of the free-list head word (the runtime's `LockLoad` during
    /// `malloc` reads it).
    pub fn head_slot(&self) -> u64 {
        HEAP_LOCK_BASE
    }

    /// Allocates a unique key. Keys are monotonically increasing and never
    /// reused.
    pub fn alloc_key(&mut self) -> u64 {
        let k = self.next_key;
        self.next_key += 1;
        k
    }

    /// Pops a lock location from the LIFO free list, or carves a fresh one.
    ///
    /// Returns `None` if the lock region is exhausted (practically
    /// unreachable: it supports 16M simultaneously-live allocations).
    pub fn alloc_lock(&mut self) -> Option<u64> {
        let lock = if let Some(l) = self.free_locks.pop() {
            l
        } else {
            if self.cursor + 8 > HEAP_LOCK_BASE + HEAP_LOCK_SIZE {
                return None;
            }
            let l = self.cursor;
            self.cursor += 8;
            l
        };
        self.live_locks += 1;
        self.peak_live_locks = self.peak_live_locks.max(self.live_locks);
        Some(lock)
    }

    /// Returns a lock location to the LIFO free list.
    pub fn free_lock(&mut self, lock: u64) {
        debug_assert!(
            lock >= HEAP_LOCK_BASE + 8 && lock < self.cursor,
            "foreign lock location"
        );
        self.free_locks.push(lock);
        self.live_locks -= 1;
    }

    /// Number of lock locations currently associated with live allocations.
    pub fn live_locks(&self) -> u64 {
        self.live_locks
    }

    /// High-water mark of simultaneously live lock locations (8 bytes each
    /// — the paper's observation that lock locations are "small relative to
    /// the average object size").
    pub fn peak_live_locks(&self) -> u64 {
        self.peak_live_locks
    }

    /// Total keys handed out so far.
    pub fn keys_allocated(&self) -> u64 {
        self.next_key - FIRST_HEAP_KEY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_are_unique_and_monotonic() {
        let mut m = LockManager::new();
        let mut seen = HashSet::new();
        let mut last = 0;
        for _ in 0..1000 {
            let k = m.alloc_key();
            assert!(k >= FIRST_HEAP_KEY);
            assert!(k > last);
            assert!(seen.insert(k));
            last = k;
        }
        assert_eq!(m.keys_allocated(), 1000);
    }

    #[test]
    fn lock_reuse_is_lifo() {
        let mut m = LockManager::new();
        let a = m.alloc_lock().unwrap();
        let b = m.alloc_lock().unwrap();
        assert_ne!(a, b);
        m.free_lock(a);
        m.free_lock(b);
        // LIFO: most recently freed comes back first.
        assert_eq!(m.alloc_lock().unwrap(), b);
        assert_eq!(m.alloc_lock().unwrap(), a);
    }

    #[test]
    fn reused_lock_never_pairs_with_reused_key() {
        // The comprehensiveness argument: even when a lock location is
        // recycled, the key stored there is fresh, so a stale (key, lock)
        // pair can never validate again.
        let mut m = LockManager::new();
        let k1 = m.alloc_key();
        let l1 = m.alloc_lock().unwrap();
        m.free_lock(l1);
        let k2 = m.alloc_key();
        let l2 = m.alloc_lock().unwrap();
        assert_eq!(l1, l2, "lock location recycled");
        assert_ne!(k1, k2, "key never recycled");
    }

    #[test]
    fn live_lock_accounting() {
        let mut m = LockManager::new();
        let locks: Vec<u64> = (0..10).map(|_| m.alloc_lock().unwrap()).collect();
        assert_eq!(m.live_locks(), 10);
        assert_eq!(m.peak_live_locks(), 10);
        for l in &locks[..5] {
            m.free_lock(*l);
        }
        assert_eq!(m.live_locks(), 5);
        assert_eq!(m.peak_live_locks(), 10, "peak is sticky");
    }

    #[test]
    fn stack_key_space_is_disjoint() {
        let mut m = LockManager::new();
        for _ in 0..10_000 {
            assert!(m.alloc_key() < STACK_KEY_BASE);
        }
    }

    #[test]
    fn head_slot_is_stable() {
        let m = LockManager::new();
        assert_eq!(m.head_slot(), HEAP_LOCK_BASE);
    }
}

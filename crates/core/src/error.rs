//! Memory-safety violations and simulator errors.

use std::fmt;

/// What kind of memory-safety violation a check detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Dereference of a pointer to deallocated *heap* memory — even if the
    /// memory has since been reallocated (the identifier, not the location,
    /// is checked).
    UseAfterFree,
    /// Dereference of a pointer into a popped stack frame (Fig. 1, right).
    UseAfterReturn,
    /// Dereference through a register that never held a valid pointer
    /// (invalid identifier).
    WildPointer,
    /// `free()` of an already-freed allocation (the runtime's identifier
    /// check at `free`, §4.1).
    DoubleFree,
    /// `free()` of a pointer that does not point at a live allocation.
    InvalidFree,
    /// Access outside the pointer's `[base, bound)` — bounds extension
    /// only (§8).
    OutOfBounds,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::UseAfterFree => "use-after-free",
            ViolationKind::UseAfterReturn => "use-after-return",
            ViolationKind::WildPointer => "wild-pointer dereference",
            ViolationKind::DoubleFree => "double free",
            ViolationKind::InvalidFree => "invalid free",
            ViolationKind::OutOfBounds => "out-of-bounds access",
        };
        f.write_str(s)
    }
}

/// A detected memory-safety violation: the hardware exception of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Violation class.
    pub kind: ViolationKind,
    /// Index of the faulting macro-instruction.
    pub pc_index: usize,
    /// Faulting data address (0 for `free`-time violations without one).
    pub addr: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at instruction {} (address {:#x})",
            self.kind, self.pc_index, self.addr
        )
    }
}

/// Simulator failure (as opposed to a *detected violation*, which is a
/// successful outcome reported in [`crate::report::RunReport`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The instruction limit was exceeded (runaway program).
    InstLimit {
        /// The configured limit.
        limit: u64,
    },
    /// The guest heap was exhausted.
    HeapExhausted {
        /// The allocation size that failed.
        requested: u64,
    },
    /// The program counter left the program.
    PcOutOfRange {
        /// The invalid instruction index.
        pc: usize,
    },
    /// The guest stack overflowed its region.
    StackOverflow,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InstLimit { limit } => write!(f, "instruction limit of {limit} exceeded"),
            SimError::HeapExhausted { requested } => {
                write!(f, "guest heap exhausted allocating {requested} bytes")
            }
            SimError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            SimError::StackOverflow => write!(f, "guest stack overflow"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display() {
        let v = Violation {
            kind: ViolationKind::UseAfterFree,
            pc_index: 12,
            addr: 0x2000_0040,
        };
        let s = v.to_string();
        assert!(s.contains("use-after-free"));
        assert!(s.contains("12"));
        assert!(s.contains("0x20000040"));
    }

    #[test]
    fn all_kinds_display_distinctly() {
        use ViolationKind::*;
        let kinds = [
            UseAfterFree,
            UseAfterReturn,
            WildPointer,
            DoubleFree,
            InvalidFree,
            OutOfBounds,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(k.to_string()), "duplicate display for {k:?}");
        }
    }

    #[test]
    fn sim_error_display() {
        assert!(SimError::InstLimit { limit: 5 }.to_string().contains('5'));
        assert!(SimError::HeapExhausted { requested: 64 }
            .to_string()
            .contains("64"));
        assert!(SimError::PcOutOfRange { pc: 3 }.to_string().contains('3'));
        assert!(!SimError::StackOverflow.to_string().is_empty());
    }
}

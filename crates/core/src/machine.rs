//! The functional machine: executes macro-instructions with full Watchdog
//! metadata semantics and emits the cracked µop stream for the timing
//! model.
//!
//! Execution follows §3's operation overview exactly:
//!
//! * every load/store is guarded by a **check**: the pointer register's
//!   identifier must still be valid (`*(id.lock) == id.key`, Fig. 4b), and
//!   under the bounds extension the access must fall in `[base, bound)`;
//! * register metadata propagates through pointer arithmetic (copy on
//!   single-source ops, select on two-source ops, invalidate on operations
//!   that can never produce a pointer — Fig. 2);
//! * in-memory pointer metadata lives in the disjoint shadow space and
//!   moves with pointer loads/stores (Fig. 2a/2b);
//! * `call`/`ret` allocate/deallocate stack-frame identifiers through the
//!   `stack_key`/`stack_lock` control registers (Fig. 3c/3d);
//! * `malloc`/`free` drive the heap runtime, which allocates never-reused
//!   keys, recycles lock locations LIFO and validates identifiers on free
//!   (catching double frees, Fig. 3a/3b).
//!
//! The machine also implements the **location-based** checking mode of
//! §2.1 (shadow allocation status) for the Table 1 comparison, and the
//! unchecked **baseline**.

use watchdog_isa::crack::{
    assemble_cracked, crack, CommitFacts, CrackConfig, CrackedInst, MetaEffect,
};
use watchdog_isa::crack_cache::{CrackCache, CrackCacheStats};
use watchdog_isa::insn::Inst;
use watchdog_isa::layout::{
    GLOBAL_KEY, GLOBAL_LOCK_ADDR, HEAP_BASE, HEAP_LOCK_BASE, HEAP_LOCK_SIZE, HEAP_SIZE,
    INVALID_LOCK_ADDR, INVALID_SENTINEL, SHADOW_BASE, STACK_LIMIT, STACK_LOCK_BASE, STACK_TOP,
};
use watchdog_isa::program::Program;
use watchdog_isa::reg::Gpr;
use watchdog_mem::{Footprint, GuestMem, MetaRecord, ShadowSpace};
use watchdog_pipeline::UopBatch;

use crate::baseline::LocationChecker;
use crate::error::{SimError, Violation, ViolationKind};
use crate::ident::{LockManager, STACK_KEY_BASE};
use crate::pointer_id::{PointerPolicy, Profile};
use crate::runtime::{HeapAllocator, HeapStats};

/// Which checking scheme the machine enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// No checking at all (the unmodified baseline).
    None,
    /// Location-based checking (§2.1): shadow allocation status per word.
    Location,
    /// Identifier-based Watchdog checking (§2.2/§3).
    Watchdog,
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Checking scheme.
    pub check: CheckMode,
    /// Bounds extension (§8); requires [`CheckMode::Watchdog`].
    pub bounds: Option<watchdog_isa::crack::BoundsUops>,
    /// Pointer-identification policy (§5).
    pub policy: PointerPolicy,
    /// Collect a [`Profile`] of static instructions that move valid
    /// metadata (the §5.2 profiling pass).
    pub profiling: bool,
    /// Emit cracked µops on every step (disable for fast functional-only
    /// runs).
    pub emit_uops: bool,
    /// Memoize crack expansions per PC (see
    /// [`watchdog_isa::crack_cache::CrackCache`]). Only takes effect when
    /// `emit_uops` is set — a machine that never cracks allocates no
    /// cache. Disable only to measure the uncached decoder or to debug
    /// the cracker itself.
    pub crack_cache: bool,
}

impl MachineConfig {
    /// Watchdog with conservative identification, emitting µops.
    pub fn watchdog() -> Self {
        MachineConfig {
            check: CheckMode::Watchdog,
            bounds: None,
            policy: PointerPolicy::Conservative,
            profiling: false,
            emit_uops: true,
            crack_cache: true,
        }
    }

    /// Unchecked baseline.
    pub fn baseline() -> Self {
        MachineConfig {
            check: CheckMode::None,
            bounds: None,
            policy: PointerPolicy::Conservative,
            profiling: false,
            emit_uops: true,
            crack_cache: true,
        }
    }
}

/// Dynamic facts of one committed instruction, handed to a [`CommitHook`].
///
/// Together with the static program this is *everything* the timing model's
/// input depends on: the µop expansion itself is a pure function of
/// `(instruction, ptr_op, crack config)`, and the remaining dynamic inputs
/// are exactly the fields below. `watchdog-trace` serializes these records
/// to drive trace-based timing replay without re-executing architectural
/// semantics.
#[derive(Debug, Clone, Copy)]
pub struct CommitRecord<'a> {
    /// Instruction index (not byte address) that committed.
    pub pc_index: usize,
    /// Whether the active pointer-identification policy classified the
    /// instruction as a pointer operation.
    pub ptr_op: bool,
    /// Rename-stage select folding: `None` = not a foldable instruction,
    /// `Some(false)` = the select µop is kept, `Some(true)` = it folds into
    /// a rename-stage invalidate (§6.2).
    pub folded: Option<bool>,
    /// Resolved memory-µop addresses, in µop program order.
    pub mem_addrs: &'a [u64],
    /// Branch outcome `(taken, target byte address)` for control
    /// instructions.
    pub branch: Option<(bool, u64)>,
}

/// Observer of the machine's commit stream (see [`Machine::step_hooked`]).
///
/// Called once per committed instruction, after architectural state has
/// been updated and *regardless of `emit_uops`* — so a fast functional-only
/// run can still capture everything a later µop-emitting replay needs.
/// `halt` and detected violations terminate the run without a commit
/// record, mirroring the µop stream (the timing model never consumes
/// them either).
pub trait CommitHook {
    /// Receives one committed instruction's dynamic facts.
    fn on_commit(&mut self, rec: &CommitRecord<'_>);
}

/// Outcome of one [`Machine::step`].
///
/// `Executed` borrows the machine's in-place µop expansion rather than
/// moving a ~1KB [`CrackedInst`] out per step: the machine refills one
/// scratch expansion with a length-aware copy
/// ([`UopVec::clone_from_compact`](watchdog_isa::uop::UopVec::clone_from_compact))
/// and hands out a reference, so the timed path never bulk-copies the
/// fixed-capacity µop array.
#[derive(Debug)]
pub enum Step<'m> {
    /// The instruction executed; its µop expansion is attached when
    /// `emit_uops` is set.
    Executed(Option<&'m CrackedInst>),
    /// The machine executed `halt`.
    Halted,
    /// A memory-safety violation was detected (the Watchdog exception of
    /// §3.2). The machine stops.
    Violation(Violation),
}

/// Architectural + metadata execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Macro-instructions executed.
    pub insts: u64,
    /// Program memory accesses (macro loads/stores, all widths, int + FP).
    pub mem_accesses: u64,
    /// Accesses classified as pointer operations by the active policy
    /// (Fig. 5's numerator).
    pub ptr_classified: u64,
    /// Calls executed.
    pub calls: u64,
    /// Returns executed.
    pub rets: u64,
}

/// The functional machine. Construct with [`Machine::new`], drive with
/// [`Machine::step`].
#[derive(Debug)]
pub struct Machine<'p> {
    prog: &'p Program,
    cfg: MachineConfig,
    crack_cfg: CrackConfig,
    crack_cache: Option<CrackCache>,
    shadow: ShadowSpace,
    mem: GuestMem,
    regs: [u64; Gpr::COUNT],
    fregs: [f64; 8],
    meta: [MetaRecord; Gpr::COUNT],
    pc: usize,
    halted: bool,
    stack_key: u64,
    stack_lock: u64,
    locks: LockManager,
    heap: HeapAllocator,
    loc: LocationChecker,
    profile: Profile,
    stats: MachineStats,
    /// Per-step scratch expansion, refilled in place (see [`Step`]).
    cur: CrackedInst,
}

impl<'p> Machine<'p> {
    /// Builds a machine and loads `prog`: globals are initialized, the
    /// global/invalid lock locations are seeded, and `main`'s stack frame
    /// receives its identifier.
    pub fn new(prog: &'p Program, cfg: MachineConfig) -> Self {
        let wd = cfg.check == CheckMode::Watchdog;
        let crack_cfg = match (wd, cfg.bounds) {
            (true, Some(b)) => CrackConfig::with_bounds(b),
            (true, None) => CrackConfig::watchdog(),
            (false, _) => CrackConfig::baseline(),
        };
        let shadow = if cfg.bounds.is_some() {
            ShadowSpace::with_bounds()
        } else {
            ShadowSpace::ident_only()
        };
        let mut mem = GuestMem::new();
        // Reserved lock locations (§7): the global identifier's lock always
        // holds the global key; the invalid lock holds poison.
        mem.set_tracking(false);
        mem.write_u64(GLOBAL_LOCK_ADDR, GLOBAL_KEY);
        mem.write_u64(INVALID_LOCK_ADDR, INVALID_SENTINEL);
        // Program load: globals and their pointer slots. Pointer slots get
        // the global identifier in shadow metadata (§7: the global segment's
        // shadow space is initialized with the global identifier).
        for &(addr, val) in prog.global_words() {
            mem.write_u64(addr, val);
        }
        for &(slot, target) in prog.global_ptrs() {
            mem.write_u64(slot, target);
            if wd {
                shadow.store(&mut mem, slot, MetaRecord::global());
            }
        }
        // main()'s stack-frame identifier.
        let stack_key = STACK_KEY_BASE;
        let stack_lock = STACK_LOCK_BASE + 8;
        mem.write_u64(stack_lock, stack_key);
        mem.set_tracking(true);

        let mut meta = [MetaRecord::INVALID; Gpr::COUNT];
        let mut regs = [0u64; Gpr::COUNT];
        regs[Gpr::RSP.index()] = STACK_TOP;
        meta[Gpr::RSP.index()] =
            MetaRecord::with_bounds(stack_key, stack_lock, STACK_LIMIT, STACK_TOP);

        // Only a µop-emitting machine ever cracks; a functional-only run
        // would pay the per-PC entry table for nothing.
        let crack_cache =
            (cfg.crack_cache && cfg.emit_uops).then(|| CrackCache::new(crack_cfg, prog.len()));

        Machine {
            prog,
            cfg,
            crack_cfg,
            crack_cache,
            shadow,
            mem,
            regs,
            fregs: [0.0; 8],
            meta,
            pc: 0,
            halted: false,
            stack_key,
            stack_lock,
            locks: LockManager::new(),
            heap: HeapAllocator::new(),
            loc: LocationChecker::new(),
            profile: Profile::new(),
            stats: MachineStats::default(),
            cur: CrackedInst::empty(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// Current value of a general-purpose register.
    pub fn reg(&self, r: Gpr) -> u64 {
        self.regs[r.index()]
    }

    /// Current value of an FP register.
    pub fn freg(&self, r: watchdog_isa::reg::Fpr) -> f64 {
        self.fregs[r.index()]
    }

    /// Metadata sidecar of a general-purpose register.
    pub fn meta_of(&self, r: Gpr) -> MetaRecord {
        self.meta[r.index()]
    }

    /// Reads guest memory (for assertions in tests/examples).
    pub fn read_mem(&mut self, addr: u64, len: u64) -> u64 {
        self.mem.read(addr, len)
    }

    /// Memory footprint so far (Fig. 10's raw data).
    pub fn footprint(&self) -> Footprint {
        self.mem.footprint()
    }

    /// Execution statistics.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Heap runtime statistics.
    pub fn heap_stats(&self) -> HeapStats {
        self.heap.stats()
    }

    /// The profile collected so far (meaningful when `profiling` is set).
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Enables or disables µop emission mid-run (used by the sampling
    /// driver to fast-forward between measurement windows, §9.1).
    ///
    /// A machine constructed functional-only (`emit_uops: false`)
    /// allocates no crack cache up front; switching emission on here
    /// creates it on demand so `crack_cache: true` is honoured no matter
    /// when cracking starts.
    pub fn set_emit_uops(&mut self, on: bool) {
        self.cfg.emit_uops = on;
        if on && self.cfg.crack_cache && self.crack_cache.is_none() {
            self.crack_cache = Some(CrackCache::new(self.crack_cfg, self.prog.len()));
        }
    }

    /// Hit/miss statistics of the per-PC crack cache (`None` when the
    /// cache is disabled in the [`MachineConfig`]).
    pub fn crack_cache_stats(&self) -> Option<CrackCacheStats> {
        self.crack_cache.as_ref().map(|c| c.stats())
    }

    /// Invalidation hook: drops the cached crack expansion for one
    /// instruction index. The guest ISA has no self-modifying code today,
    /// but anything that patches program text (or flips a static
    /// instruction's classification) must call this before re-executing
    /// the patched PC.
    pub fn invalidate_cracked(&mut self, pc: usize) {
        if let Some(c) = self.crack_cache.as_mut() {
            c.invalidate(pc);
        }
    }

    /// Invalidation hook: drops every cached crack expansion (e.g. after
    /// swapping the pointer-identification policy mid-run).
    pub fn invalidate_all_cracked(&mut self) {
        if let Some(c) = self.crack_cache.as_mut() {
            c.invalidate_all();
        }
    }

    /// Whether the machine has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> usize {
        self.pc
    }

    // ------------------------------------------------------------------
    // Checking.
    // ------------------------------------------------------------------

    /// The identifier + bounds check guarding an access of `len` bytes at
    /// `addr` through `base` (§3.2, Fig. 4b).
    fn check_access(&mut self, base: Gpr, addr: u64, len: u64) -> Result<(), Violation> {
        match self.cfg.check {
            CheckMode::None => Ok(()),
            CheckMode::Location => {
                // Location-based tools track the heap only.
                let in_heap = (HEAP_BASE..HEAP_BASE + HEAP_SIZE).contains(&addr);
                if in_heap && !self.loc.check(addr, len) {
                    Err(self.violation(ViolationKind::UseAfterFree, addr))
                } else {
                    Ok(())
                }
            }
            CheckMode::Watchdog => {
                let m = self.meta[base.index()];
                if m.is_invalid() {
                    return Err(self.violation(ViolationKind::WildPointer, addr));
                }
                let lock_val = self.mem.read_u64(m.lock);
                if lock_val != m.key {
                    let kind = if (STACK_LOCK_BASE..STACK_LOCK_BASE + 0x0400_0000).contains(&m.lock)
                    {
                        ViolationKind::UseAfterReturn
                    } else {
                        ViolationKind::UseAfterFree
                    };
                    return Err(self.violation(kind, addr));
                }
                if self.cfg.bounds.is_some() && !m.in_bounds(addr, len) {
                    return Err(self.violation(ViolationKind::OutOfBounds, addr));
                }
                Ok(())
            }
        }
    }

    fn violation(&self, kind: ViolationKind, addr: u64) -> Violation {
        Violation {
            kind,
            pc_index: self.pc,
            addr,
        }
    }

    fn wd(&self) -> bool {
        self.cfg.check == CheckMode::Watchdog
    }

    /// Loads the shadow record for `addr`.
    ///
    /// §7's global-pointer initialization is applied at program load: every
    /// *declared* global pointer slot receives the global identifier in its
    /// shadow metadata, and pointers stored to globals at runtime carry
    /// their metadata through the ordinary shadow-store path. Global words
    /// that never held a pointer read back invalid metadata — they are
    /// integers, and treating them as pointers would (wrongly) mark their
    /// loads in the §5.2 profiling pass.
    fn shadow_load(&mut self, addr: u64) -> MetaRecord {
        self.shadow.load(&mut self.mem, addr)
    }

    /// Invalidates shadow metadata for every word overlapped by a
    /// non-pointer store.
    ///
    /// This keeps the *functional* shadow coherent when integers overwrite
    /// words that held pointers. Real Watchdog hardware performs no shadow
    /// access here (unmarked stores simply leave stale metadata, §5.2), so
    /// the probe is excluded from footprint accounting and from the µop
    /// stream.
    fn shadow_invalidate_span(&mut self, addr: u64, len: u64) {
        self.mem.set_tracking(false);
        for w in (addr >> 3)..((addr + len.max(1) + 7) >> 3) {
            self.shadow.invalidate(&mut self.mem, w << 3);
        }
        self.mem.set_tracking(true);
    }

    /// Metadata select for two-source arithmetic (Fig. 2d): take whichever
    /// input's metadata is valid, preferring the first.
    fn select_meta(&self, a: Gpr, b: Gpr) -> MetaRecord {
        let ma = self.meta[a.index()];
        if !ma.is_invalid() {
            ma
        } else {
            self.meta[b.index()]
        }
    }

    // ------------------------------------------------------------------
    // Execution.
    // ------------------------------------------------------------------

    /// Executes one macro-instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for simulator-level failures (heap/stack
    /// exhaustion, runaway PC). *Detected memory-safety violations* are not
    /// errors: they arrive as [`Step::Violation`].
    pub fn step(&mut self) -> Result<Step<'_>, SimError> {
        self.step_inner(None, None)
    }

    /// [`Machine::step`] with a [`CommitHook`] observing the committed
    /// instruction's dynamic facts (trace recording).
    ///
    /// # Errors
    ///
    /// Exactly as [`Machine::step`].
    pub fn step_hooked(&mut self, hook: &mut dyn CommitHook) -> Result<Step<'_>, SimError> {
        self.step_inner(Some(hook), None)
    }

    /// [`Machine::step`] that appends the committed µop expansion (when
    /// `emit_uops` is on) straight into `batch` via
    /// [`UopBatch::push_expansion`] — no scratch [`CrackedInst`] assembly,
    /// no second copy. The returned [`Step::Executed`] carries `None`; the
    /// expansion lives in the batch.
    ///
    /// # Errors
    ///
    /// Exactly as [`Machine::step`].
    pub fn step_batched(&mut self, batch: &mut UopBatch) -> Result<Step<'_>, SimError> {
        self.step_inner(None, Some(batch))
    }

    fn step_inner(
        &mut self,
        hook: Option<&mut dyn CommitHook>,
        batch: Option<&mut UopBatch>,
    ) -> Result<Step<'_>, SimError> {
        if self.halted {
            return Ok(Step::Halted);
        }
        if self.pc >= self.prog.len() {
            return Err(SimError::PcOutOfRange { pc: self.pc });
        }
        let pc = self.pc;
        let inst = *self.prog.inst(pc);
        let ptr_op = self.cfg.policy.classify(pc, &inst);
        self.stats.insts += 1;

        // Dynamic facts collected during execution, used to finalize the
        // µop expansion afterwards.
        let mut mem_addrs: Vec<u64> = Vec::new();
        let mut branch: Option<(bool, u64)> = None; // (taken, target byte addr)

        // Some(None) = keep the select µop; Some(Some(e)) = fold it into a
        // rename-stage effect; None = not a foldable instruction.
        let mut select_fold: Option<Option<MetaEffect>> = None;
        let mut next_pc = pc + 1;

        macro_rules! fail {
            ($v:expr) => {{
                self.halted = true;
                return Ok(Step::Violation($v));
            }};
        }

        match inst {
            Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
                return Ok(Step::Halted);
            }
            Inst::MovImm { dst, imm } => {
                self.regs[dst.index()] = imm as u64;
                self.meta[dst.index()] = MetaRecord::INVALID;
            }
            Inst::Mov { dst, src } => {
                self.regs[dst.index()] = self.regs[src.index()];
                self.meta[dst.index()] = self.meta[src.index()];
            }
            Inst::Alu { op, dst, a, b } => {
                // Rename-stage select folding: when *both* inputs' metadata
                // mappings are the invalid physical register — trivially
                // detectable in the §6.2 dual map table — the output is
                // invalid too and no select µop is needed (pure integer
                // arithmetic). When either input may be a pointer the
                // select µop is inserted, exactly as the paper specifies
                // ("either of the registers might be a pointer").
                if !op.is_long_latency() {
                    let (va, vb) = (
                        !self.meta[a.index()].is_invalid(),
                        !self.meta[b.index()].is_invalid(),
                    );
                    select_fold = Some(if !va && !vb {
                        Some(MetaEffect::Invalidate(dst))
                    } else {
                        None // genuine select µop required
                    });
                }
                self.regs[dst.index()] = op.eval(self.regs[a.index()], self.regs[b.index()]);
                self.meta[dst.index()] = if op.is_long_latency() {
                    MetaRecord::INVALID
                } else {
                    self.select_meta(a, b)
                };
            }
            Inst::AluImm { op, dst, a, imm } => {
                self.regs[dst.index()] = op.eval(self.regs[a.index()], imm as u64);
                self.meta[dst.index()] = if op.is_long_latency() {
                    MetaRecord::INVALID
                } else {
                    self.meta[a.index()]
                };
            }
            Inst::Lea { dst, addr } => {
                self.regs[dst.index()] = addr.resolve(self.regs[addr.base.index()]);
                self.meta[dst.index()] = self.meta[addr.base.index()];
            }
            Inst::LeaGlobal { dst, addr } => {
                self.regs[dst.index()] = addr;
                self.meta[dst.index()] = MetaRecord::global();
            }
            Inst::Load {
                dst, addr, width, ..
            } => {
                let a = addr.resolve(self.regs[addr.base.index()]);
                self.stats.mem_accesses += 1;
                if ptr_op {
                    self.stats.ptr_classified += 1;
                }
                if let Err(v) = self.check_access(addr.base, a, width.bytes()) {
                    fail!(v);
                }
                self.push_check_addrs(&mut mem_addrs, addr.base, a);
                self.regs[dst.index()] = self.mem.read(a, width.bytes());
                mem_addrs.push(a);
                if self.wd() {
                    if ptr_op {
                        let rec = self.shadow_load(a);
                        mem_addrs.push(self.shadow.record_addr(a));
                        if self.cfg.profiling && !rec.is_invalid() {
                            self.profile.mark(pc);
                        }
                        self.meta[dst.index()] = rec;
                    } else {
                        self.meta[dst.index()] = MetaRecord::INVALID;
                    }
                }
            }
            Inst::Store {
                src, addr, width, ..
            } => {
                let a = addr.resolve(self.regs[addr.base.index()]);
                self.stats.mem_accesses += 1;
                if ptr_op {
                    self.stats.ptr_classified += 1;
                }
                if let Err(v) = self.check_access(addr.base, a, width.bytes()) {
                    fail!(v);
                }
                self.push_check_addrs(&mut mem_addrs, addr.base, a);
                self.mem.write(a, width.bytes(), self.regs[src.index()]);
                mem_addrs.push(a);
                if self.wd() {
                    if ptr_op {
                        let rec = self.meta[src.index()];
                        self.shadow.store(&mut self.mem, a, rec);
                        mem_addrs.push(self.shadow.record_addr(a));
                        if self.cfg.profiling && !rec.is_invalid() {
                            self.profile.mark(pc);
                        }
                    } else {
                        self.shadow_invalidate_span(a, width.bytes());
                    }
                }
            }
            Inst::LoadFp { dst, addr, width } => {
                let a = addr.resolve(self.regs[addr.base.index()]);
                self.stats.mem_accesses += 1;
                if let Err(v) = self.check_access(addr.base, a, width.bytes()) {
                    fail!(v);
                }
                self.push_check_addrs(&mut mem_addrs, addr.base, a);
                self.fregs[dst.index()] = match width {
                    watchdog_isa::insn::FpWidth::F4 => f64::from(self.mem.read_f32(a)),
                    watchdog_isa::insn::FpWidth::F8 => self.mem.read_f64(a),
                };
                mem_addrs.push(a);
            }
            Inst::StoreFp { src, addr, width } => {
                let a = addr.resolve(self.regs[addr.base.index()]);
                self.stats.mem_accesses += 1;
                if let Err(v) = self.check_access(addr.base, a, width.bytes()) {
                    fail!(v);
                }
                self.push_check_addrs(&mut mem_addrs, addr.base, a);
                match width {
                    watchdog_isa::insn::FpWidth::F4 => {
                        self.mem.write_f32(a, self.fregs[src.index()] as f32)
                    }
                    watchdog_isa::insn::FpWidth::F8 => {
                        self.mem.write_f64(a, self.fregs[src.index()])
                    }
                }
                mem_addrs.push(a);
                if self.wd() {
                    self.shadow_invalidate_span(a, width.bytes());
                }
            }
            Inst::FpAlu { op, dst, a, b } => {
                self.fregs[dst.index()] = op.eval(self.fregs[a.index()], self.fregs[b.index()]);
            }
            Inst::FpMovImm { dst, imm } => self.fregs[dst.index()] = imm,
            Inst::FpMov { dst, src } => self.fregs[dst.index()] = self.fregs[src.index()],
            Inst::IntToFp { dst, src } => {
                self.fregs[dst.index()] = self.regs[src.index()] as i64 as f64
            }
            Inst::FpToInt { dst, src } => {
                self.regs[dst.index()] = self.fregs[src.index()] as i64 as u64;
                self.meta[dst.index()] = MetaRecord::INVALID;
            }
            Inst::Branch { cond, a, b, target } => {
                let taken = cond.eval(self.regs[a.index()], self.regs[b.index()]);
                let tgt = self.prog.target(target);
                if taken {
                    next_pc = tgt;
                }
                branch = Some((taken, self.prog.addr_of(tgt)));
            }
            Inst::Jump { target } => {
                let tgt = self.prog.target(target);
                next_pc = tgt;
                branch = Some((true, self.prog.addr_of(tgt)));
            }
            Inst::Call { target } => {
                self.stats.calls += 1;
                let entry_rsp = self.regs[Gpr::RSP.index()];
                let new_rsp = entry_rsp.wrapping_sub(8);
                if new_rsp < STACK_LIMIT {
                    return Err(SimError::StackOverflow);
                }
                self.regs[Gpr::RSP.index()] = new_rsp;
                self.mem.write_u64(new_rsp, (pc + 1) as u64);
                mem_addrs.push(new_rsp);
                if self.wd() {
                    // Fig. 3c.
                    self.stack_key += 1;
                    self.stack_lock += 8;
                    self.mem.write_u64(self.stack_lock, self.stack_key);
                    mem_addrs.push(self.stack_lock);
                    self.meta[Gpr::RSP.index()] = MetaRecord::with_bounds(
                        self.stack_key,
                        self.stack_lock,
                        STACK_LIMIT,
                        entry_rsp,
                    );
                }
                let tgt = self.prog.target(target);
                next_pc = tgt;
                branch = Some((true, self.prog.addr_of(tgt)));
            }
            Inst::Ret => {
                self.stats.rets += 1;
                let rsp = self.regs[Gpr::RSP.index()];
                let ra = self.mem.read_u64(rsp) as usize;
                mem_addrs.push(rsp);
                self.regs[Gpr::RSP.index()] = rsp + 8;
                if self.wd() {
                    // Fig. 3d.
                    self.mem.write_u64(self.stack_lock, INVALID_SENTINEL);
                    mem_addrs.push(self.stack_lock);
                    self.stack_lock -= 8;
                    let current_key = self.mem.read_u64(self.stack_lock);
                    mem_addrs.push(self.stack_lock);
                    self.meta[Gpr::RSP.index()] = MetaRecord::with_bounds(
                        current_key,
                        self.stack_lock,
                        STACK_LIMIT,
                        STACK_TOP,
                    );
                }
                if ra >= self.prog.len() {
                    return Err(SimError::PcOutOfRange { pc: ra });
                }
                next_pc = ra;
                branch = Some((true, self.prog.addr_of(ra)));
            }
            Inst::SetIdent { ptr, key, lock } => {
                let m = &mut self.meta[ptr.index()];
                m.key = self.regs[key.index()];
                m.lock = self.regs[lock.index()];
                if m.bound == 0 {
                    m.bound = u64::MAX;
                }
            }
            Inst::GetIdent { ptr, key, lock } => {
                let m = self.meta[ptr.index()];
                self.regs[key.index()] = m.key;
                self.regs[lock.index()] = m.lock;
                self.meta[key.index()] = MetaRecord::INVALID;
                self.meta[lock.index()] = MetaRecord::INVALID;
            }
            Inst::SetBounds { ptr, base, bound } => {
                let m = &mut self.meta[ptr.index()];
                m.base = self.regs[base.index()];
                m.bound = self.regs[bound.index()];
            }
            Inst::Malloc { dst, size } => {
                let requested = self.regs[size.index()].max(1);
                let Some(m) = self.heap.malloc(requested) else {
                    return Err(SimError::HeapExhausted { requested });
                };
                // Runtime touches: bin-head read+write, header write.
                let _ = self.mem.read_u64(m.bin_head_addr);
                mem_addrs.push(m.bin_head_addr);
                let _ = self.mem.read_u64(m.addr); // free-list next link
                mem_addrs.push(m.addr);
                self.mem.write_u64(m.bin_head_addr, 0);
                mem_addrs.push(m.bin_head_addr);
                self.mem.write_u64(m.header_addr, m.size);
                mem_addrs.push(m.header_addr);
                self.regs[dst.index()] = m.addr;
                match self.cfg.check {
                    CheckMode::Watchdog => {
                        let key = self.locks.alloc_key();
                        let Some(lock) = self.locks.alloc_lock() else {
                            return Err(SimError::HeapExhausted { requested: 8 });
                        };
                        let _ = self.mem.read_u64(self.locks.head_slot());
                        mem_addrs.push(self.locks.head_slot());
                        self.mem.write_u64(lock, key);
                        mem_addrs.push(lock);
                        self.meta[dst.index()] =
                            MetaRecord::with_bounds(key, lock, m.addr, m.addr + m.size);
                    }
                    CheckMode::Location => self.loc.on_alloc(m.addr, m.size),
                    CheckMode::None => {}
                }
            }
            Inst::Free { ptr } => {
                let p = self.regs[ptr.index()];
                match self.cfg.check {
                    CheckMode::Watchdog => {
                        // Fig. 3b + the runtime's free-time identifier check.
                        let m = self.meta[ptr.index()];
                        if m.is_invalid() {
                            fail!(self.violation(ViolationKind::InvalidFree, p));
                        }
                        let lock_val = self.mem.read_u64(m.lock);
                        if lock_val != m.key {
                            fail!(self.violation(ViolationKind::DoubleFree, p));
                        }
                        let Some(f) = self.heap.free(p) else {
                            fail!(self.violation(ViolationKind::InvalidFree, p));
                        };
                        let _ = self.mem.read_u64(f.header_addr);
                        mem_addrs.push(f.header_addr);
                        let _ = self.mem.read_u64(f.bin_head_addr);
                        mem_addrs.push(f.bin_head_addr);
                        self.mem.write_u64(f.addr, 0); // free-list link
                        mem_addrs.push(f.addr);
                        self.mem.write_u64(f.bin_head_addr, f.addr);
                        mem_addrs.push(f.bin_head_addr);
                        // Invalidate the identifier and recycle the lock.
                        mem_addrs.push(m.lock); // runtime check µop
                        self.mem.write_u64(m.lock, INVALID_SENTINEL);
                        mem_addrs.push(m.lock);
                        self.mem.write_u64(self.locks.head_slot(), m.lock);
                        mem_addrs.push(self.locks.head_slot());
                        self.locks.free_lock(m.lock);
                    }
                    CheckMode::Location => {
                        let Some(size) = self.heap.live_size(p) else {
                            fail!(self.violation(ViolationKind::InvalidFree, p));
                        };
                        let f = self.heap.free(p).expect("live allocation frees");
                        self.loc.on_free(p, size);
                        for a in [f.header_addr, f.bin_head_addr, f.addr, f.bin_head_addr] {
                            let _ = self.mem.read_u64(a);
                            mem_addrs.push(a);
                        }
                    }
                    CheckMode::None => {
                        // Unchecked frees of garbage are silently ignored
                        // (the bug proceeds to corrupt memory, as in
                        // reality).
                        if let Some(f) = self.heap.free(p) {
                            for a in [f.header_addr, f.bin_head_addr, f.addr, f.bin_head_addr] {
                                let _ = self.mem.read_u64(a);
                                mem_addrs.push(a);
                            }
                        } else {
                            mem_addrs.extend([HEAP_BASE; 4]);
                        }
                    }
                }
            }
            Inst::NewIdent { key, lock } => {
                // §7 custom-allocator support: fresh key + lock location.
                if self.cfg.check == CheckMode::Watchdog {
                    let k = self.locks.alloc_key();
                    let Some(l) = self.locks.alloc_lock() else {
                        return Err(SimError::HeapExhausted { requested: 8 });
                    };
                    let _ = self.mem.read_u64(self.locks.head_slot());
                    mem_addrs.push(self.locks.head_slot());
                    self.mem.write_u64(l, k);
                    mem_addrs.push(l);
                    self.regs[key.index()] = k;
                    self.regs[lock.index()] = l;
                } else {
                    self.regs[key.index()] = 0;
                    self.regs[lock.index()] = 0;
                }
                self.meta[key.index()] = MetaRecord::INVALID;
                self.meta[lock.index()] = MetaRecord::INVALID;
            }
            Inst::KillIdent { key, lock } => {
                if self.cfg.check == CheckMode::Watchdog {
                    let k = self.regs[key.index()];
                    let l = self.regs[lock.index()];
                    let in_region =
                        (HEAP_LOCK_BASE + 8..HEAP_LOCK_BASE + HEAP_LOCK_SIZE).contains(&l);
                    if !in_region {
                        fail!(self.violation(ViolationKind::InvalidFree, l));
                    }
                    let cur = self.mem.read_u64(l);
                    mem_addrs.push(l);
                    if cur != k {
                        // Already invalidated (double kill) or a foreign
                        // identifier.
                        fail!(self.violation(ViolationKind::DoubleFree, l));
                    }
                    self.mem.write_u64(l, INVALID_SENTINEL);
                    mem_addrs.push(l);
                    self.mem.write_u64(self.locks.head_slot(), l);
                    mem_addrs.push(self.locks.head_slot());
                    self.locks.free_lock(l);
                }
            }
        }

        self.pc = next_pc;

        if let Some(hook) = hook {
            hook.on_commit(&CommitRecord {
                pc_index: pc,
                ptr_op,
                folded: select_fold.map(|f| f.is_some()),
                mem_addrs: &mem_addrs,
                branch,
            });
        }

        if !self.cfg.emit_uops {
            return Ok(Step::Executed(None));
        }

        // Assemble the µop expansion with its dynamic facts. The static
        // expansion is a pure function of (inst, ptr_op, crack config), so
        // it is served from the per-PC cache when enabled. A batched
        // caller gets it appended straight to its `UopBatch`
        // (`push_expansion` — the same routine the trace replayer fills
        // with, so the two feeds match by construction); a per-step caller
        // gets the machine's scratch expansion, refreshed with a
        // length-aware copy — the fixed-capacity tail of the µop vector is
        // never touched. Both assembly routines mirror `assemble_cracked`.
        let facts = CommitFacts {
            pc: self.prog.addr_of(pc),
            len: inst.encoded_len(),
            select_fold: select_fold.flatten(),
            location_check: self.cfg.check == CheckMode::Location && inst.is_mem(),
            mem_addrs: &mem_addrs,
            branch,
        };
        if let Some(batch) = batch {
            match self.crack_cache.as_mut() {
                Some(cache) => batch.push_expansion(cache.get_or_crack(pc, &inst, ptr_op), &facts),
                None => batch.push_expansion(&crack(&inst, ptr_op, &self.crack_cfg), &facts),
            }
            return Ok(Step::Executed(None));
        }
        let cur = &mut self.cur;
        match self.crack_cache.as_mut() {
            Some(cache) => assemble_cracked(cur, cache.get_or_crack(pc, &inst, ptr_op), &facts),
            None => assemble_cracked(cur, &crack(&inst, ptr_op, &self.crack_cfg), &facts),
        }
        Ok(Step::Executed(Some(&self.cur)))
    }

    /// Emits the check-µop lock addresses for an access through `base`
    /// (`addr` unused for identifier-only checks; bounds checks are pure
    /// ALU).
    fn push_check_addrs(&mut self, mem_addrs: &mut Vec<u64>, base: Gpr, addr: u64) {
        match self.cfg.check {
            CheckMode::Watchdog => {
                let lock = self.meta[base.index()].lock;
                mem_addrs.push(lock);
            }
            CheckMode::Location => {
                // One allocation-status access per memory access (§2.1
                // hardware, e.g. MemTracker): status lives in its own
                // shadow region, one byte per word.
                mem_addrs.push(SHADOW_BASE + (addr >> 3));
            }
            CheckMode::None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchdog_isa::{AluOp, Cond, ProgramBuilder};

    fn g(n: u8) -> Gpr {
        Gpr::new(n)
    }

    fn run(prog: &Program, cfg: MachineConfig) -> (Machine<'_>, Option<Violation>) {
        let mut m = Machine::new(prog, cfg);
        loop {
            match m.step().expect("no sim error") {
                Step::Executed(_) => {}
                Step::Halted => return (m, None),
                Step::Violation(v) => return (m, Some(v)),
            }
        }
    }

    fn uaf_program() -> Program {
        let mut b = ProgramBuilder::new("uaf");
        let (p, sz, v) = (g(0), g(1), g(2));
        b.li(sz, 64);
        b.malloc(p, sz);
        b.li(v, 7);
        b.st8(v, p, 0);
        b.free(p);
        b.ld8(v, p, 0); // UAF
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn watchdog_detects_heap_uaf() {
        let p = uaf_program();
        let (_, v) = run(&p, MachineConfig::watchdog());
        let v = v.expect("violation detected");
        assert_eq!(v.kind, ViolationKind::UseAfterFree);
        assert_eq!(v.pc_index, 5);
    }

    #[test]
    fn baseline_misses_heap_uaf() {
        let p = uaf_program();
        let (m, v) = run(&p, MachineConfig::baseline());
        assert!(v.is_none());
        assert!(m.halted());
    }

    #[test]
    fn watchdog_detects_uaf_after_reallocation_but_location_does_not() {
        // Fig. 1 left: q dangles; the memory is recycled by a new malloc.
        let mut b = ProgramBuilder::new("uaf-realloc");
        let (p, q, r, sz, v) = (g(0), g(1), g(2), g(3), g(4));
        b.li(sz, 64);
        b.malloc(p, sz);
        b.mov(q, p); // q aliases p
        b.free(p);
        b.malloc(r, sz); // reuses the same address (LIFO)
        b.ld8(v, q, 0); // dangling dereference through q
        b.halt();
        let prog = b.build().unwrap();

        let (m, v1) = run(&prog, MachineConfig::watchdog());
        assert_eq!(
            v1.expect("watchdog catches it").kind,
            ViolationKind::UseAfterFree
        );
        drop(m);

        let cfg = MachineConfig {
            check: CheckMode::Location,
            ..MachineConfig::baseline()
        };
        let (m2, v2) = run(&prog, cfg);
        assert!(
            v2.is_none(),
            "location-based checking is blind after reallocation"
        );
        assert_eq!(m2.reg(q), m2.reg(r), "the address really was reused");
    }

    #[test]
    fn location_detects_simple_uaf() {
        let p = uaf_program();
        let cfg = MachineConfig {
            check: CheckMode::Location,
            ..MachineConfig::baseline()
        };
        let (_, v) = run(&p, cfg);
        assert_eq!(
            v.expect("simple UAF is visible to location checking").kind,
            ViolationKind::UseAfterFree
        );
    }

    #[test]
    fn watchdog_detects_double_free() {
        let mut b = ProgramBuilder::new("df");
        let (p, sz) = (g(0), g(1));
        b.li(sz, 32);
        b.malloc(p, sz);
        b.free(p);
        b.free(p);
        b.halt();
        let prog = b.build().unwrap();
        let (_, v) = run(&prog, MachineConfig::watchdog());
        assert_eq!(v.unwrap().kind, ViolationKind::DoubleFree);
    }

    #[test]
    fn watchdog_detects_stack_use_after_return() {
        // Fig. 1 right: foo() publishes &local to a global; main
        // dereferences it after foo returns.
        let mut b = ProgramBuilder::new("stack-uaf");
        let (p, v, t) = (g(0), g(1), g(2));
        let rsp = Gpr::RSP;
        let slot = b.global_u64(0);
        let foo = b.label();
        let after = b.label();
        // main:
        b.call(foo);
        b.lea_global(t, slot);
        b.ld8(p, t, 0); // p = &local (dangling now)
        b.ld8(v, p, 0); // use-after-return
        b.halt();
        // foo:
        b.bind(foo);
        b.alui(AluOp::Sub, rsp, rsp, 16); // local frame
        b.li(v, 99);
        b.st8(v, rsp, 0); // local = 99
        b.lea_global(t, slot);
        b.mov(p, rsp);
        b.st8(p, t, 0); // global = &local  (pointer store)
        b.alui(AluOp::Add, rsp, rsp, 16);
        b.ret();
        b.bind(after);
        b.nop();
        let prog = b.build().unwrap();
        let (_, viol) = run(&prog, MachineConfig::watchdog());
        assert_eq!(
            viol.expect("dangling stack pointer detected").kind,
            ViolationKind::UseAfterReturn
        );
    }

    #[test]
    fn benign_program_runs_clean_under_watchdog() {
        // Allocate, fill, sum, free — across two frames, with pointer
        // arithmetic. Must produce identical results in all modes.
        let build = || {
            let mut b = ProgramBuilder::new("benign");
            let (p, sz, i, n, acc, t) = (g(0), g(1), g(2), g(3), g(4), g(5));
            b.li(sz, 256);
            b.malloc(p, sz);
            b.li(i, 0);
            b.li(n, 32);
            let loop1 = b.here();
            b.alu(AluOp::Shl, t, i, g(6)); // t = i << 0 (g6 = 0)
            b.alui(AluOp::Mul, t, i, 8);
            b.add(t, p, t);
            b.st8(i, t, 0);
            b.addi(i, i, 1);
            b.branch(Cond::Lt, i, n, loop1);
            b.li(i, 0);
            b.li(acc, 0);
            let loop2 = b.here();
            b.alui(AluOp::Mul, t, i, 8);
            b.add(t, p, t);
            b.ld8(t, t, 0);
            b.add(acc, acc, t);
            b.addi(i, i, 1);
            b.branch(Cond::Lt, i, n, loop2);
            b.free(p);
            b.halt();
            b.build().unwrap()
        };
        let expected = (0..32u64).sum::<u64>();
        for cfg in [
            MachineConfig::baseline(),
            MachineConfig::watchdog(),
            MachineConfig {
                check: CheckMode::Location,
                ..MachineConfig::baseline()
            },
            MachineConfig {
                bounds: Some(watchdog_isa::crack::BoundsUops::Fused),
                ..MachineConfig::watchdog()
            },
        ] {
            let prog = build();
            let (m, v) = run(&prog, cfg.clone());
            assert!(v.is_none(), "false positive under {cfg:?}: {v:?}");
            assert_eq!(m.reg(g(4)), expected, "wrong result under {cfg:?}");
        }
    }

    #[test]
    fn bounds_mode_detects_overflow() {
        let mut b = ProgramBuilder::new("overflow");
        let (p, sz, v) = (g(0), g(1), g(2));
        b.li(sz, 64);
        b.malloc(p, sz);
        b.ld8(v, p, 64); // one word past the end
        b.halt();
        let prog = b.build().unwrap();
        let cfg = MachineConfig {
            bounds: Some(watchdog_isa::crack::BoundsUops::Fused),
            ..MachineConfig::watchdog()
        };
        let (_, v) = run(&prog, cfg);
        assert_eq!(v.unwrap().kind, ViolationKind::OutOfBounds);
        // Without bounds the same access is (temporally) fine.
        let prog2 = {
            let mut b = ProgramBuilder::new("overflow2");
            b.li(sz, 64);
            b.malloc(p, sz);
            b.ld8(g(2), p, 64);
            b.halt();
            b.build().unwrap()
        };
        let (_, v2) = run(&prog2, MachineConfig::watchdog());
        assert!(v2.is_none(), "UAF-only Watchdog does not check bounds");
    }

    #[test]
    fn wild_pointer_dereference_is_detected() {
        let mut b = ProgramBuilder::new("wild");
        b.li(g(0), 0x2000_0040); // fabricated pointer, no identifier
        b.ld8(g(1), g(0), 0);
        b.halt();
        let prog = b.build().unwrap();
        let (_, v) = run(&prog, MachineConfig::watchdog());
        assert_eq!(v.unwrap().kind, ViolationKind::WildPointer);
    }

    #[test]
    fn globals_are_always_dereferenceable() {
        let mut b = ProgramBuilder::new("globals");
        let w = b.global_u64(123);
        let slot = b.global_ptr(w);
        let (p, t, v) = (g(0), g(1), g(2));
        b.lea_global(t, slot);
        b.ld8(p, t, 0); // load the global pointer (metadata = global id)
        b.ld8(v, p, 0); // dereference it
        b.halt();
        let prog = b.build().unwrap();
        let (m, viol) = run(&prog, MachineConfig::watchdog());
        assert!(viol.is_none());
        assert_eq!(m.reg(v), 123);
    }

    #[test]
    fn metadata_flows_through_pointer_arithmetic() {
        let mut b = ProgramBuilder::new("arith");
        let (p, q, sz, v, off) = (g(0), g(1), g(2), g(3), g(4));
        b.li(sz, 128);
        b.malloc(p, sz);
        b.li(off, 40);
        b.add(q, p, off); // two-source add: select propagates p's metadata
        b.li(v, 5);
        b.st8(v, q, 0);
        b.addi(q, q, 8); // add-immediate: copy
        b.st8(v, q, 0);
        b.lea(q, q, 8); // lea: copy
        b.st8(v, q, 0);
        b.free(p);
        b.st8(v, q, 0); // all aliases die together
        b.halt();
        let prog = b.build().unwrap();
        let (_, viol) = run(&prog, MachineConfig::watchdog());
        let viol = viol.expect("dangling store through derived pointer detected");
        assert_eq!(viol.kind, ViolationKind::UseAfterFree);
    }

    #[test]
    fn profiling_marks_exactly_the_pointer_moving_instructions() {
        let mut b = ProgramBuilder::new("profile");
        let (p, q, sz, v) = (g(0), g(1), g(2), g(3));
        b.li(sz, 64);
        b.malloc(p, sz);
        let st_ptr = 2; // index of the next instruction
        b.st8(p, p, 0); // stores a pointer
        let ld_ptr = 3;
        b.ld8(q, p, 0); // loads a pointer
        let st_int = 4;
        b.li(v, 9);
        b.st8(v, p, 8); // stores an integer
        b.ld8(v, p, 8); // loads an integer
        b.halt();
        let prog = b.build().unwrap();
        let cfg = MachineConfig {
            profiling: true,
            ..MachineConfig::watchdog()
        };
        let (m, viol) = run(&prog, cfg);
        assert!(viol.is_none());
        let prof = m.profile();
        assert!(prof.is_marked(st_ptr), "pointer store marked");
        assert!(prof.is_marked(ld_ptr), "pointer load marked");
        assert!(!prof.is_marked(st_int + 1), "integer store not marked");
        assert_eq!(prof.len(), 2);
    }

    #[test]
    fn uop_stream_has_addresses_for_all_mem_uops() {
        let prog = uaf_program();
        let mut m = Machine::new(&prog, MachineConfig::watchdog());
        let mut steps = 0;
        loop {
            match m.step().unwrap() {
                Step::Executed(Some(ci)) => {
                    for u in ci.uops.iter() {
                        if u.uop.kind.is_mem() {
                            assert!(u.addr.is_some(), "mem µop without address: {:?}", u.uop);
                        }
                    }
                    steps += 1;
                }
                Step::Executed(None) => unreachable!(),
                Step::Halted | Step::Violation(_) => break,
            }
        }
        assert!(steps >= 5);
    }

    #[test]
    fn instrumented_custom_allocator_gets_exact_checking() {
        // §7: a pool allocator carving sub-objects out of a region.
        let build = |instrumented: bool| {
            let mut b = ProgramBuilder::new("pool");
            let (region, obj, sz, v, key, lock) = (g(0), g(1), g(2), g(3), g(4), g(5));
            b.li(sz, 256);
            b.malloc(region, sz);
            b.lea(obj, region, 64);
            if instrumented {
                b.new_ident(key, lock);
                b.set_ident(obj, key, lock);
            }
            b.st8(v, obj, 0);
            if instrumented {
                b.kill_ident(key, lock);
            }
            b.ld8(v, obj, 0); // use after pool-free
            b.free(region);
            b.halt();
            b.build().unwrap()
        };
        let plain = build(false);
        let (_, v) = run(&plain, MachineConfig::watchdog());
        assert!(
            v.is_none(),
            "uninstrumented pools inherit the region's identifier"
        );
        let inst = build(true);
        let (_, v) = run(&inst, MachineConfig::watchdog());
        assert_eq!(
            v.unwrap().kind,
            ViolationKind::UseAfterFree,
            "instrumented pools check exactly"
        );
    }

    #[test]
    fn double_killident_is_detected() {
        let mut b = ProgramBuilder::new("double-kill");
        let (key, lock) = (g(0), g(1));
        b.new_ident(key, lock);
        b.kill_ident(key, lock);
        b.kill_ident(key, lock);
        b.halt();
        let p = b.build().unwrap();
        let (_, v) = run(&p, MachineConfig::watchdog());
        assert_eq!(v.unwrap().kind, ViolationKind::DoubleFree);
    }

    #[test]
    fn killident_of_garbage_is_invalid_free() {
        let mut b = ProgramBuilder::new("bad-kill");
        let (key, lock) = (g(0), g(1));
        b.li(key, 123);
        b.li(lock, 0x1000); // not a lock location
        b.kill_ident(key, lock);
        b.halt();
        let p = b.build().unwrap();
        let (_, v) = run(&p, MachineConfig::watchdog());
        assert_eq!(v.unwrap().kind, ViolationKind::InvalidFree);
    }

    #[test]
    fn newident_is_inert_in_baseline_mode() {
        let mut b = ProgramBuilder::new("inert");
        let (key, lock) = (g(0), g(1));
        b.new_ident(key, lock);
        b.kill_ident(key, lock);
        b.halt();
        let p = b.build().unwrap();
        let (m, v) = run(&p, MachineConfig::baseline());
        assert!(v.is_none());
        assert_eq!(m.reg(g(0)), 0, "baseline returns null identifiers");
    }

    #[test]
    fn getident_returns_the_runtime_visible_identifier() {
        let mut b = ProgramBuilder::new("getident");
        let (p, sz, key, lock) = (g(0), g(1), g(2), g(3));
        b.li(sz, 64);
        b.malloc(p, sz);
        b.push(watchdog_isa::Inst::GetIdent { ptr: p, key, lock });
        b.halt();
        let prog = b.build().unwrap();
        let mut m = Machine::new(&prog, MachineConfig::watchdog());
        while let Step::Executed(_) = m.step().unwrap() {}
        let meta = m.meta_of(g(0));
        assert_eq!(m.reg(key), meta.key, "getident exposes the key");
        assert_eq!(m.reg(lock), meta.lock, "getident exposes the lock");
        // The lock location currently holds the key (allocation is live).
        assert_eq!(m.read_mem(meta.lock, 8), meta.key);
    }

    #[test]
    fn location_mode_detects_invalid_free() {
        let mut b = ProgramBuilder::new("badfree");
        b.li(g(0), 0x2000_1000);
        b.free(g(0));
        b.halt();
        let prog = b.build().unwrap();
        let cfg = MachineConfig {
            check: CheckMode::Location,
            ..MachineConfig::baseline()
        };
        let (_, v) = run(&prog, cfg);
        assert_eq!(v.unwrap().kind, ViolationKind::InvalidFree);
    }

    #[test]
    fn non_pointer_store_invalidates_stale_metadata() {
        // A pointer is stored to memory, then an integer overwrites it; a
        // reload must NOT resurrect the old (valid) metadata.
        let mut b = ProgramBuilder::new("clobber");
        let (p, q, sz, v, slot) = (g(0), g(1), g(2), g(3), g(4));
        b.li(sz, 64);
        b.malloc(p, sz);
        b.malloc(slot, sz);
        b.st8(p, slot, 0); // pointer store → metadata written
        b.li(v, 1234);
        b.st4(v, slot, 0); // partial integer overwrite → metadata cleared
        b.ld8(q, slot, 0); // reload: mangled value, invalid metadata
        b.ld8(v, q, 0); // dereference must fail as a wild pointer
        b.halt();
        let prog = b.build().unwrap();
        let (_, viol) = run(&prog, MachineConfig::watchdog());
        assert_eq!(viol.unwrap().kind, ViolationKind::WildPointer);
    }

    #[test]
    fn fp_values_round_trip_through_memory() {
        use watchdog_isa::{FpWidth, Fpr};
        let mut b = ProgramBuilder::new("fp");
        let (p, sz) = (g(0), g(1));
        b.li(sz, 64);
        b.malloc(p, sz);
        b.fli(Fpr::new(0), 2.5);
        b.stf(Fpr::new(0), p, 0, FpWidth::F8);
        b.ldf(Fpr::new(1), p, 0, FpWidth::F8);
        b.stf(Fpr::new(1), p, 8, FpWidth::F4);
        b.ldf(Fpr::new(2), p, 8, FpWidth::F4);
        b.falu(
            watchdog_isa::FpOp::Add,
            Fpr::new(3),
            Fpr::new(1),
            Fpr::new(2),
        );
        b.f2i(g(2), Fpr::new(3));
        b.free(p);
        b.halt();
        let prog = b.build().unwrap();
        let (m, viol) = run(&prog, MachineConfig::watchdog());
        assert!(viol.is_none());
        assert_eq!(m.reg(g(2)), 5);
        assert_eq!(m.freg(Fpr::new(1)), 2.5);
    }

    #[test]
    fn crack_cache_is_transparent_to_the_uop_stream() {
        // A loopy pointer-heavy program: every revisited PC must produce
        // exactly the µop stream an uncached machine produces, and the
        // revisits must register as cache hits.
        let build = || {
            let mut b = ProgramBuilder::new("cache-loop");
            let (p, sz, i, n, t) = (g(0), g(1), g(2), g(3), g(4));
            b.li(sz, 128);
            b.malloc(p, sz);
            b.li(i, 0);
            b.li(n, 16);
            let l = b.here();
            b.alui(AluOp::Mul, t, i, 8);
            b.add(t, p, t);
            b.st8(t, t, 0); // stores a pointer: shadow-store µop
            b.ld8(t, t, 0); // loads it back: shadow-load µop
            b.addi(i, i, 1);
            b.branch(Cond::Lt, i, n, l);
            b.free(p);
            b.halt();
            b.build().unwrap()
        };
        let stream = |cached: bool| {
            let prog = build();
            let cfg = MachineConfig {
                crack_cache: cached,
                ..MachineConfig::watchdog()
            };
            let mut m = Machine::new(&prog, cfg);
            let mut out = Vec::new();
            loop {
                match m.step().expect("no sim error") {
                    Step::Executed(Some(ci)) => out.push(format!("{ci:?}")),
                    Step::Executed(None) => unreachable!("emit_uops is on"),
                    Step::Halted | Step::Violation(_) => break,
                }
            }
            (out, m.crack_cache_stats())
        };
        let (cached, stats) = stream(true);
        let (uncached, no_stats) = stream(false);
        assert_eq!(cached, uncached, "cache must not change the µop stream");
        assert!(no_stats.is_none());
        let stats = stats.expect("cache enabled");
        assert!(stats.hits > 0, "loop revisits must hit: {stats:?}");
        assert!(stats.misses > 0, "first visits must miss: {stats:?}");
        assert!(stats.hit_rate() > 0.5, "loopy code is hit-dominated");
    }

    #[test]
    fn emit_uops_toggle_creates_the_cache_on_demand() {
        let prog = uaf_program();
        let mut cfg = MachineConfig::watchdog();
        cfg.emit_uops = false;
        let mut m = Machine::new(&prog, cfg);
        assert!(m.crack_cache_stats().is_none(), "functional-only: no cache");
        assert!(matches!(m.step().unwrap(), Step::Executed(None)));
        m.set_emit_uops(true);
        assert!(matches!(m.step().unwrap(), Step::Executed(Some(_))));
        let stats = m.crack_cache_stats().expect("cache created on demand");
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn crack_cache_invalidation_hooks_recrack() {
        let prog = uaf_program();
        let mut m = Machine::new(&prog, MachineConfig::watchdog());
        assert!(matches!(m.step().unwrap(), Step::Executed(Some(_))));
        let before = m.crack_cache_stats().unwrap();
        assert_eq!(before.misses, 1);
        m.invalidate_cracked(0);
        m.invalidate_all_cracked(); // already empty: no double count
        assert_eq!(m.crack_cache_stats().unwrap().invalidations, 1);
    }

    #[test]
    fn nested_calls_restore_frame_identifiers() {
        let mut b = ProgramBuilder::new("nest");
        let rsp = Gpr::RSP;
        let (v,) = (g(1),);
        let f1 = b.label();
        let f2 = b.label();
        b.call(f1);
        b.alui(AluOp::Sub, rsp, rsp, 16);
        b.st8(v, rsp, 0); // main's frame is valid again after the calls
        b.alui(AluOp::Add, rsp, rsp, 16);
        b.halt();
        b.bind(f1);
        b.alui(AluOp::Sub, rsp, rsp, 32);
        b.st8(v, rsp, 8);
        b.call(f2);
        b.ld8(v, rsp, 8); // f1's frame still valid after f2 returns
        b.alui(AluOp::Add, rsp, rsp, 32);
        b.ret();
        b.bind(f2);
        b.alui(AluOp::Sub, rsp, rsp, 16);
        b.st8(v, rsp, 0);
        b.alui(AluOp::Add, rsp, rsp, 16);
        b.ret();
        let prog = b.build().unwrap();
        let (m, viol) = run(&prog, MachineConfig::watchdog());
        assert!(viol.is_none(), "nested frames must validate: {viol:?}");
        assert_eq!(m.stats().calls, 2);
        assert_eq!(m.stats().rets, 2);
    }
}

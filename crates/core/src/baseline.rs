//! Location-based checking (the comparison point of §2.1 / Table 1).
//!
//! Location-based tools (Valgrind Memcheck, MemTracker, LBA, …) shadow each
//! *location* with an allocated/unallocated bit. They catch frees of
//! unallocated memory and touches of unallocated memory — but "whenever a
//! location is re-allocated this approach erroneously allows the
//! dereference of a dangling pointer" (§2.1). We implement this checker to
//! demonstrate that failure empirically (the `table1` reproduction binary
//! and the integration tests).

use std::collections::HashSet;

/// Shadow allocation-status map at 8-byte-word granularity.
#[derive(Debug, Default)]
pub struct LocationChecker {
    allocated: HashSet<u64>, // word indices
}

impl LocationChecker {
    /// An empty status map (globals/stack are registered by the machine).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `[addr, addr+size)` allocated.
    pub fn on_alloc(&mut self, addr: u64, size: u64) {
        for w in (addr >> 3)..((addr + size + 7) >> 3) {
            self.allocated.insert(w);
        }
    }

    /// Marks `[addr, addr+size)` unallocated. Returns `false` if the range
    /// was not fully allocated (a double/invalid free as far as a
    /// location-based tool can tell).
    pub fn on_free(&mut self, addr: u64, size: u64) -> bool {
        let mut all = true;
        for w in (addr >> 3)..((addr + size + 7) >> 3) {
            all &= self.allocated.remove(&w);
        }
        all
    }

    /// Whether an access of `len` bytes at `addr` touches only allocated
    /// memory.
    pub fn check(&self, addr: u64, len: u64) -> bool {
        ((addr >> 3)..((addr + len.max(1) + 7) >> 3)).all(|w| self.allocated.contains(&w))
    }

    /// Number of words currently marked allocated.
    pub fn allocated_words(&self) -> usize {
        self.allocated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catches_a_simple_use_after_free() {
        let mut c = LocationChecker::new();
        c.on_alloc(0x1000, 64);
        assert!(c.check(0x1000, 8));
        assert!(c.check(0x1038, 8));
        assert!(c.on_free(0x1000, 64));
        assert!(!c.check(0x1000, 8), "freed memory is flagged");
    }

    #[test]
    fn blind_after_reallocation() {
        // The fundamental weakness the paper targets: free + realloc makes
        // the *location* valid again, so the stale pointer sails through.
        let mut c = LocationChecker::new();
        c.on_alloc(0x1000, 64);
        c.on_free(0x1000, 64);
        c.on_alloc(0x1000, 64); // unrelated object reuses the address
        assert!(
            c.check(0x1000, 8),
            "location-based checking cannot see the dangling pointer"
        );
    }

    #[test]
    fn catches_double_free() {
        let mut c = LocationChecker::new();
        c.on_alloc(0x2000, 16);
        assert!(c.on_free(0x2000, 16));
        assert!(!c.on_free(0x2000, 16));
    }

    #[test]
    fn partial_overlap_fails_check() {
        let mut c = LocationChecker::new();
        c.on_alloc(0x1000, 16);
        assert!(!c.check(0x0FF8, 16), "straddles unallocated memory");
        assert!(!c.check(0x1008, 16), "tail out of range");
    }

    #[test]
    fn word_accounting() {
        let mut c = LocationChecker::new();
        c.on_alloc(0x1000, 64);
        assert_eq!(c.allocated_words(), 8);
        c.on_free(0x1000, 64);
        assert_eq!(c.allocated_words(), 0);
    }
}

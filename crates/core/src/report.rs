//! Run reports: everything one simulation produces.

use crate::error::{Violation, ViolationKind};
use crate::machine::MachineStats;
use crate::runtime::HeapStats;
use watchdog_isa::crack_cache::CrackCacheStats;
use watchdog_mem::Footprint;
use watchdog_pipeline::TimingReport;

/// The result of simulating one program under one configuration.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Program name.
    pub program: String,
    /// Human-readable mode label.
    pub mode: String,
    /// Architectural execution statistics.
    pub machine: MachineStats,
    /// Heap runtime statistics.
    pub heap: HeapStats,
    /// Memory footprint (Fig. 10's raw data).
    pub footprint: Footprint,
    /// Detected memory-safety violation, if any. `None` means the program
    /// ran to completion cleanly.
    pub violation: Option<Violation>,
    /// Timing-model results (absent for functional-only runs).
    pub timing: Option<TimingReport>,
    /// Per-PC crack-cache hit/miss counters (`None` when the run never
    /// cracked — functional-only runs — or the cache was disabled).
    pub crack_cache: Option<CrackCacheStats>,
}

impl RunReport {
    /// Execution cycles (0 for functional-only runs).
    pub fn cycles(&self) -> u64 {
        self.timing.as_ref().map_or(0, |t| t.cycles)
    }

    /// Total µops (0 for functional-only runs).
    pub fn uops(&self) -> u64 {
        self.timing.as_ref().map_or(0, |t| t.uops)
    }

    /// Runtime overhead relative to a baseline run of the same program:
    /// `cycles/baseline - 1` (the y-axis of Figs. 7, 9 and 11).
    ///
    /// # Panics
    ///
    /// Panics if either run lacks timing data.
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        let s = self.cycles();
        let b = baseline.cycles();
        assert!(s > 0 && b > 0, "slowdown requires timed runs");
        s as f64 / b as f64 - 1.0
    }

    /// Fraction of memory accesses classified as pointer operations
    /// (Fig. 5's y-axis).
    pub fn ptr_fraction(&self) -> f64 {
        if self.machine.mem_accesses == 0 {
            0.0
        } else {
            self.machine.ptr_classified as f64 / self.machine.mem_accesses as f64
        }
    }

    /// µop overhead relative to the baseline µops of this run (Fig. 8's
    /// total bar height).
    pub fn uop_overhead(&self) -> f64 {
        self.timing.as_ref().map_or(0.0, |t| t.uop_overhead())
    }

    /// µop overhead split by category, as fractions of baseline µops:
    /// `(checks, pointer loads, pointer stores, other)` — Fig. 8's stacked
    /// segments ("other" is propagation plus allocation/deallocation).
    pub fn uop_overhead_breakdown(&self) -> (f64, f64, f64, f64) {
        match &self.timing {
            None => (0.0, 0.0, 0.0, 0.0),
            Some(t) => {
                let base = t.uops_by_tag[0].max(1) as f64;
                (
                    t.uops_by_tag[1] as f64 / base,
                    t.uops_by_tag[2] as f64 / base,
                    t.uops_by_tag[3] as f64 / base,
                    (t.uops_by_tag[4] + t.uops_by_tag[5]) as f64 / base,
                )
            }
        }
    }

    /// Memory overhead at word granularity (Fig. 10, left bars).
    pub fn word_overhead(&self) -> f64 {
        self.footprint.word_overhead()
    }

    /// Memory overhead at page granularity (Fig. 10, right bars).
    pub fn page_overhead(&self) -> f64 {
        self.footprint.page_overhead()
    }

    /// Kind of the detected violation, if any.
    pub fn violation_kind(&self) -> Option<ViolationKind> {
        self.violation.map(|v| v.kind)
    }

    /// Checks that two runs of the *same program* agree on everything the
    /// functional machine decides: architectural statistics, heap
    /// behaviour, memory footprint and the detected violation.
    ///
    /// The timed and functional paths share one functional machine, so a
    /// timed run may only add timing data on top — any divergence here is
    /// a simulator bug. Used by the `watchdog-gen` differential harness.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first field that
    /// differs.
    pub fn agrees_with(&self, other: &RunReport) -> Result<(), String> {
        if self.program != other.program {
            return Err(format!(
                "different programs: {:?} vs {:?}",
                self.program, other.program
            ));
        }
        // Structural comparisons; Debug renderings are built only on the
        // (exceptional) mismatch path — this runs several times per seed
        // in the fuzzing campaign's hot loop.
        let diverged = if self.machine != other.machine {
            Some((
                "machine stats",
                format!("{:?}", self.machine),
                format!("{:?}", other.machine),
            ))
        } else if self.heap != other.heap {
            Some((
                "heap stats",
                format!("{:?}", self.heap),
                format!("{:?}", other.heap),
            ))
        } else if self.footprint != other.footprint {
            Some((
                "footprint",
                format!("{:?}", self.footprint),
                format!("{:?}", other.footprint),
            ))
        } else if self.violation != other.violation {
            Some((
                "violation",
                format!("{:?}", self.violation),
                format!("{:?}", other.violation),
            ))
        } else {
            None
        };
        match diverged {
            None => Ok(()),
            Some((what, a, b)) => Err(format!(
                "{what} diverge between {} and {}: {a} vs {b}",
                self.mode, other.mode
            )),
        }
    }
}

/// Geometric mean of `1 + x` minus one, the paper's aggregation for
/// overhead percentages ("Geo. mean" in Figs. 7, 9, 11).
pub fn geomean_overhead(overheads: &[f64]) -> f64 {
    if overheads.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = overheads.iter().map(|o| (1.0 + o).ln()).sum();
    (log_sum / overheads.len() as f64).exp() - 1.0
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_that_value() {
        let g = geomean_overhead(&[0.15, 0.15, 0.15]);
        assert!((g - 0.15).abs() < 1e-12);
        assert_eq!(geomean_overhead(&[]), 0.0);
    }

    #[test]
    fn geomean_is_below_arithmetic_mean() {
        let xs = [0.05, 0.10, 0.80];
        assert!(geomean_overhead(&xs) < mean(&xs));
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}

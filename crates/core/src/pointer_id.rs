//! Pointer identification policies (§5).
//!
//! Watchdog must decide which loads/stores might move *pointers* (and thus
//! need metadata µops). Two policies from the paper:
//!
//! * **Conservative** (§5.1): "only a 64-bit load/store to an integer
//!   register may be a pointer operation" — floating-point and sub-word
//!   accesses never are. The paper measures ≈31% of memory accesses
//!   classified this way (Fig. 5, left bars).
//! * **ISA-assisted** (§5.2): the compiler marks pointer load/store
//!   variants. The paper emulates the compiler with "a profiling pass to
//!   determine which static instructions ever load or store valid pointer
//!   metadata"; we reproduce exactly that with [`Profile`]. ≈18% of
//!   accesses (Fig. 5, right bars).

use std::collections::HashSet;
use watchdog_isa::insn::{Inst, PtrHint, Width};

/// Which identification scheme a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointerId {
    /// Conservative heuristic: any 8-byte integer load/store may move a
    /// pointer.
    Conservative,
    /// ISA-assisted: only statically-marked instructions move pointers; the
    /// marking comes from a profiling pass ([`Profile`]).
    IsaAssisted,
}

/// The set of static instruction indices that ever loaded or stored valid
/// pointer metadata, as collected by a profiling run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    marked: HashSet<usize>,
}

impl Profile {
    /// An empty profile (marks nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a static instruction as a pointer load/store.
    pub fn mark(&mut self, inst_index: usize) {
        self.marked.insert(inst_index);
    }

    /// Whether a static instruction is marked.
    pub fn is_marked(&self, inst_index: usize) -> bool {
        self.marked.contains(&inst_index)
    }

    /// Number of marked static instructions.
    pub fn len(&self) -> usize {
        self.marked.len()
    }

    /// Whether nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.marked.is_empty()
    }
}

/// A resolved policy: everything the machine needs to classify one
/// load/store instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointerPolicy {
    /// Conservative classification.
    Conservative,
    /// Profile-driven classification.
    Profiled(Profile),
}

impl PointerPolicy {
    /// Classifies the load/store at static index `inst_index`.
    ///
    /// Explicit [`PtrHint`] annotations (the ISA variants of §5.2) override
    /// either policy; only 8-byte integer accesses can ever be pointer
    /// operations.
    pub fn classify(&self, inst_index: usize, inst: &Inst) -> bool {
        let (width, hint) = match inst {
            Inst::Load { width, hint, .. } | Inst::Store { width, hint, .. } => (*width, *hint),
            _ => return false,
        };
        if width != Width::B8 {
            return false;
        }
        match hint {
            PtrHint::Pointer => true,
            PtrHint::NotPointer => false,
            PtrHint::Auto => match self {
                PointerPolicy::Conservative => true,
                PointerPolicy::Profiled(p) => p.is_marked(inst_index),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchdog_isa::insn::{FpWidth, MemAddr};
    use watchdog_isa::reg::{Fpr, Gpr};

    fn load(width: Width, hint: PtrHint) -> Inst {
        Inst::Load {
            dst: Gpr::new(0),
            addr: MemAddr::base(Gpr::new(1)),
            width,
            hint,
        }
    }

    #[test]
    fn conservative_classifies_all_word_accesses() {
        let p = PointerPolicy::Conservative;
        assert!(p.classify(0, &load(Width::B8, PtrHint::Auto)));
        assert!(p.classify(
            0,
            &Inst::Store {
                src: Gpr::new(0),
                addr: MemAddr::base(Gpr::new(1)),
                width: Width::B8,
                hint: PtrHint::Auto
            }
        ));
    }

    #[test]
    fn sub_word_and_fp_are_never_pointers() {
        let p = PointerPolicy::Conservative;
        assert!(!p.classify(0, &load(Width::B4, PtrHint::Auto)));
        assert!(!p.classify(0, &load(Width::B1, PtrHint::Auto)));
        let fp = Inst::LoadFp {
            dst: Fpr::new(0),
            addr: MemAddr::base(Gpr::new(1)),
            width: FpWidth::F8,
        };
        assert!(!p.classify(0, &fp));
        // Even an explicit Pointer hint cannot make a sub-word access a
        // pointer op.
        assert!(!p.classify(0, &load(Width::B4, PtrHint::Pointer)));
    }

    #[test]
    fn hints_override_policies() {
        let p = PointerPolicy::Profiled(Profile::new());
        assert!(p.classify(0, &load(Width::B8, PtrHint::Pointer)));
        let c = PointerPolicy::Conservative;
        assert!(!c.classify(0, &load(Width::B8, PtrHint::NotPointer)));
    }

    #[test]
    fn profile_marks_specific_instructions() {
        let mut prof = Profile::new();
        prof.mark(7);
        prof.mark(7); // idempotent
        assert_eq!(prof.len(), 1);
        let p = PointerPolicy::Profiled(prof);
        assert!(p.classify(7, &load(Width::B8, PtrHint::Auto)));
        assert!(!p.classify(8, &load(Width::B8, PtrHint::Auto)));
    }

    #[test]
    fn non_memory_instructions_are_never_classified() {
        let p = PointerPolicy::Conservative;
        assert!(!p.classify(0, &Inst::Nop));
        assert!(!p.classify(
            0,
            &Inst::MovImm {
                dst: Gpr::new(0),
                imm: 1
            }
        ));
    }

    #[test]
    fn empty_profile() {
        assert!(Profile::new().is_empty());
        let mut p = Profile::new();
        p.mark(0);
        assert!(!p.is_empty());
    }
}

//! **Watchdog** — hardware for safe and secure manual memory management and
//! full memory safety (reproduction of Nagarakatte, Martin & Zdancewic,
//! ISCA 2012).
//!
//! This crate is the paper's contribution proper, built on top of the
//! [`watchdog_isa`], [`watchdog_mem`] and [`watchdog_pipeline`] substrates:
//!
//! * [`ident`] — never-reused lock-and-key identifiers and the
//!   lock-location manager with its LIFO free list (§4.1).
//! * [`runtime`] — the modified DL-malloc-style heap runtime: segregated
//!   free lists over guest memory, `setident`/`getident` at the
//!   allocator↔hardware boundary, double-free detection (Fig. 3a/3b).
//! * [`pointer_id`] — conservative and ISA-assisted pointer identification
//!   (§5), including the profiling pass the paper uses to emulate compiler
//!   annotations.
//! * [`machine`] — the functional machine: executes macro-instructions with
//!   full metadata semantics, performs the checks, raises memory-safety
//!   violations, and emits the cracked µop stream for the timing model.
//! * [`baseline`] — a location-based checker (shadow allocation status, in
//!   the style of MemTracker/Valgrind) used to demonstrate why
//!   identifier-based checking is strictly stronger (Table 1).
//! * [`sim`] — the [`Simulator`] facade coupling functional execution to
//!   the out-of-order timing model, producing [`report::RunReport`]s.
//!
//! # Quickstart
//!
//! ```
//! use watchdog_core::prelude::*;
//! use watchdog_isa::{ProgramBuilder, Gpr};
//!
//! // A one-line use-after-free: p = malloc(64); free(p); *p.
//! let mut b = ProgramBuilder::new("uaf");
//! let (p, sz) = (Gpr::new(0), Gpr::new(1));
//! b.li(sz, 64);
//! b.malloc(p, sz);
//! b.free(p);
//! b.ld8(Gpr::new(2), p, 0); // dangling dereference
//! b.halt();
//! let program = b.build()?;
//!
//! let report = Simulator::new(SimConfig::functional(Mode::watchdog())).run(&program)?;
//! let v = report.violation.expect("watchdog detects the dangling load");
//! assert_eq!(v.kind, ViolationKind::UseAfterFree);
//!
//! // The unchecked baseline sails right through the same bug.
//! let report = Simulator::new(SimConfig::functional(Mode::Baseline)).run(&program)?;
//! assert!(report.violation.is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod error;
pub mod ident;
pub mod machine;
pub mod pointer_id;
pub mod report;
pub mod runtime;
pub mod sim;
pub mod telemetry;

pub use error::{SimError, Violation, ViolationKind};
pub use ident::LockManager;
pub use machine::{CheckMode, CommitHook, CommitRecord, Machine, MachineConfig};
pub use pointer_id::{PointerId, PointerPolicy, Profile};
pub use report::RunReport;
pub use runtime::HeapAllocator;
pub use sim::{Mode, Sampling, SimConfig, Simulator};
pub use telemetry::{export_metrics, run_json, RunTelemetry, RUN_SCHEMA};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::error::{SimError, Violation, ViolationKind};
    pub use crate::pointer_id::PointerId;
    pub use crate::report::RunReport;
    pub use crate::sim::{Mode, Sampling, SimConfig, Simulator};
    pub use watchdog_isa::crack::BoundsUops;
}

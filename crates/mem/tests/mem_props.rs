//! Property tests on the memory subsystem.

use proptest::prelude::*;
use watchdog_mem::{Cache, CacheConfig, GuestMem, MetaRecord, ShadowSpace};

proptest! {
    /// Memory is a map: the last write to an address wins, regardless of
    /// overlapping widths and ordering elsewhere.
    #[test]
    fn last_write_wins(
        writes in proptest::collection::vec((0x2000_0000u64..0x2000_2000, 1u64..9, any::<u64>()), 1..60)
    ) {
        let mut m = GuestMem::new();
        let mut model: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        for (addr, len, val) in &writes {
            let len = (*len).clamp(1, 8);
            m.write(*addr, len, *val);
            for i in 0..len {
                model.insert(addr + i, (val >> (8 * i)) as u8);
            }
        }
        for (addr, byte) in model {
            prop_assert_eq!(m.read(addr, 1) as u8, byte);
        }
    }

    /// Shadow records round-trip for any key/lock/base/bound and any
    /// word-aligned address, in both record widths.
    #[test]
    fn shadow_records_round_trip(
        addr in (0u64..0x7000_0000).prop_map(|a| a & !7),
        key in 1u64.., lock in any::<u64>(), base in any::<u64>(), bound in any::<u64>(),
    ) {
        let mut m = GuestMem::new();
        let s = ShadowSpace::with_bounds();
        let rec = MetaRecord::with_bounds(key, lock, base, bound);
        s.store(&mut m, addr, rec);
        prop_assert_eq!(s.load(&mut m, addr), rec);
        let s2 = ShadowSpace::ident_only();
        s2.store(&mut m, addr, rec);
        let got = s2.load(&mut m, addr);
        prop_assert_eq!(got.key, key);
        prop_assert_eq!(got.lock, lock);
    }

    /// A cache never reports a hit for a block it was never given, and
    /// always hits a block accessed twice in a row.
    #[test]
    fn cache_soundness(accesses in proptest::collection::vec(0u64..0x10_0000, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(4096, 4, 64));
        let mut seen = std::collections::HashSet::new();
        for a in &accesses {
            let hit = c.access(*a);
            if hit {
                prop_assert!(seen.contains(&(a / 64)), "hit on never-seen block {a:#x}");
            }
            seen.insert(a / 64);
            prop_assert!(c.probe(*a), "just-accessed block must be resident");
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, accesses.len() as u64);
        prop_assert!(s.misses <= s.accesses);
    }

    /// Footprint word counts equal the number of distinct words touched.
    #[test]
    fn footprint_counts_distinct_words(
        addrs in proptest::collection::vec((0x2000_0000u64..0x2000_4000).prop_map(|a| a & !7), 1..100)
    ) {
        let mut m = GuestMem::new();
        for a in &addrs {
            m.write_u64(*a, 1);
        }
        let distinct: std::collections::HashSet<u64> = addrs.iter().map(|a| a >> 3).collect();
        prop_assert_eq!(m.footprint().data_words, distinct.len() as u64);
    }
}

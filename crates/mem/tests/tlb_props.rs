//! Property tests pinning the hashed [`Tlb`] to the linear-scan
//! [`ScanTlb`] reference: same hits, same misses, same counters, on any
//! access stream — exact LRU is exact LRU, whichever structure tracks it.

use proptest::prelude::*;
use watchdog_mem::{ScanTlb, Tlb};

proptest! {
    /// Random streams over a page space larger than the capacity, so
    /// every path (fill, hit-refresh, evict-recycle, backward-shift
    /// deletion) runs: every access result and the final counters agree.
    #[test]
    fn hashed_tlb_matches_scan_reference(
        capacity in 1usize..40,
        pages in 1u64..64,
        stream in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..400),
    ) {
        let mut hash = Tlb::new(capacity);
        let mut scan = ScanTlb::new(capacity);
        let mut last_hit = false;
        for (i, &(x, repeat)) in stream.iter().enumerate() {
            // `repeat_hit` is only legal right after a translation of the
            // same page — model that by only issuing it after a hit.
            if repeat && last_hit {
                hash.repeat_hit();
                scan.repeat_hit();
            }
            let addr = ((x % pages) << 12) | ((x >> 32) & 0xfff);
            let h = hash.access(addr);
            let s = scan.access(addr);
            prop_assert_eq!(h, s, "access {} (addr {:#x}) diverged", i, addr);
            last_hit = h;
        }
        prop_assert_eq!(hash.stats(), scan.stats());
    }

    /// Adversarial same-home churn: VPNs crafted to collide in the probe
    /// table (multiples of the table size in hash space are unreachable
    /// directly, so use dense small VPNs plus far-apart outliers) keep the
    /// two models in lockstep.
    #[test]
    fn collision_heavy_streams_stay_in_lockstep(
        stream in proptest::collection::vec(0u64..8, 1..300),
        outlier in any::<u64>(),
    ) {
        let mut hash = Tlb::new(4);
        let mut scan = ScanTlb::new(4);
        for (i, &v) in stream.iter().enumerate() {
            // Interleave a far-away page so eviction keeps cycling.
            let vpn = if v == 7 { outlier | 8 } else { v };
            let addr = vpn << 12;
            prop_assert_eq!(hash.access(addr), scan.access(addr), "access {}", i);
        }
        prop_assert_eq!(hash.stats(), scan.stats());
    }
}

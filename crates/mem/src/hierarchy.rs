//! The simulated memory hierarchy of Table 2.
//!
//! Three-level cache hierarchy (L1I + L1D + dedicated lock-location cache,
//! private L2, shared L3, DRAM) with stream prefetchers and TLBs. The
//! hierarchy answers one question for the timing model: *how many cycles
//! does this access take?* — composing per-level latencies along the miss
//! path and updating replacement state (caches are inclusive and
//! write-allocate).
//!
//! Two Watchdog-specific knobs:
//!
//! * `lock_cache` — when enabled, lock-location accesses (check µops and
//!   identifier management) go to the dedicated 4KB cache, a *peer* of the
//!   L1 caches with its own small TLB (§4.2, Fig. 4c); when disabled they
//!   contend with ordinary data accesses in the L1 D-cache (Fig. 9's
//!   ablation).
//! * `ideal_shadow` — shadow-metadata accesses "occupy cache ports but
//!   never cache miss and do not actually consume space in the data cache"
//!   (§9.3's cache-pressure isolation experiment).

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::prefetch::StreamPrefetcher;
use crate::tlb::Tlb;

/// Classification of a memory access for routing and accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Ordinary program data.
    Data,
    /// Shadow-space metadata (injected `shadow_load` / `shadow_store`).
    Shadow,
    /// Lock-location access (`check` µops, identifier management).
    Lock,
    /// Instruction fetch.
    Ifetch,
}

/// Hierarchy configuration (defaults reproduce Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry (32KB, 4-way, 64B).
    pub l1i: CacheConfig,
    /// L1 data cache geometry (32KB, 8-way, 64B).
    pub l1d: CacheConfig,
    /// Lock-location cache geometry (4KB, 8-way, 64B).
    pub ll: CacheConfig,
    /// Private L2 geometry (256KB, 8-way, 64B).
    pub l2: CacheConfig,
    /// Shared L3 geometry (16MB, 16-way, 64B).
    pub l3: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_lat: u64,
    /// L2 hit latency (added to L1 latency).
    pub l2_lat: u64,
    /// L3 hit latency (added to L1+L2).
    pub l3_lat: u64,
    /// DRAM latency (added to the full cache path).
    pub mem_lat: u64,
    /// Data TLB entries.
    pub dtlb_entries: usize,
    /// Lock-location cache TLB entries.
    pub lltlb_entries: usize,
    /// Page-walk penalty on a TLB miss.
    pub tlb_miss_penalty: u64,
    /// L1D prefetcher: `(streams, degree)`.
    pub l1_prefetch: (usize, u64),
    /// L2 prefetcher: `(streams, degree)`.
    pub l2_prefetch: (usize, u64),
    /// Route lock accesses to the dedicated lock-location cache (§4.2).
    pub lock_cache: bool,
    /// Idealize shadow accesses (§9.3 ablation).
    pub ideal_shadow: bool,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(32 * 1024, 4, 64),
            l1d: CacheConfig::new(32 * 1024, 8, 64),
            ll: CacheConfig::new(4 * 1024, 8, 64),
            l2: CacheConfig::new(256 * 1024, 8, 64),
            l3: CacheConfig::new(16 * 1024 * 1024, 16, 64),
            l1_lat: 3,
            l2_lat: 10,
            l3_lat: 25,
            mem_lat: 100,
            dtlb_entries: 64,
            lltlb_entries: 32,
            tlb_miss_penalty: 30,
            l1_prefetch: (4, 4),
            l2_prefetch: (8, 16),
            lock_cache: true,
            ideal_shadow: false,
        }
    }
}

/// Per-class access counters plus per-cache statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchyStats {
    /// Accesses by class: data, shadow, lock, ifetch.
    pub data_accesses: u64,
    /// Shadow accesses.
    pub shadow_accesses: u64,
    /// Lock-location accesses.
    pub lock_accesses: u64,
    /// Instruction fetches.
    pub ifetch_accesses: u64,
    /// L1I counters.
    pub l1i: CacheStats,
    /// L1D counters.
    pub l1d: CacheStats,
    /// Lock-location cache counters.
    pub ll: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters.
    pub l3: CacheStats,
    /// Data-TLB `(accesses, misses)`.
    pub dtlb: (u64, u64),
    /// Lock-TLB `(accesses, misses)`.
    pub lltlb: (u64, u64),
}

impl HierarchyStats {
    /// Lock-location cache misses per 1000 lock accesses (the paper quotes
    /// "<1 miss per 1000 instructions" for a 4KB cache).
    pub fn ll_mpk(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.ll.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// The simulated memory hierarchy.
#[derive(Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    ll: Cache,
    l2: Cache,
    l3: Cache,
    dtlb: Tlb,
    lltlb: Tlb,
    l1_pf: StreamPrefetcher,
    l2_pf: StreamPrefetcher,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Builds the hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            ll: Cache::new(cfg.ll),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            dtlb: Tlb::new(cfg.dtlb_entries),
            lltlb: Tlb::new(cfg.lltlb_entries),
            l1_pf: StreamPrefetcher::new(cfg.l1_prefetch.0, cfg.l1_prefetch.1),
            l2_pf: StreamPrefetcher::new(cfg.l2_prefetch.0, cfg.l2_prefetch.1),
            stats: HierarchyStats::default(),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Whether the dedicated lock-location cache is in use.
    pub fn lock_cache_enabled(&self) -> bool {
        self.cfg.lock_cache
    }

    /// Performs one access and returns its latency in cycles.
    pub fn access(&mut self, class: AccessClass, addr: u64, _write: bool) -> u64 {
        match class {
            AccessClass::Ifetch => {
                self.stats.ifetch_accesses += 1;
                let mut lat = self.cfg.l1_lat;
                if !self.l1i.access(addr) {
                    lat += self.level2_and_beyond(addr);
                }
                // Next-line instruction prefetch (Table 2: I-cache stream
                // prefetcher, 2 streams × 4 blocks): sequential code should
                // not miss on every new block.
                let block = addr / self.cfg.l1i.block;
                for i in 1..=2u64 {
                    let next = (block + i) * self.cfg.l1i.block;
                    if !self.l1i.probe(next) {
                        self.l1i.prefetch_fill(next);
                        self.l2.prefetch_fill(next);
                        self.l3.prefetch_fill(next);
                    }
                }
                self.stats.l1i = self.l1i.stats();
                lat
            }
            AccessClass::Shadow if self.cfg.ideal_shadow => {
                // §9.3: occupies a port (handled by the pipeline model) but
                // never misses and pollutes nothing.
                self.stats.shadow_accesses += 1;
                self.cfg.l1_lat
            }
            AccessClass::Lock if self.cfg.lock_cache => {
                self.stats.lock_accesses += 1;
                let mut lat = self.cfg.l1_lat;
                if !self.lltlb.access(addr) {
                    lat += self.cfg.tlb_miss_penalty;
                }
                if !self.ll.access(addr) {
                    lat += self.level2_and_beyond(addr);
                }
                self.stats.ll = self.ll.stats();
                self.stats.lltlb = self.lltlb.stats();
                lat
            }
            _ => {
                // Data, shadow (non-ideal) and lock accesses without the
                // dedicated cache all go through the L1 D-cache.
                match class {
                    AccessClass::Data => self.stats.data_accesses += 1,
                    AccessClass::Shadow => self.stats.shadow_accesses += 1,
                    AccessClass::Lock => self.stats.lock_accesses += 1,
                    AccessClass::Ifetch => unreachable!(),
                }
                let mut lat = self.cfg.l1_lat;
                if !self.dtlb.access(addr) {
                    lat += self.cfg.tlb_miss_penalty;
                }
                if !self.l1d.access(addr) {
                    lat += self.level2_and_beyond(addr);
                    // Train the L1 stream prefetcher on the miss.
                    let block = addr / self.cfg.l1d.block;
                    for pf in self.l1_pf.on_miss(block) {
                        let a = pf * self.cfg.l1d.block;
                        self.l1d.prefetch_fill(a);
                        self.l2.prefetch_fill(a);
                        self.l3.prefetch_fill(a);
                    }
                }
                self.stats.l1d = self.l1d.stats();
                self.stats.dtlb = self.dtlb.stats();
                lat
            }
        }
    }

    /// Walks L2 → L3 → memory on an L1-level miss; returns the *additional*
    /// latency beyond the L1 access.
    fn level2_and_beyond(&mut self, addr: u64) -> u64 {
        let mut lat = self.cfg.l2_lat;
        if !self.l2.access(addr) {
            let block = addr / self.cfg.l2.block;
            for pf in self.l2_pf.on_miss(block) {
                let a = pf * self.cfg.l2.block;
                self.l2.prefetch_fill(a);
                self.l3.prefetch_fill(a);
            }
            lat += self.cfg.l3_lat;
            if !self.l3.access(addr) {
                lat += self.cfg.mem_lat;
            }
            self.stats.l3 = self.l3.stats();
        }
        self.stats.l2 = self.l2.stats();
        lat
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HierarchyStats {
        let mut s = self.stats;
        s.l1i = self.l1i.stats();
        s.l1d = self.l1d.stats();
        s.ll = self.ll.stats();
        s.l2 = self.l2.stats();
        s.l3 = self.l3.stats();
        s.dtlb = self.dtlb.stats();
        s.lltlb = self.lltlb.stats();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy::new(cfg)
    }

    #[test]
    fn cold_miss_then_hit_latency() {
        let mut hy = h(HierarchyConfig::default());
        let cold = hy.access(AccessClass::Data, 0x2000_0000, false);
        let warm = hy.access(AccessClass::Data, 0x2000_0000, false);
        // Cold: L1 + TLB walk + L2 + L3 + memory.
        assert_eq!(cold, 3 + 30 + 10 + 25 + 100);
        assert_eq!(warm, 3);
    }

    #[test]
    fn lock_accesses_use_dedicated_cache() {
        let mut hy = h(HierarchyConfig::default());
        hy.access(AccessClass::Lock, 0x5000_0000, false);
        hy.access(AccessClass::Lock, 0x5000_0000, false);
        let s = hy.stats();
        assert_eq!(s.ll.accesses, 2);
        assert_eq!(s.l1d.accesses, 0, "lock traffic must not touch L1D");
    }

    #[test]
    fn lock_accesses_fall_back_to_l1d_when_disabled() {
        let mut hy = h(HierarchyConfig {
            lock_cache: false,
            ..Default::default()
        });
        hy.access(AccessClass::Lock, 0x5000_0000, false);
        let s = hy.stats();
        assert_eq!(s.ll.accesses, 0);
        assert_eq!(s.l1d.accesses, 1);
    }

    #[test]
    fn ideal_shadow_never_misses_or_pollutes() {
        let mut hy = h(HierarchyConfig {
            ideal_shadow: true,
            ..Default::default()
        });
        for i in 0..1000 {
            let lat = hy.access(AccessClass::Shadow, 0x4000_0000_0000 + i * 4096, false);
            assert_eq!(lat, 3);
        }
        let s = hy.stats();
        assert_eq!(s.shadow_accesses, 1000);
        assert_eq!(s.l1d.accesses, 0);
    }

    #[test]
    fn shadow_pollutes_l1d_when_not_ideal() {
        let mut hy = h(HierarchyConfig::default());
        hy.access(AccessClass::Shadow, 0x4000_0000_0000, false);
        assert_eq!(hy.stats().l1d.accesses, 1);
    }

    #[test]
    fn streaming_pattern_benefits_from_prefetch() {
        let mut cfg = HierarchyConfig {
            tlb_miss_penalty: 0,
            ..Default::default()
        };
        let mut with_pf = h(cfg);
        cfg.l1_prefetch = (1, 0);
        cfg.l2_prefetch = (1, 0);
        let mut without_pf = h(cfg);
        let mut lat_with = 0;
        let mut lat_without = 0;
        for i in 0..512u64 {
            let a = 0x3000_0000 + i * 64;
            lat_with += with_pf.access(AccessClass::Data, a, false);
            lat_without += without_pf.access(AccessClass::Data, a, false);
        }
        assert!(
            lat_with < lat_without,
            "prefetching must help a streaming pattern ({lat_with} vs {lat_without})"
        );
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut hy = h(HierarchyConfig::default());
        hy.access(AccessClass::Ifetch, 0x40_0000, false);
        hy.access(AccessClass::Ifetch, 0x40_0000, false);
        let s = hy.stats();
        assert_eq!(s.l1i.accesses, 2);
        assert_eq!(s.l1i.misses, 1);
        assert_eq!(s.ifetch_accesses, 2);
    }

    #[test]
    fn ll_mpk_metric() {
        let mut hy = h(HierarchyConfig::default());
        hy.access(AccessClass::Lock, 0x5000_0000, false);
        let s = hy.stats();
        assert!(s.ll_mpk(1000) > 0.0);
        assert_eq!(s.ll_mpk(0), 0.0);
    }
}

//! The simulated memory hierarchy of Table 2.
//!
//! Three-level cache hierarchy (L1I + L1D + dedicated lock-location cache,
//! private L2, shared L3, DRAM) with stream prefetchers and TLBs. The
//! hierarchy answers one question for the timing model: *how many cycles
//! does this access take?* — composing per-level latencies along the miss
//! path and updating replacement state (caches are inclusive and
//! write-allocate).
//!
//! Two Watchdog-specific knobs:
//!
//! * `lock_cache` — when enabled, lock-location accesses (check µops and
//!   identifier management) go to the dedicated 4KB cache, a *peer* of the
//!   L1 caches with its own small TLB (§4.2, Fig. 4c); when disabled they
//!   contend with ordinary data accesses in the L1 D-cache (Fig. 9's
//!   ablation).
//! * `ideal_shadow` — shadow-metadata accesses "occupy cache ports but
//!   never cache miss and do not actually consume space in the data cache"
//!   (§9.3's cache-pressure isolation experiment).

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::prefetch::StreamPrefetcher;
use crate::tlb::Tlb;

/// Classification of a memory access for routing and accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Ordinary program data.
    Data,
    /// Shadow-space metadata (injected `shadow_load` / `shadow_store`).
    Shadow,
    /// Lock-location access (`check` µops, identifier management).
    Lock,
    /// Instruction fetch.
    Ifetch,
}

impl AccessClass {
    /// Compact index for per-class accounting tables.
    const fn idx(self) -> usize {
        match self {
            AccessClass::Data => 0,
            AccessClass::Shadow => 1,
            AccessClass::Lock => 2,
            AccessClass::Ifetch => 3,
        }
    }
}

/// One memory access of a batched request stream, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessReq {
    /// Routing/accounting class.
    pub class: AccessClass,
    /// Byte address.
    pub addr: u64,
    /// Whether the access writes memory.
    pub write: bool,
}

impl AccessReq {
    /// A read request.
    pub const fn read(class: AccessClass, addr: u64) -> Self {
        AccessReq {
            class,
            addr,
            write: false,
        }
    }

    /// A write request.
    pub const fn write(class: AccessClass, addr: u64) -> Self {
        AccessReq {
            class,
            addr,
            write: true,
        }
    }
}

/// How one access class is routed through the hierarchy. The routing
/// decision depends only on the class and two configuration knobs
/// (`lock_cache`, `ideal_shadow`), so [`Hierarchy::new`] bakes it into a
/// 4-entry table indexed by [`AccessClass::idx`] — the hot access path
/// indexes that table instead of re-testing the knobs per access, the
/// same descriptor-table discipline the timing core applies to µop
/// dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// L1 I-cache with next-line instruction prefetch.
    Ifetch,
    /// §9.3 idealized shadow: fixed L1 latency, touches no state.
    IdealShadow,
    /// Dedicated lock-location cache and its private TLB (§4.2).
    LockDedicated,
    /// The L1 D-cache path: data, non-ideal shadow, and lock traffic on
    /// the Fig. 9 no-LL$ ablation.
    DataPath,
}

/// Outcome flags of one access — a pure side-channel beside the returned
/// latency, kept for the caller that needs to *attribute* the access
/// (the timing core's CPI-stack accounting) without re-deriving the miss
/// path from latency arithmetic. Reading it never changes hierarchy
/// state, statistics or latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access missed its TLB (D-TLB, or the LL TLB on the lock path).
    pub tlb_miss: bool,
    /// The access missed its first-level structure (L1I, L1D or LL$).
    pub l1_miss: bool,
    /// The access was served by the dedicated lock-location cache.
    pub lock_path: bool,
}

/// Hierarchy configuration (defaults reproduce Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry (32KB, 4-way, 64B).
    pub l1i: CacheConfig,
    /// L1 data cache geometry (32KB, 8-way, 64B).
    pub l1d: CacheConfig,
    /// Lock-location cache geometry (4KB, 8-way, 64B).
    pub ll: CacheConfig,
    /// Private L2 geometry (256KB, 8-way, 64B).
    pub l2: CacheConfig,
    /// Shared L3 geometry (16MB, 16-way, 64B).
    pub l3: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_lat: u64,
    /// L2 hit latency (added to L1 latency).
    pub l2_lat: u64,
    /// L3 hit latency (added to L1+L2).
    pub l3_lat: u64,
    /// DRAM latency (added to the full cache path).
    pub mem_lat: u64,
    /// Data TLB entries.
    pub dtlb_entries: usize,
    /// Lock-location cache TLB entries.
    pub lltlb_entries: usize,
    /// Page-walk penalty on a TLB miss.
    pub tlb_miss_penalty: u64,
    /// L1D prefetcher: `(streams, degree)`.
    pub l1_prefetch: (usize, u64),
    /// L2 prefetcher: `(streams, degree)`.
    pub l2_prefetch: (usize, u64),
    /// Route lock accesses to the dedicated lock-location cache (§4.2).
    pub lock_cache: bool,
    /// Idealize shadow accesses (§9.3 ablation).
    pub ideal_shadow: bool,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(32 * 1024, 4, 64),
            l1d: CacheConfig::new(32 * 1024, 8, 64),
            ll: CacheConfig::new(4 * 1024, 8, 64),
            l2: CacheConfig::new(256 * 1024, 8, 64),
            l3: CacheConfig::new(16 * 1024 * 1024, 16, 64),
            l1_lat: 3,
            l2_lat: 10,
            l3_lat: 25,
            mem_lat: 100,
            dtlb_entries: 64,
            lltlb_entries: 32,
            tlb_miss_penalty: 30,
            l1_prefetch: (4, 4),
            l2_prefetch: (8, 16),
            lock_cache: true,
            ideal_shadow: false,
        }
    }
}

/// Per-class access counters plus per-cache statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchyStats {
    /// Accesses by class: data, shadow, lock, ifetch.
    pub data_accesses: u64,
    /// Shadow accesses.
    pub shadow_accesses: u64,
    /// Lock-location accesses.
    pub lock_accesses: u64,
    /// Instruction fetches.
    pub ifetch_accesses: u64,
    /// L1I counters.
    pub l1i: CacheStats,
    /// L1D counters.
    pub l1d: CacheStats,
    /// Lock-location cache counters.
    pub ll: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters.
    pub l3: CacheStats,
    /// Data-TLB `(accesses, misses)`.
    pub dtlb: (u64, u64),
    /// Lock-TLB `(accesses, misses)`.
    pub lltlb: (u64, u64),
}

impl HierarchyStats {
    /// Lock-location cache misses per 1000 lock accesses (the paper quotes
    /// "<1 miss per 1000 instructions" for a 4KB cache).
    pub fn ll_mpk(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.ll.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Exports every counter under the stable `mem.*` namespace: per-class
    /// access totals, per-cache demand/miss/prefetch counters with their
    /// miss-rate gauges, and both TLBs.
    pub fn export_into(&self, reg: &mut watchdog_telemetry::MetricsRegistry) {
        use watchdog_telemetry::Unit;
        reg.counter_at("mem.access.data", Unit::Count, self.data_accesses);
        reg.counter_at("mem.access.shadow", Unit::Count, self.shadow_accesses);
        reg.counter_at("mem.access.lock", Unit::Count, self.lock_accesses);
        reg.counter_at("mem.access.ifetch", Unit::Count, self.ifetch_accesses);
        for (name, c) in [
            ("l1i", &self.l1i),
            ("l1d", &self.l1d),
            ("ll", &self.ll),
            ("l2", &self.l2),
            ("l3", &self.l3),
        ] {
            reg.counter_at(&format!("mem.{name}.accesses"), Unit::Count, c.accesses);
            reg.counter_at(&format!("mem.{name}.misses"), Unit::Count, c.misses);
            reg.counter_at(
                &format!("mem.{name}.prefetch_fills"),
                Unit::Count,
                c.prefetch_fills,
            );
            reg.gauge_at(&format!("mem.{name}.miss_rate"), Unit::Ratio, c.miss_rate());
        }
        for (name, (accesses, misses)) in [("dtlb", self.dtlb), ("lltlb", self.lltlb)] {
            reg.counter_at(&format!("mem.{name}.accesses"), Unit::Count, accesses);
            reg.counter_at(&format!("mem.{name}.misses"), Unit::Count, misses);
        }
    }
}

/// The simulated memory hierarchy.
#[derive(Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    // Per-class routing table, indexed by `AccessClass::idx()`; see `Route`.
    routes: [Route; 4],
    l1i: Cache,
    l1d: Cache,
    ll: Cache,
    l2: Cache,
    l3: Cache,
    dtlb: Tlb,
    lltlb: Tlb,
    l1_pf: StreamPrefetcher,
    l2_pf: StreamPrefetcher,
    stats: HierarchyStats,
    // Lock-probe memo (hoisted LL$ geometry + MRU tracking): `ll_memo[set]`
    // is the line most recently accessed in that LL$ set, `ll_page_memo`
    // the page most recently translated by the LL TLB. A probe matching
    // both is a *guaranteed* hit whose full lookup can be skipped — see
    // `access_uncounted` for the exactness argument. Geometry is
    // power-of-two, so the set-index math is a precomputed shift + mask.
    ll_block_shift: u32,
    ll_set_mask: u64,
    ll_memo: Vec<u64>,
    ll_page_memo: u64,
    ll_memo_hits: u64,
    // The same memo structure for the L1 D-cache path (data, shadow, and
    // lock-without-LL$ accesses): `dtlb_page_memo` is the page most
    // recently translated by the D-TLB (whose lookup is a linear scan —
    // the hottest loop on the data path), `l1d_memo[set]` the line most
    // recently accessed in that L1D set. L1D prefetch fills install lines
    // with fresh stamps, so each fill invalidates its set's memo entry.
    l1d_block_shift: u32,
    l1d_set_mask: u64,
    l1d_memo: Vec<u64>,
    dtlb_page_memo: u64,
    // Side-channel: outcome flags of the most recent access (every
    // `access_uncounted` branch overwrites it unconditionally, so the
    // cost is identical whether or not anyone reads it).
    last_outcome: AccessOutcome,
}

impl Hierarchy {
    /// Builds the hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        let ll_sets = cfg.ll.sets();
        let l1d_sets = cfg.l1d.sets();
        let route = |class: AccessClass| match class {
            AccessClass::Ifetch => Route::Ifetch,
            AccessClass::Shadow if cfg.ideal_shadow => Route::IdealShadow,
            AccessClass::Lock if cfg.lock_cache => Route::LockDedicated,
            _ => Route::DataPath,
        };
        let routes = [
            route(AccessClass::Data),
            route(AccessClass::Shadow),
            route(AccessClass::Lock),
            route(AccessClass::Ifetch),
        ];
        Hierarchy {
            routes,
            ll_block_shift: cfg.ll.block.trailing_zeros(),
            ll_set_mask: ll_sets - 1,
            l1d_block_shift: cfg.l1d.block.trailing_zeros(),
            l1d_set_mask: l1d_sets - 1,
            l1d_memo: vec![u64::MAX; l1d_sets as usize],
            dtlb_page_memo: u64::MAX,
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            ll: Cache::new(cfg.ll),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            dtlb: Tlb::new(cfg.dtlb_entries),
            lltlb: Tlb::new(cfg.lltlb_entries),
            l1_pf: StreamPrefetcher::new(cfg.l1_prefetch.0, cfg.l1_prefetch.1),
            l2_pf: StreamPrefetcher::new(cfg.l2_prefetch.0, cfg.l2_prefetch.1),
            stats: HierarchyStats::default(),
            ll_memo: vec![u64::MAX; ll_sets as usize],
            ll_page_memo: u64::MAX,
            ll_memo_hits: 0,
            last_outcome: AccessOutcome::default(),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Whether the dedicated lock-location cache is in use.
    pub fn lock_cache_enabled(&self) -> bool {
        self.cfg.lock_cache
    }

    /// Performs one access and returns its latency in cycles.
    pub fn access(&mut self, class: AccessClass, addr: u64, write: bool) -> u64 {
        self.count_class(class, 1);
        self.access_uncounted(class, addr, write)
    }

    /// Performs a batch of accesses **in request order**, appending one
    /// latency per request to `lats` (cleared first).
    ///
    /// The walk itself must stay in program order — L2/L3 (and on the
    /// Fig. 9 no-LL$ ablation, the L1 D-cache) back every access class, so
    /// reordering across classes would change replacement state. What the
    /// batch buys: the per-class access counters are grouped and added
    /// once per batch rather than once per access, and the ordered walk
    /// shares every repeat-probe memo with [`Hierarchy::access`].
    ///
    /// This entry point serves callers that already hold a materialized,
    /// ordered request list (it is equivalence-tested against singles and
    /// tracked by the `cache/hierarchy_batch` micro-bench). The timing
    /// core's fused consume loop is deliberately **not** one of them: its
    /// I-fetch probes interleave with µop accesses under branch-predictor
    /// control, so feeding this function would mean materializing that
    /// interleaved sequence first — measured to cost more than the
    /// grouped bookkeeping saves. It drives [`Hierarchy::access`] inline
    /// instead, through the same memoized path.
    pub fn access_batch(&mut self, reqs: &[AccessReq], lats: &mut Vec<u64>) {
        lats.clear();
        lats.reserve(reqs.len());
        let mut counts = [0u64; 4];
        for r in reqs {
            counts[r.class.idx()] += 1;
        }
        for (class, n) in [
            AccessClass::Data,
            AccessClass::Shadow,
            AccessClass::Lock,
            AccessClass::Ifetch,
        ]
        .into_iter()
        .zip(counts)
        {
            self.count_class(class, n);
        }
        for r in reqs {
            lats.push(self.access_uncounted(r.class, r.addr, r.write));
        }
    }

    /// Lock-probe memo short circuits taken so far (diagnostic).
    pub fn ll_memo_hits(&self) -> u64 {
        self.ll_memo_hits
    }

    /// Outcome flags of the most recent access (single or batch element):
    /// which structures missed and whether the dedicated lock-location
    /// cache served it. Purely observational — the timing core's CPI
    /// accounting reads this right after [`Hierarchy::access`] to
    /// attribute stall slots to TLB / LL$ / L1D misses.
    pub fn last_outcome(&self) -> AccessOutcome {
        self.last_outcome
    }

    fn count_class(&mut self, class: AccessClass, n: u64) {
        match class {
            AccessClass::Data => self.stats.data_accesses += n,
            AccessClass::Shadow => self.stats.shadow_accesses += n,
            AccessClass::Lock => self.stats.lock_accesses += n,
            AccessClass::Ifetch => self.stats.ifetch_accesses += n,
        }
    }

    /// The access path proper: routing, cache/TLB lookups, prefetch
    /// training. Per-class access counters are the caller's job
    /// ([`Hierarchy::access`] counts one; [`Hierarchy::access_batch`]
    /// counts a whole batch at once), and cache counters live in the
    /// caches themselves ([`Hierarchy::stats`] snapshots them on demand).
    /// Routing is one indexed load from the precomputed [`Route`] table —
    /// no per-access knob tests.
    fn access_uncounted(&mut self, class: AccessClass, addr: u64, _write: bool) -> u64 {
        match self.routes[class.idx()] {
            Route::Ifetch => self.ifetch_path(addr),
            Route::IdealShadow => {
                // §9.3: occupies a port (handled by the pipeline model) but
                // never misses and pollutes nothing.
                self.last_outcome = AccessOutcome::default();
                self.cfg.l1_lat
            }
            Route::LockDedicated => self.lock_path(addr),
            Route::DataPath => self.data_path(addr),
        }
    }

    /// [`Route::Ifetch`]: L1 I-cache lookup plus next-line instruction
    /// prefetch (Table 2: I-cache stream prefetcher, 2 streams × 4 blocks —
    /// sequential code should not miss on every new block).
    fn ifetch_path(&mut self, addr: u64) -> u64 {
        let mut lat = self.cfg.l1_lat;
        let miss = !self.l1i.access(addr);
        self.last_outcome = AccessOutcome {
            tlb_miss: false,
            l1_miss: miss,
            lock_path: false,
        };
        if miss {
            lat += self.level2_and_beyond(addr);
        }
        let block = addr / self.cfg.l1i.block;
        for i in 1..=2u64 {
            let next = (block + i) * self.cfg.l1i.block;
            if !self.l1i.probe(next) {
                self.l1i.prefetch_fill(next);
                self.l2.prefetch_fill(next);
                self.l3.prefetch_fill(next);
            }
        }
        lat
    }

    /// [`Route::LockDedicated`]: the LL$ and its TLB, fronted by the
    /// lock-probe memo. The LL$ and LL TLB are touched by lock accesses
    /// *only*, so if this line is the one most recently accessed in its set
    /// AND this page is the one most recently translated, the lookup is a
    /// guaranteed hit and the entry is already MRU — `repeat_hit` accounts
    /// it with bit-identical statistics and replacement state (check µops
    /// re-probing a hot pointer's lock location take this path almost
    /// every time).
    fn lock_path(&mut self, addr: u64) -> u64 {
        let line = addr >> self.ll_block_shift;
        let set = (line & self.ll_set_mask) as usize;
        let page = addr >> 12;
        if self.ll_memo[set] == line && self.ll_page_memo == page {
            self.lltlb.repeat_hit();
            self.ll.repeat_hit();
            self.ll_memo_hits += 1;
            self.last_outcome = AccessOutcome {
                tlb_miss: false,
                l1_miss: false,
                lock_path: true,
            };
            return self.cfg.l1_lat;
        }
        self.ll_memo[set] = line;
        self.ll_page_memo = page;
        let mut lat = self.cfg.l1_lat;
        let tlb_miss = !self.lltlb.access(addr);
        if tlb_miss {
            lat += self.cfg.tlb_miss_penalty;
        }
        let l1_miss = !self.ll.access(addr);
        self.last_outcome = AccessOutcome {
            tlb_miss,
            l1_miss,
            lock_path: true,
        };
        if l1_miss {
            lat += self.level2_and_beyond(addr);
        }
        lat
    }

    /// [`Route::DataPath`]: data, shadow (non-ideal) and lock accesses
    /// without the dedicated cache all go through the L1 D-cache. Both
    /// lookups carry the repeat memo of the lock path: the D-TLB is only
    /// ever touched here, so a repeat of its last-translated page is a
    /// guaranteed still-MRU hit, and a repeat of a set's
    /// most-recently-accessed L1D line likewise — except that L1D prefetch
    /// fills stamp lines behind the memo's back, so each fill clears its
    /// set's entry (fills land in the blocks *after* a miss, never in the
    /// missed set itself).
    fn data_path(&mut self, addr: u64) -> u64 {
        let mut lat = self.cfg.l1_lat;
        let page = addr >> 12;
        let mut tlb_miss = false;
        if self.dtlb_page_memo == page {
            self.dtlb.repeat_hit();
        } else {
            self.dtlb_page_memo = page;
            if !self.dtlb.access(addr) {
                tlb_miss = true;
                lat += self.cfg.tlb_miss_penalty;
            }
        }
        let line = addr >> self.l1d_block_shift;
        let set = (line & self.l1d_set_mask) as usize;
        if self.l1d_memo[set] == line {
            self.l1d.repeat_hit();
            self.last_outcome = AccessOutcome {
                tlb_miss,
                l1_miss: false,
                lock_path: false,
            };
        } else if !self.l1d.access(addr) {
            self.last_outcome = AccessOutcome {
                tlb_miss,
                l1_miss: true,
                lock_path: false,
            };
            lat += self.level2_and_beyond(addr);
            // Train the L1 stream prefetcher on the miss. A fill landing in
            // the missed line's own set (possible only with tiny test
            // geometries) would out-stamp it, so the memo is only armed
            // when none did.
            let mut set_clobbered = false;
            for &pf in self.l1_pf.on_miss(line) {
                let a = pf << self.l1d_block_shift;
                self.l1d.prefetch_fill(a);
                let pf_set = (pf & self.l1d_set_mask) as usize;
                self.l1d_memo[pf_set] = u64::MAX;
                set_clobbered |= pf_set == set;
                self.l2.prefetch_fill(a);
                self.l3.prefetch_fill(a);
            }
            if !set_clobbered {
                self.l1d_memo[set] = line;
            }
        } else {
            self.l1d_memo[set] = line;
            self.last_outcome = AccessOutcome {
                tlb_miss,
                l1_miss: false,
                lock_path: false,
            };
        }
        lat
    }

    /// Walks L2 → L3 → memory on an L1-level miss; returns the *additional*
    /// latency beyond the L1 access.
    fn level2_and_beyond(&mut self, addr: u64) -> u64 {
        let mut lat = self.cfg.l2_lat;
        if !self.l2.access(addr) {
            let block = addr / self.cfg.l2.block;
            for &pf in self.l2_pf.on_miss(block) {
                let a = pf * self.cfg.l2.block;
                self.l2.prefetch_fill(a);
                self.l3.prefetch_fill(a);
            }
            lat += self.cfg.l3_lat;
            if !self.l3.access(addr) {
                lat += self.cfg.mem_lat;
            }
        }
        lat
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HierarchyStats {
        let mut s = self.stats;
        s.l1i = self.l1i.stats();
        s.l1d = self.l1d.stats();
        s.ll = self.ll.stats();
        s.l2 = self.l2.stats();
        s.l3 = self.l3.stats();
        s.dtlb = self.dtlb.stats();
        s.lltlb = self.lltlb.stats();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy::new(cfg)
    }

    #[test]
    fn cold_miss_then_hit_latency() {
        let mut hy = h(HierarchyConfig::default());
        let cold = hy.access(AccessClass::Data, 0x2000_0000, false);
        let warm = hy.access(AccessClass::Data, 0x2000_0000, false);
        // Cold: L1 + TLB walk + L2 + L3 + memory.
        assert_eq!(cold, 3 + 30 + 10 + 25 + 100);
        assert_eq!(warm, 3);
    }

    #[test]
    fn lock_accesses_use_dedicated_cache() {
        let mut hy = h(HierarchyConfig::default());
        hy.access(AccessClass::Lock, 0x5000_0000, false);
        hy.access(AccessClass::Lock, 0x5000_0000, false);
        let s = hy.stats();
        assert_eq!(s.ll.accesses, 2);
        assert_eq!(s.l1d.accesses, 0, "lock traffic must not touch L1D");
    }

    #[test]
    fn lock_accesses_fall_back_to_l1d_when_disabled() {
        let mut hy = h(HierarchyConfig {
            lock_cache: false,
            ..Default::default()
        });
        hy.access(AccessClass::Lock, 0x5000_0000, false);
        let s = hy.stats();
        assert_eq!(s.ll.accesses, 0);
        assert_eq!(s.l1d.accesses, 1);
    }

    #[test]
    fn ideal_shadow_never_misses_or_pollutes() {
        let mut hy = h(HierarchyConfig {
            ideal_shadow: true,
            ..Default::default()
        });
        for i in 0..1000 {
            let lat = hy.access(AccessClass::Shadow, 0x4000_0000_0000 + i * 4096, false);
            assert_eq!(lat, 3);
        }
        let s = hy.stats();
        assert_eq!(s.shadow_accesses, 1000);
        assert_eq!(s.l1d.accesses, 0);
    }

    #[test]
    fn shadow_pollutes_l1d_when_not_ideal() {
        let mut hy = h(HierarchyConfig::default());
        hy.access(AccessClass::Shadow, 0x4000_0000_0000, false);
        assert_eq!(hy.stats().l1d.accesses, 1);
    }

    #[test]
    fn streaming_pattern_benefits_from_prefetch() {
        let mut cfg = HierarchyConfig {
            tlb_miss_penalty: 0,
            ..Default::default()
        };
        let mut with_pf = h(cfg);
        cfg.l1_prefetch = (1, 0);
        cfg.l2_prefetch = (1, 0);
        let mut without_pf = h(cfg);
        let mut lat_with = 0;
        let mut lat_without = 0;
        for i in 0..512u64 {
            let a = 0x3000_0000 + i * 64;
            lat_with += with_pf.access(AccessClass::Data, a, false);
            lat_without += without_pf.access(AccessClass::Data, a, false);
        }
        assert!(
            lat_with < lat_without,
            "prefetching must help a streaming pattern ({lat_with} vs {lat_without})"
        );
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut hy = h(HierarchyConfig::default());
        hy.access(AccessClass::Ifetch, 0x40_0000, false);
        hy.access(AccessClass::Ifetch, 0x40_0000, false);
        let s = hy.stats();
        assert_eq!(s.l1i.accesses, 2);
        assert_eq!(s.l1i.misses, 1);
        assert_eq!(s.ifetch_accesses, 2);
    }

    #[test]
    fn access_batch_matches_single_accesses() {
        // One hierarchy driven access-by-access, one by batches of mixed
        // classes: identical latencies and identical statistics.
        let mut single = h(HierarchyConfig::default());
        let mut batched = h(HierarchyConfig::default());
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut reqs = Vec::new();
        let mut lats = Vec::new();
        for round in 0..200u64 {
            reqs.clear();
            for _ in 0..(1 + round % 17) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let req = match x % 5 {
                    0 => AccessReq::read(AccessClass::Ifetch, 0x40_0000 + (x % 8192)),
                    1 => AccessReq::read(AccessClass::Lock, 0x5000_0000 + (x % 512) * 8),
                    2 => AccessReq::write(AccessClass::Data, 0x2000_0000 + (x % 100_000)),
                    3 => AccessReq::read(AccessClass::Shadow, 0x4000_0000_0000 + (x % 65536)),
                    _ => AccessReq::read(AccessClass::Data, 0x2000_0000 + (x % 100_000)),
                };
                let lat = single.access(req.class, req.addr, req.write);
                reqs.push(req);
                lats.push(lat);
            }
            let mut got = Vec::new();
            batched.access_batch(&reqs, &mut got);
            assert_eq!(got, lats, "latencies diverge in round {round}");
            lats.clear();
        }
        assert_eq!(
            format!("{:?}", single.stats()),
            format!("{:?}", batched.stats())
        );
        assert_eq!(single.ll_memo_hits(), batched.ll_memo_hits());
    }

    #[test]
    fn lock_probe_memo_is_exact() {
        // The memo's contract: bit-identical latencies and hit/miss
        // accounting versus the plain (pre-memo) lock path. The reference
        // below *is* that path, reimplemented on raw caches — valid because
        // this stream touches only lock addresses, so L2/L3 see exactly the
        // LL$ misses in both models.
        let cfg = HierarchyConfig::default();
        let mut hy = h(cfg);
        let mut ll = Cache::new(cfg.ll);
        let mut tlb = crate::tlb::Tlb::new(cfg.lltlb_entries);
        let mut l2 = Cache::new(cfg.l2);
        let mut l3 = Cache::new(cfg.l3);
        let mut pf = StreamPrefetcher::new(cfg.l2_prefetch.0, cfg.l2_prefetch.1);
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = match i % 8 {
                // Hot repeats: the memo's bread and butter.
                0..=2 => 0x5000_0000 + (i % 3) * 8,
                // Same-set alternation and > 8-way eviction pressure
                // (4KB/8-way/64B = 8 sets, so stride 512 stays in one set).
                3 => 0x5000_0000 + (x % 16) * 512,
                // TLB pressure: more pages than the 32-entry LL TLB holds.
                4 => 0x6000_0000 + (x % 64) * 4096,
                // General churn over the lock region.
                _ => 0x5000_0000 + (x % 4096) * 8,
            };
            let mut want = cfg.l1_lat;
            if !tlb.access(addr) {
                want += cfg.tlb_miss_penalty;
            }
            if !ll.access(addr) {
                want += cfg.l2_lat;
                if !l2.access(addr) {
                    for &p in pf.on_miss(addr / cfg.l2.block) {
                        l2.prefetch_fill(p * cfg.l2.block);
                        l3.prefetch_fill(p * cfg.l2.block);
                    }
                    want += cfg.l3_lat;
                    if !l3.access(addr) {
                        want += cfg.mem_lat;
                    }
                }
            }
            assert_eq!(
                hy.access(AccessClass::Lock, addr, false),
                want,
                "latency diverges at access {i} (addr {addr:#x})"
            );
        }
        let s = hy.stats();
        let r = ll.stats();
        assert_eq!((s.ll.accesses, s.ll.misses), (r.accesses, r.misses));
        assert_eq!(s.lltlb, tlb.stats());
        assert!(
            hy.ll_memo_hits() > 5_000,
            "memo must fire on the hot repeats ({} hits)",
            hy.ll_memo_hits()
        );
    }

    #[test]
    fn data_path_memo_is_exact() {
        // Same contract as `lock_probe_memo_is_exact`, for the D-TLB page
        // memo and the L1D per-set line memo: bit-identical latencies and
        // counters versus the plain path, reimplemented on raw components.
        // The stream touches only the L1D path (data + shadow classes), so
        // the reference's L2/L3/prefetchers see exactly the same misses.
        let cfg = HierarchyConfig::default();
        let mut hy = h(cfg);
        let mut dtlb = crate::tlb::Tlb::new(cfg.dtlb_entries);
        let mut l1d = Cache::new(cfg.l1d);
        let mut l2 = Cache::new(cfg.l2);
        let mut l3 = Cache::new(cfg.l3);
        let mut l1_pf = StreamPrefetcher::new(cfg.l1_prefetch.0, cfg.l1_prefetch.1);
        let mut l2_pf = StreamPrefetcher::new(cfg.l2_prefetch.0, cfg.l2_prefetch.1);
        let mut x = 0x2545F4914F6CDD1Du64;
        for i in 0..30_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let (class, addr) = match i % 8 {
                // Hot same-line repeats (stack-like traffic).
                0..=2 => (AccessClass::Data, 0x7fff_f000 + (i % 2) * 8),
                // Ascending stream: trains the L1 prefetcher, whose fills
                // must invalidate memo entries.
                3 | 4 => (AccessClass::Data, 0x3000_0000 + (i / 8) * 64),
                // Shadow interleave (shares the D-TLB and L1D).
                5 => (AccessClass::Shadow, 0x4000_0000_0000 + (x % 512) * 16),
                // TLB pressure: more pages than the 64-entry D-TLB.
                6 => (AccessClass::Data, 0x2000_0000 + (x % 256) * 4096),
                // Same-set churn (stride = sets × block).
                _ => (AccessClass::Data, 0x2000_0000 + (x % 24) * 64 * 64),
            };
            let mut want = cfg.l1_lat;
            if !dtlb.access(addr) {
                want += cfg.tlb_miss_penalty;
            }
            if !l1d.access(addr) {
                want += cfg.l2_lat;
                if !l2.access(addr) {
                    for &p in l2_pf.on_miss(addr / cfg.l2.block) {
                        l2.prefetch_fill(p * cfg.l2.block);
                        l3.prefetch_fill(p * cfg.l2.block);
                    }
                    want += cfg.l3_lat;
                    if !l3.access(addr) {
                        want += cfg.mem_lat;
                    }
                }
                for &p in l1_pf.on_miss(addr / cfg.l1d.block) {
                    l1d.prefetch_fill(p * cfg.l1d.block);
                    l2.prefetch_fill(p * cfg.l1d.block);
                    l3.prefetch_fill(p * cfg.l1d.block);
                }
            }
            assert_eq!(
                hy.access(class, addr, false),
                want,
                "latency diverges at access {i} (addr {addr:#x})"
            );
        }
        let s = hy.stats();
        let r = l1d.stats();
        assert_eq!(
            (s.l1d.accesses, s.l1d.misses, s.l1d.prefetch_fills),
            (r.accesses, r.misses, r.prefetch_fills)
        );
        assert_eq!(s.dtlb, dtlb.stats());
        let r2 = l2.stats();
        assert_eq!((s.l2.accesses, s.l2.misses), (r2.accesses, r2.misses));
    }

    #[test]
    fn access_outcome_tracks_miss_paths() {
        let mut hy = h(HierarchyConfig::default());
        // Cold data access: D-TLB and L1D both miss.
        hy.access(AccessClass::Data, 0x2000_0000, false);
        assert_eq!(
            hy.last_outcome(),
            AccessOutcome {
                tlb_miss: true,
                l1_miss: true,
                lock_path: false
            }
        );
        // Warm repeat (memo fast path): everything hits.
        hy.access(AccessClass::Data, 0x2000_0000, false);
        assert_eq!(hy.last_outcome(), AccessOutcome::default());
        // Cold lock access rides the dedicated LL$ path.
        hy.access(AccessClass::Lock, 0x5000_0000, false);
        assert_eq!(
            hy.last_outcome(),
            AccessOutcome {
                tlb_miss: true,
                l1_miss: true,
                lock_path: true
            }
        );
        // Hot lock repeat takes the memo and stays on the lock path.
        hy.access(AccessClass::Lock, 0x5000_0000, false);
        assert_eq!(
            hy.last_outcome(),
            AccessOutcome {
                tlb_miss: false,
                l1_miss: false,
                lock_path: true
            }
        );
        // Ideal shadow never misses.
        let mut ideal = h(HierarchyConfig {
            ideal_shadow: true,
            ..Default::default()
        });
        ideal.access(AccessClass::Shadow, 0x4000_0000_0000, false);
        assert_eq!(ideal.last_outcome(), AccessOutcome::default());
    }

    #[test]
    fn route_table_covers_every_knob_combination() {
        // The precomputed table must agree with the knob semantics for all
        // four (lock_cache, ideal_shadow) combinations: which first-level
        // structure each class's traffic lands in.
        for (lock_cache, ideal_shadow) in
            [(true, true), (true, false), (false, true), (false, false)]
        {
            let mut hy = h(HierarchyConfig {
                lock_cache,
                ideal_shadow,
                ..Default::default()
            });
            hy.access(AccessClass::Data, 0x2000_0000, false);
            hy.access(AccessClass::Shadow, 0x4000_0000_0000, false);
            hy.access(AccessClass::Lock, 0x5000_0000, false);
            hy.access(AccessClass::Ifetch, 0x40_0000, false);
            let s = hy.stats();
            let label = format!("lock_cache={lock_cache} ideal_shadow={ideal_shadow}");
            assert_eq!(s.l1i.accesses, 1, "{label}: ifetch routes to L1I");
            assert_eq!(
                s.ll.accesses,
                u64::from(lock_cache),
                "{label}: lock routes to the LL$ iff enabled"
            );
            let expect_l1d = 1 + u64::from(!ideal_shadow) + u64::from(!lock_cache);
            assert_eq!(
                s.l1d.accesses, expect_l1d,
                "{label}: data plus fallback shadow/lock traffic lands in L1D"
            );
        }
    }

    #[test]
    fn ll_mpk_metric() {
        let mut hy = h(HierarchyConfig::default());
        hy.access(AccessClass::Lock, 0x5000_0000, false);
        let s = hy.stats();
        assert!(s.ll_mpk(1000) > 0.0);
        assert_eq!(s.ll_mpk(0), 0.0);
    }
}

//! Translation lookaside buffers.
//!
//! The shadow space "allows shadow accesses to be handled as normal memory
//! accesses using the usual address translation ... mechanisms" (§3.3), and
//! the lock-location cache "has its own (small) TLB" (§4.2). We model TLBs
//! as fully-associative LRU arrays of 4KB page translations; a miss charges
//! a fixed page-walk penalty in the hierarchy.

/// A fully-associative TLB over 4KB pages with LRU replacement.
#[derive(Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (vpn, lru stamp)
    capacity: usize,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB holding `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Looks up the page containing `addr`; fills on miss. Returns `true`
    /// on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let vpn = addr >> 12;
        self.accesses += 1;
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.clock;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(victim);
        }
        self.entries.push((vpn, self.clock));
        false
    }

    /// Accounts a hit to the page translated **immediately before**,
    /// without touching replacement state.
    ///
    /// Same contract as [`crate::Cache::repeat_hit`]: the caller guarantees
    /// the page of the previous [`Tlb::access`] is being translated again,
    /// so the entry is resident and already most recent — re-stamping it
    /// would change no relative LRU order.
    pub fn repeat_hit(&mut self) {
        self.accesses += 1;
    }

    /// `(accesses, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff), "same page");
        assert!(!t.access(0x2000), "next page misses");
        assert_eq!(t.stats(), (3, 2));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // refresh
        t.access(0x3000); // evicts 0x2000
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }
}

//! Translation lookaside buffers.
//!
//! The shadow space "allows shadow accesses to be handled as normal memory
//! accesses using the usual address translation ... mechanisms" (§3.3), and
//! the lock-location cache "has its own (small) TLB" (§4.2). We model TLBs
//! as fully-associative LRU arrays of 4KB page translations; a miss charges
//! a fixed page-walk penalty in the hierarchy.
//!
//! [`Tlb`] is the production implementation: an open-addressing hash table
//! over the entry arena plus an intrusive doubly-linked recency list, so
//! lookup, LRU refresh and eviction are all O(1) — where the original
//! linear scan paid O(capacity) per access on the data-TLB hot path. The
//! scan survives as [`ScanTlb`], the reference model the property suite
//! (`tlb_props.rs`) holds the hash version to, access for access: exact
//! LRU is exact LRU, whichever structure tracks it.

const NIL: u32 = u32::MAX;

/// A fully-associative TLB over 4KB pages with LRU replacement, in O(1)
/// per access.
///
/// Entries live in a fixed arena (`vpn`/`prev`/`next` arrays, at most
/// `capacity` of them); `head`/`tail` thread an intrusive most- to
/// least-recently-used list through the arena; `table` is an
/// open-addressing (linear-probe) index from VPN hash to arena slot, sized
/// at twice the capacity rounded up to a power of two so the load factor
/// stays ≤ ½. Deletion uses backward shifting, so the table never needs
/// tombstones and probes stay short. All storage is allocated in
/// [`Tlb::new`]; `access` never allocates.
#[derive(Debug)]
pub struct Tlb {
    vpn: Vec<u64>,
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    table: Vec<u32>,
    mask: usize,
    shift: u32,
    capacity: usize,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB holding `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        let slots = (2 * capacity).next_power_of_two();
        Tlb {
            vpn: Vec::with_capacity(capacity),
            prev: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            table: vec![NIL; slots],
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            capacity,
            accesses: 0,
            misses: 0,
        }
    }

    /// Fibonacci-hash home slot of a VPN.
    fn home(&self, vpn: u64) -> usize {
        (vpn.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// Unlinks arena entry `e` from the recency list.
    fn unlink(&mut self, e: u32) {
        let (p, n) = (self.prev[e as usize], self.next[e as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Links arena entry `e` at the most-recently-used end.
    fn link_front(&mut self, e: u32) {
        self.prev[e as usize] = NIL;
        self.next[e as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = e;
        }
        self.head = e;
        if self.tail == NIL {
            self.tail = e;
        }
    }

    /// Removes `vpn` from the hash table by backward shifting: following
    /// entries whose probe path crosses the hole move into it, so no
    /// tombstone is left behind.
    fn table_delete(&mut self, vpn: u64) {
        let mut hole = self.home(vpn);
        while self.table[hole] == NIL || self.vpn[self.table[hole] as usize] != vpn {
            hole = (hole + 1) & self.mask;
        }
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            let e = self.table[i];
            if e == NIL {
                break;
            }
            let home = self.home(self.vpn[e as usize]);
            // Move `e` into the hole iff the hole lies on its probe path:
            // the (cyclic) distance from its home to `i` must reach past
            // the hole.
            if (i.wrapping_sub(home) & self.mask) >= (i.wrapping_sub(hole) & self.mask) {
                self.table[hole] = e;
                hole = i;
            }
        }
        self.table[hole] = NIL;
    }

    /// Inserts arena entry `e` (whose VPN is already stored) into the
    /// first free probe slot.
    fn table_insert(&mut self, e: u32) {
        let mut i = self.home(self.vpn[e as usize]);
        while self.table[i] != NIL {
            i = (i + 1) & self.mask;
        }
        self.table[i] = e;
    }

    /// Looks up the page containing `addr`; fills on miss. Returns `true`
    /// on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let vpn = addr >> 12;
        self.accesses += 1;
        // Probe the table.
        let mut i = self.home(vpn);
        loop {
            let e = self.table[i];
            if e == NIL {
                break;
            }
            if self.vpn[e as usize] == vpn {
                // Hit: move to the MRU end.
                if self.head != e {
                    self.unlink(e);
                    self.link_front(e);
                }
                return true;
            }
            i = (i + 1) & self.mask;
        }
        self.misses += 1;
        let e = if self.vpn.len() == self.capacity {
            // Recycle the LRU entry. Delete its old VPN from the table
            // *before* probing for the new one — the backward shift can
            // move the free slot.
            let victim = self.tail;
            self.table_delete(self.vpn[victim as usize]);
            self.unlink(victim);
            self.vpn[victim as usize] = vpn;
            victim
        } else {
            let e = self.vpn.len() as u32;
            self.vpn.push(vpn);
            self.prev.push(NIL);
            self.next.push(NIL);
            e
        };
        self.link_front(e);
        self.table_insert(e);
        false
    }

    /// Accounts a hit to the page translated **immediately before**,
    /// without touching replacement state.
    ///
    /// Same contract as [`crate::Cache::repeat_hit`]: the caller guarantees
    /// the page of the previous [`Tlb::access`] is being translated again,
    /// so the entry is resident and already most recent — re-stamping it
    /// would change no relative LRU order.
    pub fn repeat_hit(&mut self) {
        self.accesses += 1;
    }

    /// `(accesses, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }
}

/// The original linear-scan, stamp-based LRU TLB — kept as the reference
/// model the hashed [`Tlb`] is property-tested against. Same API, same
/// exact-LRU policy, O(capacity) per access.
#[derive(Debug)]
pub struct ScanTlb {
    entries: Vec<(u64, u64)>, // (vpn, lru stamp)
    capacity: usize,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl ScanTlb {
    /// Builds a TLB holding `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        ScanTlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Looks up the page containing `addr`; fills on miss. Returns `true`
    /// on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let vpn = addr >> 12;
        self.accesses += 1;
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.clock;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(victim);
        }
        self.entries.push((vpn, self.clock));
        false
    }

    /// Accounts a hit without touching replacement state (see
    /// [`Tlb::repeat_hit`]).
    pub fn repeat_hit(&mut self) {
        self.accesses += 1;
    }

    /// `(accesses, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff), "same page");
        assert!(!t.access(0x2000), "next page misses");
        assert_eq!(t.stats(), (3, 2));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // refresh
        t.access(0x3000); // evicts 0x2000
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn scan_zero_capacity_panics() {
        let _ = ScanTlb::new(0);
    }

    #[test]
    fn hash_matches_scan_under_pressure() {
        // Deterministic churn over a VPN space larger than the capacity,
        // so every structural path (fill, hit-refresh, evict-recycle,
        // backward-shift deletion) runs many times.
        let mut hash = Tlb::new(8);
        let mut scan = ScanTlb::new(8);
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for k in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 20) % 24) << 12 | (x & 0xfff);
            assert_eq!(hash.access(addr), scan.access(addr), "access {k}");
            if x & 0xf == 0 {
                hash.repeat_hit();
                scan.repeat_hit();
            }
        }
        assert_eq!(hash.stats(), scan.stats());
    }
}

//! Sparse paged guest memory with footprint accounting.
//!
//! The guest address space is materialized on demand in 4KB pages, exactly
//! like the operating system would allocate shadow pages on demand for
//! Watchdog (§3.3). Footprint accounting distinguishes *program* memory
//! from *metadata* memory (shadow records and lock locations) at both word
//! and page granularity, which is precisely what Fig. 10 reports.

use std::collections::{HashMap, HashSet};
use watchdog_isa::layout;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Memory footprint summary, in distinct 8-byte words and distinct 4KB
/// pages, split by space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Distinct program-data words touched (code excluded).
    pub data_words: u64,
    /// Distinct shadow-metadata words touched.
    pub shadow_words: u64,
    /// Distinct lock-location words touched.
    pub lock_words: u64,
    /// Distinct program-data pages touched.
    pub data_pages: u64,
    /// Distinct shadow-metadata pages touched.
    pub shadow_pages: u64,
    /// Distinct lock-location pages touched.
    pub lock_pages: u64,
}

impl Footprint {
    /// Metadata overhead at word granularity, as a fraction of program
    /// words (Fig. 10, left bars).
    pub fn word_overhead(&self) -> f64 {
        if self.data_words == 0 {
            0.0
        } else {
            (self.shadow_words + self.lock_words) as f64 / self.data_words as f64
        }
    }

    /// Metadata overhead at page granularity (Fig. 10, right bars) —
    /// reflects on-demand page allocation of the shadow space.
    pub fn page_overhead(&self) -> f64 {
        if self.data_pages == 0 {
            0.0
        } else {
            (self.shadow_pages + self.lock_pages) as f64 / self.data_pages as f64
        }
    }
}

/// Byte-addressable sparse guest memory.
///
/// All loads/stores are little-endian and may be unaligned (they are
/// assembled byte-by-byte across page boundaries). Uninitialized memory
/// reads as zero, as from freshly mapped pages.
#[derive(Debug, Default)]
pub struct GuestMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    data_words: HashSet<u64>,
    shadow_words: HashSet<u64>,
    lock_words: HashSet<u64>,
    data_pages: HashSet<u64>,
    shadow_pages: HashSet<u64>,
    lock_pages: HashSet<u64>,
    track: bool,
}

impl GuestMem {
    /// Empty memory with footprint tracking enabled.
    pub fn new() -> Self {
        GuestMem {
            track: true,
            ..Default::default()
        }
    }

    /// Enables or disables footprint tracking (tracking costs a hash insert
    /// per access).
    pub fn set_tracking(&mut self, on: bool) {
        self.track = on;
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    #[inline]
    fn touch(&mut self, addr: u64, len: u64) {
        if !self.track {
            return;
        }
        let first_word = addr >> 3;
        let last_word = (addr + len.max(1) - 1) >> 3;
        let page = addr >> PAGE_SHIFT;
        if layout::is_shadow(addr) {
            for w in first_word..=last_word {
                self.shadow_words.insert(w);
            }
            self.shadow_pages.insert(page);
        } else if layout::is_lock_region(addr) {
            for w in first_word..=last_word {
                self.lock_words.insert(w);
            }
            self.lock_pages.insert(page);
        } else if addr >= layout::GLOBAL_BASE {
            // Program data: globals, heap, stack. Code is not counted.
            for w in first_word..=last_word {
                self.data_words.insert(w);
            }
            self.data_pages.insert(page);
        }
    }

    /// Reads `len <= 8` bytes at `addr` as a little-endian integer.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than 8.
    pub fn read(&mut self, addr: u64, len: u64) -> u64 {
        assert!((1..=8).contains(&len), "read length out of range");
        self.touch(addr, len);
        let mut out = 0u64;
        for i in 0..len {
            let a = addr + i;
            let byte = match self.pages.get(&(a >> PAGE_SHIFT)) {
                Some(p) => p[(a & (PAGE_SIZE as u64 - 1)) as usize],
                None => 0,
            };
            out |= (byte as u64) << (8 * i);
        }
        out
    }

    /// Writes the low `len <= 8` bytes of `value` at `addr`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than 8.
    pub fn write(&mut self, addr: u64, len: u64, value: u64) {
        assert!((1..=8).contains(&len), "write length out of range");
        self.touch(addr, len);
        for i in 0..len {
            let a = addr + i;
            let page = self.page_mut(a >> PAGE_SHIFT);
            page[(a & (PAGE_SIZE as u64 - 1)) as usize] = (value >> (8 * i)) as u8;
        }
    }

    /// Reads a 64-bit word.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        self.read(addr, 8)
    }

    /// Writes a 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, 8, value);
    }

    /// Reads an IEEE-754 double.
    pub fn read_f64(&mut self, addr: u64) -> f64 {
        f64::from_bits(self.read(addr, 8))
    }

    /// Writes an IEEE-754 double.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write(addr, 8, value.to_bits());
    }

    /// Reads an IEEE-754 single.
    pub fn read_f32(&mut self, addr: u64) -> f32 {
        f32::from_bits(self.read(addr, 4) as u32)
    }

    /// Writes an IEEE-754 single.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write(addr, 4, value.to_bits() as u64);
    }

    /// Current footprint summary.
    pub fn footprint(&self) -> Footprint {
        Footprint {
            data_words: self.data_words.len() as u64,
            shadow_words: self.shadow_words.len() as u64,
            lock_words: self.lock_words.len() as u64,
            data_pages: self.data_pages.len() as u64,
            shadow_pages: self.shadow_pages.len() as u64,
            lock_pages: self.lock_pages.len() as u64,
        }
    }

    /// Number of 4KB pages materialized (for capacity diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchdog_isa::layout::{shadow_addr, HEAP_BASE, HEAP_LOCK_BASE, META_BYTES_ID};

    #[test]
    fn zero_initialized_and_little_endian() {
        let mut m = GuestMem::new();
        assert_eq!(m.read_u64(HEAP_BASE), 0);
        m.write_u64(HEAP_BASE, 0x1122_3344_5566_7788);
        assert_eq!(m.read(HEAP_BASE, 1), 0x88);
        assert_eq!(m.read(HEAP_BASE + 7, 1), 0x11);
        assert_eq!(m.read(HEAP_BASE, 4), 0x5566_7788);
    }

    #[test]
    fn unaligned_and_cross_page_access() {
        let mut m = GuestMem::new();
        let addr = HEAP_BASE + 4096 - 4; // straddles a page boundary
        m.write_u64(addr, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.read_u64(addr), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn floats_round_trip() {
        let mut m = GuestMem::new();
        m.write_f64(HEAP_BASE, 3.25);
        assert_eq!(m.read_f64(HEAP_BASE), 3.25);
        m.write_f32(HEAP_BASE + 8, -1.5);
        assert_eq!(m.read_f32(HEAP_BASE + 8), -1.5);
    }

    #[test]
    fn footprint_classifies_spaces() {
        let mut m = GuestMem::new();
        m.write_u64(HEAP_BASE, 1); // data
        m.write_u64(shadow_addr(HEAP_BASE, META_BYTES_ID), 2); // shadow
        m.write_u64(HEAP_LOCK_BASE, 3); // lock
        let f = m.footprint();
        assert_eq!(f.data_words, 1);
        assert_eq!(f.shadow_words, 1);
        assert_eq!(f.lock_words, 1);
        assert_eq!(f.data_pages, 1);
        assert_eq!(f.shadow_pages, 1);
        assert_eq!(f.lock_pages, 1);
        assert_eq!(f.word_overhead(), 2.0);
        assert_eq!(f.page_overhead(), 2.0);
    }

    #[test]
    fn word_accounting_is_distinct() {
        let mut m = GuestMem::new();
        for _ in 0..10 {
            m.write_u64(HEAP_BASE + 16, 7);
        }
        assert_eq!(m.footprint().data_words, 1, "repeated access counts once");
        // A 4-byte access inside the same word does not add a word.
        m.write(HEAP_BASE + 20, 4, 1);
        assert_eq!(m.footprint().data_words, 1);
        // But one spanning two words counts both.
        m.write_u64(HEAP_BASE + 28, 1);
        assert_eq!(m.footprint().data_words, 3);
    }

    #[test]
    fn tracking_can_be_disabled() {
        let mut m = GuestMem::new();
        m.set_tracking(false);
        m.write_u64(HEAP_BASE, 1);
        assert_eq!(m.footprint().data_words, 0);
    }

    #[test]
    fn reads_count_toward_footprint() {
        let mut m = GuestMem::new();
        let _ = m.read_u64(HEAP_BASE + 64);
        assert_eq!(m.footprint().data_words, 1);
    }

    #[test]
    #[should_panic(expected = "read length out of range")]
    fn oversized_read_panics() {
        let mut m = GuestMem::new();
        let _ = m.read(HEAP_BASE, 9);
    }

    #[test]
    fn empty_footprint_overheads_are_zero() {
        let f = Footprint::default();
        assert_eq!(f.word_overhead(), 0.0);
        assert_eq!(f.page_overhead(), 0.0);
    }
}

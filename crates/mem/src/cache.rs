//! Set-associative caches with LRU replacement.
//!
//! Timing in the hierarchy is hit/miss-driven; these caches track tags and
//! recency only (simulating data contents is the job of [`crate::vm`]).
//!
//! The lookup path is structured for the host, not the guest: tags,
//! recency stamps and validity live in separate arrays (the 8 tags of an
//! 8-way set share one host cache line), and the way match is a
//! fixed-trip, branch-free mask accumulation — the only data-dependent
//! branch per lookup is the final hit/miss decision. The LRU victim scan
//! runs on the miss path only.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub ways: u64,
    /// Block (line) size in bytes.
    pub block: u64,
}

impl CacheConfig {
    /// Builds a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size`, `ways` and `block` are powers of two and
    /// consistent (at least one set, at most 16 ways).
    pub fn new(size: u64, ways: u64, block: u64) -> Self {
        assert!(size.is_power_of_two() && ways.is_power_of_two() && block.is_power_of_two());
        assert!(size >= ways * block, "cache must have at least one set");
        assert!(ways <= 16, "at most 16 ways (validity masks are u16)");
        CacheConfig { size, ways, block }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size / (self.ways * self.block)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total demand accesses.
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Blocks installed by the prefetcher.
    pub prefetch_fills: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative, write-allocate cache with true-LRU replacement.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    // Set-index math hoisted out of the access path: geometry is
    // power-of-two (asserted by `CacheConfig::new`), so the per-access
    // block/set/tag divisions reduce to precomputed shifts and masks.
    block_shift: u32,
    set_mask: u64,
    tag_shift: u32,
    ways: usize,
    // Line state, struct-of-arrays (indexed `set * ways + way`): one tag
    // load per way on the match path, recency touched only on hit/install,
    // validity one mask word per set.
    tags: Box<[u64]>,
    lru: Box<[u64]>,
    valid: Box<[u16]>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let n = (cfg.sets() * cfg.ways) as usize;
        let block_shift = cfg.block.trailing_zeros();
        let set_bits = cfg.sets().trailing_zeros();
        Cache {
            cfg,
            block_shift,
            set_mask: cfg.sets() - 1,
            tag_shift: block_shift + set_bits,
            ways: cfg.ways as usize,
            tags: vec![0; n].into_boxed_slice(),
            lru: vec![0; n].into_boxed_slice(),
            valid: vec![0; cfg.sets() as usize].into_boxed_slice(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.block_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag(&self, addr: u64) -> u64 {
        addr >> self.tag_shift
    }

    /// Valid ways of `set` whose tag equals `tag`, as a way bitmask.
    /// Branch-free: the trip count is the (perfectly predicted)
    /// associativity, the body is compare-and-accumulate.
    #[inline]
    fn match_mask(&self, set: usize, tag: u64) -> u16 {
        let lo = set * self.ways;
        let mut mask = 0u16;
        for w in 0..self.ways {
            mask |= u16::from(self.tags[lo + w] == tag) << w;
        }
        mask & self.valid[set]
    }

    /// Demand access: returns `true` on hit. On miss the block is installed
    /// (write-allocate), evicting the LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        self.clock += 1;
        let tag = self.tag(addr);
        let set = self.set_of(addr);
        let mask = self.match_mask(set, tag);
        if mask != 0 {
            self.lru[set * self.ways + mask.trailing_zeros() as usize] = self.clock;
            return true;
        }
        self.stats.misses += 1;
        self.install(set, tag);
        false
    }

    /// Accounts a demand hit to the line accessed **immediately before**
    /// in this cache, without touching replacement state.
    ///
    /// Callers must guarantee the repeat invariant (see
    /// [`Hierarchy`](crate::Hierarchy)'s lock-probe memo): the line is
    /// resident and already the most-recently-used way of its set. Under
    /// that invariant the outcome is identical to [`Cache::access`] — the
    /// lookup would hit, and re-stamping the set's MRU way changes no
    /// relative LRU order (stamps are only ever compared within a set, and
    /// the global clock stays monotonic whether or not it ticks here).
    pub fn repeat_hit(&mut self) {
        self.stats.accesses += 1;
    }

    /// Non-allocating lookup (no stats, no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        self.match_mask(self.set_of(addr), self.tag(addr)) != 0
    }

    /// Installs a block without counting a demand access (prefetch fill).
    pub fn prefetch_fill(&mut self, addr: u64) {
        let tag = self.tag(addr);
        let set = self.set_of(addr);
        if self.match_mask(set, tag) != 0 {
            return;
        }
        self.clock += 1;
        self.stats.prefetch_fills += 1;
        self.install(set, tag);
    }

    fn install(&mut self, set: usize, tag: u64) {
        let lo = set * self.ways;
        let vmask = self.valid[set];
        let victim = if vmask != u16::MAX >> (16 - self.ways) {
            // An invalid way exists: lowest-index first, as the AoS
            // implementation's `min_by_key` with key 0 chose.
            (!vmask).trailing_zeros() as usize
        } else {
            let mut best = 0;
            let mut best_lru = self.lru[lo];
            for w in 1..self.ways {
                let t = self.lru[lo + w];
                let better = t < best_lru;
                best = if better { w } else { best };
                best_lru = if better { t } else { best_lru };
            }
            best
        };
        self.tags[lo + victim] = tag;
        self.lru[lo + victim] = self.clock;
        self.valid[set] = vmask | (1 << victim);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64B blocks → 256 bytes.
        Cache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn geometry() {
        let cfg = CacheConfig::new(4096, 8, 64);
        assert_eq!(cfg.sets(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn degenerate_geometry_panics() {
        let _ = CacheConfig::new(64, 2, 64);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1038), "same 64B block");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three blocks mapping to set 0 (block addresses multiples of 128).
        c.access(0x0000);
        c.access(0x0080);
        c.access(0x0000); // refresh first
        c.access(0x0100); // evicts 0x0080 (LRU)
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x0080));
        assert!(c.probe(0x0100));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0x0000); // set 0
        c.access(0x0040); // set 1
        assert!(c.probe(0x0000) && c.probe(0x0040));
    }

    #[test]
    fn prefetch_fill_counts_separately() {
        let mut c = tiny();
        c.prefetch_fill(0x2000);
        assert!(c.probe(0x2000));
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.access(0x2000), "prefetched block hits");
        // Filling a resident block is a no-op.
        c.prefetch_fill(0x2000);
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny();
        c.access(0x0);
        c.access(0x0);
        assert_eq!(c.stats().miss_rate(), 0.5);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn invalid_ways_fill_lowest_index_first() {
        // 1 set, 4 ways: cold fills must occupy ways 0,1,2,3 in order
        // (matching the AoS reference), then eviction follows true LRU.
        let mut c = Cache::new(CacheConfig::new(256, 4, 64));
        for i in 0..4u64 {
            c.access(i * 64);
        }
        for i in 0..4u64 {
            assert!(c.probe(i * 64), "block {i} resident after cold fills");
        }
        c.access(0); // refresh block 0
        c.access(4 * 64); // evicts block 1 (LRU)
        assert!(c.probe(0) && !c.probe(64) && c.probe(4 * 64));
    }
}

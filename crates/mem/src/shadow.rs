//! The disjoint shadow metadata space.
//!
//! "Conceptually, every word in memory has identifier metadata in the shadow
//! memory" (§3.3). A [`MetaRecord`] is the per-word record: the lock-and-key
//! identifier (§4.1) plus, under the bounds extension, base and bound (§8).
//! Records are stored *in guest memory* at [`watchdog_isa::layout::shadow_addr`],
//! so shadow accesses exercise the same paging, caching and footprint
//! machinery as program accesses — which is what makes the cache-pressure
//! and memory-overhead measurements (Figs. 9–10) meaningful.

use crate::vm::GuestMem;
use watchdog_isa::layout::{
    shadow_addr, GLOBAL_KEY, GLOBAL_LOCK_ADDR, INVALID_KEY, INVALID_LOCK_ADDR, META_BYTES_BOUNDS,
    META_BYTES_ID,
};

/// Per-pointer metadata: lock-and-key identifier plus optional bounds.
///
/// The *invalid* record has `key == INVALID_KEY` and a lock pointing at the
/// poisoned [`INVALID_LOCK_ADDR`], so a validity check on it always fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetaRecord {
    /// The 64-bit unique key.
    pub key: u64,
    /// Address of the lock location.
    pub lock: u64,
    /// Inclusive lower bound (bounds extension).
    pub base: u64,
    /// Exclusive upper bound (bounds extension).
    pub bound: u64,
}

impl MetaRecord {
    /// The invalid record: checks against it always fail.
    pub const INVALID: MetaRecord = MetaRecord {
        key: INVALID_KEY,
        lock: INVALID_LOCK_ADDR,
        base: 0,
        bound: 0,
    };

    /// The global-segment record: checks against it always pass, and its
    /// bounds cover the entire global segment (§7).
    pub fn global() -> MetaRecord {
        use watchdog_isa::layout::{GLOBAL_BASE, GLOBAL_SIZE};
        MetaRecord {
            key: GLOBAL_KEY,
            lock: GLOBAL_LOCK_ADDR,
            base: GLOBAL_BASE,
            bound: GLOBAL_BASE + GLOBAL_SIZE,
        }
    }

    /// An identifier-only record (unbounded).
    pub fn ident(key: u64, lock: u64) -> MetaRecord {
        MetaRecord {
            key,
            lock,
            base: 0,
            bound: u64::MAX,
        }
    }

    /// A full record.
    pub fn with_bounds(key: u64, lock: u64, base: u64, bound: u64) -> MetaRecord {
        MetaRecord {
            key,
            lock,
            base,
            bound,
        }
    }

    /// Whether the record is the statically-invalid one (no identifier was
    /// ever associated — distinct from *deallocated*, which only a lock
    /// probe can reveal).
    pub fn is_invalid(&self) -> bool {
        self.key == INVALID_KEY
    }

    /// Whether an access of `len` bytes at `addr` lies within bounds.
    pub fn in_bounds(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.checked_add(len).is_some_and(|end| end <= self.bound)
    }
}

impl Default for MetaRecord {
    fn default() -> Self {
        MetaRecord::INVALID
    }
}

/// Accessor for metadata records stored in the shadow region of a
/// [`GuestMem`].
///
/// The record width depends on the mode: 16 bytes for identifier-only
/// Watchdog, 32 bytes with the bounds extension — matching the paper's
/// "total of 256 bits of metadata per pointer" (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowSpace {
    meta_bytes: u64,
}

impl ShadowSpace {
    /// Identifier-only shadow space (128-bit records).
    pub fn ident_only() -> Self {
        ShadowSpace {
            meta_bytes: META_BYTES_ID,
        }
    }

    /// Bounds-extended shadow space (256-bit records).
    pub fn with_bounds() -> Self {
        ShadowSpace {
            meta_bytes: META_BYTES_BOUNDS,
        }
    }

    /// Record width in bytes.
    pub fn meta_bytes(self) -> u64 {
        self.meta_bytes
    }

    /// Whether bounds are stored.
    pub fn has_bounds(self) -> bool {
        self.meta_bytes == META_BYTES_BOUNDS
    }

    /// Shadow address of the record for the word containing `addr`.
    pub fn record_addr(self, addr: u64) -> u64 {
        shadow_addr(addr, self.meta_bytes)
    }

    /// Loads the record for the word containing `addr`.
    pub fn load(self, mem: &mut GuestMem, addr: u64) -> MetaRecord {
        let s = self.record_addr(addr);
        let key = mem.read_u64(s);
        if key == INVALID_KEY {
            // Never-written shadow memory reads as zero = invalid.
            return MetaRecord::INVALID;
        }
        let lock = mem.read_u64(s + 8);
        if self.has_bounds() {
            let base = mem.read_u64(s + 16);
            let bound = mem.read_u64(s + 24);
            MetaRecord {
                key,
                lock,
                base,
                bound,
            }
        } else {
            MetaRecord::ident(key, lock)
        }
    }

    /// Stores the record for the word containing `addr`.
    pub fn store(self, mem: &mut GuestMem, addr: u64, rec: MetaRecord) {
        let s = self.record_addr(addr);
        mem.write_u64(s, rec.key);
        mem.write_u64(s + 8, rec.lock);
        if self.has_bounds() {
            mem.write_u64(s + 16, rec.base);
            mem.write_u64(s + 24, rec.bound);
        }
    }

    /// Invalidates the record for the word containing `addr` — used when a
    /// non-pointer value overwrites a word that may have held a pointer.
    ///
    /// Skips the write when the record is already invalid, so untouched
    /// shadow pages are not materialized (this mirrors real hardware, which
    /// would not write metadata for non-pointer stores at all).
    pub fn invalidate(self, mem: &mut GuestMem, addr: u64) {
        let s = self.record_addr(addr);
        // Cheap probe: only clear if a key is present.
        if mem.read_u64(s) != INVALID_KEY {
            mem.write_u64(s, INVALID_KEY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchdog_isa::layout::HEAP_BASE;

    #[test]
    fn invalid_and_global_records() {
        assert!(MetaRecord::INVALID.is_invalid());
        let g = MetaRecord::global();
        assert!(!g.is_invalid());
        assert_eq!(g.key, GLOBAL_KEY);
        assert!(g.in_bounds(watchdog_isa::layout::GLOBAL_BASE, 8));
    }

    #[test]
    fn ident_record_round_trip() {
        let mut m = GuestMem::new();
        let s = ShadowSpace::ident_only();
        let rec = MetaRecord::ident(42, 0x5000_0010);
        s.store(&mut m, HEAP_BASE + 24, rec);
        let got = s.load(&mut m, HEAP_BASE + 24);
        assert_eq!(got.key, 42);
        assert_eq!(got.lock, 0x5000_0010);
        assert_eq!(got.bound, u64::MAX, "ident-only loads are unbounded");
    }

    #[test]
    fn bounds_record_round_trip() {
        let mut m = GuestMem::new();
        let s = ShadowSpace::with_bounds();
        let rec = MetaRecord::with_bounds(7, 0x5000_0000, HEAP_BASE, HEAP_BASE + 64);
        s.store(&mut m, HEAP_BASE, rec);
        assert_eq!(s.load(&mut m, HEAP_BASE), rec);
    }

    #[test]
    fn adjacent_words_have_disjoint_records() {
        let mut m = GuestMem::new();
        for s in [ShadowSpace::ident_only(), ShadowSpace::with_bounds()] {
            s.store(&mut m, HEAP_BASE, MetaRecord::ident(1, 10));
            s.store(&mut m, HEAP_BASE + 8, MetaRecord::ident(2, 20));
            assert_eq!(s.load(&mut m, HEAP_BASE).key, 1);
            assert_eq!(s.load(&mut m, HEAP_BASE + 8).key, 2);
        }
    }

    #[test]
    fn sub_word_addresses_share_a_record() {
        let mut m = GuestMem::new();
        let s = ShadowSpace::ident_only();
        s.store(&mut m, HEAP_BASE + 16, MetaRecord::ident(9, 90));
        assert_eq!(
            s.load(&mut m, HEAP_BASE + 20).key,
            9,
            "same word → same record"
        );
    }

    #[test]
    fn unwritten_shadow_is_invalid() {
        let mut m = GuestMem::new();
        let s = ShadowSpace::ident_only();
        assert!(s.load(&mut m, HEAP_BASE + 4096).is_invalid());
    }

    #[test]
    fn invalidate_clears_only_when_present() {
        let mut m = GuestMem::new();
        let s = ShadowSpace::ident_only();
        s.invalidate(&mut m, HEAP_BASE); // no-op on clean shadow
        s.store(&mut m, HEAP_BASE, MetaRecord::ident(5, 50));
        s.invalidate(&mut m, HEAP_BASE);
        assert!(s.load(&mut m, HEAP_BASE).is_invalid());
    }

    #[test]
    fn bounds_check_arithmetic() {
        let r = MetaRecord::with_bounds(1, 2, 100, 132);
        assert!(r.in_bounds(100, 8));
        assert!(r.in_bounds(124, 8));
        assert!(!r.in_bounds(125, 8), "straddles the bound");
        assert!(!r.in_bounds(96, 8), "below base");
        assert!(!r.in_bounds(u64::MAX, 8), "overflow is out of bounds");
    }
}

//! Memory subsystem for the Watchdog reproduction.
//!
//! * [`vm`] — sparse paged guest memory with footprint accounting (distinct
//!   words and 4KB pages touched, split into program data vs. metadata —
//!   the measurements behind Fig. 10).
//! * [`shadow`] — the disjoint shadow metadata space: 128-bit (identifier)
//!   or 256-bit (identifier + bounds) records per 8-byte data word (§3.3,
//!   §8).
//! * [`cache`] — set-associative write-back caches with LRU replacement.
//! * [`tlb`] — translation lookaside buffers.
//! * [`prefetch`] — stream prefetchers (Table 2 lists per-level stream
//!   prefetchers).
//! * [`hierarchy`] — the full simulated memory hierarchy of Table 2:
//!   L1I/L1D, the dedicated 4KB lock-location cache (§4.2), private L2,
//!   shared L3 and DRAM, with per-class latency composition and an
//!   "idealized shadow accesses" mode (§9.3's cache-pressure ablation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod prefetch;
pub mod shadow;
pub mod tlb;
pub mod vm;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{
    AccessClass, AccessOutcome, AccessReq, Hierarchy, HierarchyConfig, HierarchyStats,
};
pub use shadow::{MetaRecord, ShadowSpace};
pub use tlb::{ScanTlb, Tlb};
pub use vm::{Footprint, GuestMem};

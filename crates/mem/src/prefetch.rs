//! Stream prefetchers.
//!
//! Table 2 specifies stream prefetchers at every cache level (e.g. "4
//! streams, 4 blocks each" at the L1 D-cache). We implement a classic
//! next-N-blocks stream prefetcher: a miss that extends a detected
//! ascending or descending block stream triggers prefetches of the next
//! `degree` blocks in stride order.

/// A multi-stream block prefetcher.
///
/// Everything is sized at construction: the stream table and the reused
/// prefetch output buffer (`degree` entries). [`StreamPrefetcher::on_miss`]
/// hands back a slice of that buffer, so the miss path — hot under
/// cache-hostile workloads — performs no heap allocation.
#[derive(Debug)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    max_streams: usize,
    degree: u64,
    issued: u64,
    out: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    last_block: u64,
    stride: i64,
    confidence: u8,
    lru: u64,
}

impl StreamPrefetcher {
    /// Builds a prefetcher tracking `max_streams` streams and prefetching
    /// `degree` blocks ahead.
    pub fn new(max_streams: usize, degree: u64) -> Self {
        StreamPrefetcher {
            streams: Vec::with_capacity(max_streams),
            max_streams,
            degree,
            issued: 0,
            out: Vec::with_capacity(degree as usize),
        }
    }

    /// Observes a demand miss on `block` (a block *index*, not a byte
    /// address) and returns the block indices to prefetch. The slice
    /// borrows the prefetcher's scratch buffer and is valid until the next
    /// `on_miss` call.
    pub fn on_miss(&mut self, block: u64) -> &[u64] {
        self.issued += 1;
        let clock = self.issued;
        self.out.clear();
        // Try to extend an existing stream.
        let mut extended = false;
        for s in &mut self.streams {
            let stride = block as i64 - s.last_block as i64;
            if stride != 0 && stride.abs() <= 2 && (s.confidence == 0 || stride == s.stride) {
                s.stride = stride;
                s.last_block = block;
                s.lru = clock;
                if s.confidence < 3 {
                    s.confidence += 1;
                }
                if s.confidence >= 2 {
                    for i in 1..=self.degree {
                        let b = block as i64 + stride * i as i64;
                        if let Ok(b) = u64::try_from(b) {
                            self.out.push(b);
                        }
                    }
                }
                extended = true;
                break;
            }
        }
        if !extended {
            // Allocate a new stream.
            if self.streams.len() == self.max_streams {
                let victim = self
                    .streams
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.lru)
                    .map(|(i, _)| i)
                    .expect("non-empty");
                self.streams.swap_remove(victim);
            }
            self.streams.push(Stream {
                last_block: block,
                stride: 0,
                confidence: 0,
                lru: clock,
            });
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_stream_triggers_prefetch() {
        let mut p = StreamPrefetcher::new(2, 4);
        assert!(p.on_miss(100).is_empty(), "first touch trains only");
        assert!(p.on_miss(101).is_empty(), "confidence building");
        let pf = p.on_miss(102);
        assert_eq!(pf, vec![103, 104, 105, 106]);
    }

    #[test]
    fn descending_stream_supported() {
        let mut p = StreamPrefetcher::new(2, 2);
        p.on_miss(100);
        p.on_miss(99);
        let pf = p.on_miss(98);
        assert_eq!(pf, vec![97, 96]);
    }

    #[test]
    fn random_misses_do_not_prefetch() {
        let mut p = StreamPrefetcher::new(2, 4);
        assert!(p.on_miss(10).is_empty());
        assert!(p.on_miss(500).is_empty());
        assert!(p.on_miss(2000).is_empty());
        assert!(p.on_miss(77).is_empty());
    }

    #[test]
    fn streams_are_replaced_lru() {
        let mut p = StreamPrefetcher::new(1, 1);
        p.on_miss(10);
        p.on_miss(1000); // replaces the only stream
        p.on_miss(1001);
        let pf = p.on_miss(1002);
        assert_eq!(pf, vec![1003]);
    }

    #[test]
    fn prefetch_never_underflows_block_zero() {
        let mut p = StreamPrefetcher::new(1, 4);
        p.on_miss(2);
        p.on_miss(1);
        let pf = p.on_miss(0);
        assert!(pf.is_empty() || pf.iter().all(|b| *b < 2));
    }
}

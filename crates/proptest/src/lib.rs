//! Offline, API-compatible subset of the [`proptest`] crate.
//!
//! The build environment for this workspace has no network access and no
//! vendored registry, so the real `proptest` cannot be fetched. This shim
//! implements the slice of its API the workspace's property suites use —
//! [`Strategy`] with `prop_map`, range/tuple/`Just`/`any` strategies,
//! `proptest::collection::vec`, and the [`proptest!`] / [`prop_assert!`]
//! family — on top of a small deterministic xorshift RNG.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimised.
//! * **Deterministic seeding.** Each test derives its seed from its own
//!   name, so runs are reproducible; set `PROPTEST_CASES` to change the
//!   number of cases per test (default 32).
//!
//! To switch to the real crate, repoint the `proptest` entry in the
//! workspace `[workspace.dependencies]` at a registry version.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeFrom};

/// Deterministic xorshift64* generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed (zero is remapped).
    pub fn new(seed: u64) -> Self {
        TestRng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// FNV-1a over a test's name: the per-test base seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Error produced by a failing `prop_assert*` inside a [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a [`proptest!`] case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several boxed strategies ([`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over non-empty `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].new_value(rng)
    }
}

/// Types with a canonical full-range strategy, via [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                let off = rng.below(span as u64) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128) - (self.start as i128) + 1;
                // A span covering the whole 64-bit domain cannot be stored
                // in a u64 modulus; one missing topmost value is acceptable.
                let modulus = if span > u64::MAX as i128 { u64::MAX } else { span as u64 };
                let off = rng.below(modulus) as i128;
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $i:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::new_value(&self.len, rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Number of cases each test runs (`PROPTEST_CASES`, default 32).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$attr])*
        fn $name() {
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for case in 0..$crate::cases() {
                $(let $arg = $crate::Strategy::new_value(&$strat, &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )+};
}

/// Uniformly chooses between the listed strategies each draw.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}: {}", a, b, format!($($fmt)+));
    }};
}

/// Skips the rest of the case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u8..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i32..5).new_value(&mut rng);
            assert!((-5..5).contains(&w));
            let x = (1u64..).new_value(&mut rng);
            assert!(x >= 1);
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let v = collection::vec(0u8..4, 2..6).new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn oneof_draws_every_option() {
        let mut rng = TestRng::new(13);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #[test]
        fn shim_macro_smoke(x in 0u32..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            if flip {
                return Ok(());
            }
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}

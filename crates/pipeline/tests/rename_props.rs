//! Property tests on the rename stage: reference-counting invariants hold
//! under arbitrary instruction streams (the §6.2 machinery never leaks or
//! double-frees a metadata physical register).

use proptest::prelude::*;
use watchdog_isa::crack::{crack, CrackConfig};
use watchdog_isa::insn::{AluOp, Inst, MemAddr, PtrHint, Width};
use watchdog_isa::reg::Gpr;
use watchdog_pipeline::{Rename, RenameConfig};

#[derive(Debug, Clone)]
enum Op {
    PtrLoad(u8, u8),
    AddImm(u8, u8),
    Add(u8, u8, u8),
    MovImm(u8),
    Global(u8),
    Mov(u8, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..15, 0u8..15).prop_map(|(d, b)| Op::PtrLoad(d, b)),
        (0u8..15, 0u8..15).prop_map(|(d, a)| Op::AddImm(d, a)),
        (0u8..15, 0u8..15, 0u8..15).prop_map(|(d, a, b)| Op::Add(d, a, b)),
        (0u8..15).prop_map(Op::MovImm),
        (0u8..15).prop_map(Op::Global),
        (0u8..15, 0u8..15).prop_map(|(d, s)| Op::Mov(d, s)),
    ]
}

proptest! {
    #[test]
    fn refcounts_never_leak_or_double_free(ops in proptest::collection::vec(arb_op(), 1..300)) {
        let mut r = Rename::new(RenameConfig::default());
        let cfg = CrackConfig::watchdog();
        for op in ops {
            let inst = match op {
                Op::PtrLoad(d, b) => Inst::Load {
                    dst: Gpr::new(d), addr: MemAddr::base(Gpr::new(b)), width: Width::B8, hint: PtrHint::Auto,
                },
                Op::AddImm(d, a) => Inst::AluImm { op: AluOp::Add, dst: Gpr::new(d), a: Gpr::new(a), imm: 8 },
                Op::Add(d, a, b) => Inst::Alu { op: AluOp::Add, dst: Gpr::new(d), a: Gpr::new(a), b: Gpr::new(b) },
                Op::MovImm(d) => Inst::MovImm { dst: Gpr::new(d), imm: 1 },
                Op::Global(d) => Inst::LeaGlobal { dst: Gpr::new(d), addr: 0x1000_0000 },
                Op::Mov(d, s) => Inst::Mov { dst: Gpr::new(d), src: Gpr::new(s) },
            };
            let c = crack(&inst, matches!(op, Op::PtrLoad(..)), &cfg);
            for u in c.uops.iter() {
                r.rename_uop(&u.uop);
            }
            r.apply_meta(&c.meta);
            if let Err(e) = r.check_invariants() {
                prop_assert!(false, "invariant violated after {inst:?}: {e}");
            }
        }
        // Live metadata registers are bounded by the logical namespace.
        prop_assert!(r.live_meta_regs() <= 18);
    }
}

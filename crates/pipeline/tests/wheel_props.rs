//! Property tests pinning the calendar-queue structures to their PR 5
//! heap/scan references on adversarial operation streams: wheel
//! wrap-around at the horizon boundary, overflow beyond it, drain jumps
//! past everything, and release times near `u64::MAX`.

use proptest::prelude::*;
use watchdog_pipeline::wheel::{
    CalendarWheel, CursorPools, FifoQueue, FuPools, HeapQueue, ReleaseRing, ScanPools, WindowQueue,
    WHEEL_SLOTS,
};
use watchdog_pipeline::NUM_FUS;

/// Drives one operation stream through a queue and its reference under
/// the [`WindowQueue`] contract (pushes `>=` the largest drain bound,
/// occupancy capped by popping first), comparing every observable.
///
/// `sel % 3` picks the operation; `a` parameterizes it. `skews` maps the
/// push parameter to an offset above the current bound — the caller
/// chooses skews that stress wrap-around (±1 around [`WHEEL_SLOTS`]) or
/// overflow (far beyond it).
fn lockstep<Q: WindowQueue, R: WindowQueue>(
    start: u64,
    cap: usize,
    ops: &[(u8, u64)],
    skews: &[u64],
    monotone: bool,
) -> Result<(), TestCaseError> {
    let mut q = Q::with_capacity(cap);
    let mut r = R::with_capacity(cap);
    let mut bound = start;
    let mut last_push = start;
    q.drain_le(bound);
    r.drain_le(bound);
    for (i, &(sel, a)) in ops.iter().enumerate() {
        match sel % 3 {
            0 => {
                if q.len() >= cap {
                    prop_assert_eq!(q.pop_min(), r.pop_min(), "forced pop at op {}", i);
                }
                let mut t = bound.saturating_add(skews[(a % skews.len() as u64) as usize]);
                if monotone {
                    // The ROB/LQ/SQ regime: commit times never decrease.
                    t = t.max(last_push);
                }
                last_push = t;
                q.push(t);
                r.push(t);
            }
            1 => {
                prop_assert_eq!(q.pop_min(), r.pop_min(), "pop at op {}", i);
            }
            _ => {
                bound = bound.saturating_add(a % (2 * WHEEL_SLOTS as u64));
                q.drain_le(bound);
                r.drain_le(bound);
            }
        }
        prop_assert_eq!(q.len(), r.len(), "len after op {}", i);
    }
    while q.len() > 0 {
        prop_assert_eq!(q.pop_min(), r.pop_min(), "final drain");
    }
    prop_assert_eq!(r.pop_min(), None);
    Ok(())
}

proptest! {
    /// The calendar wheel matches the binary heap on unordered streams
    /// whose skews straddle the horizon boundary (in-slot, last-slot,
    /// first-wrapped-slot, deep overflow).
    #[test]
    fn wheel_matches_heap_across_wrap_and_overflow(
        start in prop_oneof![Just(0u64), 0u64..10_000, Just(u64::MAX - 9000)],
        cap in 1usize..54,
        ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..300),
    ) {
        let w = WHEEL_SLOTS as u64;
        let skews = [0, 1, 2, 63, 64, w - 1, w, w + 1, 3 * w, 10 * w];
        lockstep::<CalendarWheel, HeapQueue>(start, cap, &ops, &skews, false)?;
    }

    /// The release ring matches both PR 5 references (deque and heap) on
    /// monotone streams — the only streams the ROB/LQ/SQ produce.
    #[test]
    fn ring_matches_fifo_and_heap_on_monotone_streams(
        start in prop_oneof![Just(0u64), Just(u64::MAX - 5000)],
        cap in 1usize..64,
        ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..300),
    ) {
        let skews = [0, 1, 2, 3, 17];
        lockstep::<ReleaseRing, FifoQueue>(start, cap, &ops, &skews, true)?;
        lockstep::<ReleaseRing, HeapQueue>(start, cap, &ops, &skews, true)?;
    }

    /// Rotating-cursor pools return the same start times as the
    /// lowest-index scan for any reservation stream, leaving identical
    /// next-free multisets behind.
    #[test]
    fn cursor_pools_match_scan_pools(
        sizes in proptest::collection::vec(1usize..7, NUM_FUS..NUM_FUS + 1),
        ops in proptest::collection::vec(
            (0usize..NUM_FUS, 0u64..2000, 1u64..30), 1..400),
    ) {
        let sizes: [usize; NUM_FUS] = sizes.try_into().unwrap();
        let mut cursor = CursorPools::new(sizes);
        let mut scan = ScanPools::new(sizes);
        for (i, &(class, earliest, busy)) in ops.iter().enumerate() {
            prop_assert_eq!(
                cursor.reserve(class, earliest, busy),
                scan.reserve(class, earliest, busy),
                "reservation {} diverged", i
            );
        }
        for class in 0..NUM_FUS {
            prop_assert_eq!(
                cursor.reserve_counts(class).iter().sum::<u64>(),
                scan.reserve_counts(class).iter().sum::<u64>(),
                "class {} total utilization", class
            );
        }
    }
}

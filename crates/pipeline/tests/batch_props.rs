//! Batched-feed equivalence at the pipeline level: for any batching of
//! the same committed µop stream — one instruction per `consume` call,
//! tiny batches, the default 64-instruction target, or one giant batch —
//! the [`TimingCore`] must produce a field-identical [`TimingReport`].
//!
//! The streams below exercise every scheduling path the batch pipeline
//! reroutes: dependence chains, lock/shadow/data memory µops (check-heavy
//! pointer loops make the LL$ probe memo fire), call/ret identifier
//! traffic, and random branch outcomes that stress the pre-pass ordering
//! of the branch predictor against the fetch-block state.

use watchdog_isa::crack::{crack, CrackConfig, Cracked, CrackedInst};
use watchdog_isa::insn::{AluOp, Cond, Inst, MemAddr, PtrHint, Width};
use watchdog_isa::Gpr;
use watchdog_mem::HierarchyConfig;
use watchdog_pipeline::{CoreConfig, TimingCore, UopBatch};

fn g(n: u8) -> Gpr {
    Gpr::new(n)
}

fn assemble(inst: &Inst, ptr_op: bool, cfg: &CrackConfig, pc: u64, addrs: &[u64]) -> CrackedInst {
    let Cracked {
        mut uops,
        meta,
        ctrl,
    } = crack(inst, ptr_op, cfg);
    watchdog_isa::crack::fill_mem_addrs(&mut uops, addrs);
    CrackedInst {
        pc,
        len: inst.encoded_len(),
        uops,
        meta,
        ctrl,
    }
}

/// A mixed stream: pointer loads/stores with checks and shadow traffic,
/// ALU dependence chains, calls/returns, and branches whose outcome
/// follows a deterministic pseudo-random pattern.
fn mixed_stream(n: u64) -> Vec<CrackedInst> {
    let cfg = CrackConfig::watchdog();
    let mut out = Vec::new();
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut b = watchdog_isa::ProgramBuilder::new("x");
    let l = b.label();
    b.bind(l);
    b.nop();
    for i in 0..n {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let pc = 0x40_0000 + (i % 61) * 7;
        match i % 6 {
            0 => {
                // Pointer load: check (lock) + data load + shadow load. A
                // small lock-address working set makes repeat probes common,
                // exactly like a hot pointer in a loop.
                let inst = Inst::Load {
                    dst: g((i % 6) as u8),
                    addr: MemAddr::base(g(7)),
                    width: Width::B8,
                    hint: PtrHint::Auto,
                };
                let lock = 0x5000_0000 + (x % 4) * 8;
                let data = 0x2000_0000 + (x % 50_000);
                let shadow = 0x4000_0000_0000 + (data >> 3) * 16;
                out.push(assemble(&inst, true, &cfg, pc, &[lock, data, shadow]));
            }
            1 => {
                let inst = Inst::Store {
                    src: g((i % 6) as u8),
                    addr: MemAddr::base(g(7)),
                    width: Width::B8,
                    hint: PtrHint::Auto,
                };
                let lock = 0x5000_0000 + (x % 16) * 8;
                let data = 0x2000_0000 + (x % 50_000);
                out.push(assemble(&inst, false, &cfg, pc, &[lock, data]));
            }
            2 | 3 => {
                let inst = Inst::AluImm {
                    op: AluOp::Add,
                    dst: g(1),
                    a: g(1),
                    imm: 1,
                };
                out.push(assemble(&inst, false, &cfg, pc, &[]));
            }
            4 => {
                let inst = Inst::Branch {
                    cond: Cond::Eq,
                    a: g(0),
                    b: g(0),
                    target: l,
                };
                let mut ci = assemble(&inst, false, &cfg, pc, &[]);
                let taken = (x >> 62) & 1 == 1;
                let k = ci.uops.len();
                ci.uops.as_mut_slice()[k - 1].taken = taken;
                ci.uops.as_mut_slice()[k - 1].target = if taken { 0x40_0000 } else { pc + 6 };
                out.push(ci);
            }
            _ => {
                // Call/ret pair: stack identifier µops (LockLoad/LockStore)
                // plus RAS traffic.
                let call = Inst::Call { target: l };
                let mut ci = assemble(
                    &call,
                    false,
                    &cfg,
                    pc,
                    &[0x7fff_f000 - (i % 32) * 8, 0x6000_0000 + (i % 32) * 8],
                );
                let k = ci.uops.len();
                ci.uops.as_mut_slice()[k - 1].taken = true;
                ci.uops.as_mut_slice()[k - 1].target = 0x40_0000;
                out.push(ci);
                let mut ci = assemble(
                    &Inst::Ret,
                    false,
                    &cfg,
                    0x40_0000,
                    &[
                        0x7fff_f000 - (i % 32) * 8,
                        0x6000_0000 + (i % 32) * 8,
                        0x6000_0000 + (i % 32) * 8,
                    ],
                );
                let k = ci.uops.len();
                ci.uops.as_mut_slice()[k - 1].taken = true;
                ci.uops.as_mut_slice()[k - 1].target = pc + 1;
                out.push(ci);
            }
        }
    }
    out
}

fn run_per_inst(stream: &[CrackedInst]) -> String {
    let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
    for ci in stream {
        core.consume(ci);
    }
    format!("{:?}", core.finish())
}

fn run_batched(stream: &[CrackedInst], batch_insts: usize) -> String {
    let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
    let mut batch = UopBatch::new();
    for ci in stream {
        batch.push_cracked(ci);
        if batch.len() >= batch_insts {
            core.consume_batch(&batch);
            batch.clear();
        }
    }
    core.consume_batch(&batch);
    format!("{:?}", core.finish())
}

#[test]
fn any_batching_is_equivalent_to_per_inst() {
    let stream = mixed_stream(4000);
    let reference = run_per_inst(&stream);
    for batch_insts in [1, 3, UopBatch::TARGET_INSTS, 1009, stream.len()] {
        assert_eq!(
            reference,
            run_batched(&stream, batch_insts),
            "batch size {batch_insts} diverges from the per-instruction feed"
        );
    }
}

#[test]
fn feed_stats_track_batch_occupancy() {
    let stream = mixed_stream(600);
    let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
    let mut batch = UopBatch::new();
    for ci in &stream {
        batch.push_cracked(ci);
        if batch.len() >= UopBatch::TARGET_INSTS {
            core.consume_batch(&batch);
            batch.clear();
        }
    }
    core.consume_batch(&batch);
    let f = core.feed_stats();
    assert_eq!(f.insts, stream.len() as u64);
    assert_eq!(
        f.batches,
        stream.len().div_ceil(UopBatch::TARGET_INSTS) as u64
    );
    assert!(f.mean_occupancy() > (UopBatch::TARGET_INSTS / 2) as f64);
    assert!(f.uops > f.insts, "watchdog streams crack to >1 µop/inst");

    // The per-instruction shim reports occupancy 1.
    let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
    for ci in &stream {
        core.consume(ci);
    }
    let f = core.feed_stats();
    assert_eq!(f.batches, stream.len() as u64);
    assert_eq!(f.mean_occupancy(), 1.0);
}

#[test]
fn lock_probe_memo_fires_on_check_heavy_streams() {
    let stream = mixed_stream(3000);
    let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
    let mut batch = UopBatch::new();
    for ci in &stream {
        batch.push_cracked(ci);
    }
    core.consume_batch(&batch);
    assert!(
        core.hierarchy().ll_memo_hits() > 100,
        "hot lock probes must short-circuit ({} memo hits)",
        core.hierarchy().ll_memo_hits()
    );
    // An empty batch is a no-op, not a counted batch.
    let before = core.feed_stats();
    core.consume_batch(&UopBatch::new());
    assert_eq!(core.feed_stats(), before);
}

#[test]
fn control_stream_equivalence_across_batch_boundaries() {
    // Branches at batch edges are the riskiest case for the pre-pass
    // (fetch-block resets and redirects crossing a batch boundary): sweep
    // a range of small batch sizes so every phase alignment occurs.
    let stream = mixed_stream(900);
    let reference = run_per_inst(&stream);
    for batch_insts in 1..24 {
        assert_eq!(
            reference,
            run_batched(&stream, batch_insts),
            "batch size {batch_insts} diverges"
        );
    }
}

//! The timestamp-based out-of-order timing model.
//!
//! The model processes the committed µop stream in program order and
//! computes, for every µop, its **dispatch**, **issue**, **completion** and
//! **commit** timestamps under the machine constraints of Table 2:
//!
//! * frontend: 16 fetch bytes/cycle, 6 µops renamed+dispatched per cycle,
//!   I-cache misses and branch-misprediction redirects stall it;
//! * windows: dispatch stalls when the 168-entry ROB, 54-entry IQ or the
//!   64/36-entry load/store queues are full;
//! * scheduling: a µop issues when its sources are ready and a functional
//!   unit / cache port of the right class is free (checks use the dedicated
//!   lock-location-cache port when present — the Fig. 9 effect);
//! * memory: load-type µops complete after address generation plus the
//!   latency reported by the cache hierarchy;
//! * commit: in order, 6 µops per cycle.
//!
//! Because injected check/metadata µops have no consumers on the program's
//! critical path, they naturally overlap with real work — which is exactly
//! why the paper's 44% µop overhead turns into only ~15% slowdown (§9.3).

use watchdog_isa::crack::{CrackedInst, CtrlKind, Lane, MetaEffect};
use watchdog_isa::reg::{LReg, NUM_LREGS};
use watchdog_isa::uop::{Uop, UopKind, UopTag};
use watchdog_mem::{AccessClass, Hierarchy, HierarchyConfig, HierarchyStats};

use std::time::Instant;

use watchdog_telemetry::{MetricsRegistry, Unit};

use crate::batch::{FeedStats, MemOp, UopBatch};

use crate::bpred::{BpredStats, Predictor};
use crate::config::CoreConfig;
use crate::rename::{Rename, RenameConfig, RenameStats};
use crate::tele::{timed, CoreTelemetry, TelemetryConfig, NUM_STALL_CAUSES, STALL_CAUSE_NAMES};
use crate::wheel::{FuPools, HeapSched, SchedModel, WheelSched, WindowQueue};

/// Number of µop accounting tags.
pub const NUM_TAGS: usize = 6;

/// Registry-name suffix per µop accounting tag, in `uops_by_tag` order —
/// the single source behind both the run-level `timing.uops.*` export and
/// the CPI stack's `cpi.commit.*` metrics.
pub const TAG_NAMES: [&str; NUM_TAGS] = [
    "base",
    "check",
    "ptr_load",
    "ptr_store",
    "propagate",
    "alloc_dealloc",
];

const fn tag_index(tag: UopTag) -> usize {
    match tag {
        UopTag::Base => 0,
        UopTag::Check => 1,
        UopTag::PtrLoad => 2,
        UopTag::PtrStore => 3,
        UopTag::Propagate => 4,
        UopTag::AllocDealloc => 5,
    }
}

// Stall-cause indices into `CoreTelemetry::stall_slots`, matching
// `STALL_CAUSE_NAMES` order.
const ST_FETCH: usize = 0;
const ST_ICACHE: usize = 1;
const ST_REDIRECT: usize = 2;
const ST_ROB: usize = 3;
const ST_IQ: usize = 4;
const ST_LQ: usize = 5;
const ST_SQ: usize = 6;
const ST_FU: usize = 7;
const ST_DEP: usize = 8;
const ST_TLB: usize = 9;
const ST_LL: usize = 10;
const ST_L1D: usize = 11;

/// Functional-unit / cache-port classes the scheduler reserves from.
/// The discriminant indexes the [`FuPools`] pool arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fu {
    /// Integer ALUs (also absorb select/bounds-check/nop µops).
    IntAlu,
    /// Integer multiply/divide units.
    MulDiv,
    /// Floating-point ALUs.
    FpAlu,
    /// Floating-point multipliers.
    FpMul,
    /// Floating-point dividers.
    FpDiv,
    /// Branch-resolution units.
    Branch,
    /// L1-D load ports.
    LoadPort,
    /// L1-D store ports.
    StorePort,
    /// Dedicated lock-location-cache ports (the Fig. 9 effect).
    LlPort,
    /// Global issue bandwidth (Table 2: "Issue: 6-wide") — every µop
    /// consumes one issue slot in addition to its functional unit.
    IssueSlot,
}

/// Number of [`Fu`] classes (size of the pool arrays).
pub const NUM_FUS: usize = 10;

impl Fu {
    /// Every class, in pool-array order.
    pub const ALL: [Fu; NUM_FUS] = [
        Fu::IntAlu,
        Fu::MulDiv,
        Fu::FpAlu,
        Fu::FpMul,
        Fu::FpDiv,
        Fu::Branch,
        Fu::LoadPort,
        Fu::StorePort,
        Fu::LlPort,
        Fu::IssueSlot,
    ];

    /// Registry-name suffix for the class (telemetry export).
    pub fn label(self) -> &'static str {
        match self {
            Fu::IntAlu => "int_alu",
            Fu::MulDiv => "mul_div",
            Fu::FpAlu => "fp_alu",
            Fu::FpMul => "fp_mul",
            Fu::FpDiv => "fp_div",
            Fu::Branch => "branch",
            Fu::LoadPort => "load_port",
            Fu::StorePort => "store_port",
            Fu::LlPort => "ll_port",
            Fu::IssueSlot => "issue_slot",
        }
    }
}

/// Runtime dispatch descriptor of one µop kind: the per-kind facts the
/// scheduling loop needs — functional unit / cache port class, unit busy
/// time and static completion latency — resolved once at core
/// construction from the [`CoreConfig`] latencies and the hierarchy's
/// lock-cache configuration, so the hot loop's per-µop `match` collapses
/// into one dense table load (`kind as usize`).
///
/// For memory µops, `lat` holds only the *static* part of the completion
/// latency (address generation for reads, the single staging cycle for
/// writes); the dynamic hierarchy latency is added per access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchDesc {
    /// Functional unit / cache port class to reserve. For lock-class
    /// µops the lock-cache-vs-data-port routing decision is baked in
    /// here at construction time.
    pub fu: Fu,
    /// Cycles the reserved unit stays busy (1 for pipelined units, the
    /// full latency for the unpipelined dividers).
    pub busy: u64,
    /// Static completion latency added to the issue timestamp.
    pub lat: u64,
}

/// Builds the dense per-kind dispatch descriptor table, indexed by
/// `kind as usize` (the order guaranteed by
/// [`UopKind::ALL`](watchdog_isa::uop::UopKind::ALL)). `lock_via_ll`
/// routes lock-class µops to the dedicated lock-location-cache port
/// ([`Fu::LlPort`]) instead of the data-cache ports, matching
/// `Hierarchy::lock_cache_enabled` — the same decision the match-based
/// reference path makes per µop.
pub fn dispatch_descs(cfg: &CoreConfig, lock_via_ll: bool) -> [DispatchDesc; UopKind::COUNT] {
    let d = |fu, busy, lat| DispatchDesc { fu, busy, lat };
    let check_port = if lock_via_ll {
        Fu::LlPort
    } else {
        Fu::LoadPort
    };
    let lock_store_port = if lock_via_ll {
        Fu::LlPort
    } else {
        Fu::StorePort
    };
    std::array::from_fn(|i| match UopKind::ALL[i] {
        UopKind::IntAlu | UopKind::SelectMeta | UopKind::BoundsCheck | UopKind::Nop => {
            d(Fu::IntAlu, 1, cfg.lat_int_alu)
        }
        UopKind::IntMul => d(Fu::MulDiv, 1, cfg.lat_int_mul),
        UopKind::IntDiv => d(Fu::MulDiv, cfg.lat_int_div, cfg.lat_int_div),
        UopKind::FpAlu => d(Fu::FpAlu, 1, cfg.lat_fp_alu),
        UopKind::FpMul => d(Fu::FpMul, 1, cfg.lat_fp_mul),
        UopKind::FpDiv => d(Fu::FpDiv, cfg.lat_fp_div, cfg.lat_fp_div),
        UopKind::Branch => d(Fu::Branch, 1, 1),
        UopKind::Load | UopKind::ShadowLoad => d(Fu::LoadPort, 1, cfg.lat_agu),
        UopKind::Store | UopKind::ShadowStore => d(Fu::StorePort, 1, 1),
        UopKind::Check | UopKind::CheckCombined | UopKind::LockLoad => {
            d(check_port, 1, cfg.lat_agu)
        }
        UopKind::LockStore => d(lock_store_port, 1, 1),
    })
}

/// Per-µop results of the front half of the dispatch pipeline (frontend
/// slot, window-occupancy checks, source readiness), threaded into the
/// lane-specialized scheduling code and the commit-side bookkeeping.
#[derive(Clone, Copy)]
struct UopFront {
    /// Dispatch timestamp after frontend and window stalls.
    disp: u64,
    /// Latest source-operand completion time.
    ready: u64,
    /// Earliest issue time (`max(disp + dispatch_latency, ready)`).
    earliest: u64,
    /// Stall cause of the window that last raised `disp` (0 = none).
    win: usize,
}

/// Frontend stall cycles by cause (diagnostic).
#[derive(Debug, Clone, Copy, Default)]
pub struct StallCycles {
    /// Cycles the frontend waited on a full reorder buffer.
    pub rob: u64,
    /// Cycles waited on a full issue queue.
    pub iq: u64,
    /// Cycles waited on a full load queue.
    pub lq: u64,
    /// Cycles waited on a full store queue.
    pub sq: u64,
    /// Cycles lost to I-cache misses.
    pub icache: u64,
    /// Cycles lost to branch-misprediction redirects.
    pub redirect: u64,
}

/// Final timing statistics for one run.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Total execution cycles (commit time of the last µop).
    pub cycles: u64,
    /// Macro-instructions processed.
    pub insts: u64,
    /// Total µops executed.
    pub uops: u64,
    /// µops by accounting tag: `[base, check, ptr_load, ptr_store,
    /// propagate, alloc_dealloc]` (Fig. 8's breakdown).
    pub uops_by_tag: [u64; NUM_TAGS],
    /// Branch-predictor statistics.
    pub bpred: BpredStats,
    /// Rename statistics (copy elimination, refcount high-water).
    pub rename: RenameStats,
    /// Memory-hierarchy statistics.
    pub hierarchy: HierarchyStats,
    /// Frontend stall cycles by cause.
    pub stalls: StallCycles,
}

impl TimingReport {
    /// µops per cycle.
    pub fn uops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.uops as f64 / self.cycles as f64
        }
    }

    /// Macro-instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Watchdog µop overhead relative to the baseline µops in this run
    /// (Fig. 8): `(total - base) / base`.
    pub fn uop_overhead(&self) -> f64 {
        let base = self.uops_by_tag[0];
        if base == 0 {
            0.0
        } else {
            (self.uops - base) as f64 / base as f64
        }
    }
}

/// A point-in-time counter snapshot, used by the sampling driver (§9.1)
/// to measure deltas over sample windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Commit timestamp of the last committed µop.
    pub cycles: u64,
    /// µops consumed so far.
    pub uops: u64,
    /// Macro-instructions consumed so far.
    pub insts: u64,
    /// µops by accounting tag.
    pub uops_by_tag: [u64; NUM_TAGS],
}

impl Snapshot {
    /// Component-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let tags = std::array::from_fn(|i| self.uops_by_tag[i] - earlier.uops_by_tag[i]);
        Snapshot {
            cycles: self.cycles - earlier.cycles,
            uops: self.uops - earlier.uops,
            insts: self.insts - earlier.insts,
            uops_by_tag: tags,
        }
    }

    /// Component-wise accumulation.
    pub fn accumulate(&mut self, d: &Snapshot) {
        self.cycles += d.cycles;
        self.uops += d.uops;
        self.insts += d.insts;
        for i in 0..NUM_TAGS {
            self.uops_by_tag[i] += d.uops_by_tag[i];
        }
    }
}

/// The timing core, generic over its scheduling structures. Feed it the
/// committed instruction stream via [`ScheduledCore::consume_batch`] (or
/// the per-instruction [`ScheduledCore::consume`] shim), then call
/// [`ScheduledCore::finish`].
///
/// The consume loop is written once; the [`SchedModel`] parameter selects
/// the window-occupancy and FU-pool containers. [`TimingCore`]
/// (= `ScheduledCore<WheelSched>`) is the production instantiation —
/// rings, calendar wheel, cursor pools, allocation-free in the steady
/// state. [`ReferenceCore`] (= `ScheduledCore<HeapSched>`) keeps the
/// PR 5 heap/deque/scan structures as the bit-for-bit oracle the wheel is
/// tested against (same methodology as the repeat-probe memos).
#[derive(Debug)]
pub struct ScheduledCore<S: SchedModel> {
    cfg: CoreConfig,
    hier: Hierarchy,
    bpred: Predictor,
    rename: Rename,
    // Frontend state.
    fe_cycle: u64,
    fe_slots: u64,
    fe_bytes: u64,
    next_fetch_earliest: u64,
    last_fetch_block: u64,
    // Window occupancy (timestamps at which entries are released).
    rob: S::Rob,
    iq: S::Iq,
    lq: S::Memq,
    sq: S::Memq,
    // Dependence tracking: completion time per logical register.
    reg_ready: [u64; NUM_LREGS],
    // Per-FU-class next-free times (one entry per unit/port).
    pools: S::Pools,
    // In-order commit state.
    last_commit: u64,
    commit_cycle: u64,
    commit_count: u64,
    // Counters.
    insts: u64,
    uops: u64,
    uops_by_tag: [u64; NUM_TAGS],
    stalls: StallCycles,
    // Dense per-kind dispatch descriptors (table-driven fast path) and
    // the switch selecting the match-based reference path instead.
    disp: [DispatchDesc; UopKind::COUNT],
    use_match_dispatch: bool,
    // Batched-feed machinery (carries no timing state).
    shim: UopBatch,
    feed: FeedStats,
    // Optional self-profiler (host-side observation only: no timestamp
    // ever depends on it, so equivalence holds with it on or off).
    tele: Option<Box<CoreTelemetry>>,
}

/// The production timing core: calendar-wheel scheduled, allocation-free
/// in the steady state.
pub type TimingCore = ScheduledCore<WheelSched>;

/// The heap-scheduled reference core (test/bench oracle only).
pub type ReferenceCore = ScheduledCore<HeapSched>;

impl<S: SchedModel> ScheduledCore<S> {
    /// Builds a core with the given pipeline and hierarchy configurations.
    /// Every scheduling structure is sized here, once, from the configured
    /// window depths — the consume loop never allocates.
    pub fn new(cfg: CoreConfig, hier_cfg: HierarchyConfig) -> Self {
        let pools = S::Pools::new([
            cfg.int_alus,
            cfg.muldiv_units,
            cfg.fp_alus,
            cfg.fp_muls,
            cfg.fp_divs,
            cfg.branch_units,
            cfg.load_ports,
            cfg.store_ports,
            cfg.ll_ports,
            cfg.issue_width as usize,
        ]);
        let hier = Hierarchy::new(hier_cfg);
        let disp = dispatch_descs(&cfg, hier.lock_cache_enabled());
        ScheduledCore {
            hier,
            bpred: Predictor::new(cfg.ras_entries),
            rename: Rename::new(RenameConfig {
                int_regs: cfg.int_phys_regs,
                fp_regs: cfg.fp_phys_regs,
                meta_regs: cfg.meta_phys_regs,
            }),
            fe_cycle: 0,
            fe_slots: 0,
            fe_bytes: 0,
            next_fetch_earliest: 0,
            last_fetch_block: u64::MAX,
            rob: S::Rob::with_capacity(cfg.rob_entries),
            iq: S::Iq::with_capacity(cfg.iq_entries),
            lq: S::Memq::with_capacity(cfg.lq_entries),
            sq: S::Memq::with_capacity(cfg.sq_entries),
            reg_ready: [0; NUM_LREGS],
            pools,
            last_commit: 0,
            commit_cycle: 0,
            commit_count: 0,
            insts: 0,
            uops: 0,
            uops_by_tag: [0; NUM_TAGS],
            stalls: StallCycles::default(),
            disp,
            use_match_dispatch: false,
            shim: UopBatch::with_capacity(1),
            feed: FeedStats::default(),
            tele: None,
            cfg,
        }
    }

    /// Attaches the self-profiler. Call before feeding the core: the
    /// one-time `Box` here is the profiler's only allocation, keeping
    /// the consume loop allocation-free with recording on.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.tele = Some(Box::new(CoreTelemetry::new(cfg)));
    }

    /// Selects the match-based reference dispatch path instead of the
    /// table-driven lane-streaming default. The reference path keeps the
    /// original per-µop `match` dispatch alive as a bit-for-bit oracle
    /// (the same role `HeapSched` plays for the calendar-queue
    /// scheduler); the equivalence suites run every workload through
    /// both and assert field-identical reports.
    pub fn set_match_dispatch(&mut self, on: bool) {
        self.use_match_dispatch = on;
    }

    /// The collected profile, if telemetry was enabled.
    pub fn telemetry(&self) -> Option<&CoreTelemetry> {
        self.tele.as_deref()
    }

    /// Detaches and returns the collected profile (used by drivers that
    /// export telemetry before [`ScheduledCore::finish`] consumes the
    /// core).
    pub fn take_telemetry(&mut self) -> Option<Box<CoreTelemetry>> {
        self.tele.take()
    }

    /// Exports everything the core can observe about itself — the
    /// self-profiler (when enabled), per-unit FU utilization, the
    /// calendar wheel's overflow high-water mark and the batch-feed
    /// counters — into `reg` under the `profile.*` / `feed.*`
    /// namespaces.
    pub fn export_telemetry_into(&self, reg: &mut MetricsRegistry) {
        if let Some(t) = &self.tele {
            t.export_into(reg);
            // CPI stack under `cpi.*`: every commit slot of every cycle
            // attributed to exactly one cause. The drain tail — slots
            // after the last commit up to the report's cycle count, plus
            // the unfilled remainder of the last commit cycle — is
            // computed here from the same state `finish` reads, so
            // committed + stall + drain slots sum to exactly
            // `cycles × commit_width` (the zero-slack invariant).
            let width = self.cfg.commit_width;
            let cycles = self.last_commit.max(self.fe_cycle) + 1;
            reg.counter_at("cpi.cycles", Unit::Cycles, cycles);
            reg.counter_at("cpi.commit_width", Unit::Count, width);
            reg.counter_at("cpi.slots", Unit::Count, cycles * width);
            for (name, &slots) in TAG_NAMES.iter().zip(&t.commit_slots_by_tag) {
                reg.counter_at(&format!("cpi.commit.{name}"), Unit::Count, slots);
            }
            for (name, &slots) in STALL_CAUSE_NAMES.iter().zip(&t.stall_slots) {
                reg.counter_at(&format!("cpi.stall.{name}"), Unit::Count, slots);
            }
            let drain = (width - self.commit_count) + (cycles - 1 - self.last_commit) * width;
            reg.counter_at("cpi.stall.drain", Unit::Count, drain);
        }
        for fu in Fu::ALL {
            for (unit, &n) in self.fu_reserve_counts(fu).iter().enumerate() {
                reg.counter_at(&format!("profile.fu.{}.{unit}", fu.label()), Unit::Count, n);
            }
        }
        reg.counter_at(
            "profile.wheel.overflow_peak",
            Unit::Count,
            self.iq.overflow_peak() as u64,
        );
        self.feed.export_into(reg);
    }

    /// Immutable view of the memory hierarchy (for diagnostics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// How the committed µop stream arrived (batch occupancy diagnostics;
    /// deliberately outside [`TimingReport`]).
    pub fn feed_stats(&self) -> FeedStats {
        self.feed
    }

    /// Current counter snapshot (for sampled measurement windows).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cycles: self.last_commit,
            uops: self.uops,
            insts: self.insts,
            uops_by_tag: self.uops_by_tag,
        }
    }

    fn fe_next_cycle(&mut self) {
        self.fe_cycle += 1;
        self.fe_slots = 0;
        self.fe_bytes = 0;
    }

    fn fe_stall_to(&mut self, t: u64) {
        if t > self.fe_cycle {
            self.fe_cycle = t;
            self.fe_slots = 0;
            self.fe_bytes = 0;
        }
    }

    /// Reserves an earliest-free unit of class `fu`, not before
    /// `earliest`; occupies it for `busy` cycles. Returns the start time.
    fn reserve(&mut self, fu: Fu, earliest: u64, busy: u64) -> u64 {
        self.pools.reserve(fu as usize, earliest, busy)
    }

    /// Per-unit reservation counts of class `fu` (index = unit/port
    /// number) — the utilization breakdown the port-balance regression
    /// test pins.
    pub fn fu_reserve_counts(&self, fu: Fu) -> &[u64] {
        self.pools.reserve_counts(fu as usize)
    }

    /// `reserve_issue` for a dynamically-chosen port.
    fn reserve_issue2(&mut self, fu: Fu, earliest: u64) -> u64 {
        self.reserve_issue(fu, earliest, 1)
    }

    /// Reserves a global issue slot, then the requested functional unit —
    /// enforcing both the 6-wide issue limit and per-unit availability.
    fn reserve_issue(&mut self, fu: Fu, earliest: u64, busy: u64) -> u64 {
        let slot = self.reserve(Fu::IssueSlot, earliest, 1);
        self.reserve(fu, slot, busy)
    }

    /// Assigns a µop's commit timestamp (in order, `commit_width` per
    /// cycle).
    fn commit_time(&mut self, complete: u64) -> u64 {
        let mut t = complete.max(self.last_commit);
        if t == self.commit_cycle {
            if self.commit_count >= self.cfg.commit_width {
                t += 1;
                self.commit_cycle = t;
                self.commit_count = 1;
            } else {
                self.commit_count += 1;
            }
        } else {
            self.commit_cycle = t;
            self.commit_count = 1;
        }
        self.last_commit = t;
        t
    }

    /// Consumes one committed macro-instruction — a thin shim over a
    /// one-element [`UopBatch`], so the per-instruction and batched feeds
    /// run the exact same pipeline.
    pub fn consume(&mut self, inst: &CrackedInst) {
        let mut one = std::mem::take(&mut self.shim);
        one.clear();
        one.push_cracked(inst);
        self.consume_batch(&one);
        self.shim = one;
    }

    /// Consumes a batch of committed instructions, in program order.
    ///
    /// One fused pass over the SoA arrays: per instruction it touches the
    /// packed [`InstEvent`](crate::batch::InstEvent) record once, streams
    /// the 8-byte static µop descriptors through the scheduler, and reads
    /// the `mem`/`addr` arrays only where a µop actually accesses memory —
    /// where the per-instruction feed drags the full 40-byte
    /// [`UopExec`](watchdog_isa::uop::UopExec) per µop. Memory accesses
    /// drive [`Hierarchy::access`] inline, in exactly the per-instruction
    /// path's order: the I-fetch probe stream interleaves with µop
    /// accesses under branch-predictor control (a correctly-predicted
    /// taken branch resets the fetch block), and L2/L3 back every access
    /// class, so *any* batching of the hierarchy call stream would have to
    /// materialize the same interleaved sequence first — measured to cost
    /// more than it saves. The repeated-lock-probe fast path lives inside
    /// the hierarchy instead (see the lock-probe memo), where it serves
    /// every feed.
    ///
    /// Equivalence: each stateful component (hierarchy, predictor, rename)
    /// sees exactly the call sequence the per-instruction path produces,
    /// so the resulting [`TimingReport`] is identical for any batching of
    /// the same stream (the batch-equivalence suites assert this field
    /// for field).
    /// Dispatch paths: the default drains the batch's homogeneous
    /// [`LaneRun`](crate::batch::LaneRun)s through per-kind
    /// [`DispatchDesc`] table loads with every kind-dependent branch
    /// hoisted out of the inner loop; [`ScheduledCore::set_match_dispatch`]
    /// selects the original per-µop `match` path instead, preserved as
    /// the bit-for-bit reference oracle. Both produce field-identical
    /// reports (the dispatch-equivalence suite asserts this on every
    /// suite cell, mode and feed).
    pub fn consume_batch(&mut self, batch: &UopBatch) {
        let n = batch.len();
        if n == 0 {
            return;
        }
        self.feed.batches += 1;
        self.feed.insts += n as u64;
        self.feed.uops += batch.uops() as u64;
        if self.use_match_dispatch {
            // The lane path records runs from its dispatch cursor; the
            // reference path never walks the run list, so it observes the
            // same runs in one pass here.
            self.feed.observe_lane_runs(batch.lane_runs());
            self.consume_batch_match(batch);
        } else {
            self.consume_batch_lanes(batch);
        }
    }

    /// Front half of one µop's trip through the pipeline, shared by both
    /// dispatch paths: frontend slot accounting, window-occupancy checks
    /// (ROB/IQ and the LQ **or** SQ the µop's lane occupies) and source
    /// readiness. Inlined into the lane-specialized loops so the
    /// `is_load_like`/`is_store_like` constants fold away per lane.
    #[inline(always)]
    fn uop_front(
        &mut self,
        u: &Uop,
        is_load_like: bool,
        is_store_like: bool,
        sampled: bool,
        wheel_ns: &mut u64,
    ) -> UopFront {
        self.uops += 1;
        self.uops_by_tag[tag_index(u.tag)] += 1;

        // Frontend slot (rename/dispatch width).
        if self.fe_slots >= self.cfg.rename_width {
            self.fe_next_cycle();
        }
        self.fe_slots += 1;
        let mut disp = self.fe_cycle;

        // Wheel-drain phase: every window-occupancy check below.
        let t_wd = sampled.then(Instant::now);

        // Which window (if any) last raised this µop's dispatch time —
        // the CPI stack's window-full attribution.
        let mut win = 0usize;

        // ROB occupancy: entries leave at commit (monotone), so a full
        // window just waits for the head.
        if self.rob.len() >= self.cfg.rob_entries {
            let head = self.rob.pop_min().expect("rob non-empty");
            if head > disp {
                self.stalls.rob += head - disp;
                self.fe_stall_to(head);
                disp = head;
                win = ST_ROB;
            }
        }
        // IQ occupancy: entries leave at issue (drain deferred to
        // capacity events, same discipline as the reference path).
        if self.iq.len() >= self.cfg.iq_entries {
            self.iq.drain_le(disp);
            if self.iq.len() >= self.cfg.iq_entries {
                if let Some(t) = self.iq.pop_min() {
                    if t > disp {
                        self.stalls.iq += t - disp;
                        self.fe_stall_to(t);
                        disp = t;
                        win = ST_IQ;
                    }
                }
            }
        }
        // LQ/SQ occupancy: entries leave at commit.
        if is_load_like {
            if self.lq.len() >= self.cfg.lq_entries {
                self.lq.drain_le(disp);
                if self.lq.len() >= self.cfg.lq_entries {
                    if let Some(t) = self.lq.pop_min() {
                        if t > disp {
                            self.stalls.lq += t - disp;
                            self.fe_stall_to(t);
                            disp = t;
                            win = ST_LQ;
                        }
                    }
                }
            }
        } else if is_store_like && self.sq.len() >= self.cfg.sq_entries {
            self.sq.drain_le(disp);
            if self.sq.len() >= self.cfg.sq_entries {
                if let Some(t) = self.sq.pop_min() {
                    if t > disp {
                        self.stalls.sq += t - disp;
                        self.fe_stall_to(t);
                        disp = t;
                        win = ST_SQ;
                    }
                }
            }
        }
        if let Some(t0) = t_wd {
            *wheel_ns += t0.elapsed().as_nanos() as u64;
        }

        // Source readiness.
        let mut ready = 0u64;
        if let Some(src) = u.src1 {
            ready = ready.max(self.reg_ready[src.index()]);
        }
        if let Some(src) = u.src2 {
            ready = ready.max(self.reg_ready[src.index()]);
        }
        let earliest = (disp + self.cfg.dispatch_latency).max(ready);
        UopFront {
            disp,
            ready,
            earliest,
            win,
        }
    }

    /// Back half of one µop's trip, shared by both dispatch paths:
    /// wheel-lead observation, destination readiness, CPI-stack
    /// accounting (read off the commit-slot state *before*
    /// [`ScheduledCore::commit_time`] advances it) and the commit-phase
    /// window pushes. Observation-only work is gated exactly as in the
    /// reference path, so no timestamp ever depends on telemetry.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn uop_back(
        &mut self,
        u: &Uop,
        f: UopFront,
        issue: u64,
        complete: u64,
        outcome_eligible: bool,
        is_load_like: bool,
        is_store_like: bool,
        fe_cause: usize,
        sampled: bool,
        tele_on: bool,
        cpi_commit: &mut [u64; NUM_TAGS],
        cpi_stall: &mut [u64; NUM_STALL_CAUSES],
        commit_ns: &mut u64,
    ) {
        if sampled {
            let t = self.tele.as_deref_mut().expect("telemetry enabled");
            t.wheel_lead.observe(issue - f.disp);
        }

        if let Some(d) = u.dst {
            self.reg_ready[d.index()] = complete;
        }

        // CPI-stack accounting: slots between the previous commit and
        // this µop's commit are a gap, charged to one cause (first match
        // wins — memory miss outstanding, FU contention, dependency
        // wait, window full, frontend).
        if tele_on {
            let width = self.cfg.commit_width;
            let t = complete.max(self.last_commit);
            let gap = if t > self.commit_cycle {
                (width - self.commit_count) + (t - self.commit_cycle - 1) * width
            } else {
                0
            };
            if gap > 0 {
                // A load-class µop whose access just walked the
                // hierarchy: the outcome flags say which structure
                // missed (stores complete at issue+1, so a store's miss
                // never explains its commit gap).
                let outcome = outcome_eligible.then(|| self.hier.last_outcome());
                let cause = match outcome {
                    Some(o) if o.tlb_miss => ST_TLB,
                    Some(o) if o.l1_miss && o.lock_path => ST_LL,
                    Some(o) if o.l1_miss => ST_L1D,
                    _ if issue > f.earliest => ST_FU,
                    _ if f.ready > f.disp + self.cfg.dispatch_latency => ST_DEP,
                    _ if f.win != 0 => f.win,
                    _ => fe_cause,
                };
                cpi_stall[cause] += gap;
            }
            cpi_commit[tag_index(u.tag)] += 1;
        }

        // Commit phase: slot assignment + window pushes.
        let t_c = sampled.then(Instant::now);
        let commit = self.commit_time(complete);
        self.rob.push(commit);
        self.iq.push(issue);
        if is_load_like {
            self.lq.push(commit);
        } else if is_store_like {
            self.sq.push(commit);
        }
        if let Some(t0) = t_c {
            *commit_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// The table-driven lane-streaming dispatch path (the default).
    ///
    /// Per instruction it runs the same frontend/rename prologue and
    /// branch epilogue as the reference path, but drains the µop range
    /// as homogeneous [`LaneRun`](crate::batch::LaneRun)s: a monotone
    /// cursor walks the batch's run list (runs tile the µop arrays and
    /// never cross instruction boundaries), and each run selects its
    /// dispatch shape — fixed-latency compute, hierarchy read, or
    /// hierarchy write — **once**, so the inner loop is free of
    /// kind-dependent branches; per-µop facts (unit class, busy time,
    /// static latency) come from the dense [`DispatchDesc`] table.
    ///
    /// Every stateful component (hierarchy, predictor, rename, pools,
    /// windows) sees exactly the call sequence the reference path
    /// produces, in the same program order — lane runs reorder nothing;
    /// they only hoist control flow.
    fn consume_batch_lanes(&mut self, batch: &UopBatch) {
        let n = batch.len();
        let insts = batch.insts();
        let uops = batch.uop_descs();
        let mems = batch.mems();
        let addrs = batch.addrs();
        let runs = batch.lane_runs();

        // Self-profiler prologue (identical to the reference path).
        let tele_on = self.tele.is_some();
        let sampled = if tele_on {
            let (rob, iq) = (self.rob.len() as u64, self.iq.len() as u64);
            let (lq, sq) = (self.lq.len() as u64, self.sq.len() as u64);
            let t = self.tele.as_deref_mut().expect("telemetry enabled");
            t.rob_occupancy.observe(rob);
            t.iq_occupancy.observe(iq);
            t.lq_occupancy.observe(lq);
            t.sq_occupancy.observe(sq);
            t.begin_batch()
        } else {
            false
        };
        let t_batch = sampled.then(Instant::now);
        let (mut wheel_ns, mut hier_ns, mut commit_ns) = (0u64, 0u64, 0u64);

        let mut cpi_commit = [0u64; NUM_TAGS];
        let mut cpi_stall = [0u64; NUM_STALL_CAUSES];

        // Monotone cursor into the batch's lane runs.
        let mut ri = 0usize;
        for (i, ev) in insts.iter().enumerate() {
            self.insts += 1;

            // Frontend cause of record for this instruction's commit
            // gaps (see the reference path).
            let mut fe_cause = ST_FETCH;

            // Honour a pending redirect (mispredicted branch before us).
            if self.next_fetch_earliest > self.fe_cycle {
                self.stalls.redirect += self.next_fetch_earliest - self.fe_cycle;
                self.fe_stall_to(self.next_fetch_earliest);
                fe_cause = ST_REDIRECT;
            }

            // Instruction fetch: one I-cache access per new 64-byte block.
            let block = ev.pc / 64;
            if block != self.last_fetch_block {
                self.last_fetch_block = block;
                let lat = timed(sampled, &mut hier_ns, || {
                    self.hier.access(AccessClass::Ifetch, ev.pc, false)
                });
                let l1 = 3;
                if lat > l1 {
                    self.stalls.icache += lat - l1;
                    let stall_to = self.fe_cycle + (lat - l1);
                    self.fe_stall_to(stall_to);
                    fe_cause = ST_ICACHE;
                }
            }

            // Fetch bandwidth: 16 bytes per cycle.
            let len = u64::from(ev.len);
            if self.fe_bytes + len > self.cfg.fetch_bytes_per_cycle {
                self.fe_next_cycle();
            }
            self.fe_bytes += len;

            // Rename bookkeeping and its timing effect.
            let r = batch.uop_range(i);
            for u in &uops[r.clone()] {
                self.rename.rename_dst(u.dst);
            }
            self.rename.apply_meta(&ev.meta);
            match ev.meta {
                MetaEffect::None => {}
                MetaEffect::Copy { dst, src } => {
                    self.reg_ready[LReg::M(dst).index()] = self.reg_ready[LReg::M(src).index()];
                }
                MetaEffect::Invalidate(r) | MetaEffect::Global(r) => {
                    self.reg_ready[LReg::M(r).index()] = 0;
                }
            }

            let mut branch_complete = 0u64;

            // Drain this instruction's µops run by run. Runs tile the
            // µop arrays in program order and never cross instruction
            // boundaries, so the cursor walk covers `r` exactly.
            while ri < runs.len() && (runs[ri].start as usize) < r.end {
                let run = runs[ri];
                ri += 1;
                self.feed.observe_run(run);
                let s = run.start as usize;
                let e = s + run.len as usize;
                debug_assert!(s >= r.start && e <= r.end, "run crosses inst boundary");
                match run.lane {
                    // Fixed-latency compute: reserve the descriptor's
                    // unit, complete after its static latency.
                    Lane::Alu => {
                        for u in &uops[s..e] {
                            let f = self.uop_front(u, false, false, sampled, &mut wheel_ns);
                            let desc = self.disp[u.kind as usize];
                            let st = self.reserve_issue(desc.fu, f.earliest, desc.busy);
                            self.uop_back(
                                u,
                                f,
                                st,
                                st + desc.lat,
                                false,
                                false,
                                false,
                                fe_cause,
                                sampled,
                                tele_on,
                                &mut cpi_commit,
                                &mut cpi_stall,
                                &mut commit_ns,
                            );
                        }
                    }
                    // Branch: fixed-latency compute that records the
                    // completion time the frontend redirects against.
                    Lane::Branch => {
                        for u in &uops[s..e] {
                            let f = self.uop_front(u, false, false, sampled, &mut wheel_ns);
                            let desc = self.disp[u.kind as usize];
                            let st = self.reserve_issue(desc.fu, f.earliest, desc.busy);
                            let complete = st + desc.lat;
                            branch_complete = complete;
                            self.uop_back(
                                u,
                                f,
                                st,
                                complete,
                                false,
                                false,
                                false,
                                fe_cause,
                                sampled,
                                tele_on,
                                &mut cpi_commit,
                                &mut cpi_stall,
                                &mut commit_ns,
                            );
                        }
                    }
                    // Hierarchy reads (data/shadow loads and the
                    // lock-location checks): address generation plus the
                    // dynamic access latency; occupies the LQ.
                    Lane::Load | Lane::MetaCheck => {
                        for idx in s..e {
                            let u = &uops[idx];
                            let f = self.uop_front(u, true, false, sampled, &mut wheel_ns);
                            let desc = self.disp[u.kind as usize];
                            let st = self.reserve_issue(desc.fu, f.earliest, desc.busy);
                            let MemOp::Read(class) = mems[idx] else {
                                unreachable!("read-lane µops are classified as reads")
                            };
                            let lat = timed(sampled, &mut hier_ns, || {
                                self.hier.access(class, addrs[idx], false)
                            });
                            self.uop_back(
                                u,
                                f,
                                st,
                                st + desc.lat + lat,
                                true,
                                true,
                                false,
                                fe_cause,
                                sampled,
                                tele_on,
                                &mut cpi_commit,
                                &mut cpi_stall,
                                &mut commit_ns,
                            );
                        }
                    }
                    // Hierarchy writes (data/shadow stores and
                    // lock-location updates): complete once address+data
                    // are staged, drain from the SQ after commit.
                    Lane::Store | Lane::MetaUpdate => {
                        for idx in s..e {
                            let u = &uops[idx];
                            let f = self.uop_front(u, false, true, sampled, &mut wheel_ns);
                            let desc = self.disp[u.kind as usize];
                            let st = self.reserve_issue(desc.fu, f.earliest, desc.busy);
                            let MemOp::Write(class) = mems[idx] else {
                                unreachable!("write-lane µops are classified as writes")
                            };
                            let _ = timed(sampled, &mut hier_ns, || {
                                self.hier.access(class, addrs[idx], true)
                            });
                            self.uop_back(
                                u,
                                f,
                                st,
                                st + desc.lat,
                                false,
                                false,
                                true,
                                fe_cause,
                                sampled,
                                tele_on,
                                &mut cpi_commit,
                                &mut cpi_stall,
                                &mut commit_ns,
                            );
                        }
                    }
                }
            }

            // Branch prediction epilogue (identical to the reference
            // path).
            if ev.ctrl != CtrlKind::None {
                let fallthrough = ev.pc + u64::from(ev.len);
                let correct = self
                    .bpred
                    .observe(ev.pc, ev.ctrl, ev.taken, ev.target, fallthrough);
                if !correct {
                    self.next_fetch_earliest = branch_complete + self.cfg.redirect_penalty;
                } else if ev.taken {
                    self.fe_next_cycle();
                    self.last_fetch_block = u64::MAX;
                }
            }
        }

        // Self-profiler epilogue (identical to the reference path).
        if tele_on {
            let total = t_batch.map(|t0| t0.elapsed().as_nanos() as u64);
            let t = self.tele.as_deref_mut().expect("telemetry enabled");
            t.insts += n as u64;
            t.uops += uops.len() as u64;
            for u in uops {
                t.dispatch_by_kind[u.kind as usize] += 1;
            }
            for (acc, add) in t.commit_slots_by_tag.iter_mut().zip(cpi_commit) {
                *acc += add;
            }
            for (acc, add) in t.stall_slots.iter_mut().zip(cpi_stall) {
                *acc += add;
            }
            if let Some(total_ns) = total {
                t.phases.batches_sampled += 1;
                t.phases.total_ns += total_ns;
                t.phases.wheel_drain_ns += wheel_ns;
                t.phases.hierarchy_ns += hier_ns;
                t.phases.commit_ns += commit_ns;
            }
        }
    }

    /// The original per-µop `match` dispatch path, preserved as the
    /// bit-for-bit reference oracle for the table-driven lane path
    /// (selected via [`ScheduledCore::set_match_dispatch`], the same
    /// role [`HeapSched`] plays for the calendar-queue scheduler).
    fn consume_batch_match(&mut self, batch: &UopBatch) {
        let n = batch.len();
        let insts = batch.insts();
        let uops = batch.uop_descs();
        let mems = batch.mems();
        let addrs = batch.addrs();

        // Self-profiler prologue: sample window occupancy at the batch
        // boundary and decide whether this batch is phase-timed. One
        // predictable branch when telemetry is off.
        let tele_on = self.tele.is_some();
        let sampled = if tele_on {
            let (rob, iq) = (self.rob.len() as u64, self.iq.len() as u64);
            let (lq, sq) = (self.lq.len() as u64, self.sq.len() as u64);
            let t = self.tele.as_deref_mut().expect("telemetry enabled");
            t.rob_occupancy.observe(rob);
            t.iq_occupancy.observe(iq);
            t.lq_occupancy.observe(lq);
            t.sq_occupancy.observe(sq);
            t.begin_batch()
        } else {
            false
        };
        let t_batch = sampled.then(Instant::now);
        let (mut wheel_ns, mut hier_ns, mut commit_ns) = (0u64, 0u64, 0u64);

        // CPI-stack accumulators, flushed into the profiler once per batch
        // (plain locals, so the hot loop never re-borrows `self.tele`).
        let mut cpi_commit = [0u64; NUM_TAGS];
        let mut cpi_stall = [0u64; NUM_STALL_CAUSES];

        let lock_via_ll = self.hier.lock_cache_enabled();
        for (i, ev) in insts.iter().enumerate() {
            self.insts += 1;

            // Frontend cause of record for this instruction's commit gaps:
            // plain fetch bandwidth unless a redirect or I-cache miss
            // starved the frontend here.
            let mut fe_cause = ST_FETCH;

            // Honour a pending redirect (mispredicted branch before us).
            if self.next_fetch_earliest > self.fe_cycle {
                self.stalls.redirect += self.next_fetch_earliest - self.fe_cycle;
                self.fe_stall_to(self.next_fetch_earliest);
                fe_cause = ST_REDIRECT;
            }

            // Instruction fetch: one I-cache access per new 64-byte block.
            let block = ev.pc / 64;
            if block != self.last_fetch_block {
                self.last_fetch_block = block;
                let lat = timed(sampled, &mut hier_ns, || {
                    self.hier.access(AccessClass::Ifetch, ev.pc, false)
                });
                let l1 = 3;
                if lat > l1 {
                    // An I-cache miss starves the frontend for the extra
                    // cycles.
                    self.stalls.icache += lat - l1;
                    let stall_to = self.fe_cycle + (lat - l1);
                    self.fe_stall_to(stall_to);
                    fe_cause = ST_ICACHE;
                }
            }

            // Fetch bandwidth: 16 bytes per cycle.
            let len = u64::from(ev.len);
            if self.fe_bytes + len > self.cfg.fetch_bytes_per_cycle {
                self.fe_next_cycle();
            }
            self.fe_bytes += len;

            // Rename bookkeeping (map-table structure + copy elimination)
            // and its timing effect: a metadata copy makes the destination
            // ready exactly when the source is — with no µop executed.
            let r = batch.uop_range(i);
            for u in &uops[r.clone()] {
                self.rename.rename_dst(u.dst);
            }
            self.rename.apply_meta(&ev.meta);
            match ev.meta {
                MetaEffect::None => {}
                MetaEffect::Copy { dst, src } => {
                    self.reg_ready[LReg::M(dst).index()] = self.reg_ready[LReg::M(src).index()];
                }
                MetaEffect::Invalidate(r) | MetaEffect::Global(r) => {
                    self.reg_ready[LReg::M(r).index()] = 0;
                }
            }

            let mut branch_complete = 0u64;

            for ((u, &mem), &addr) in uops[r.clone()].iter().zip(&mems[r.clone()]).zip(&addrs[r]) {
                self.uops += 1;
                self.uops_by_tag[tag_index(u.tag)] += 1;

                // Frontend slot (rename/dispatch width).
                if self.fe_slots >= self.cfg.rename_width {
                    self.fe_next_cycle();
                }
                self.fe_slots += 1;
                let mut disp = self.fe_cycle;

                // Wheel-drain phase: every window-occupancy check below.
                let t_wd = sampled.then(Instant::now);

                // Which window (if any) last raised this µop's dispatch
                // time — the CPI stack's window-full attribution.
                let mut win = 0usize;

                // ROB occupancy: entries leave at commit (monotone), so
                // a full window just waits for the head.
                if self.rob.len() >= self.cfg.rob_entries {
                    let head = self.rob.pop_min().expect("rob non-empty");
                    if head > disp {
                        self.stalls.rob += head - disp;
                        self.fe_stall_to(head);
                        disp = head;
                        win = ST_ROB;
                    }
                }
                // IQ occupancy: entries leave at issue. Draining is
                // deferred to capacity events: released entries linger in
                // the wheel, but occupancy is only *observable* through
                // this full-window check, and the drain bounds (disp) stay
                // monotone — so stalls, pops and reports are identical to
                // draining every µop, at a fraction of the calls.
                if self.iq.len() >= self.cfg.iq_entries {
                    self.iq.drain_le(disp);
                    if self.iq.len() >= self.cfg.iq_entries {
                        if let Some(t) = self.iq.pop_min() {
                            if t > disp {
                                self.stalls.iq += t - disp;
                                self.fe_stall_to(t);
                                disp = t;
                                win = ST_IQ;
                            }
                        }
                    }
                }
                // LQ/SQ occupancy: entries leave at commit.
                let kind = u.kind;
                let (is_load_like, is_store_like) = match mem {
                    MemOp::None => (false, false),
                    MemOp::Read(_) => (true, false),
                    MemOp::Write(_) => (false, true),
                };
                if is_load_like {
                    if self.lq.len() >= self.cfg.lq_entries {
                        self.lq.drain_le(disp);
                        if self.lq.len() >= self.cfg.lq_entries {
                            if let Some(t) = self.lq.pop_min() {
                                if t > disp {
                                    self.stalls.lq += t - disp;
                                    self.fe_stall_to(t);
                                    disp = t;
                                    win = ST_LQ;
                                }
                            }
                        }
                    }
                } else if is_store_like && self.sq.len() >= self.cfg.sq_entries {
                    self.sq.drain_le(disp);
                    if self.sq.len() >= self.cfg.sq_entries {
                        if let Some(t) = self.sq.pop_min() {
                            if t > disp {
                                self.stalls.sq += t - disp;
                                self.fe_stall_to(t);
                                disp = t;
                                win = ST_SQ;
                            }
                        }
                    }
                }
                if let Some(t0) = t_wd {
                    wheel_ns += t0.elapsed().as_nanos() as u64;
                }

                // Source readiness.
                let mut ready = 0u64;
                if let Some(src) = u.src1 {
                    ready = ready.max(self.reg_ready[src.index()]);
                }
                if let Some(src) = u.src2 {
                    ready = ready.max(self.reg_ready[src.index()]);
                }
                let earliest = (disp + self.cfg.dispatch_latency).max(ready);

                // Schedule on a functional unit / cache port.
                let (issue, complete) = match kind {
                    UopKind::IntAlu | UopKind::SelectMeta | UopKind::BoundsCheck | UopKind::Nop => {
                        let st = self.reserve_issue(Fu::IntAlu, earliest, 1);
                        (st, st + self.cfg.lat_int_alu)
                    }
                    UopKind::IntMul => {
                        let st = self.reserve_issue(Fu::MulDiv, earliest, 1);
                        (st, st + self.cfg.lat_int_mul)
                    }
                    UopKind::IntDiv => {
                        let st = self.reserve_issue(Fu::MulDiv, earliest, self.cfg.lat_int_div);
                        (st, st + self.cfg.lat_int_div)
                    }
                    UopKind::FpAlu => {
                        let st = self.reserve_issue(Fu::FpAlu, earliest, 1);
                        (st, st + self.cfg.lat_fp_alu)
                    }
                    UopKind::FpMul => {
                        let st = self.reserve_issue(Fu::FpMul, earliest, 1);
                        (st, st + self.cfg.lat_fp_mul)
                    }
                    UopKind::FpDiv => {
                        let st = self.reserve_issue(Fu::FpDiv, earliest, self.cfg.lat_fp_div);
                        (st, st + self.cfg.lat_fp_div)
                    }
                    UopKind::Branch => {
                        let st = self.reserve_issue(Fu::Branch, earliest, 1);
                        (st, st + 1)
                    }
                    UopKind::Load | UopKind::ShadowLoad => {
                        let st = self.reserve_issue(Fu::LoadPort, earliest, 1);
                        let MemOp::Read(class) = mem else {
                            unreachable!("load µops are classified as reads")
                        };
                        let lat = timed(sampled, &mut hier_ns, || {
                            self.hier.access(class, addr, false)
                        });
                        (st, st + self.cfg.lat_agu + lat)
                    }
                    UopKind::Store | UopKind::ShadowStore => {
                        let st = self.reserve_issue(Fu::StorePort, earliest, 1);
                        let MemOp::Write(class) = mem else {
                            unreachable!("store µops are classified as writes")
                        };
                        let _ = timed(sampled, &mut hier_ns, || {
                            self.hier.access(class, addr, true)
                        });
                        // Stores complete once address+data are staged;
                        // the write drains from the SQ after commit.
                        (st, st + 1)
                    }
                    UopKind::Check | UopKind::CheckCombined | UopKind::LockLoad => {
                        let port = if lock_via_ll {
                            Fu::LlPort
                        } else {
                            Fu::LoadPort
                        };
                        let st = self.reserve_issue2(port, earliest);
                        let lat = timed(sampled, &mut hier_ns, || {
                            self.hier.access(AccessClass::Lock, addr, false)
                        });
                        (st, st + self.cfg.lat_agu + lat)
                    }
                    UopKind::LockStore => {
                        let port = if lock_via_ll {
                            Fu::LlPort
                        } else {
                            Fu::StorePort
                        };
                        let st = self.reserve_issue2(port, earliest);
                        let _ = timed(sampled, &mut hier_ns, || {
                            self.hier.access(AccessClass::Lock, addr, true)
                        });
                        (st, st + 1)
                    }
                };

                if sampled {
                    let t = self.tele.as_deref_mut().expect("telemetry enabled");
                    t.wheel_lead.observe(issue - disp);
                }

                if let Some(d) = u.dst {
                    self.reg_ready[d.index()] = complete;
                }
                if kind == UopKind::Branch {
                    branch_complete = complete;
                }

                // CPI-stack accounting, read off the commit-slot state
                // *before* `commit_time` advances it: slots between the
                // previous commit and this µop's commit are a gap, charged
                // to one cause (first match wins — memory miss outstanding,
                // FU contention, dependency wait, window full, frontend).
                // The committed µop itself takes one slot under its tag.
                // Everything here is observation; no timestamp depends on
                // it, so equivalence holds with telemetry on or off.
                if tele_on {
                    let width = self.cfg.commit_width;
                    let t = complete.max(self.last_commit);
                    let gap = if t > self.commit_cycle {
                        (width - self.commit_count) + (t - self.commit_cycle - 1) * width
                    } else {
                        0
                    };
                    if gap > 0 {
                        // A load-class µop whose access just walked the
                        // hierarchy: the outcome flags say which structure
                        // missed (stores complete at issue+1, so a store's
                        // miss never explains its commit gap).
                        let outcome = matches!(
                            kind,
                            UopKind::Load
                                | UopKind::ShadowLoad
                                | UopKind::Check
                                | UopKind::CheckCombined
                                | UopKind::LockLoad
                        )
                        .then(|| self.hier.last_outcome());
                        let cause = match outcome {
                            Some(o) if o.tlb_miss => ST_TLB,
                            Some(o) if o.l1_miss && o.lock_path => ST_LL,
                            Some(o) if o.l1_miss => ST_L1D,
                            _ if issue > earliest => ST_FU,
                            _ if ready > disp + self.cfg.dispatch_latency => ST_DEP,
                            _ if win != 0 => win,
                            _ => fe_cause,
                        };
                        cpi_stall[cause] += gap;
                    }
                    cpi_commit[tag_index(u.tag)] += 1;
                }

                // Commit phase: slot assignment + window pushes.
                let t_c = sampled.then(Instant::now);
                let commit = self.commit_time(complete);
                self.rob.push(commit);
                self.iq.push(issue);
                if is_load_like {
                    self.lq.push(commit);
                } else if is_store_like {
                    self.sq.push(commit);
                }
                if let Some(t0) = t_c {
                    commit_ns += t0.elapsed().as_nanos() as u64;
                }
            }

            // Branch prediction: a mispredict redirects the frontend after
            // the branch resolves; a correctly-predicted taken branch still
            // ends the current fetch group.
            if ev.ctrl != CtrlKind::None {
                let fallthrough = ev.pc + u64::from(ev.len);
                let correct = self
                    .bpred
                    .observe(ev.pc, ev.ctrl, ev.taken, ev.target, fallthrough);
                if !correct {
                    self.next_fetch_earliest = branch_complete + self.cfg.redirect_penalty;
                } else if ev.taken {
                    self.fe_next_cycle();
                    self.last_fetch_block = u64::MAX;
                }
            }
        }

        // Self-profiler epilogue: per-kind dispatch counters as one
        // cache-hot pass over the batch's µop descriptors, plus the phase
        // totals when this batch was timed.
        if tele_on {
            let total = t_batch.map(|t0| t0.elapsed().as_nanos() as u64);
            let t = self.tele.as_deref_mut().expect("telemetry enabled");
            t.insts += n as u64;
            t.uops += uops.len() as u64;
            for u in uops {
                t.dispatch_by_kind[u.kind as usize] += 1;
            }
            for (acc, add) in t.commit_slots_by_tag.iter_mut().zip(cpi_commit) {
                *acc += add;
            }
            for (acc, add) in t.stall_slots.iter_mut().zip(cpi_stall) {
                *acc += add;
            }
            if let Some(total_ns) = total {
                t.phases.batches_sampled += 1;
                t.phases.total_ns += total_ns;
                t.phases.wheel_drain_ns += wheel_ns;
                t.phases.hierarchy_ns += hier_ns;
                t.phases.commit_ns += commit_ns;
            }
        }
    }

    /// Finalizes the run and returns the report.
    pub fn finish(self) -> TimingReport {
        TimingReport {
            cycles: self.last_commit.max(self.fe_cycle) + 1,
            insts: self.insts,
            uops: self.uops,
            uops_by_tag: self.uops_by_tag,
            bpred: self.bpred.stats(),
            rename: self.rename.stats(),
            hierarchy: self.hier.stats(),
            stalls: self.stalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchdog_isa::crack::{crack, CrackConfig, Cracked};
    use watchdog_isa::insn::{AluOp, Inst, MemAddr, PtrHint, Width};
    use watchdog_isa::reg::Gpr;

    fn g(n: u8) -> Gpr {
        Gpr::new(n)
    }

    fn cracked(
        inst: &Inst,
        ptr_op: bool,
        cfg: &CrackConfig,
        pc: u64,
        addrs: &[u64],
    ) -> CrackedInst {
        let Cracked {
            mut uops,
            meta,
            ctrl,
        } = crack(inst, ptr_op, cfg);
        watchdog_isa::crack::fill_mem_addrs(&mut uops, addrs);
        CrackedInst {
            pc,
            len: inst.encoded_len(),
            uops,
            meta,
            ctrl,
        }
    }

    fn run_alu_stream(dependent: bool, n: u64) -> TimingReport {
        let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
        for i in 0..n {
            let (dst, a) = if dependent {
                (g(1), g(1))
            } else {
                (g((i % 8) as u8), g(8))
            };
            let inst = Inst::AluImm {
                op: AluOp::Add,
                dst,
                a,
                imm: 1,
            };
            let ci = cracked(
                &inst,
                false,
                &CrackConfig::baseline(),
                0x40_0000 + i * 5,
                &[],
            );
            core.consume(&ci);
        }
        core.finish()
    }

    #[test]
    fn independent_alus_reach_wide_ipc() {
        let r = run_alu_stream(false, 3000);
        assert!(
            r.ipc() > 2.5,
            "independent ALU stream should be wide (ipc={})",
            r.ipc()
        );
    }

    #[test]
    fn dependent_chain_limits_to_one_per_cycle() {
        let r = run_alu_stream(true, 3000);
        assert!(
            r.ipc() < 1.2,
            "dependent chain must serialize (ipc={})",
            r.ipc()
        );
        assert!(r.ipc() > 0.8, "but still one per cycle (ipc={})", r.ipc());
    }

    #[test]
    fn check_uops_overlap_with_work() {
        // The same loads with and without Watchdog: the injected checks and
        // shadow loads must cost far less than their µop share.
        let mk = |wd: bool| {
            let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
            let cfg = if wd {
                CrackConfig::watchdog()
            } else {
                CrackConfig::baseline()
            };
            for i in 0..4000u64 {
                let addr = 0x2000_0000 + (i % 64) * 8;
                let inst = Inst::Load {
                    dst: g(1),
                    addr: MemAddr::base(g(2)),
                    width: Width::B8,
                    hint: PtrHint::Auto,
                };
                let addrs: Vec<u64> = if wd {
                    vec![0x5000_0000, addr, 0x4000_0000_0000 + (addr >> 3) * 16]
                } else {
                    vec![addr]
                };
                let ci = cracked(&inst, wd, &cfg, 0x40_0000 + i * 5, &addrs);
                core.consume(&ci);
                // A consumer of the loaded value.
                let use_inst = Inst::AluImm {
                    op: AluOp::Add,
                    dst: g(3),
                    a: g(1),
                    imm: 1,
                };
                core.consume(&cracked(&use_inst, false, &cfg, 0x40_0010 + i * 5, &[]));
            }
            core.finish()
        };
        let base = mk(false);
        let wd = mk(true);
        let uop_ovh = wd.uops as f64 / base.uops as f64 - 1.0;
        let time_ovh = wd.cycles as f64 / base.cycles as f64 - 1.0;
        assert!(
            uop_ovh > 0.5,
            "watchdog should add >50% µops here ({uop_ovh:.2})"
        );
        assert!(
            time_ovh < uop_ovh * 0.7,
            "checks must be (mostly) off the critical path: time {time_ovh:.2} vs uops {uop_ovh:.2}"
        );
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let mk = |pattern_random: bool| {
            let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
            let mut b = watchdog_isa::ProgramBuilder::new("x");
            let l = b.label();
            b.bind(l);
            b.nop();
            let mut x = 0x9E3779B97F4A7C15u64;
            for i in 0..4000u64 {
                let taken = if pattern_random {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 62) & 1 == 1
                } else {
                    true
                };
                let inst = Inst::Branch {
                    cond: watchdog_isa::Cond::Eq,
                    a: g(0),
                    b: g(0),
                    target: l,
                };
                let mut ci = cracked(
                    &inst,
                    false,
                    &CrackConfig::baseline(),
                    0x40_0000 + (i % 13) * 6,
                    &[],
                );
                let n = ci.uops.len();
                ci.uops.as_mut_slice()[n - 1].taken = taken;
                ci.uops.as_mut_slice()[n - 1].target = 0x40_0000;
                core.consume(&ci);
            }
            core.finish()
        };
        let predictable = mk(false);
        let random = mk(true);
        assert!(
            random.cycles > predictable.cycles * 2,
            "random branches must be much slower ({} vs {})",
            random.cycles,
            predictable.cycles
        );
    }

    #[test]
    fn cache_misses_slow_down_pointer_chase() {
        let mk = |stride: u64| {
            let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
            for i in 0..3000u64 {
                // Dependent loads (pointer chase): dst is also the base.
                let inst = Inst::Load {
                    dst: g(1),
                    addr: MemAddr::base(g(1)),
                    width: Width::B8,
                    hint: PtrHint::Auto,
                };
                // Large strides defeat caches and the prefetcher.
                let addr = 0x2000_0000 + (i * stride) % (64 << 20);
                let ci = cracked(&inst, false, &CrackConfig::baseline(), 0x40_0000, &[addr]);
                core.consume(&ci);
            }
            core.finish()
        };
        let near = mk(8);
        let far = mk(4097 * 64);
        assert!(
            far.cycles > near.cycles * 3,
            "cache-hostile chase must be slower ({} vs {})",
            far.cycles,
            near.cycles
        );
    }

    #[test]
    fn snapshots_measure_deltas() {
        let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
        let mk = |i: u64| {
            cracked(
                &Inst::AluImm {
                    op: AluOp::Add,
                    dst: g(1),
                    a: g(1),
                    imm: 1,
                },
                false,
                &CrackConfig::baseline(),
                0x40_0000 + i * 5,
                &[],
            )
        };
        for i in 0..100 {
            core.consume(&mk(i));
        }
        let s1 = core.snapshot();
        for i in 100..300 {
            core.consume(&mk(i));
        }
        let s2 = core.snapshot();
        let d = s2.delta(&s1);
        assert_eq!(d.insts, 200);
        assert_eq!(d.uops, 200);
        assert!(d.cycles > 150, "a dependent chain takes ~1 cycle per µop");
        let mut acc = Snapshot::default();
        acc.accumulate(&d);
        acc.accumulate(&d);
        assert_eq!(acc.insts, 400);
    }

    #[test]
    fn report_metrics() {
        let r = run_alu_stream(false, 100);
        assert_eq!(r.insts, 100);
        assert_eq!(r.uops, 100);
        assert!(r.uops_per_cycle() > 0.0);
        assert_eq!(r.uop_overhead(), 0.0, "baseline run has no overhead µops");
    }

    /// A mixed stream (dependent loads, random branches, independent ALU
    /// work) driven through both scheduling models: the reports must be
    /// field-identical (the workspace `wheel_equivalence` suite asserts
    /// the same at full scale).
    fn run_mixed<M: SchedModel>() -> String {
        run_mixed_dispatch::<M>(false)
    }

    /// `run_mixed` with the dispatch path selectable: `true` drives the
    /// preserved match-based reference, `false` the table-driven lane
    /// default.
    fn run_mixed_dispatch<M: SchedModel>(match_dispatch: bool) -> String {
        let mut core: ScheduledCore<M> =
            ScheduledCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
        core.set_match_dispatch(match_dispatch);
        let cfg = CrackConfig::watchdog();
        let mut b = watchdog_isa::ProgramBuilder::new("x");
        let l = b.label();
        b.bind(l);
        b.nop();
        let mut x = 0x243F6A8885A308D3u64;
        for i in 0..2000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = 0x2000_0000 + (x % (8 << 20)) / 8 * 8;
            let load = Inst::Load {
                dst: g(1),
                addr: MemAddr::base(g(1)),
                width: Width::B8,
                hint: PtrHint::Auto,
            };
            let addrs = [0x5000_0000, addr, 0x4000_0000_0000 + (addr >> 3) * 16];
            core.consume(&cracked(
                &load,
                true,
                &cfg,
                0x40_0000 + (i % 40) * 6,
                &addrs,
            ));
            let alu = Inst::AluImm {
                op: AluOp::Add,
                dst: g((i % 8) as u8),
                a: g(1),
                imm: 1,
            };
            core.consume(&cracked(&alu, false, &cfg, 0x40_0100 + (i % 40) * 6, &[]));
            let br = Inst::Branch {
                cond: watchdog_isa::Cond::Eq,
                a: g(0),
                b: g(0),
                target: l,
            };
            let mut ci = cracked(&br, false, &cfg, 0x40_0200 + (i % 13) * 6, &[]);
            let n = ci.uops.len();
            ci.uops.as_mut_slice()[n - 1].taken = (x >> 62) & 1 == 1;
            ci.uops.as_mut_slice()[n - 1].target = 0x40_0000;
            core.consume(&ci);
        }
        format!("{:?}", core.finish())
    }

    #[test]
    fn wheel_core_matches_heap_reference() {
        assert_eq!(run_mixed::<WheelSched>(), run_mixed::<HeapSched>());
    }

    /// The table-driven lane-streaming dispatch path is field-identical
    /// to the preserved match-based reference, under both scheduling
    /// models (the workspace `dispatch_equivalence` suite asserts the
    /// same at full scale).
    #[test]
    fn lane_dispatch_matches_match_reference() {
        assert_eq!(
            run_mixed_dispatch::<WheelSched>(false),
            run_mixed_dispatch::<WheelSched>(true)
        );
        assert_eq!(
            run_mixed_dispatch::<HeapSched>(false),
            run_mixed_dispatch::<HeapSched>(true)
        );
    }

    /// The runtime descriptor table agrees with the reference `match`'s
    /// arms for **every** µop kind, under both lock-cache routings —
    /// the expected tuples below restate the match arms independently,
    /// so a drifted generator (or a new kind classified wrongly) fails
    /// here rather than in a full-scale divergence hunt.
    #[test]
    fn dispatch_descs_agree_with_the_match_reference_for_every_kind() {
        let cfg = CoreConfig::sandy_bridge();
        for lock_via_ll in [false, true] {
            let table = dispatch_descs(&cfg, lock_via_ll);
            for &kind in &UopKind::ALL {
                let expect = match kind {
                    UopKind::IntAlu | UopKind::SelectMeta | UopKind::BoundsCheck | UopKind::Nop => {
                        (Fu::IntAlu, 1, cfg.lat_int_alu)
                    }
                    UopKind::IntMul => (Fu::MulDiv, 1, cfg.lat_int_mul),
                    UopKind::IntDiv => (Fu::MulDiv, cfg.lat_int_div, cfg.lat_int_div),
                    UopKind::FpAlu => (Fu::FpAlu, 1, cfg.lat_fp_alu),
                    UopKind::FpMul => (Fu::FpMul, 1, cfg.lat_fp_mul),
                    UopKind::FpDiv => (Fu::FpDiv, cfg.lat_fp_div, cfg.lat_fp_div),
                    UopKind::Branch => (Fu::Branch, 1, 1),
                    UopKind::Load | UopKind::ShadowLoad => (Fu::LoadPort, 1, cfg.lat_agu),
                    UopKind::Store | UopKind::ShadowStore => (Fu::StorePort, 1, 1),
                    UopKind::Check | UopKind::CheckCombined | UopKind::LockLoad => (
                        if lock_via_ll {
                            Fu::LlPort
                        } else {
                            Fu::LoadPort
                        },
                        1,
                        cfg.lat_agu,
                    ),
                    UopKind::LockStore => (
                        if lock_via_ll {
                            Fu::LlPort
                        } else {
                            Fu::StorePort
                        },
                        1,
                        1,
                    ),
                };
                let d = table[kind as usize];
                assert_eq!(
                    (d.fu, d.busy, d.lat),
                    expect,
                    "{kind:?} (lock_via_ll={lock_via_ll})"
                );
            }
        }
    }

    /// Tentpole invariant at core level: with telemetry attached, the CPI
    /// stack's committed + stall + drain slots sum to exactly
    /// `cycles × commit_width`, and the committed slots agree with the
    /// report's independent per-tag µop totals.
    #[test]
    fn cpi_stack_is_zero_slack_on_a_mixed_stream() {
        let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
        core.enable_telemetry(TelemetryConfig::default());
        let cfg = CrackConfig::watchdog();
        let mut x = 0x243F6A8885A308D3u64;
        for i in 0..3000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = 0x2000_0000 + (x % (8 << 20)) / 8 * 8;
            let load = Inst::Load {
                dst: g(1),
                addr: MemAddr::base(g(1)),
                width: Width::B8,
                hint: PtrHint::Auto,
            };
            let addrs = [0x5000_0000, addr, 0x4000_0000_0000 + (addr >> 3) * 16];
            core.consume(&cracked(
                &load,
                true,
                &cfg,
                0x40_0000 + (i % 40) * 6,
                &addrs,
            ));
        }
        let mut reg = MetricsRegistry::new();
        core.export_telemetry_into(&mut reg);
        let get = |name: &str| reg.counter_value(name).unwrap_or_else(|| panic!("{name}"));
        let slots = get("cpi.slots");
        assert_eq!(
            slots,
            get("cpi.cycles") * get("cpi.commit_width"),
            "slots metric is cycles × width"
        );
        let committed: u64 = TAG_NAMES
            .iter()
            .map(|n| get(&format!("cpi.commit.{n}")))
            .sum();
        let stalled: u64 = STALL_CAUSE_NAMES
            .iter()
            .map(|n| get(&format!("cpi.stall.{n}")))
            .sum::<u64>()
            + get("cpi.stall.drain");
        assert_eq!(committed + stalled, slots, "zero-slack accounting");
        // The commit slots are a second accounting path: they must agree
        // with the report's per-tag totals, and some gap slots must have
        // been attributed to memory misses on this cache-hostile chase.
        let miss_slots = get("cpi.stall.tlb_miss") + get("cpi.stall.l1d_miss");
        assert!(miss_slots > 0, "pointer chase must show miss stalls");
        let r = core.finish();
        assert_eq!(committed, r.uops, "every µop commits into one slot");
        for (i, name) in TAG_NAMES.iter().enumerate() {
            assert_eq!(
                get(&format!("cpi.commit.{name}")),
                r.uops_by_tag[i],
                "{name} slots drift from the report's tag totals"
            );
        }
    }

    /// Satellite: the rotating cursor makes port choice deterministic and
    /// balanced. Pins the per-ALU utilization counters of a fixed
    /// independent stream — any tie-break drift shows up here, not as a
    /// silent report change.
    #[test]
    fn cursor_pins_fu_utilization_counters() {
        let run = || {
            let mut core = TimingCore::new(CoreConfig::sandy_bridge(), HierarchyConfig::default());
            for i in 0..600u64 {
                let inst = Inst::AluImm {
                    op: AluOp::Add,
                    dst: g((i % 8) as u8),
                    a: g(8),
                    imm: 1,
                };
                let ci = cracked(
                    &inst,
                    false,
                    &CrackConfig::baseline(),
                    0x40_0000 + i * 5,
                    &[],
                );
                core.consume(&ci);
            }
            core
        };
        let core = run();
        let alus = core.fu_reserve_counts(Fu::IntAlu).to_vec();
        assert_eq!(alus.iter().sum::<u64>(), 600, "every µop took one ALU");
        assert_eq!(
            alus,
            vec![100, 100, 100, 100, 100, 100],
            "cursor rotation spreads a symmetric stream evenly"
        );
        assert_eq!(
            core.fu_reserve_counts(Fu::IssueSlot).iter().sum::<u64>(),
            600,
            "every µop took one issue slot"
        );
        // Deterministic: an identical rerun reproduces the breakdown.
        assert_eq!(run().fu_reserve_counts(Fu::IntAlu), alus.as_slice());
    }
}

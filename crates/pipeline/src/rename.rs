//! Register renaming with decoupled, reference-counted metadata mappings.
//!
//! §6.2 of the paper: "Watchdog extends the maptable to maintain two
//! mappings for each logical register: the regular mapping and a metadata
//! mapping. Instructions that unambiguously copy the metadata (such as 'add
//! immediate' ...) update the metadata mapping of the destination register
//! ... with the metadata mapping entry of the input register. This
//! implementation eliminates the register copies by physical register
//! sharing ... these physical registers need to be reference counted."
//!
//! This module implements exactly that structure: separate physical pools
//! for integer, floating-point and metadata registers; a dual map table;
//! copy elimination via mapping aliasing with reference counts; and two
//! permanent metadata registers — the always-**invalid** register and the
//! **global**-identifier register (§7) — that invalidations and PC-relative
//! address formation map to without consuming pool capacity.

use watchdog_isa::crack::{CrackedInst, MetaEffect};
use watchdog_isa::reg::{Gpr, LReg, NUM_META_TEMPS};
use watchdog_isa::uop::Uop;

/// Physical register file sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenameConfig {
    /// Integer physical registers (Table 2: 160).
    pub int_regs: usize,
    /// Floating-point physical registers (Table 2: 144).
    pub fp_regs: usize,
    /// Metadata physical registers.
    pub meta_regs: usize,
}

impl Default for RenameConfig {
    fn default() -> Self {
        RenameConfig {
            int_regs: 160,
            fp_regs: 144,
            meta_regs: 160,
        }
    }
}

/// Renaming statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenameStats {
    /// µops renamed.
    pub renamed_uops: u64,
    /// Metadata copies eliminated at rename (no µop executed).
    pub eliminated_copies: u64,
    /// Metadata invalidations handled at rename.
    pub invalidations: u64,
    /// Global-identifier mappings handled at rename.
    pub global_mappings: u64,
    /// Metadata physical registers allocated (µop-produced metadata).
    pub meta_allocs: u64,
    /// High-water mark of live metadata physical registers.
    pub meta_high_water: usize,
}

/// Index of the permanent always-invalid metadata physical register.
pub const META_PREG_INVALID: usize = 0;
/// Index of the permanent global-identifier metadata physical register.
pub const META_PREG_GLOBAL: usize = 1;

/// The dual-mapping rename table.
#[derive(Debug)]
pub struct Rename {
    cfg: RenameConfig,
    /// Metadata mapping for each GPR.
    meta_map: [usize; Gpr::COUNT],
    /// Metadata mapping for cracker metadata temporaries.
    meta_tmp_map: [usize; NUM_META_TEMPS],
    /// Reference count per metadata physical register (indices 0 and 1 are
    /// permanent and never freed).
    meta_ref: Vec<u32>,
    meta_free: Vec<usize>,
    live_meta: usize,
    stats: RenameStats,
}

impl Rename {
    /// Builds the rename table; all metadata mappings start invalid.
    pub fn new(cfg: RenameConfig) -> Self {
        assert!(
            cfg.meta_regs > 2 + Gpr::COUNT + NUM_META_TEMPS,
            "metadata pool too small"
        );
        let mut meta_ref = vec![0u32; cfg.meta_regs];
        // Permanent registers: refcounts account for the initial mappings.
        meta_ref[META_PREG_INVALID] = (Gpr::COUNT + NUM_META_TEMPS) as u32;
        meta_ref[META_PREG_GLOBAL] = 0;
        let meta_free = (2..cfg.meta_regs).rev().collect();
        Rename {
            cfg,
            meta_map: [META_PREG_INVALID; Gpr::COUNT],
            meta_tmp_map: [META_PREG_INVALID; NUM_META_TEMPS],
            meta_ref,
            meta_free,
            live_meta: 0,
            stats: RenameStats::default(),
        }
    }

    fn release(&mut self, preg: usize) {
        self.meta_ref[preg] -= 1;
        if preg > META_PREG_GLOBAL && self.meta_ref[preg] == 0 {
            self.meta_free.push(preg);
            self.live_meta -= 1;
        }
    }

    fn current(&self, r: LReg) -> usize {
        match r {
            LReg::M(g) => self.meta_map[g.index()],
            LReg::Tm(t) => self.meta_tmp_map[t as usize],
            _ => unreachable!("not a metadata register"),
        }
    }

    fn set_mapping(&mut self, r: LReg, preg: usize) {
        let old = self.current(r);
        self.meta_ref[preg] += 1;
        match r {
            LReg::M(g) => self.meta_map[g.index()] = preg,
            LReg::Tm(t) => self.meta_tmp_map[t as usize] = preg,
            _ => unreachable!("not a metadata register"),
        }
        self.release(old);
    }

    fn alloc_meta(&mut self, r: LReg) {
        let preg = self
            .meta_free
            .pop()
            .expect("metadata physical registers exhausted");
        self.live_meta += 1;
        self.stats.meta_allocs += 1;
        self.stats.meta_high_water = self.stats.meta_high_water.max(self.live_meta);
        self.set_mapping(r, preg);
    }

    /// Applies an instruction's rename-stage metadata effect (the cases
    /// where Watchdog inserts *no* µop).
    pub fn apply_meta(&mut self, effect: &MetaEffect) {
        match *effect {
            MetaEffect::None => {}
            MetaEffect::Copy { dst, src } => {
                let src_preg = self.meta_map[src.index()];
                self.set_mapping(LReg::M(dst), src_preg);
                self.stats.eliminated_copies += 1;
            }
            MetaEffect::Invalidate(r) => {
                self.set_mapping(LReg::M(r), META_PREG_INVALID);
                self.stats.invalidations += 1;
            }
            MetaEffect::Global(r) => {
                self.set_mapping(LReg::M(r), META_PREG_GLOBAL);
                self.stats.global_mappings += 1;
            }
        }
    }

    /// Renames one µop by its destination operand (all renaming needs):
    /// a µop that writes a metadata register allocates a fresh metadata
    /// physical register for it. This is the entry point of the batched
    /// consume loop, which streams destinations out of the
    /// [`UopBatch`](crate::batch::UopBatch) SoA arrays.
    pub fn rename_dst(&mut self, dst: Option<LReg>) {
        self.stats.renamed_uops += 1;
        if let Some(d) = dst {
            if d.is_metadata() && !matches!(d, LReg::StackKey | LReg::StackLock) {
                self.alloc_meta(d);
            }
        }
    }

    /// Renames one µop — a convenience over [`Rename::rename_dst`] for
    /// callers holding full [`Uop`]s (tests, diagnostics).
    pub fn rename_uop(&mut self, uop: &Uop) {
        self.rename_dst(uop.dst);
    }

    /// Processes a full cracked instruction: µop renaming plus the
    /// rename-stage metadata effect — a convenience composition of
    /// [`Rename::rename_dst`] + [`Rename::apply_meta`], the two primitive
    /// entry points the timing core's consume loop drives directly.
    pub fn process(&mut self, inst: &CrackedInst) {
        for u in inst.uops.iter() {
            self.rename_dst(u.uop.dst);
        }
        self.apply_meta(&inst.meta);
    }

    /// Metadata physical register currently mapped to `r` (test/diagnostic
    /// accessor).
    pub fn meta_mapping(&self, r: LReg) -> usize {
        self.current(r)
    }

    /// Number of live (non-permanent) metadata physical registers.
    pub fn live_meta_regs(&self) -> usize {
        self.live_meta
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RenameStats {
        self.stats
    }

    /// Verifies the reference-counting invariants:
    ///
    /// 1. every mapping's refcount is positive;
    /// 2. the sum of refcounts of non-permanent registers equals the number
    ///    of mappings that point at them;
    /// 3. free list and live set partition the pool.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut expected = vec![0u32; self.cfg.meta_regs];
        for g in Gpr::all() {
            expected[self.meta_map[g.index()]] += 1;
        }
        for t in 0..NUM_META_TEMPS {
            expected[self.meta_tmp_map[t]] += 1;
        }
        for (i, (&actual, &exp)) in self.meta_ref.iter().zip(expected.iter()).enumerate() {
            if i > META_PREG_GLOBAL && actual != exp {
                return Err(format!("preg {i}: refcount {actual} but {exp} mappings"));
            }
            if i <= META_PREG_GLOBAL && actual != exp {
                return Err(format!(
                    "permanent preg {i}: refcount {actual} but {exp} mappings"
                ));
            }
        }
        let live_from_ref = self
            .meta_ref
            .iter()
            .enumerate()
            .filter(|(i, &r)| *i > 1 && r > 0)
            .count();
        if live_from_ref != self.live_meta {
            return Err(format!(
                "live count {} but {} pregs referenced",
                self.live_meta, live_from_ref
            ));
        }
        if self.meta_free.len() + self.live_meta + 2 != self.cfg.meta_regs {
            return Err("free list and live set do not partition the pool".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchdog_isa::crack::{crack, CrackConfig};
    use watchdog_isa::insn::{AluOp, Inst, MemAddr, PtrHint, Width};

    fn g(n: u8) -> Gpr {
        Gpr::new(n)
    }

    fn process(r: &mut Rename, inst: &Inst, ptr_op: bool) {
        let c = crack(inst, ptr_op, &CrackConfig::watchdog());
        for u in c.uops.iter() {
            r.rename_uop(&u.uop);
        }
        r.apply_meta(&c.meta);
        r.check_invariants().unwrap();
    }

    #[test]
    fn copy_elimination_shares_physical_registers() {
        let mut r = Rename::new(RenameConfig::default());
        // r1 gets metadata from a pointer load.
        process(
            &mut r,
            &Inst::Load {
                dst: g(1),
                addr: MemAddr::base(g(2)),
                width: Width::B8,
                hint: PtrHint::Auto,
            },
            true,
        );
        let p1 = r.meta_mapping(LReg::M(g(1)));
        assert!(p1 > META_PREG_GLOBAL);
        // add-immediate copies it without a µop and without a new preg.
        let allocs_before = r.stats().meta_allocs;
        process(
            &mut r,
            &Inst::AluImm {
                op: AluOp::Add,
                dst: g(3),
                a: g(1),
                imm: 8,
            },
            false,
        );
        assert_eq!(r.meta_mapping(LReg::M(g(3))), p1, "mapping is shared");
        assert_eq!(
            r.stats().meta_allocs,
            allocs_before,
            "no new physical register"
        );
        assert_eq!(r.stats().eliminated_copies, 1);
        assert_eq!(r.live_meta_regs(), 1, "one shared preg for two mappings");
    }

    #[test]
    fn shared_preg_freed_only_after_all_mappings_die() {
        let mut r = Rename::new(RenameConfig::default());
        process(
            &mut r,
            &Inst::Load {
                dst: g(1),
                addr: MemAddr::base(g(2)),
                width: Width::B8,
                hint: PtrHint::Auto,
            },
            true,
        );
        process(
            &mut r,
            &Inst::AluImm {
                op: AluOp::Add,
                dst: g(3),
                a: g(1),
                imm: 8,
            },
            false,
        );
        // Kill one mapping: preg must stay live (r3 still references it).
        process(&mut r, &Inst::MovImm { dst: g(1), imm: 0 }, false);
        assert_eq!(r.live_meta_regs(), 1);
        // Kill the second: preg is freed.
        process(&mut r, &Inst::MovImm { dst: g(3), imm: 0 }, false);
        assert_eq!(r.live_meta_regs(), 0);
    }

    #[test]
    fn invalidate_and_global_map_to_permanent_registers() {
        let mut r = Rename::new(RenameConfig::default());
        process(&mut r, &Inst::MovImm { dst: g(0), imm: 5 }, false);
        assert_eq!(r.meta_mapping(LReg::M(g(0))), META_PREG_INVALID);
        process(
            &mut r,
            &Inst::LeaGlobal {
                dst: g(0),
                addr: 0x1000_0000,
            },
            false,
        );
        assert_eq!(r.meta_mapping(LReg::M(g(0))), META_PREG_GLOBAL);
        assert_eq!(r.stats().invalidations, 1);
        assert_eq!(r.stats().global_mappings, 1);
        assert_eq!(
            r.live_meta_regs(),
            0,
            "permanent registers consume no pool space"
        );
    }

    #[test]
    fn select_uop_allocates() {
        let mut r = Rename::new(RenameConfig::default());
        let before = r.stats().meta_allocs;
        process(
            &mut r,
            &Inst::Alu {
                op: AluOp::Add,
                dst: g(2),
                a: g(0),
                b: g(1),
            },
            false,
        );
        assert_eq!(
            r.stats().meta_allocs,
            before + 1,
            "select µop produces metadata"
        );
    }

    #[test]
    fn long_chains_never_leak() {
        let mut r = Rename::new(RenameConfig::default());
        for i in 0..10_000u64 {
            let d = g((i % 14) as u8);
            let a = g(((i + 1) % 14) as u8);
            let b = g(((i + 2) % 14) as u8);
            match i % 4 {
                0 => process(
                    &mut r,
                    &Inst::Load {
                        dst: d,
                        addr: MemAddr::base(a),
                        width: Width::B8,
                        hint: PtrHint::Auto,
                    },
                    true,
                ),
                1 => process(
                    &mut r,
                    &Inst::AluImm {
                        op: AluOp::Add,
                        dst: d,
                        a,
                        imm: 8,
                    },
                    false,
                ),
                2 => process(
                    &mut r,
                    &Inst::Alu {
                        op: AluOp::Add,
                        dst: d,
                        a,
                        b,
                    },
                    false,
                ),
                _ => process(&mut r, &Inst::MovImm { dst: d, imm: 0 }, false),
            }
        }
        assert!(
            r.live_meta_regs() <= Gpr::COUNT + NUM_META_TEMPS,
            "bounded by logical registers"
        );
        r.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "metadata pool too small")]
    fn tiny_pool_rejected() {
        let _ = Rename::new(RenameConfig {
            int_regs: 160,
            fp_regs: 144,
            meta_regs: 4,
        });
    }
}

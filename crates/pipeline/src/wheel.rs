//! Calendar-queue scheduling structures for the timing core.
//!
//! The timestamp-based model of [`crate::core`] tracks window occupancy
//! (ROB/IQ/LQ/SQ) as multisets of *release times* and functional units as
//! small pools of *next-free times*. PR 5 kept the windows in
//! `BinaryHeap<Reverse<u64>>`s, paying a comparison-sorted log factor per
//! µop on the hottest loop in the workspace. This module replaces them
//! with structures whose operations are O(1) in the steady state and whose
//! behaviour is **provably identical** — each production structure has a
//! heap/scan reference twin behind the [`SchedModel`] trait, and the
//! equivalence is asserted structure-by-structure (property tests) and
//! end-to-end (the `wheel_equivalence` workspace suite). The loop that
//! drives these structures is the lane-streaming dispatcher of
//! [`crate::core`]: it drains a batch's homogeneous lane runs with
//! per-kind facts read from the dense descriptor table, so by the time a
//! µop reaches the wheel the only per-µop work left *is* these window
//! and pool operations (measured: dispatch restructuring is
//! timing-neutral; the wheel ops dominate the hot loop).
//!
//! Three observations make the replacements exact:
//!
//! * **ROB/LQ/SQ release times are monotone.** All three windows release
//!   at *commit*, and [`commit_time`](crate::core) is non-decreasing
//!   (`t = complete.max(last_commit)`), so every push is `>=` the previous
//!   one. On a monotone stream, pop-min *is* pop-front, and a
//!   fixed-capacity ring buffer ([`ReleaseRing`]) is exactly equivalent to
//!   a heap — no comparisons at all.
//! * **IQ release times are bounded-skew but unordered.** Entries leave
//!   the issue queue at *issue*, which hops backwards whenever a younger
//!   µop issues before an older one's latency expires. A circular calendar
//!   wheel ([`CalendarWheel`]) keyed on release cycle handles this: slot
//!   `t mod 4096` counts the entries releasing at `t`, a two-level bitmap
//!   finds the earliest occupied slot in a handful of word operations, and
//!   the rare entry scheduled beyond the horizon (a DRAM-missing
//!   dependence chain) waits in a preallocated overflow list whose length
//!   the IQ capacity bounds.
//! * **Unit choice among equal minima is invisible.** [`FuPools::reserve`]
//!   must replace a *true minimum* of the pool's next-free multiset
//!   (replacing any merely-idle unit diverges: with units free at `{0, 5}`,
//!   reserving at `earliest = 6` must consume the `0` — a later
//!   `reserve(3)` distinguishes `{5, ...}` from `{0, ...}`). But *which*
//!   of several **equal** minima is replaced cannot be observed — the
//!   resulting multiset is the same — so [`CursorPools`] may rotate its
//!   scan origin for deterministic, balanced port assignment while
//!   remaining report-identical to [`ScanPools`]' lowest-index scan.
//!
//! All structures allocate at construction only: the wheel's slot counts,
//! bitmap and overflow list, the rings' buffers and the pools' arrays are
//! sized once from [`CoreConfig`](crate::CoreConfig) window depths, so the
//! timed hot loop runs allocation-free (asserted by the workspace's
//! `alloc_discipline` test).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use crate::core::NUM_FUS;

/// A window-occupancy multiset of release times.
///
/// Contract (upheld by the consume loop, `debug_assert`ed by the
/// implementations): the `bound` arguments of [`WindowQueue::drain_le`]
/// are non-decreasing, every [`WindowQueue::push`] is `>=` the largest
/// bound drained so far, and the caller keeps `len() <= capacity` by
/// popping before pushing when full.
pub trait WindowQueue: fmt::Debug {
    /// An empty queue that will never hold more than `cap` entries.
    fn with_capacity(cap: usize) -> Self;

    /// Number of entries currently queued.
    fn len(&self) -> usize;

    /// Whether no entries are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds a release time.
    fn push(&mut self, t: u64);

    /// Removes and returns the earliest release time.
    fn pop_min(&mut self) -> Option<u64>;

    /// Removes every entry with release time `<= bound`.
    fn drain_le(&mut self, bound: u64);

    /// High-water mark of entries that ever waited beyond the
    /// structure's fast horizon (the calendar wheel's overflow list);
    /// `0` for structures without a slow path. A telemetry observable:
    /// a non-zero peak means some issue skew exceeded the
    /// [`WHEEL_SLOTS`]-cycle horizon.
    fn overflow_peak(&self) -> usize {
        0
    }
}

/// Fixed-capacity ring buffer over a **monotone** release-time stream
/// (ROB/LQ/SQ, whose entries release at the non-decreasing commit time).
///
/// Monotone pushes mean the front is always the minimum, so `pop_min` and
/// `drain_le` touch only the head — no comparisons against anything but
/// the drain bound, no heap sift.
#[derive(Debug)]
pub struct ReleaseRing {
    buf: Box<[u64]>,
    head: usize,
    len: usize,
    last_push: u64,
}

impl WindowQueue for ReleaseRing {
    fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        ReleaseRing {
            buf: vec![0; cap].into_boxed_slice(),
            head: 0,
            len: 0,
            last_push: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, t: u64) {
        debug_assert!(self.len < self.buf.len(), "ring window overfilled");
        debug_assert!(t >= self.last_push, "ring pushes must be monotone");
        self.last_push = t;
        let mut i = self.head + self.len;
        if i >= self.buf.len() {
            i -= self.buf.len();
        }
        self.buf[i] = t;
        self.len += 1;
    }

    fn pop_min(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let t = self.buf[self.head];
        self.head += 1;
        if self.head == self.buf.len() {
            self.head = 0;
        }
        self.len -= 1;
        Some(t)
    }

    fn drain_le(&mut self, bound: u64) {
        while self.len > 0 && self.buf[self.head] <= bound {
            self.head += 1;
            if self.head == self.buf.len() {
                self.head = 0;
            }
            self.len -= 1;
        }
    }
}

/// Slots in the wheel horizon. 4096 one-cycle slots cover every issue
/// skew short of a multi-DRAM-miss dependence chain; anything beyond
/// waits in the (IQ-capacity-bounded) overflow list.
pub const WHEEL_SLOTS: usize = 4096;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// Circular calendar wheel over release cycles (the issue queue).
///
/// `counts[t mod 4096]` holds how many entries release at cycle `t` for
/// `t` in the horizon `[base, base + 4096)`; a per-64-slot occupancy word
/// plus one summary word finds the earliest occupied slot in O(1) word
/// operations. `base` is the largest `drain_le` bound seen, so every live
/// entry and every future push is `>= base` (the [`WindowQueue`]
/// contract) and slot indices never collide across laps. Entries pushed
/// beyond the horizon sit in `overflow` (preallocated to the window
/// capacity; scanned only while non-empty, which requires a >4096-cycle
/// issue skew) and migrate into the wheel as `base` advances past
/// `their time - 4096`.
///
/// All arithmetic is wrap-safe: only differences `t - base` are formed,
/// never `base + 4096`, so release times near `u64::MAX` are handled
/// exactly (property-tested).
#[derive(Debug)]
pub struct CalendarWheel {
    counts: Box<[u32]>,
    words: Box<[u64]>,
    summary: u64,
    base: u64,
    in_horizon: usize,
    overflow: Vec<u64>,
    overflow_peak: usize,
}

impl CalendarWheel {
    fn slot_of(t: u64) -> usize {
        (t & WHEEL_MASK) as usize
    }

    /// The release time stored in occupied slot `s` (unique within the
    /// horizon: `t = base + ((s - base) mod 4096)`).
    fn time_of(&self, s: usize) -> u64 {
        let offset = (s as u64).wrapping_sub(self.base) & WHEEL_MASK;
        self.base.wrapping_add(offset)
    }

    fn set_bit(&mut self, s: usize) {
        let w = s / 64;
        self.words[w] |= 1u64 << (s % 64);
        self.summary |= 1u64 << w;
    }

    fn clear_bit(&mut self, s: usize) {
        let w = s / 64;
        self.words[w] &= !(1u64 << (s % 64));
        if self.words[w] == 0 {
            self.summary &= !(1u64 << w);
        }
    }

    fn insert_horizon(&mut self, t: u64) {
        let s = Self::slot_of(t);
        if self.counts[s] == 0 {
            self.set_bit(s);
        }
        self.counts[s] += 1;
        self.in_horizon += 1;
    }

    /// First occupied slot in circular order from the base slot — i.e. the
    /// slot of the earliest in-horizon release time.
    fn first_slot(&self) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let s0 = Self::slot_of(self.base);
        let (w0, b0) = (s0 / 64, (s0 % 64) as u32);
        let m = self.words[w0] & (u64::MAX << b0);
        if m != 0 {
            return Some(w0 * 64 + m.trailing_zeros() as usize);
        }
        let after = if w0 + 1 == WHEEL_WORDS {
            0
        } else {
            self.summary & (u64::MAX << (w0 + 1))
        };
        if after != 0 {
            let w = after.trailing_zeros() as usize;
            return Some(w * 64 + self.words[w].trailing_zeros() as usize);
        }
        let before = self.summary & !(u64::MAX << w0);
        if before != 0 {
            let w = before.trailing_zeros() as usize;
            return Some(w * 64 + self.words[w].trailing_zeros() as usize);
        }
        // Wrapped all the way around: only bits below `b0` of word `w0`.
        let m = self.words[w0] & !(u64::MAX << b0);
        debug_assert!(m != 0, "summary occupied but no slot found");
        Some(w0 * 64 + m.trailing_zeros() as usize)
    }
}

impl WindowQueue for CalendarWheel {
    fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        CalendarWheel {
            counts: vec![0; WHEEL_SLOTS].into_boxed_slice(),
            words: vec![0; WHEEL_WORDS].into_boxed_slice(),
            summary: 0,
            base: 0,
            in_horizon: 0,
            overflow: Vec::with_capacity(cap),
            overflow_peak: 0,
        }
    }

    fn len(&self) -> usize {
        self.in_horizon + self.overflow.len()
    }

    fn push(&mut self, t: u64) {
        debug_assert!(t >= self.base, "push below the drained horizon");
        if t.wrapping_sub(self.base) < WHEEL_SLOTS as u64 {
            self.insert_horizon(t);
        } else {
            self.overflow.push(t);
            self.overflow_peak = self.overflow_peak.max(self.overflow.len());
        }
    }

    fn pop_min(&mut self) -> Option<u64> {
        // In-horizon entries are all `< base + 4096 <=` any overflow entry,
        // so the horizon minimum is the global minimum whenever it exists.
        if let Some(s) = self.first_slot() {
            let t = self.time_of(s);
            self.counts[s] -= 1;
            if self.counts[s] == 0 {
                self.clear_bit(s);
            }
            self.in_horizon -= 1;
            return Some(t);
        }
        if self.overflow.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.overflow.len() {
            if self.overflow[i] < self.overflow[best] {
                best = i;
            }
        }
        Some(self.overflow.swap_remove(best))
    }

    fn drain_le(&mut self, bound: u64) {
        // A long frontend stall can advance the bound past the horizon, so
        // overflow entries are drainable too (rarely: the list is almost
        // always empty).
        if !self.overflow.is_empty() {
            let mut i = 0;
            while i < self.overflow.len() {
                if self.overflow[i] <= bound {
                    self.overflow.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        if bound < self.base {
            // Nothing in the horizon is below `base`.
            return;
        }
        if bound - self.base >= WHEEL_SLOTS as u64 {
            // The whole horizon drains: clear occupied slots via the bitmap.
            while self.summary != 0 {
                let w = self.summary.trailing_zeros() as usize;
                while self.words[w] != 0 {
                    let b = self.words[w].trailing_zeros() as usize;
                    let s = w * 64 + b;
                    self.in_horizon -= self.counts[s] as usize;
                    self.counts[s] = 0;
                    self.words[w] &= !(1u64 << b);
                }
                self.summary &= !(1u64 << w);
            }
            debug_assert_eq!(self.in_horizon, 0);
        } else {
            while let Some(s) = self.first_slot() {
                let t = self.time_of(s);
                if t > bound {
                    break;
                }
                self.in_horizon -= self.counts[s] as usize;
                self.counts[s] = 0;
                self.clear_bit(s);
            }
        }
        self.base = bound;
        // Overflow entries now within `[base, base + 4096)` join the wheel.
        if !self.overflow.is_empty() {
            let mut i = 0;
            while i < self.overflow.len() {
                let t = self.overflow[i];
                if t.wrapping_sub(self.base) < WHEEL_SLOTS as u64 {
                    self.overflow.swap_remove(i);
                    self.insert_horizon(t);
                } else {
                    i += 1;
                }
            }
        }
    }

    fn overflow_peak(&self) -> usize {
        self.overflow_peak
    }
}

/// Reference twin of [`ReleaseRing`]: the `VecDeque` the PR 5 core used
/// for the ROB (pop-front ≡ pop-min on the monotone commit stream).
#[derive(Debug)]
pub struct FifoQueue(VecDeque<u64>);

impl WindowQueue for FifoQueue {
    fn with_capacity(cap: usize) -> Self {
        FifoQueue(VecDeque::with_capacity(cap + 1))
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn push(&mut self, t: u64) {
        self.0.push_back(t);
    }

    fn pop_min(&mut self) -> Option<u64> {
        self.0.pop_front()
    }

    fn drain_le(&mut self, bound: u64) {
        while let Some(&t) = self.0.front() {
            if t <= bound {
                self.0.pop_front();
            } else {
                break;
            }
        }
    }
}

/// Reference twin of [`CalendarWheel`]: the `BinaryHeap<Reverse<u64>>`
/// the PR 5 core used for the IQ/LQ/SQ.
#[derive(Debug)]
pub struct HeapQueue(BinaryHeap<Reverse<u64>>);

impl WindowQueue for HeapQueue {
    fn with_capacity(cap: usize) -> Self {
        HeapQueue(BinaryHeap::with_capacity(cap + 1))
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn push(&mut self, t: u64) {
        self.0.push(Reverse(t));
    }

    fn pop_min(&mut self) -> Option<u64> {
        self.0.pop().map(|Reverse(t)| t)
    }

    fn drain_le(&mut self, bound: u64) {
        while let Some(&Reverse(t)) = self.0.peek() {
            if t <= bound {
                self.0.pop();
            } else {
                break;
            }
        }
    }
}

/// Per-functional-unit-class pools of next-free times.
pub trait FuPools: fmt::Debug {
    /// Builds pools with `sizes[class]` units per class, all free at 0.
    fn new(sizes: [usize; NUM_FUS]) -> Self;

    /// Reserves a unit of `class` whose next-free time is a **minimum** of
    /// the class pool, starting no earlier than `earliest`, occupying it
    /// for `busy` cycles. Returns the start time
    /// (`earliest.max(min_free)`).
    fn reserve(&mut self, class: usize, earliest: u64, busy: u64) -> u64;

    /// How many reservations each unit of `class` has served (index =
    /// unit/port number).
    fn reserve_counts(&self, class: usize) -> &[u64];
}

/// Units per pool after padding. Every pool stores exactly this many
/// next-free slots, the unused tail pinned at `u64::MAX`, so the minimum
/// scan is a fixed-length, branch-free reduction the compiler lowers to
/// conditional moves — no data-dependent branches for the host to
/// mispredict on the two scans every µop performs.
pub const POOL_PAD: usize = 8;

/// Circular fixed-length minimum scan from `origin`: index and value of
/// the first minimum in circular visiting order. Padding slots hold
/// `u64::MAX` and real times stay below it (a release time would have to
/// saturate a `u64` to tie), so pads never win the strict-`<` race and the
/// visit order restricted to real units is exactly the circular order on
/// `0..n` — the scan is equivalent to rotating over the real units alone.
#[inline]
fn scan_from(pool: &[u64; POOL_PAD], origin: usize) -> (usize, u64) {
    let mut best = origin;
    let mut best_t = pool[origin];
    for k in 1..POOL_PAD {
        let i = (origin + k) & (POOL_PAD - 1);
        let t = pool[i];
        let better = t < best_t;
        best = if better { i } else { best };
        best_t = if better { t } else { best_t };
    }
    (best, best_t)
}

/// Rotating-cursor pools: each reservation scans the class pool for a true
/// minimum **starting at a cursor** that advances past the chosen unit, so
/// ties rotate deterministically across ports instead of hammering unit 0.
///
/// Report-identical to [`ScanPools`]: both replace a minimum of the same
/// multiset with the same `start + busy`, and the choice among *equal*
/// minima cannot affect any later reservation (the multisets stay equal).
/// Only the per-unit utilization counters differ — which is the point:
/// under the cursor, symmetric µop streams load the ports symmetrically
/// (pinned by a regression test in `crate::core`).
#[derive(Debug)]
pub struct CursorPools {
    free: [[u64; POOL_PAD]; NUM_FUS],
    counts: [[u64; POOL_PAD]; NUM_FUS],
    n: [usize; NUM_FUS],
    cursor: [usize; NUM_FUS],
}

fn padded_pools(sizes: [usize; NUM_FUS]) -> [[u64; POOL_PAD]; NUM_FUS] {
    sizes.map(|n| {
        assert!(n <= POOL_PAD, "FU classes support at most {POOL_PAD} units");
        let mut pool = [u64::MAX; POOL_PAD];
        pool[..n].fill(0);
        pool
    })
}

impl FuPools for CursorPools {
    fn new(sizes: [usize; NUM_FUS]) -> Self {
        CursorPools {
            free: padded_pools(sizes),
            counts: [[0; POOL_PAD]; NUM_FUS],
            n: sizes,
            cursor: [0; NUM_FUS],
        }
    }

    fn reserve(&mut self, class: usize, earliest: u64, busy: u64) -> u64 {
        debug_assert!(self.n[class] > 0, "every FU class has at least one unit");
        let (best, best_t) = scan_from(&self.free[class], self.cursor[class]);
        let start = earliest.max(best_t);
        self.free[class][best] = start + busy;
        debug_assert!(start.checked_add(busy).is_some(), "next-free saturated");
        self.counts[class][best] += 1;
        let n = self.n[class];
        self.cursor[class] = if best + 1 >= n { 0 } else { best + 1 };
        start
    }

    fn reserve_counts(&self, class: usize) -> &[u64] {
        &self.counts[class][..self.n[class]]
    }
}

/// Reference twin of [`CursorPools`]: the PR 5 `min_by_key` scan, which
/// always picks the lowest-index unit among equal minima (a scan from a
/// cursor pinned at 0).
#[derive(Debug)]
pub struct ScanPools {
    free: [[u64; POOL_PAD]; NUM_FUS],
    counts: [[u64; POOL_PAD]; NUM_FUS],
    n: [usize; NUM_FUS],
}

impl FuPools for ScanPools {
    fn new(sizes: [usize; NUM_FUS]) -> Self {
        ScanPools {
            free: padded_pools(sizes),
            counts: [[0; POOL_PAD]; NUM_FUS],
            n: sizes,
        }
    }

    fn reserve(&mut self, class: usize, earliest: u64, busy: u64) -> u64 {
        debug_assert!(self.n[class] > 0, "every FU class has at least one unit");
        let (idx, free_at) = scan_from(&self.free[class], 0);
        let start = earliest.max(free_at);
        self.free[class][idx] = start + busy;
        debug_assert!(start.checked_add(busy).is_some(), "next-free saturated");
        self.counts[class][idx] += 1;
        start
    }

    fn reserve_counts(&self, class: usize) -> &[u64] {
        &self.counts[class][..self.n[class]]
    }
}

/// Selects the scheduling structures of a
/// [`ScheduledCore`](crate::core::ScheduledCore): the production
/// [`WheelSched`] or the test-only reference [`HeapSched`]. Both models
/// run the *same* consume loop; only the occupancy/pool containers differ.
pub trait SchedModel {
    /// ROB occupancy (monotone commit-time releases).
    type Rob: WindowQueue;
    /// IQ occupancy (unordered issue-time releases).
    type Iq: WindowQueue;
    /// LQ/SQ occupancy (monotone commit-time releases).
    type Memq: WindowQueue;
    /// Functional-unit/port pools.
    type Pools: FuPools;
}

/// The production model: rings, the calendar wheel and rotating-cursor
/// pools. Allocation-free and comparison-free in the steady state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelSched;

impl SchedModel for WheelSched {
    type Rob = ReleaseRing;
    type Iq = CalendarWheel;
    type Memq = ReleaseRing;
    type Pools = CursorPools;
}

/// The PR 5 reference model: deque + binary heaps + lowest-index scans.
/// Kept as the bit-for-bit oracle the production model is tested against
/// (same methodology as the repeat-probe memos).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapSched;

impl SchedModel for HeapSched {
    type Rob = FifoQueue;
    type Iq = HeapQueue;
    type Memq = HeapQueue;
    type Pools = ScanPools;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all<Q: WindowQueue>(q: &mut Q) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(t) = q.pop_min() {
            out.push(t);
        }
        out
    }

    #[test]
    fn wheel_orders_unordered_pushes() {
        let mut w = CalendarWheel::with_capacity(8);
        for t in [17u64, 3, 3, 4096, 90, 0] {
            w.push(t);
        }
        assert_eq!(w.len(), 6);
        assert_eq!(drain_all(&mut w), [0, 3, 3, 17, 90, 4096]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn wheel_overflow_entries_wait_and_migrate() {
        let mut w = CalendarWheel::with_capacity(8);
        w.push(10); // horizon
        w.push(20_000); // overflow (>= 4096 past base 0)
        w.push(5000); // overflow
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop_min(), Some(10));
        // Horizon empty: minimum comes from overflow without rebasing.
        assert_eq!(w.pop_min(), Some(5000));
        w.push(5000);
        // Draining advances the base, migrating 5000 into the horizon.
        w.drain_le(4000);
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop_min(), Some(5000));
        assert_eq!(w.pop_min(), Some(20_000));
        assert_eq!(w.pop_min(), None);
    }

    #[test]
    fn overflow_peak_tracks_the_slow_path_high_water() {
        let mut w = CalendarWheel::with_capacity(8);
        assert_eq!(w.overflow_peak(), 0);
        w.push(10);
        assert_eq!(w.overflow_peak(), 0, "horizon pushes never touch overflow");
        w.push(10_000);
        w.push(20_000);
        assert_eq!(w.overflow_peak(), 2);
        // Draining migrates entries out, but the peak is a high-water mark.
        w.drain_le(9_000);
        assert_eq!(w.overflow_peak(), 2);
        let f = FifoQueue::with_capacity(8);
        assert_eq!(f.overflow_peak(), 0, "rings have no slow path");
    }

    #[test]
    fn wheel_drain_le_crosses_the_wrap_boundary() {
        let mut w = CalendarWheel::with_capacity(64);
        w.drain_le(4090); // base just below the 4096 boundary
        for t in 4090..4110u64 {
            w.push(t); // slots wrap from 4090..4095 to 0..13
        }
        w.drain_le(4100);
        assert_eq!(w.len(), 9);
        assert_eq!(drain_all(&mut w), (4101..4110).collect::<Vec<_>>());
    }

    #[test]
    fn wheel_handles_times_near_u64_max() {
        let mut w = CalendarWheel::with_capacity(8);
        let top = u64::MAX - 10;
        w.drain_le(top);
        w.push(top);
        w.push(u64::MAX);
        w.push(top + 5);
        assert_eq!(drain_all(&mut w), [top, top + 5, u64::MAX]);
        // A drain at u64::MAX empties everything and accepts new pushes.
        w.push(u64::MAX);
        w.drain_le(u64::MAX);
        assert_eq!(w.len(), 0);
        w.push(u64::MAX);
        assert_eq!(w.pop_min(), Some(u64::MAX));
    }

    #[test]
    fn wheel_drain_far_past_horizon_clears_everything() {
        let mut w = CalendarWheel::with_capacity(16);
        for t in [1u64, 100, 4095, 9999] {
            w.push(t); // 9999 overflows
        }
        w.drain_le(1_000_000);
        assert_eq!(w.len(), 0);
        assert_eq!(w.pop_min(), None);
    }

    #[test]
    fn ring_is_fifo_over_monotone_stream() {
        let mut r = ReleaseRing::with_capacity(3);
        r.push(5);
        r.push(5);
        r.push(9);
        assert_eq!(r.pop_min(), Some(5));
        r.push(12); // wraps the buffer
        r.drain_le(9);
        assert_eq!(r.len(), 1);
        assert_eq!(r.pop_min(), Some(12));
        assert_eq!(r.pop_min(), None);
    }

    #[test]
    fn cursor_pools_match_scan_pools_on_start_times() {
        let sizes = {
            let mut s = [0usize; NUM_FUS];
            s[0] = 3;
            s[1] = 1;
            s
        };
        let mut cursor = CursorPools::new(sizes);
        let mut scan = ScanPools::new(sizes);
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let class = (x % 2) as usize;
            let earliest = (x >> 8) % 64;
            let busy = 1 + (x >> 32) % 4;
            assert_eq!(
                cursor.reserve(class, earliest, busy),
                scan.reserve(class, earliest, busy)
            );
        }
        // The multisets of next-free times agree even though unit order may
        // differ.
        for class in 0..2 {
            let mut a = cursor.free[class];
            let mut b = scan.free[class];
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn cursor_rotates_ties_across_units() {
        let sizes = {
            let mut s = [0usize; NUM_FUS];
            s[0] = 4;
            s
        };
        let mut p = CursorPools::new(sizes);
        // Four equal-minimum reservations: one per unit, not four on unit 0.
        for _ in 0..4 {
            assert_eq!(p.reserve(0, 0, 1), 0);
        }
        assert_eq!(p.reserve_counts(0), &[1, 1, 1, 1]);
        let mut scan = ScanPools::new(sizes);
        for _ in 0..4 {
            assert_eq!(scan.reserve(0, 0, 1), 0);
        }
        // The reference piles equal minima onto the lowest index first —
        // observable only through the utilization counters, never the
        // returned start times.
        assert_eq!(scan.reserve_counts(0), &[1, 1, 1, 1]);
    }

    #[test]
    fn heap_and_fifo_references_agree_on_monotone_streams() {
        let mut h = HeapQueue::with_capacity(8);
        let mut f = FifoQueue::with_capacity(8);
        for t in [1u64, 4, 4, 9] {
            h.push(t);
            f.push(t);
        }
        h.drain_le(4);
        f.drain_le(4);
        assert_eq!(h.len(), f.len());
        assert_eq!(h.pop_min(), f.pop_min());
    }
}

//! The batched µop-event buffer feeding [`TimingCore`](crate::TimingCore).
//!
//! [`UopBatch`] is a structure-of-arrays staging buffer for a window of
//! committed instructions: per-instruction arrays (pc, length, rename-stage
//! metadata effect, control class, branch outcome, µop range) plus
//! per-µop parallel arrays (opcode class, operands, accounting tag,
//! memory-access class and resolved address). Both µop producers fill it
//! through one shared routine, [`UopBatch::push_expansion`] — the live
//! machine's batched step appends each committed expansion directly, and
//! the trace replayer appends decoded events, neither materializing an
//! intermediate [`CrackedInst`] — and
//! [`TimingCore::consume_batch`](crate::TimingCore::consume_batch) drains
//! it.
//!
//! The SoA split follows what each drain pass actually touches: the memory
//! pre-pass streams over the `mem`/`addr` arrays only, and the scheduler
//! over the packed 8-byte static [`Uop`] descriptors (whose five fields it
//! consumes together) — neither drags a 40-byte
//! [`UopExec`](watchdog_isa::uop::UopExec) with its resolved address and
//! branch facts through the cache, the way the per-instruction feed does.
//! The batch carries *no* timing state; feeding one instruction per batch
//! is exactly equivalent to feeding sixty-four (asserted by the
//! batch-equivalence suites).

use watchdog_isa::crack::{
    CommitFacts, Cracked, CrackedInst, CtrlKind, Lane, MetaEffect, KIND_DESCS,
};
use watchdog_isa::uop::{Uop, UopKind, UopTag};
use watchdog_mem::AccessClass;

/// Memory behaviour of a µop, precomputed at batch-fill time so the
/// consume loop never re-derives class or direction from [`UopKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Not a memory µop.
    None,
    /// Memory read of the given class.
    Read(AccessClass),
    /// Memory write of the given class.
    Write(AccessClass),
}

impl MemOp {
    /// Classifies a µop kind (mirrors the routing
    /// [`TimingCore::consume`](crate::TimingCore::consume) applies).
    ///
    /// Derived from the cracker's dense
    /// [`KIND_DESCS`] descriptor table
    /// rather than a second hand-written `match`, so the batch and the
    /// cracker classify by construction from one source; the batch tests
    /// pin the result against the `UopKind::is_*` reference classifiers
    /// for every kind.
    pub const fn of(kind: UopKind) -> MemOp {
        let d = KIND_DESCS[kind as usize];
        if !d.mem {
            return MemOp::None;
        }
        let class = if d.lock_access {
            AccessClass::Lock
        } else if d.shadow_access {
            AccessClass::Shadow
        } else {
            AccessClass::Data
        };
        if d.mem_write {
            MemOp::Write(class)
        } else {
            MemOp::Read(class)
        }
    }
}

/// One homogeneous run of same-[`Lane`] µops inside a batch, in program
/// order. Runs are maximal under the **order-admissibility rule**: a run
/// extends only while consecutive µops share a lane *and* belong to the
/// same instruction — per-instruction work (frontend fetch, rename,
/// branch resolution) is a reorder-forbidden boundary, so runs never
/// cross it. `start` indexes the batch's per-µop arrays; runs tile them
/// exactly (each µop belongs to exactly one run, runs are contiguous and
/// sorted by `start`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneRun {
    /// Index of the run's first µop in the batch's µop arrays.
    pub start: u32,
    /// Number of µops in the run (≥ 1; bounded by one instruction's µop
    /// expansion, so `u16` keeps the record at 8 bytes — the run array is
    /// the staging buffer's fourth per-µop stream, and its traffic is
    /// part of the fill loop's cost).
    pub len: u16,
    /// The shared streaming lane.
    pub lane: Lane,
}

/// Batch-feed statistics of a [`TimingCore`](crate::TimingCore):
/// how the committed µop stream arrived, not what it cost — these counters
/// are deliberately **not** part of
/// [`TimingReport`](crate::TimingReport), which must stay field-identical
/// between batched and per-instruction feeds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedStats {
    /// Batches consumed (a per-instruction feed counts one per shim call).
    pub batches: u64,
    /// Instructions delivered across all batches.
    pub insts: u64,
    /// µops delivered across all batches.
    pub uops: u64,
    /// µops delivered per streaming lane, indexed by `Lane as usize`.
    pub lane_uops: [u64; Lane::COUNT],
    /// Homogeneous lane runs delivered across all batches.
    pub lane_runs: u64,
    /// µops that arrived inside a homogeneous run of length ≥ 2 — the
    /// fraction of the stream that actually amortizes the hoisted
    /// dispatch branches. Singleton runs are the mixed-order fallback.
    pub streamed_uops: u64,
}

impl FeedStats {
    /// Mean instructions per batch.
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.insts as f64 / self.batches as f64
        }
    }

    /// Batches per 1000 delivered instructions.
    pub fn batches_per_kinst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.batches as f64 * 1000.0 / self.insts as f64
        }
    }

    /// Mean µops per homogeneous lane run.
    pub fn mean_run_len(&self) -> f64 {
        if self.lane_runs == 0 {
            0.0
        } else {
            self.uops as f64 / self.lane_runs as f64
        }
    }

    /// Fraction of delivered µops that streamed through a homogeneous
    /// run (length ≥ 2) rather than falling back to mixed-order
    /// dispatch.
    pub fn streamed_fraction(&self) -> f64 {
        if self.uops == 0 {
            0.0
        } else {
            self.streamed_uops as f64 / self.uops as f64
        }
    }

    /// Accumulates one delivered lane run. The table-driven path records
    /// each run from its dispatch cursor (which walks the run list
    /// anyway); the match-based reference records the same runs through
    /// [`FeedStats::observe_lane_runs`] — identical values either way, so
    /// the counters are feed observations, never timing-path dependent.
    #[inline]
    pub fn observe_run(&mut self, run: LaneRun) {
        self.lane_uops[run.lane as usize] += u64::from(run.len);
        self.lane_runs += 1;
        if run.len >= 2 {
            self.streamed_uops += u64::from(run.len);
        }
    }

    /// Accumulates the lane-run shape of one consumed batch (see
    /// [`FeedStats::observe_run`]).
    pub fn observe_lane_runs(&mut self, runs: &[LaneRun]) {
        for r in runs {
            self.observe_run(*r);
        }
    }

    /// Exports the feed counters and the derived occupancy ratios under
    /// the stable `feed.*` namespace — the single source both the `diag`
    /// binary and the `--json` export render from.
    pub fn export_into(&self, reg: &mut watchdog_telemetry::MetricsRegistry) {
        use watchdog_telemetry::Unit;
        reg.counter_at("feed.batches", Unit::Count, self.batches);
        reg.counter_at("feed.insts", Unit::Count, self.insts);
        reg.counter_at("feed.uops", Unit::Count, self.uops);
        reg.gauge_at("feed.occupancy.mean", Unit::Count, self.mean_occupancy());
        reg.gauge_at(
            "feed.batches_per_kinst",
            Unit::PerKilo,
            self.batches_per_kinst(),
        );
        for lane in Lane::ALL {
            reg.counter_at(
                &format!("feed.lane.{}.uops", lane.label()),
                Unit::Count,
                self.lane_uops[lane as usize],
            );
        }
        reg.counter_at("feed.lane.runs", Unit::Count, self.lane_runs);
        reg.counter_at("feed.lane.streamed_uops", Unit::Count, self.streamed_uops);
        reg.gauge_at("feed.lane.run_len.mean", Unit::Count, self.mean_run_len());
        reg.gauge_at(
            "feed.lane.streamed_frac",
            Unit::Ratio,
            self.streamed_fraction(),
        );
    }
}

/// One committed instruction's per-instruction facts in the batch: the
/// packed counterpart of a [`CrackedInst`] header, one `Vec` push per
/// commit.
#[derive(Debug, Clone, Copy)]
pub struct InstEvent {
    /// Byte address of the macro-instruction.
    pub pc: u64,
    /// Branch target byte address (meaningful for taken control insts).
    pub target: u64,
    /// Start of the instruction's µop range (its end is the next event's
    /// start, or the batch's total µop count for the last event).
    pub uop_start: u32,
    /// Encoded length in bytes.
    pub len: u8,
    /// Branch direction (meaningful for control insts).
    pub taken: bool,
    /// Control-flow class.
    pub ctrl: CtrlKind,
    /// Rename-stage metadata effect.
    pub meta: MetaEffect,
}

/// A structure-of-arrays window of committed instructions and their µops.
#[derive(Debug, Clone, Default)]
pub struct UopBatch {
    /// Per-instruction event records.
    inst: Vec<InstEvent>,
    // Per-µop parallel arrays: the packed static descriptor (opcode class,
    // operands, accounting tag — consumed together by the scheduler), the
    // precomputed memory behaviour and the resolved address (consumed
    // together by the memory pre-pass).
    uop: Vec<Uop>,
    mem: Vec<MemOp>,
    addr: Vec<u64>,
    // Homogeneous same-lane runs tiling the µop arrays, built
    // incrementally at fill time (see [`LaneRun`] for the
    // order-admissibility rule).
    runs: Vec<LaneRun>,
    // Lane of the trailing run while it is still extendable — i.e. no
    // instruction boundary has passed since it began. `None` after
    // `begin_inst`/`clear`, which is what enforces order-admissibility
    // without re-reading the run and instruction tails on every µop.
    open_lane: Option<Lane>,
}

impl UopBatch {
    /// Default fill target of the producers: enough to amortize the batch
    /// machinery, small enough that the staging arrays stay cache-resident.
    pub const TARGET_INSTS: usize = 64;

    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch preallocated for `insts` instructions of worst-case
    /// µop expansion ([`MAX_UOPS`](watchdog_isa::uop::MAX_UOPS) plus the
    /// location-check insertion), so steady-state fills never grow the
    /// arrays — part of the timed loop's zero-allocation discipline.
    pub fn with_capacity(insts: usize) -> Self {
        let uops = insts * (watchdog_isa::uop::MAX_UOPS + 1);
        UopBatch {
            inst: Vec::with_capacity(insts),
            uop: Vec::with_capacity(uops),
            mem: Vec::with_capacity(uops),
            addr: Vec::with_capacity(uops),
            // Worst case is one singleton run per µop.
            runs: Vec::with_capacity(uops),
            open_lane: None,
        }
    }

    /// Drops all staged instructions (capacity is retained).
    pub fn clear(&mut self) {
        self.inst.clear();
        self.uop.clear();
        self.mem.clear();
        self.addr.clear();
        self.runs.clear();
        self.open_lane = None;
    }

    /// Number of staged instructions.
    pub fn len(&self) -> usize {
        self.inst.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.inst.is_empty()
    }

    /// Number of staged µops.
    pub fn uops(&self) -> usize {
        self.uop.len()
    }

    /// Opens a new instruction. µops follow via [`UopBatch::push_uop`];
    /// control instructions must set their outcome with
    /// [`UopBatch::set_branch`].
    pub fn begin_inst(&mut self, pc: u64, len: u8, meta: MetaEffect, ctrl: CtrlKind) {
        self.inst.push(InstEvent {
            pc,
            target: 0,
            uop_start: self.uop.len() as u32,
            len,
            taken: false,
            ctrl,
            meta,
        });
        // An instruction boundary is reorder-forbidden: close the trailing
        // lane run so the next µop starts a fresh one even on a lane match.
        self.open_lane = None;
    }

    /// Appends one µop to the instruction opened last.
    ///
    /// # Panics
    ///
    /// Panics when a memory µop arrives without a resolved address — the
    /// same internal-bug condition the per-instruction path reports.
    pub fn push_uop(&mut self, uop: Uop, addr: Option<u64>) {
        let mem = MemOp::of(uop.kind);
        let addr = if mem == MemOp::None {
            addr.unwrap_or(0)
        } else {
            addr.expect("memory µop without address")
        };
        let idx = self.uop.len() as u32;
        self.uop.push(uop);
        self.mem.push(mem);
        self.addr.push(addr);
        // Lane-run maintenance: extend the trailing run only when this
        // µop shares its lane and no instruction boundary has intervened
        // (`begin_inst` resets `open_lane`, enforcing order-admissibility),
        // so the steady-state extend path is a single one-byte compare.
        let lane = KIND_DESCS[uop.kind as usize].lane;
        if self.open_lane == Some(lane) {
            self.runs.last_mut().expect("open run exists").len += 1;
        } else {
            self.runs.push(LaneRun {
                start: idx,
                len: 1,
                lane,
            });
            self.open_lane = Some(lane);
        }
    }

    /// Records the branch outcome of the instruction opened last.
    pub fn set_branch(&mut self, taken: bool, target: u64) {
        let last = self.inst.last_mut().expect("begin_inst opens first");
        last.taken = taken;
        last.target = target;
    }

    /// Copies one assembled [`CrackedInst`] into the batch (the
    /// [`TimingCore::consume`](crate::TimingCore::consume) shim's fill
    /// path).
    pub fn push_cracked(&mut self, inst: &CrackedInst) {
        self.begin_inst(inst.pc, inst.len, inst.meta, inst.ctrl);
        for u in inst.uops.iter() {
            self.push_uop(u.uop, u.addr);
        }
        if inst.ctrl != CtrlKind::None {
            let last = inst.uops.as_slice().last().expect("control inst has µops");
            self.set_branch(last.taken, last.target);
        }
    }

    /// Appends one committed instruction from its cached static expansion
    /// and dynamic [`CommitFacts`] — the batch-fill twin of
    /// [`assemble_cracked`](watchdog_isa::crack::assemble_cracked()),
    /// applying the same transformations (select-fold µop drop, §2.1
    /// location-check front insertion, in-order memory-address fill,
    /// branch facts on the trailing µop) straight to the SoA arrays, with
    /// no intermediate [`CrackedInst`]. **Both** producers go through
    /// here — the live machine's µop-emitting step and the trace
    /// replayer — so their batch contents are equal by construction.
    ///
    /// # Panics
    ///
    /// Panics if the facts disagree with the expansion's shape (memory
    /// address count, missing branch outcome), exactly as
    /// `assemble_cracked` does.
    pub fn push_expansion(&mut self, stat: &Cracked, facts: &CommitFacts<'_>) {
        let fold = facts.select_fold.is_some();
        let meta = facts.select_fold.unwrap_or(stat.meta);
        self.begin_inst(facts.pc, facts.len, meta, stat.ctrl);
        let mut addrs = facts.mem_addrs.iter();
        if facts.location_check {
            // Location-based checking: one allocation-status check µop per
            // memory access (§2.1 hardware, e.g. MemTracker).
            self.push_uop(
                Uop::new(UopKind::Check, None, None, None, UopTag::Check),
                Some(*addrs.next().expect("fewer addresses than memory µops")),
            );
        }
        for u in stat.uops.iter() {
            if fold && u.uop.kind == UopKind::SelectMeta {
                // Folded into the rename-stage effect; no µop issues.
                continue;
            }
            let addr = if u.uop.kind.is_mem() {
                Some(*addrs.next().expect("fewer addresses than memory µops"))
            } else {
                None
            };
            self.push_uop(u.uop, addr);
        }
        assert!(addrs.next().is_none(), "more addresses than memory µops");
        if stat.ctrl != CtrlKind::None {
            let (taken, target) = facts.branch.expect("control instruction resolved");
            self.set_branch(taken, target);
        }
    }

    /// µop index range of instruction `i`.
    pub fn uop_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.inst[i].uop_start as usize;
        let end = match self.inst.get(i + 1) {
            Some(next) => next.uop_start as usize,
            None => self.uop.len(),
        };
        start..end
    }

    /// Per-instruction event records.
    pub fn insts(&self) -> &[InstEvent] {
        &self.inst
    }

    /// Per-µop packed static descriptors (opcode class, operands, tag).
    pub fn uop_descs(&self) -> &[Uop] {
        &self.uop
    }

    /// Per-µop memory behaviour.
    pub fn mems(&self) -> &[MemOp] {
        &self.mem
    }

    /// Per-µop resolved addresses (meaningful where
    /// [`UopBatch::mems`] is not [`MemOp::None`]; these are the timing
    /// model's LL$ probe keys for lock-class entries).
    pub fn addrs(&self) -> &[u64] {
        &self.addr
    }

    /// Homogeneous same-lane runs tiling the µop arrays, in program
    /// order (see [`LaneRun`]).
    pub fn lane_runs(&self) -> &[LaneRun] {
        &self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchdog_isa::crack::{crack, CrackConfig};
    use watchdog_isa::insn::{Inst, MemAddr, PtrHint, Width};
    use watchdog_isa::reg::LReg;
    use watchdog_isa::Gpr;

    fn cracked_load() -> CrackedInst {
        let inst = Inst::Load {
            dst: Gpr::new(0),
            addr: MemAddr::base(Gpr::new(1)),
            width: Width::B8,
            hint: PtrHint::Auto,
        };
        let c = crack(&inst, true, &CrackConfig::watchdog());
        let mut uops = c.uops;
        watchdog_isa::crack::fill_mem_addrs(&mut uops, &[0x5000_0000, 0x2000_0000, 0x4000_0000]);
        CrackedInst {
            pc: 0x40_0000,
            len: inst.encoded_len(),
            uops,
            meta: c.meta,
            ctrl: c.ctrl,
        }
    }

    #[test]
    fn push_cracked_preserves_stream_shape() {
        let ci = cracked_load();
        let mut b = UopBatch::new();
        b.push_cracked(&ci);
        b.push_cracked(&ci);
        assert_eq!(b.len(), 2);
        assert_eq!(b.uops(), 2 * ci.uops.len());
        assert_eq!(b.uop_range(0), 0..3);
        assert_eq!(b.uop_range(1), 3..6);
        let kinds: Vec<UopKind> = b.uop_descs()[..3].iter().map(|u| u.kind).collect();
        assert_eq!(kinds, [UopKind::Check, UopKind::Load, UopKind::ShadowLoad]);
        assert_eq!(
            b.mems()[..3],
            [
                MemOp::Read(AccessClass::Lock),
                MemOp::Read(AccessClass::Data),
                MemOp::Read(AccessClass::Shadow)
            ]
        );
        assert_eq!(b.addrs()[..3], [0x5000_0000, 0x2000_0000, 0x4000_0000]);
        assert_eq!(b.insts()[0].ctrl, CtrlKind::None);
        assert_eq!(b.insts()[1].uop_start, 3);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.uops(), 0);
    }

    #[test]
    fn mem_op_classification_matches_uop_kind() {
        for kind in [
            UopKind::IntAlu,
            UopKind::IntMul,
            UopKind::IntDiv,
            UopKind::FpAlu,
            UopKind::FpMul,
            UopKind::FpDiv,
            UopKind::Branch,
            UopKind::Load,
            UopKind::Store,
            UopKind::ShadowLoad,
            UopKind::ShadowStore,
            UopKind::LockLoad,
            UopKind::LockStore,
            UopKind::Check,
            UopKind::BoundsCheck,
            UopKind::CheckCombined,
            UopKind::SelectMeta,
            UopKind::Nop,
        ] {
            let m = MemOp::of(kind);
            assert_eq!(m != MemOp::None, kind.is_mem(), "{kind:?}");
            assert_eq!(
                matches!(m, MemOp::Write(_)),
                kind.is_mem_write(),
                "{kind:?}"
            );
            if let MemOp::Read(c) | MemOp::Write(c) = m {
                assert_eq!(c == AccessClass::Lock, kind.is_lock_access(), "{kind:?}");
                assert_eq!(
                    c == AccessClass::Shadow,
                    kind.is_shadow_access(),
                    "{kind:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "memory µop without address")]
    fn mem_uop_without_address_panics() {
        let mut b = UopBatch::new();
        b.begin_inst(0, 4, MetaEffect::None, CtrlKind::None);
        b.push_uop(
            Uop::base(UopKind::Load, None, Some(LReg::G(Gpr::new(1))), None),
            None,
        );
    }

    #[test]
    fn lane_runs_tile_the_uop_arrays_and_respect_inst_boundaries() {
        let ci = cracked_load(); // Check, Load, ShadowLoad
        let mut b = UopBatch::new();
        b.push_cracked(&ci);
        b.push_cracked(&ci);
        // Within one instruction: Check (MetaCheck) | Load+ShadowLoad
        // (Load lane, streamed). Across the instruction boundary the
        // ShadowLoad→Check transition changes lane anyway; the boundary
        // rule is what keeps Load runs from crossing (tested below).
        let runs = b.lane_runs();
        assert_eq!(
            runs,
            [
                LaneRun {
                    start: 0,
                    len: 1,
                    lane: Lane::MetaCheck
                },
                LaneRun {
                    start: 1,
                    len: 2,
                    lane: Lane::Load
                },
                LaneRun {
                    start: 3,
                    len: 1,
                    lane: Lane::MetaCheck
                },
                LaneRun {
                    start: 4,
                    len: 2,
                    lane: Lane::Load
                },
            ]
        );
        // Tiling: contiguous, sorted, covering every µop exactly once.
        let mut next = 0u32;
        for r in runs {
            assert_eq!(r.start, next);
            next += u32::from(r.len);
        }
        assert_eq!(next as usize, b.uops());
        b.clear();
        assert!(b.lane_runs().is_empty());
    }

    #[test]
    fn same_lane_runs_never_cross_instruction_boundaries() {
        // Two instructions whose adjacent µops share the ALU lane: the
        // run must still break at the boundary (per-instruction work is
        // reorder-forbidden).
        let mut b = UopBatch::new();
        b.begin_inst(0x100, 4, MetaEffect::None, CtrlKind::None);
        b.push_uop(Uop::base(UopKind::IntAlu, None, None, None), None);
        b.push_uop(Uop::base(UopKind::IntMul, None, None, None), None);
        b.begin_inst(0x104, 4, MetaEffect::None, CtrlKind::None);
        b.push_uop(Uop::base(UopKind::IntAlu, None, None, None), None);
        assert_eq!(
            b.lane_runs(),
            [
                LaneRun {
                    start: 0,
                    len: 2,
                    lane: Lane::Alu
                },
                LaneRun {
                    start: 2,
                    len: 1,
                    lane: Lane::Alu
                },
            ]
        );
    }

    #[test]
    fn feed_stats_lane_counters_accumulate_runs() {
        let mut f = FeedStats {
            uops: 6,
            ..FeedStats::default()
        };
        f.observe_lane_runs(&[
            LaneRun {
                start: 0,
                len: 1,
                lane: Lane::MetaCheck,
            },
            LaneRun {
                start: 1,
                len: 2,
                lane: Lane::Load,
            },
            LaneRun {
                start: 3,
                len: 3,
                lane: Lane::Alu,
            },
        ]);
        assert_eq!(f.lane_uops[Lane::MetaCheck as usize], 1);
        assert_eq!(f.lane_uops[Lane::Load as usize], 2);
        assert_eq!(f.lane_uops[Lane::Alu as usize], 3);
        assert_eq!(f.lane_runs, 3);
        assert_eq!(f.streamed_uops, 5, "singleton runs are the fallback");
        assert!((f.streamed_fraction() - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(f.mean_run_len(), 2.0);
    }

    #[test]
    fn feed_stats_ratios() {
        let f = FeedStats {
            batches: 4,
            insts: 256,
            uops: 512,
            ..FeedStats::default()
        };
        assert_eq!(f.mean_occupancy(), 64.0);
        assert_eq!(f.batches_per_kinst(), 4000.0 / 256.0);
        assert_eq!(FeedStats::default().mean_occupancy(), 0.0);
        assert_eq!(FeedStats::default().batches_per_kinst(), 0.0);
    }
}

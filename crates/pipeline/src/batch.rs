//! The batched µop-event buffer feeding [`TimingCore`](crate::TimingCore).
//!
//! [`UopBatch`] is a structure-of-arrays staging buffer for a window of
//! committed instructions: per-instruction arrays (pc, length, rename-stage
//! metadata effect, control class, branch outcome, µop range) plus
//! per-µop parallel arrays (opcode class, operands, accounting tag,
//! memory-access class and resolved address). Both µop producers fill it
//! through one shared routine, [`UopBatch::push_expansion`] — the live
//! machine's batched step appends each committed expansion directly, and
//! the trace replayer appends decoded events, neither materializing an
//! intermediate [`CrackedInst`] — and
//! [`TimingCore::consume_batch`](crate::TimingCore::consume_batch) drains
//! it.
//!
//! The SoA split follows what each drain pass actually touches: the memory
//! pre-pass streams over the `mem`/`addr` arrays only, and the scheduler
//! over the packed 8-byte static [`Uop`] descriptors (whose five fields it
//! consumes together) — neither drags a 40-byte
//! [`UopExec`](watchdog_isa::uop::UopExec) with its resolved address and
//! branch facts through the cache, the way the per-instruction feed does.
//! The batch carries *no* timing state; feeding one instruction per batch
//! is exactly equivalent to feeding sixty-four (asserted by the
//! batch-equivalence suites).

use watchdog_isa::crack::{CommitFacts, Cracked, CrackedInst, CtrlKind, MetaEffect};
use watchdog_isa::uop::{Uop, UopKind, UopTag};
use watchdog_mem::AccessClass;

/// Memory behaviour of a µop, precomputed at batch-fill time so the
/// consume loop never re-derives class or direction from [`UopKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Not a memory µop.
    None,
    /// Memory read of the given class.
    Read(AccessClass),
    /// Memory write of the given class.
    Write(AccessClass),
}

impl MemOp {
    /// Classifies a µop kind (mirrors the routing
    /// [`TimingCore::consume`](crate::TimingCore::consume) applies).
    pub const fn of(kind: UopKind) -> MemOp {
        match kind {
            UopKind::Load => MemOp::Read(AccessClass::Data),
            UopKind::Store => MemOp::Write(AccessClass::Data),
            UopKind::ShadowLoad => MemOp::Read(AccessClass::Shadow),
            UopKind::ShadowStore => MemOp::Write(AccessClass::Shadow),
            UopKind::Check | UopKind::CheckCombined | UopKind::LockLoad => {
                MemOp::Read(AccessClass::Lock)
            }
            UopKind::LockStore => MemOp::Write(AccessClass::Lock),
            _ => MemOp::None,
        }
    }
}

/// Batch-feed statistics of a [`TimingCore`](crate::TimingCore):
/// how the committed µop stream arrived, not what it cost — these counters
/// are deliberately **not** part of
/// [`TimingReport`](crate::TimingReport), which must stay field-identical
/// between batched and per-instruction feeds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedStats {
    /// Batches consumed (a per-instruction feed counts one per shim call).
    pub batches: u64,
    /// Instructions delivered across all batches.
    pub insts: u64,
    /// µops delivered across all batches.
    pub uops: u64,
}

impl FeedStats {
    /// Mean instructions per batch.
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.insts as f64 / self.batches as f64
        }
    }

    /// Batches per 1000 delivered instructions.
    pub fn batches_per_kinst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.batches as f64 * 1000.0 / self.insts as f64
        }
    }

    /// Exports the feed counters and the derived occupancy ratios under
    /// the stable `feed.*` namespace — the single source both the `diag`
    /// binary and the `--json` export render from.
    pub fn export_into(&self, reg: &mut watchdog_telemetry::MetricsRegistry) {
        use watchdog_telemetry::Unit;
        reg.counter_at("feed.batches", Unit::Count, self.batches);
        reg.counter_at("feed.insts", Unit::Count, self.insts);
        reg.counter_at("feed.uops", Unit::Count, self.uops);
        reg.gauge_at("feed.occupancy.mean", Unit::Count, self.mean_occupancy());
        reg.gauge_at(
            "feed.batches_per_kinst",
            Unit::PerKilo,
            self.batches_per_kinst(),
        );
    }
}

/// One committed instruction's per-instruction facts in the batch: the
/// packed counterpart of a [`CrackedInst`] header, one `Vec` push per
/// commit.
#[derive(Debug, Clone, Copy)]
pub struct InstEvent {
    /// Byte address of the macro-instruction.
    pub pc: u64,
    /// Branch target byte address (meaningful for taken control insts).
    pub target: u64,
    /// Start of the instruction's µop range (its end is the next event's
    /// start, or the batch's total µop count for the last event).
    pub uop_start: u32,
    /// Encoded length in bytes.
    pub len: u8,
    /// Branch direction (meaningful for control insts).
    pub taken: bool,
    /// Control-flow class.
    pub ctrl: CtrlKind,
    /// Rename-stage metadata effect.
    pub meta: MetaEffect,
}

/// A structure-of-arrays window of committed instructions and their µops.
#[derive(Debug, Clone, Default)]
pub struct UopBatch {
    /// Per-instruction event records.
    inst: Vec<InstEvent>,
    // Per-µop parallel arrays: the packed static descriptor (opcode class,
    // operands, accounting tag — consumed together by the scheduler), the
    // precomputed memory behaviour and the resolved address (consumed
    // together by the memory pre-pass).
    uop: Vec<Uop>,
    mem: Vec<MemOp>,
    addr: Vec<u64>,
}

impl UopBatch {
    /// Default fill target of the producers: enough to amortize the batch
    /// machinery, small enough that the staging arrays stay cache-resident.
    pub const TARGET_INSTS: usize = 64;

    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch preallocated for `insts` instructions of worst-case
    /// µop expansion ([`MAX_UOPS`](watchdog_isa::uop::MAX_UOPS) plus the
    /// location-check insertion), so steady-state fills never grow the
    /// arrays — part of the timed loop's zero-allocation discipline.
    pub fn with_capacity(insts: usize) -> Self {
        let uops = insts * (watchdog_isa::uop::MAX_UOPS + 1);
        UopBatch {
            inst: Vec::with_capacity(insts),
            uop: Vec::with_capacity(uops),
            mem: Vec::with_capacity(uops),
            addr: Vec::with_capacity(uops),
        }
    }

    /// Drops all staged instructions (capacity is retained).
    pub fn clear(&mut self) {
        self.inst.clear();
        self.uop.clear();
        self.mem.clear();
        self.addr.clear();
    }

    /// Number of staged instructions.
    pub fn len(&self) -> usize {
        self.inst.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.inst.is_empty()
    }

    /// Number of staged µops.
    pub fn uops(&self) -> usize {
        self.uop.len()
    }

    /// Opens a new instruction. µops follow via [`UopBatch::push_uop`];
    /// control instructions must set their outcome with
    /// [`UopBatch::set_branch`].
    pub fn begin_inst(&mut self, pc: u64, len: u8, meta: MetaEffect, ctrl: CtrlKind) {
        self.inst.push(InstEvent {
            pc,
            target: 0,
            uop_start: self.uop.len() as u32,
            len,
            taken: false,
            ctrl,
            meta,
        });
    }

    /// Appends one µop to the instruction opened last.
    ///
    /// # Panics
    ///
    /// Panics when a memory µop arrives without a resolved address — the
    /// same internal-bug condition the per-instruction path reports.
    pub fn push_uop(&mut self, uop: Uop, addr: Option<u64>) {
        let mem = MemOp::of(uop.kind);
        let addr = if mem == MemOp::None {
            addr.unwrap_or(0)
        } else {
            addr.expect("memory µop without address")
        };
        self.uop.push(uop);
        self.mem.push(mem);
        self.addr.push(addr);
    }

    /// Records the branch outcome of the instruction opened last.
    pub fn set_branch(&mut self, taken: bool, target: u64) {
        let last = self.inst.last_mut().expect("begin_inst opens first");
        last.taken = taken;
        last.target = target;
    }

    /// Copies one assembled [`CrackedInst`] into the batch (the
    /// [`TimingCore::consume`](crate::TimingCore::consume) shim's fill
    /// path).
    pub fn push_cracked(&mut self, inst: &CrackedInst) {
        self.begin_inst(inst.pc, inst.len, inst.meta, inst.ctrl);
        for u in inst.uops.iter() {
            self.push_uop(u.uop, u.addr);
        }
        if inst.ctrl != CtrlKind::None {
            let last = inst.uops.as_slice().last().expect("control inst has µops");
            self.set_branch(last.taken, last.target);
        }
    }

    /// Appends one committed instruction from its cached static expansion
    /// and dynamic [`CommitFacts`] — the batch-fill twin of
    /// [`assemble_cracked`](watchdog_isa::crack::assemble_cracked()),
    /// applying the same transformations (select-fold µop drop, §2.1
    /// location-check front insertion, in-order memory-address fill,
    /// branch facts on the trailing µop) straight to the SoA arrays, with
    /// no intermediate [`CrackedInst`]. **Both** producers go through
    /// here — the live machine's µop-emitting step and the trace
    /// replayer — so their batch contents are equal by construction.
    ///
    /// # Panics
    ///
    /// Panics if the facts disagree with the expansion's shape (memory
    /// address count, missing branch outcome), exactly as
    /// `assemble_cracked` does.
    pub fn push_expansion(&mut self, stat: &Cracked, facts: &CommitFacts<'_>) {
        let fold = facts.select_fold.is_some();
        let meta = facts.select_fold.unwrap_or(stat.meta);
        self.begin_inst(facts.pc, facts.len, meta, stat.ctrl);
        let mut addrs = facts.mem_addrs.iter();
        if facts.location_check {
            // Location-based checking: one allocation-status check µop per
            // memory access (§2.1 hardware, e.g. MemTracker).
            self.push_uop(
                Uop::new(UopKind::Check, None, None, None, UopTag::Check),
                Some(*addrs.next().expect("fewer addresses than memory µops")),
            );
        }
        for u in stat.uops.iter() {
            if fold && u.uop.kind == UopKind::SelectMeta {
                // Folded into the rename-stage effect; no µop issues.
                continue;
            }
            let addr = if u.uop.kind.is_mem() {
                Some(*addrs.next().expect("fewer addresses than memory µops"))
            } else {
                None
            };
            self.push_uop(u.uop, addr);
        }
        assert!(addrs.next().is_none(), "more addresses than memory µops");
        if stat.ctrl != CtrlKind::None {
            let (taken, target) = facts.branch.expect("control instruction resolved");
            self.set_branch(taken, target);
        }
    }

    /// µop index range of instruction `i`.
    pub fn uop_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.inst[i].uop_start as usize;
        let end = match self.inst.get(i + 1) {
            Some(next) => next.uop_start as usize,
            None => self.uop.len(),
        };
        start..end
    }

    /// Per-instruction event records.
    pub fn insts(&self) -> &[InstEvent] {
        &self.inst
    }

    /// Per-µop packed static descriptors (opcode class, operands, tag).
    pub fn uop_descs(&self) -> &[Uop] {
        &self.uop
    }

    /// Per-µop memory behaviour.
    pub fn mems(&self) -> &[MemOp] {
        &self.mem
    }

    /// Per-µop resolved addresses (meaningful where
    /// [`UopBatch::mems`] is not [`MemOp::None`]; these are the timing
    /// model's LL$ probe keys for lock-class entries).
    pub fn addrs(&self) -> &[u64] {
        &self.addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchdog_isa::crack::{crack, CrackConfig};
    use watchdog_isa::insn::{Inst, MemAddr, PtrHint, Width};
    use watchdog_isa::reg::LReg;
    use watchdog_isa::Gpr;

    fn cracked_load() -> CrackedInst {
        let inst = Inst::Load {
            dst: Gpr::new(0),
            addr: MemAddr::base(Gpr::new(1)),
            width: Width::B8,
            hint: PtrHint::Auto,
        };
        let c = crack(&inst, true, &CrackConfig::watchdog());
        let mut uops = c.uops;
        watchdog_isa::crack::fill_mem_addrs(&mut uops, &[0x5000_0000, 0x2000_0000, 0x4000_0000]);
        CrackedInst {
            pc: 0x40_0000,
            len: inst.encoded_len(),
            uops,
            meta: c.meta,
            ctrl: c.ctrl,
        }
    }

    #[test]
    fn push_cracked_preserves_stream_shape() {
        let ci = cracked_load();
        let mut b = UopBatch::new();
        b.push_cracked(&ci);
        b.push_cracked(&ci);
        assert_eq!(b.len(), 2);
        assert_eq!(b.uops(), 2 * ci.uops.len());
        assert_eq!(b.uop_range(0), 0..3);
        assert_eq!(b.uop_range(1), 3..6);
        let kinds: Vec<UopKind> = b.uop_descs()[..3].iter().map(|u| u.kind).collect();
        assert_eq!(kinds, [UopKind::Check, UopKind::Load, UopKind::ShadowLoad]);
        assert_eq!(
            b.mems()[..3],
            [
                MemOp::Read(AccessClass::Lock),
                MemOp::Read(AccessClass::Data),
                MemOp::Read(AccessClass::Shadow)
            ]
        );
        assert_eq!(b.addrs()[..3], [0x5000_0000, 0x2000_0000, 0x4000_0000]);
        assert_eq!(b.insts()[0].ctrl, CtrlKind::None);
        assert_eq!(b.insts()[1].uop_start, 3);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.uops(), 0);
    }

    #[test]
    fn mem_op_classification_matches_uop_kind() {
        for kind in [
            UopKind::IntAlu,
            UopKind::IntMul,
            UopKind::IntDiv,
            UopKind::FpAlu,
            UopKind::FpMul,
            UopKind::FpDiv,
            UopKind::Branch,
            UopKind::Load,
            UopKind::Store,
            UopKind::ShadowLoad,
            UopKind::ShadowStore,
            UopKind::LockLoad,
            UopKind::LockStore,
            UopKind::Check,
            UopKind::BoundsCheck,
            UopKind::CheckCombined,
            UopKind::SelectMeta,
            UopKind::Nop,
        ] {
            let m = MemOp::of(kind);
            assert_eq!(m != MemOp::None, kind.is_mem(), "{kind:?}");
            assert_eq!(
                matches!(m, MemOp::Write(_)),
                kind.is_mem_write(),
                "{kind:?}"
            );
            if let MemOp::Read(c) | MemOp::Write(c) = m {
                assert_eq!(c == AccessClass::Lock, kind.is_lock_access(), "{kind:?}");
                assert_eq!(
                    c == AccessClass::Shadow,
                    kind.is_shadow_access(),
                    "{kind:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "memory µop without address")]
    fn mem_uop_without_address_panics() {
        let mut b = UopBatch::new();
        b.begin_inst(0, 4, MetaEffect::None, CtrlKind::None);
        b.push_uop(
            Uop::base(UopKind::Load, None, Some(LReg::G(Gpr::new(1))), None),
            None,
        );
    }

    #[test]
    fn feed_stats_ratios() {
        let f = FeedStats {
            batches: 4,
            insts: 256,
            uops: 512,
        };
        assert_eq!(f.mean_occupancy(), 64.0);
        assert_eq!(f.batches_per_kinst(), 4000.0 / 256.0);
        assert_eq!(FeedStats::default().mean_occupancy(), 0.0);
        assert_eq!(FeedStats::default().batches_per_kinst(), 0.0);
    }
}

//! Out-of-order core timing model for the Watchdog reproduction.
//!
//! The simulated core matches Table 2 of the paper (an Intel "Sandy
//! Bridge"-class machine): 6-wide rename/dispatch/issue, 168-entry ROB,
//! 54-entry IQ, 64/36-entry load/store queues, 16 fetch bytes per cycle, a
//! 3-table PPM branch predictor, and the functional-unit and cache-port
//! inventory of the paper.
//!
//! * [`config`] — [`config::CoreConfig`] with the Table 2 parameters.
//! * [`bpred`] — 3-table PPM predictor (256×2, 128×4, 128×4, 8-bit tags,
//!   2-bit counters) plus a return-address stack.
//! * [`rename`] — register renaming with the paper's §6.2 extensions: a
//!   dual map table (data + metadata mappings per logical register),
//!   reference-counted metadata physical registers, and metadata-copy
//!   elimination at rename.
//! * [`core`] — the timestamp-based out-of-order scheduling model: each
//!   µop's dispatch, issue, completion and commit times are computed under
//!   frontend bandwidth, window-occupancy (ROB/IQ/LQ/SQ), functional-unit,
//!   cache-port and dependence constraints. This style of model (cf.
//!   interval simulation) reproduces the IPC, port-contention and
//!   window-pressure effects that Figures 7–11 measure, at a fraction of
//!   the cost of a cycle-by-cycle pipeline.
//! * [`wheel`] — the calendar-queue scheduling structures behind the hot
//!   loop: release-time rings, a circular timing wheel, rotating-cursor FU
//!   pools, and the [`wheel::SchedModel`] trait that keeps the PR 5
//!   heap/scan structures alive as a bit-for-bit reference oracle.
//! * [`tele`] — the core's optional self-profiler: per-kind dispatch
//!   counters, window-occupancy and wheel-lead histograms, and sampled
//!   phase timers, recorded out-of-band so no report field ever depends
//!   on whether telemetry is attached.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bpred;
pub mod config;
pub mod core;
pub mod rename;
pub mod tele;
pub mod wheel;

pub use crate::core::{
    dispatch_descs, DispatchDesc, Fu, ReferenceCore, ScheduledCore, TimingCore, TimingReport,
    NUM_FUS, NUM_TAGS, TAG_NAMES,
};
pub use batch::{FeedStats, LaneRun, MemOp, UopBatch};
pub use bpred::Predictor;
pub use config::CoreConfig;
pub use rename::{Rename, RenameConfig, RenameStats};
pub use tele::{
    CoreTelemetry, PhaseProfile, TelemetryConfig, NUM_STALL_CAUSES, NUM_UOP_KINDS,
    STALL_CAUSE_NAMES, UOP_KIND_NAMES,
};
pub use wheel::{HeapSched, SchedModel, WheelSched};

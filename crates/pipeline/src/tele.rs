//! The timing core's self-profiler.
//!
//! [`CoreTelemetry`] is an optional, preallocated instrumentation block
//! a [`ScheduledCore`](crate::core::ScheduledCore) carries beside its
//! model state. When absent (the default) the consume loop pays one
//! predictable branch per batch; when present it collects what the
//! dispatch-path investigation needs and the model cannot tell us:
//!
//! * **per-µop-kind dispatch counters** — which µop mix actually hits
//!   the scheduler (a second accounting path, deliberately independent
//!   of [`TimingReport`](crate::TimingReport)'s tag totals so the
//!   cross-check tests can catch drift between them);
//! * **window-occupancy histograms** — ROB/IQ/LQ/SQ depth sampled at
//!   every batch boundary;
//! * **wheel-slot lead histogram** — how far ahead of dispatch each
//!   µop's issue slot lands in the calendar wheel;
//! * **phase timers** — host-nanosecond attribution of the consume loop
//!   to *dispatch*, *wheel drain* (window-occupancy checks), *hierarchy
//!   walk* (cache accesses) and *commit*, measured on one batch in
//!   [`TelemetryConfig::profile_every`] so the `Instant` cost never
//!   shows up in throughput (the ≤2%-overhead acceptance bound).
//!
//! Everything here is host-side observation: enabling telemetry never
//! changes a timestamp, so every equivalence suite holds with it on.

use crate::core::NUM_TAGS;
use watchdog_isa::uop::UopKind;
use watchdog_telemetry::{Histogram, MetricsRegistry, Unit};

/// Number of [`UopKind`] variants (the dispatch-counter array length),
/// tied to the ISA's own count so the name table, the counters and the
/// dispatch-descriptor tables can never drift apart.
pub const NUM_UOP_KINDS: usize = UopKind::COUNT;

/// Number of distinct stall causes in the CPI-stack accounting (the
/// drain tail is exported separately as `cpi.stall.drain`).
pub const NUM_STALL_CAUSES: usize = 12;

/// Registry-name suffix per stall cause, in [`CoreTelemetry::stall_slots`]
/// index order. The first-match classification priority in the consume
/// loop runs the *other* way — memory misses beat FU contention beat
/// dependency waits beat window-full beat frontend causes — so the cheap
/// structural causes only absorb slots no finer cause claims.
pub const STALL_CAUSE_NAMES: [&str; NUM_STALL_CAUSES] = [
    "fetch", "icache", "redirect", "rob_full", "iq_full", "lq_full", "sq_full", "fu", "dep",
    "tlb_miss", "ll_miss", "l1d_miss",
];

/// Registry-name suffix per [`UopKind`], in discriminant order.
pub const UOP_KIND_NAMES: [&str; NUM_UOP_KINDS] = [
    "int_alu",
    "int_mul",
    "int_div",
    "fp_alu",
    "fp_mul",
    "fp_div",
    "branch",
    "load",
    "store",
    "shadow_load",
    "shadow_store",
    "lock_load",
    "lock_store",
    "check",
    "bounds_check",
    "check_combined",
    "select_meta",
    "nop",
];

/// Self-profiler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Phase-time one batch in every `profile_every` (`0` disables phase
    /// timing entirely; counters and occupancy histograms still run).
    /// The default of 256 keeps the `Instant` calls off ~99.6% of
    /// batches, holding whole-profiler overhead under the 2% budget the
    /// `timing_wheel/*_wheel_telemetry` perf case tracks.
    pub profile_every: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { profile_every: 256 }
    }
}

/// Host-nanosecond attribution of the consume loop's phases, summed over
/// the sampled batches.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfile {
    /// Batches that were phase-timed.
    pub batches_sampled: u64,
    /// Wall-clock nanoseconds those batches took end to end.
    pub total_ns: u64,
    /// Time in the window-occupancy checks (ROB/IQ/LQ/SQ drains).
    pub wheel_drain_ns: u64,
    /// Time inside [`Hierarchy::access`](watchdog_mem::Hierarchy)
    /// (I-fetch, data, shadow and lock classes alike).
    pub hierarchy_ns: u64,
    /// Time assigning commit slots and pushing window entries.
    pub commit_ns: u64,
}

impl PhaseProfile {
    /// Everything not attributed to a finer phase: fetch bandwidth,
    /// rename bookkeeping, source readiness, FU reservation — the
    /// dispatch path the ROADMAP's open item is chasing.
    pub fn dispatch_ns(&self) -> u64 {
        self.total_ns
            .saturating_sub(self.wheel_drain_ns + self.hierarchy_ns + self.commit_ns)
    }
}

/// The preallocated instrumentation block. Constructing it allocates
/// (two boxed histogram-bearing fields inside one `Box`); recording into
/// it never does — the batch-feed allocation-discipline test runs with
/// one of these attached.
#[derive(Debug, Clone)]
pub struct CoreTelemetry {
    cfg: TelemetryConfig,
    batches: u64,
    /// Macro-instructions seen by the instrumented consume loop — a
    /// second accounting path for the cross-check suite.
    pub insts: u64,
    /// µops seen by the instrumented consume loop.
    pub uops: u64,
    /// Dispatched µops by [`UopKind`] discriminant.
    pub dispatch_by_kind: [u64; NUM_UOP_KINDS],
    /// ROB depth at batch boundaries.
    pub rob_occupancy: Histogram,
    /// IQ depth at batch boundaries.
    pub iq_occupancy: Histogram,
    /// LQ depth at batch boundaries.
    pub lq_occupancy: Histogram,
    /// SQ depth at batch boundaries.
    pub sq_occupancy: Histogram,
    /// `issue - dispatch` distance per µop (sampled batches only): how
    /// far ahead of its dispatch cycle each µop lands in the wheel.
    pub wheel_lead: Histogram,
    /// Phase-time attribution over the sampled batches.
    pub phases: PhaseProfile,
    /// CPI-stack commit slots by µop tag: one slot per committed µop,
    /// indexed like [`TAG_NAMES`](crate::core::TAG_NAMES). Deliberately
    /// accumulated in the consume loop, independently of
    /// [`TimingReport`](crate::TimingReport)'s `uops_by_tag`, so the
    /// zero-slack suite can cross-check the two paths.
    pub commit_slots_by_tag: [u64; NUM_TAGS],
    /// CPI-stack stall slots by cause, indexed like [`STALL_CAUSE_NAMES`].
    /// Together with `commit_slots_by_tag` and the drain tail computed at
    /// export, these sum to exactly `cycles × commit_width`.
    pub stall_slots: [u64; NUM_STALL_CAUSES],
}

impl CoreTelemetry {
    /// Fresh, empty instrumentation block.
    pub fn new(cfg: TelemetryConfig) -> Self {
        CoreTelemetry {
            cfg,
            batches: 0,
            insts: 0,
            uops: 0,
            dispatch_by_kind: [0; NUM_UOP_KINDS],
            rob_occupancy: Histogram::new(),
            iq_occupancy: Histogram::new(),
            lq_occupancy: Histogram::new(),
            sq_occupancy: Histogram::new(),
            wheel_lead: Histogram::new(),
            phases: PhaseProfile::default(),
            commit_slots_by_tag: [0; NUM_TAGS],
            stall_slots: [0; NUM_STALL_CAUSES],
        }
    }

    /// Marks the start of a batch; returns whether this batch is
    /// phase-timed.
    #[inline]
    pub(crate) fn begin_batch(&mut self) -> bool {
        self.batches += 1;
        self.cfg.profile_every != 0 && self.batches.is_multiple_of(self.cfg.profile_every)
    }

    /// Exports every collected quantity under the stable `profile.*`
    /// namespace.
    pub fn export_into(&self, reg: &mut MetricsRegistry) {
        reg.counter_at("profile.insts", Unit::Count, self.insts);
        reg.counter_at("profile.uops", Unit::Count, self.uops);
        for (name, &n) in UOP_KIND_NAMES.iter().zip(&self.dispatch_by_kind) {
            reg.counter_at(&format!("profile.dispatch.{name}"), Unit::Count, n);
        }
        reg.histogram_at("profile.occupancy.rob", Unit::Count, &self.rob_occupancy);
        reg.histogram_at("profile.occupancy.iq", Unit::Count, &self.iq_occupancy);
        reg.histogram_at("profile.occupancy.lq", Unit::Count, &self.lq_occupancy);
        reg.histogram_at("profile.occupancy.sq", Unit::Count, &self.sq_occupancy);
        reg.histogram_at("profile.wheel.lead", Unit::Cycles, &self.wheel_lead);
        let p = &self.phases;
        reg.counter_at(
            "profile.phase.batches_sampled",
            Unit::Count,
            p.batches_sampled,
        );
        reg.counter_at("profile.phase.total.ns", Unit::Nanos, p.total_ns);
        reg.counter_at("profile.phase.dispatch.ns", Unit::Nanos, p.dispatch_ns());
        reg.counter_at(
            "profile.phase.wheel_drain.ns",
            Unit::Nanos,
            p.wheel_drain_ns,
        );
        reg.counter_at("profile.phase.hierarchy.ns", Unit::Nanos, p.hierarchy_ns);
        reg.counter_at("profile.phase.commit.ns", Unit::Nanos, p.commit_ns);
    }
}

/// Runs `f`, charging its wall-clock time to `acc` when `sampled` —
/// the phase-timing wrapper the consume loop places around its
/// hierarchy calls.
#[inline]
pub(crate) fn timed<T>(sampled: bool, acc: &mut u64, f: impl FnOnce() -> T) -> T {
    if sampled {
        let t0 = std::time::Instant::now();
        let r = f();
        *acc += t0.elapsed().as_nanos() as u64;
        r
    } else {
        f()
    }
}

/// Compile-time guard: the dispatch-counter array covers every
/// [`UopKind`]; a new variant fails this match and points here.
#[allow(dead_code)]
const fn kind_covered(kind: UopKind) -> usize {
    match kind {
        UopKind::IntAlu => 0,
        UopKind::IntMul => 1,
        UopKind::IntDiv => 2,
        UopKind::FpAlu => 3,
        UopKind::FpMul => 4,
        UopKind::FpDiv => 5,
        UopKind::Branch => 6,
        UopKind::Load => 7,
        UopKind::Store => 8,
        UopKind::ShadowLoad => 9,
        UopKind::ShadowStore => 10,
        UopKind::LockLoad => 11,
        UopKind::LockStore => 12,
        UopKind::Check => 13,
        UopKind::BoundsCheck => 14,
        UopKind::CheckCombined => 15,
        UopKind::SelectMeta => 16,
        UopKind::Nop => 17,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_match_the_name_table() {
        for (i, kind) in [
            UopKind::IntAlu,
            UopKind::IntMul,
            UopKind::IntDiv,
            UopKind::FpAlu,
            UopKind::FpMul,
            UopKind::FpDiv,
            UopKind::Branch,
            UopKind::Load,
            UopKind::Store,
            UopKind::ShadowLoad,
            UopKind::ShadowStore,
            UopKind::LockLoad,
            UopKind::LockStore,
            UopKind::Check,
            UopKind::BoundsCheck,
            UopKind::CheckCombined,
            UopKind::SelectMeta,
            UopKind::Nop,
        ]
        .into_iter()
        .enumerate()
        {
            assert_eq!(kind as usize, i, "{kind:?}");
            assert_eq!(kind_covered(kind), i, "{kind:?}");
        }
    }

    #[test]
    fn phase_sampling_cadence() {
        let mut t = CoreTelemetry::new(TelemetryConfig { profile_every: 4 });
        let sampled: Vec<bool> = (0..8).map(|_| t.begin_batch()).collect();
        assert_eq!(
            sampled,
            [false, false, false, true, false, false, false, true]
        );
        let mut off = CoreTelemetry::new(TelemetryConfig { profile_every: 0 });
        assert!(
            (0..8).all(|_| !off.begin_batch()),
            "0 disables phase timing"
        );
    }

    #[test]
    fn dispatch_ns_is_the_unattributed_remainder() {
        let p = PhaseProfile {
            batches_sampled: 1,
            total_ns: 100,
            wheel_drain_ns: 20,
            hierarchy_ns: 30,
            commit_ns: 10,
        };
        assert_eq!(p.dispatch_ns(), 40);
        // Timer skew can push the parts past the whole; never underflow.
        let skewed = PhaseProfile {
            total_ns: 10,
            wheel_drain_ns: 20,
            ..p
        };
        assert_eq!(skewed.dispatch_ns(), 0);
    }

    #[test]
    fn export_produces_the_stable_namespace() {
        let mut t = CoreTelemetry::new(TelemetryConfig::default());
        t.insts = 10;
        t.uops = 25;
        t.dispatch_by_kind[UopKind::Check as usize] = 5;
        t.rob_occupancy.observe(100);
        let mut reg = MetricsRegistry::new();
        t.export_into(&mut reg);
        assert_eq!(reg.counter_value("profile.insts"), Some(10));
        assert_eq!(reg.counter_value("profile.dispatch.check"), Some(5));
        assert_eq!(reg.hist_value("profile.occupancy.rob").unwrap().max(), 100);
        assert_eq!(reg.counter_value("profile.phase.dispatch.ns"), Some(0));
    }
}

//! Core configuration reproducing Table 2 of the paper.

/// Out-of-order core parameters.
///
/// [`CoreConfig::sandy_bridge`] reproduces Table 2; every field is public so
/// ablation studies can vary one parameter at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Core clock in MHz (informational; the simulator reports cycles).
    pub clock_mhz: u64,
    /// Fetch bandwidth in bytes per cycle ("16 bytes/cycle").
    pub fetch_bytes_per_cycle: u64,
    /// Fetch pipeline latency in cycles.
    pub fetch_latency: u64,
    /// Rename width in µops per cycle ("max 6 µops per cycle").
    pub rename_width: u64,
    /// Rename latency in cycles.
    pub rename_latency: u64,
    /// Dispatch latency in cycles.
    pub dispatch_latency: u64,
    /// Reorder-buffer entries ("168-entry ROB").
    pub rob_entries: usize,
    /// Issue-queue entries ("54-entry IQ").
    pub iq_entries: usize,
    /// Load-queue entries ("64-entry LQ").
    pub lq_entries: usize,
    /// Store-queue entries ("36-entry SQ").
    pub sq_entries: usize,
    /// Issue width in µops per cycle ("6-wide").
    pub issue_width: u64,
    /// Commit width in µops per cycle.
    pub commit_width: u64,
    /// Integer ALUs ("6 ALU").
    pub int_alus: usize,
    /// Branch units ("1 branch").
    pub branch_units: usize,
    /// Data-cache load ports ("2 ld").
    pub load_ports: usize,
    /// Data-cache store ports ("1 st").
    pub store_ports: usize,
    /// Integer multiply/divide units ("2 mul/div").
    pub muldiv_units: usize,
    /// FP ALU/convert units ("2 ALU/convert").
    pub fp_alus: usize,
    /// FP multiply units ("1 mul").
    pub fp_muls: usize,
    /// FP divide/sqrt units ("1 mul/div/sqrt").
    pub fp_divs: usize,
    /// Lock-location cache ports (the dedicated cache of §4.2 is a peer of
    /// the L1 caches; two ports match the D-cache's load-port bandwidth so
    /// checks keep pace with loads).
    pub ll_ports: usize,
    /// Physical integer registers ("160 int").
    pub int_phys_regs: usize,
    /// Physical FP registers ("144 floating point").
    pub fp_phys_regs: usize,
    /// Physical metadata registers (128-bit sidecars; sizing follows the
    /// integer file — the paper does not size this file separately).
    pub meta_phys_regs: usize,
    /// Branch-misprediction redirect penalty in cycles (fetch 3 + rename 2
    /// + dispatch 1 plus queue/refill delays).
    pub redirect_penalty: u64,
    /// Integer ALU latency.
    pub lat_int_alu: u64,
    /// Integer multiply latency.
    pub lat_int_mul: u64,
    /// Integer divide latency (unpipelined).
    pub lat_int_div: u64,
    /// FP add/convert latency.
    pub lat_fp_alu: u64,
    /// FP multiply latency.
    pub lat_fp_mul: u64,
    /// FP divide latency (unpipelined).
    pub lat_fp_div: u64,
    /// Address-generation latency preceding a cache access.
    pub lat_agu: u64,
    /// Return-address-stack entries.
    pub ras_entries: usize,
}

impl CoreConfig {
    /// The Table 2 configuration.
    pub const fn sandy_bridge() -> Self {
        CoreConfig {
            clock_mhz: 3200,
            fetch_bytes_per_cycle: 16,
            fetch_latency: 3,
            rename_width: 6,
            rename_latency: 2,
            dispatch_latency: 1,
            rob_entries: 168,
            iq_entries: 54,
            lq_entries: 64,
            sq_entries: 36,
            issue_width: 6,
            commit_width: 6,
            int_alus: 6,
            branch_units: 1,
            load_ports: 2,
            store_ports: 1,
            muldiv_units: 2,
            fp_alus: 2,
            fp_muls: 1,
            fp_divs: 1,
            ll_ports: 2,
            int_phys_regs: 160,
            fp_phys_regs: 144,
            meta_phys_regs: 160,
            redirect_penalty: 14,
            lat_int_alu: 1,
            lat_int_mul: 3,
            lat_int_div: 20,
            lat_fp_alu: 3,
            lat_fp_mul: 4,
            lat_fp_div: 12,
            lat_agu: 1,
            ras_entries: 16,
        }
    }

    /// Table 2 rows as `(parameter, value)` pairs, for the `table2`
    /// reproduction binary.
    pub fn describe(&self) -> Vec<(String, String)> {
        vec![
            (
                "Clock".into(),
                format!("{:.1} GHz", self.clock_mhz as f64 / 1000.0),
            ),
            (
                "Bpred".into(),
                "3-table PPM: 256x2, 128x4, 128x4, 8-bit tags, 2-bit counters".into(),
            ),
            (
                "Fetch".into(),
                format!(
                    "{} bytes/cycle. {} cycle latency",
                    self.fetch_bytes_per_cycle, self.fetch_latency
                ),
            ),
            (
                "Rename".into(),
                format!(
                    "Max {} uops per cycle. {} cycle latency",
                    self.rename_width, self.rename_latency
                ),
            ),
            (
                "Dispatch".into(),
                format!(
                    "Max {} uops per cycle. {} cycle latency",
                    self.rename_width, self.dispatch_latency
                ),
            ),
            (
                "Registers".into(),
                format!(
                    "({} int + {} floating point)",
                    self.int_phys_regs, self.fp_phys_regs
                ),
            ),
            (
                "ROB/IQ".into(),
                format!(
                    "{}-entry ROB, {}-entry IQ",
                    self.rob_entries, self.iq_entries
                ),
            ),
            (
                "Issue".into(),
                format!("{}-wide. Speculative wakeup.", self.issue_width),
            ),
            (
                "Int FUs".into(),
                format!(
                    "{} ALU. {} branch. {} ld. {} st. {} mul/div",
                    self.int_alus,
                    self.branch_units,
                    self.load_ports,
                    self.store_ports,
                    self.muldiv_units
                ),
            ),
            (
                "FP FUs".into(),
                format!(
                    "{} ALU/convert. {} mul. {} mul/div/sqrt.",
                    self.fp_alus, self.fp_muls, self.fp_divs
                ),
            ),
            ("LQ size".into(), format!("{}-entry LQ", self.lq_entries)),
            ("SQ size".into(), format!("{}-entry SQ", self.sq_entries)),
        ]
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::sandy_bridge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let c = CoreConfig::sandy_bridge();
        assert_eq!(c.rob_entries, 168);
        assert_eq!(c.iq_entries, 54);
        assert_eq!(c.lq_entries, 64);
        assert_eq!(c.sq_entries, 36);
        assert_eq!(c.int_alus, 6);
        assert_eq!(c.load_ports, 2);
        assert_eq!(c.store_ports, 1);
        assert_eq!(c.int_phys_regs, 160);
        assert_eq!(c.fp_phys_regs, 144);
        assert_eq!(c.fetch_bytes_per_cycle, 16);
        assert_eq!(c.clock_mhz, 3200);
    }

    #[test]
    fn describe_covers_table2_rows() {
        let rows = CoreConfig::sandy_bridge().describe();
        assert!(rows.len() >= 12);
        assert!(rows.iter().any(|(k, v)| k == "ROB/IQ" && v.contains("168")));
        assert!(rows.iter().any(|(k, _)| k == "Bpred"));
    }
}

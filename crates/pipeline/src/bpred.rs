//! Branch prediction: 3-table PPM predictor plus a return-address stack.
//!
//! Table 2 specifies "3-table PPM: 256x2, 128x4, 128x4, 8-bit tags, 2-bit
//! counters". We implement it PPM/TAGE-style: a 256-entry bimodal base
//! table and two partially-tagged tables indexed with 4- and 8-bit global
//! history; the longest matching tagged entry provides the prediction, and
//! allocation on mispredictions moves hard branches into longer-history
//! tables.
//!
//! Direct jumps and calls are always predicted correctly (their targets are
//! in the BTB); returns are predicted through the return-address stack and
//! mispredict only on overflow.

use watchdog_isa::crack::CtrlKind;

const BASE_ENTRIES: usize = 256;
const TAGGED_ENTRIES: usize = 128;
const HIST_LENS: [u32; 2] = [4, 8];

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u8,
    ctr: u8, // 2-bit saturating, taken if >= 2
    useful: bool,
}

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Conditional branches observed.
    pub cond_branches: u64,
    /// Conditional-branch mispredictions.
    pub cond_mispredicts: u64,
    /// Returns observed.
    pub returns: u64,
    /// Return mispredictions (RAS underflow/overflow).
    pub ret_mispredicts: u64,
}

impl BpredStats {
    /// Mispredictions per 1000 conditional branches.
    pub fn mpki(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 * 1000.0 / self.cond_branches as f64
        }
    }
}

/// The PPM direction predictor + return-address stack.
#[derive(Debug)]
pub struct Predictor {
    base: [u8; BASE_ENTRIES],
    tagged: [[TaggedEntry; TAGGED_ENTRIES]; 2],
    ghr: u64,
    ras: Vec<u64>,
    ras_cap: usize,
    stats: BpredStats,
}

impl Predictor {
    /// Builds the predictor with a `ras_entries`-deep return-address stack.
    pub fn new(ras_entries: usize) -> Self {
        Predictor {
            base: [1; BASE_ENTRIES], // weakly not-taken
            tagged: [[TaggedEntry::default(); TAGGED_ENTRIES]; 2],
            ghr: 0,
            ras: Vec::with_capacity(ras_entries),
            ras_cap: ras_entries,
            stats: BpredStats::default(),
        }
    }

    fn fold_hist(&self, bits: u32) -> u64 {
        let mask = (1u64 << bits) - 1;
        let h = self.ghr & mask;
        h ^ (h >> (bits / 2).max(1))
    }

    fn index(&self, pc: u64, table: usize) -> usize {
        let h = self.fold_hist(HIST_LENS[table]);
        ((pc >> 2) ^ h ^ (h << 3)) as usize % TAGGED_ENTRIES
    }

    fn tag(&self, pc: u64, table: usize) -> u8 {
        let h = self.fold_hist(HIST_LENS[table]);
        (((pc >> 9) ^ h ^ (pc >> 2)) & 0xFF) as u8
    }

    fn predict_dir(&self, pc: u64) -> (bool, Option<usize>) {
        // Longest-history tagged table with a tag match provides the
        // prediction.
        for table in (0..2).rev() {
            let e = &self.tagged[table][self.index(pc, table)];
            if e.tag == self.tag(pc, table) && e.useful {
                return (e.ctr >= 2, Some(table));
            }
        }
        (self.base[(pc >> 2) as usize % BASE_ENTRIES] >= 2, None)
    }

    fn update_dir(&mut self, pc: u64, taken: bool, provider: Option<usize>, correct: bool) {
        match provider {
            Some(t) => {
                let idx = self.index(pc, t);
                let e = &mut self.tagged[t][idx];
                e.ctr = bump(e.ctr, taken);
            }
            None => {
                let idx = (pc >> 2) as usize % BASE_ENTRIES;
                self.base[idx] = bump(self.base[idx], taken);
            }
        }
        // On a mispredict, allocate in a longer-history table.
        if !correct {
            let next = provider.map_or(0, |t| t + 1);
            if next < 2 {
                let idx = self.index(pc, next);
                let tag = self.tag(pc, next);
                self.tagged[next][idx] = TaggedEntry {
                    tag,
                    ctr: if taken { 2 } else { 1 },
                    useful: true,
                };
            }
        }
        self.ghr = (self.ghr << 1) | u64::from(taken);
    }

    /// Observes one control-flow instruction: predicts it, updates predictor
    /// state, and returns whether the prediction was **correct**.
    ///
    /// `taken` and `target` are the actual outcome; `fallthrough` is the
    /// address of the next sequential instruction (pushed on the RAS for
    /// calls).
    pub fn observe(
        &mut self,
        pc: u64,
        ctrl: CtrlKind,
        taken: bool,
        target: u64,
        fallthrough: u64,
    ) -> bool {
        match ctrl {
            CtrlKind::None => true,
            CtrlKind::Jump => true,
            CtrlKind::CondBranch => {
                self.stats.cond_branches += 1;
                let (pred, provider) = self.predict_dir(pc);
                let correct = pred == taken;
                if !correct {
                    self.stats.cond_mispredicts += 1;
                }
                self.update_dir(pc, taken, provider, correct);
                correct
            }
            CtrlKind::Call => {
                if self.ras.len() == self.ras_cap {
                    self.ras.remove(0); // overflow: oldest entry lost
                }
                self.ras.push(fallthrough);
                true
            }
            CtrlKind::Ret => {
                self.stats.returns += 1;
                let predicted = self.ras.pop();
                let correct = predicted == Some(target);
                if !correct {
                    self.stats.ret_mispredicts += 1;
                }
                correct
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BpredStats {
        self.stats
    }
}

fn bump(ctr: u8, up: bool) -> u8 {
    if up {
        (ctr + 1).min(3)
    } else {
        ctr.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_always_taken_branch() {
        let mut p = Predictor::new(16);
        let mut wrong = 0;
        for _ in 0..100 {
            if !p.observe(0x1000, CtrlKind::CondBranch, true, 0x2000, 0x1004) {
                wrong += 1;
            }
        }
        assert!(
            wrong <= 3,
            "always-taken branch should be learned quickly ({wrong} wrong)"
        );
    }

    #[test]
    fn learns_an_alternating_branch_via_history() {
        let mut p = Predictor::new(16);
        let mut wrong_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let ok = p.observe(0x1000, CtrlKind::CondBranch, taken, 0x2000, 0x1004);
            if i >= 200 && !ok {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late < 40,
            "history tables should capture the alternating pattern ({wrong_late}/200 wrong)"
        );
    }

    #[test]
    fn random_branches_mispredict_sometimes() {
        let mut p = Predictor::new(16);
        // Deterministic pseudo-random outcome stream.
        let mut x: u64 = 0x12345;
        let mut wrong = 0;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            if !p.observe(0x1000, CtrlKind::CondBranch, taken, 0x2000, 0x1004) {
                wrong += 1;
            }
        }
        assert!(
            wrong > 100,
            "random outcomes cannot be predicted ({wrong}/500 wrong)"
        );
    }

    #[test]
    fn calls_and_matched_returns_always_predict() {
        let mut p = Predictor::new(16);
        for depth in 0..8u64 {
            assert!(p.observe(0x100 + depth, CtrlKind::Call, true, 0x5000, 0x104 + depth));
        }
        for depth in (0..8u64).rev() {
            assert!(p.observe(0x5000, CtrlKind::Ret, true, 0x104 + depth, 0x5004));
        }
        assert_eq!(p.stats().ret_mispredicts, 0);
    }

    #[test]
    fn ras_overflow_mispredicts_deep_returns() {
        let mut p = Predictor::new(2);
        for d in 0..4u64 {
            p.observe(0x100 + d, CtrlKind::Call, true, 0x5000, 0x200 + d);
        }
        // Only the two most recent return addresses survive.
        assert!(p.observe(0x5000, CtrlKind::Ret, true, 0x203, 0x5004));
        assert!(p.observe(0x5000, CtrlKind::Ret, true, 0x202, 0x5004));
        assert!(!p.observe(0x5000, CtrlKind::Ret, true, 0x201, 0x5004));
        assert!(p.stats().ret_mispredicts >= 1);
    }

    #[test]
    fn jumps_never_mispredict() {
        let mut p = Predictor::new(16);
        assert!(p.observe(0x1000, CtrlKind::Jump, true, 0x9999, 0x1004));
        assert!(p.observe(0x1000, CtrlKind::None, false, 0, 0x1004));
    }

    #[test]
    fn mpki_metric() {
        let s = BpredStats {
            cond_branches: 1000,
            cond_mispredicts: 5,
            ..Default::default()
        };
        assert_eq!(s.mpki(), 5.0);
        assert_eq!(BpredStats::default().mpki(), 0.0);
    }
}

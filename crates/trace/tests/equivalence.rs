//! The tentpole's correctness anchor, at unit scale: for hand-built
//! programs covering every mode and outcome, a trace-driven replay must
//! reproduce the live timed simulation's [`RunReport`] exactly — cycles,
//! µop tags, hierarchy/predictor statistics, crack-cache counters,
//! violation, heap and footprint. (Suite- and fuzz-scale equivalence
//! lives in the workspace-level `trace_equivalence` tests.)

use watchdog_core::prelude::*;
use watchdog_isa::{Cond, Gpr, Program, ProgramBuilder};
use watchdog_mem::CacheConfig;
use watchdog_trace::{record, replay, ReplayConfig, Trace, TraceError, TraceOutcome};

fn g(n: u8) -> Gpr {
    Gpr::new(n)
}

/// A pointer-heavy benign kernel: build a linked list, walk it, free it
/// (the same shape the simulator's own tests use).
fn list_program(nodes: i64) -> Program {
    let mut b = ProgramBuilder::new("list");
    let (head, cur, nxt, sz, i, n, acc) = (g(0), g(1), g(2), g(3), g(4), g(5), g(6));
    b.li(sz, 16);
    b.li(head, 0);
    b.li(i, 0);
    b.li(n, nodes);
    let build = b.here();
    b.malloc(nxt, sz);
    b.st8(head, nxt, 0);
    b.st8(i, nxt, 8);
    b.mov(head, nxt);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, n, build);
    b.li(acc, 0);
    b.mov(cur, head);
    let walk = b.here();
    b.ld8(nxt, cur, 8);
    b.add(acc, acc, nxt);
    b.ld8(cur, cur, 0);
    b.branch(Cond::Ne, cur, g(14), walk);
    b.mov(cur, head);
    let fr = b.here();
    b.ld8(nxt, cur, 0);
    b.free(cur);
    b.mov(cur, nxt);
    b.branch(Cond::Ne, cur, g(14), fr);
    b.halt();
    b.build().unwrap()
}

fn uaf_program() -> Program {
    let mut b = ProgramBuilder::new("uaf");
    let (p, sz) = (g(0), g(1));
    b.li(sz, 64);
    b.malloc(p, sz);
    b.free(p);
    b.ld8(g(2), p, 0);
    b.halt();
    b.build().unwrap()
}

/// Records under `mode`, replays under the timing slice of `sim`, and
/// asserts the replayed report is identical (via `Debug`, which renders
/// every field of every nested statistic) to the live timed run.
fn assert_replay_exact(program: &Program, mode: Mode, sim: SimConfig) {
    let live = Simulator::new(sim.clone()).run(program).expect("live run");
    let trace = record(program, mode, sim.max_insts).expect("record");
    let rep = replay(program, &trace, &ReplayConfig::from_sim(&sim)).expect("replay");
    assert_eq!(
        format!("{live:?}"),
        format!("{rep:?}"),
        "replayed report diverges from live under {}",
        mode.label()
    );
}

#[test]
fn replay_matches_live_under_every_mode() {
    let p = list_program(60);
    for mode in [
        Mode::Baseline,
        Mode::LocationBased,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
        Mode::Watchdog {
            ptr: PointerId::IsaAssisted,
            lock_cache: false,
            ideal_shadow: false,
        },
        Mode::Watchdog {
            ptr: PointerId::IsaAssisted,
            lock_cache: true,
            ideal_shadow: true,
        },
        Mode::WatchdogBounds {
            ptr: PointerId::Conservative,
            uops: BoundsUops::Fused,
        },
        Mode::WatchdogBounds {
            ptr: PointerId::IsaAssisted,
            uops: BoundsUops::Split,
        },
    ] {
        assert_replay_exact(&p, mode, SimConfig::timed(mode));
    }
}

#[test]
fn replay_matches_live_on_violating_runs() {
    let p = uaf_program();
    for mode in [
        Mode::LocationBased,
        Mode::watchdog_conservative(),
        Mode::watchdog(),
    ] {
        assert_replay_exact(&p, mode, SimConfig::timed(mode));
        let trace = record(&p, mode, 1_000_000).unwrap();
        assert!(matches!(trace.outcome(), TraceOutcome::Violation(_)));
    }
}

#[test]
fn replay_matches_live_with_the_crack_cache_disabled() {
    let p = list_program(40);
    let mode = Mode::watchdog_conservative();
    let mut sim = SimConfig::timed(mode);
    sim.crack_cache = false;
    assert_replay_exact(&p, mode, sim);
}

#[test]
fn one_trace_sweeps_many_hierarchies_exactly() {
    // The whole point: one functional pass, N ablation replays — each
    // identical to a dedicated live simulation of that configuration.
    let p = list_program(80);
    let mode = Mode::watchdog_conservative();
    let trace = record(&p, mode, 10_000_000).unwrap();
    for kb in [1u64, 4, 16] {
        let mut sim = SimConfig::timed(mode);
        sim.hierarchy.ll = CacheConfig::new(kb * 1024, 8, 64);
        let live = Simulator::new(sim.clone()).run(&p).unwrap();
        let rep = replay(&p, &trace, &ReplayConfig::from_sim(&sim)).unwrap();
        assert_eq!(format!("{live:?}"), format!("{rep:?}"), "LL$ {kb}KB");
    }
}

#[test]
fn serialized_traces_replay_identically() {
    let p = list_program(30);
    let mode = Mode::watchdog();
    let trace = record(&p, mode, 10_000_000).unwrap();
    let back = Trace::from_bytes(&trace.to_bytes()).expect("round-trip");
    assert_eq!(trace, back);
    let a = replay(&p, &trace, &ReplayConfig::default()).unwrap();
    let b = replay(&p, &back, &ReplayConfig::default()).unwrap();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn traces_are_compact() {
    let p = list_program(100);
    let trace = record(&p, Mode::watchdog_conservative(), 10_000_000).unwrap();
    let info = trace.info();
    assert_eq!(info.insts, trace.machine_stats().insts);
    assert!(info.events > 0 && info.events < info.insts + 1);
    // Delta encoding keeps the stream small: well under 16 bytes per
    // committed instruction for pointer-chasing code.
    assert!(
        info.bytes_per_event() < 16.0,
        "bytes/event = {:.1}",
        info.bytes_per_event()
    );
}

#[test]
fn replaying_the_wrong_program_is_rejected() {
    let a = list_program(10);
    let b = list_program(11); // same name, different instructions
    let trace = record(&a, Mode::watchdog_conservative(), 1_000_000).unwrap();
    let err = replay(&b, &trace, &ReplayConfig::default()).unwrap_err();
    assert!(matches!(err, TraceError::ProgramMismatch { .. }), "{err}");
    let err = replay(&uaf_program(), &trace, &ReplayConfig::default()).unwrap_err();
    assert!(matches!(err, TraceError::ProgramMismatch { .. }), "{err}");
}

#[test]
fn corrupt_event_streams_fail_closed() {
    let p = list_program(10);
    let trace = record(&p, Mode::watchdog_conservative(), 1_000_000).unwrap();
    let bytes = trace.to_bytes();
    // Flip every single byte of the serialized trace in turn: decoding or
    // replay may fail, report different numbers, or (rarely) be a benign
    // flip in an unused flag-ish position — but it must never panic.
    let baseline = replay(&p, &trace, &ReplayConfig::default()).unwrap();
    let mut survived = 0usize;
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0x41;
        if let Ok(t) = Trace::from_bytes(&mutated) {
            if let Ok(r) = replay(&p, &t, &ReplayConfig::default()) {
                if format!("{r:?}") == format!("{baseline:?}") {
                    survived += 1;
                }
            }
        }
    }
    // A flip that still yields the identical report should be rare.
    assert!(
        survived * 10 < bytes.len(),
        "{survived}/{} byte flips were silent no-ops",
        bytes.len()
    );
}

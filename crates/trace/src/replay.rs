//! Trace-driven timing replay: re-crack statically, decode the dynamic
//! facts, feed the timing core — no architectural re-execution.
//!
//! The replayer reproduces a live timed simulation *exactly*: the µop
//! stream is assembled by the same
//! [`assemble_cracked`](watchdog_isa::crack::assemble_cracked()) the machine
//! uses, static expansions come from the same per-PC
//! [`CrackCache`], and the functional half of the [`RunReport`] (stats,
//! heap, footprint, violation) is carried in the trace trailer. What *can*
//! vary per replay is everything the timing model owns: core parameters,
//! the cache hierarchy (LL$ size/associativity, ideal shadow) and the
//! crack cache toggle — which is what makes one-pass configuration sweeps
//! possible.

use watchdog_core::machine::CheckMode;
use watchdog_core::prelude::*;
use watchdog_isa::crack::{
    assemble_cracked, crack, CommitFacts, CrackedInst, CtrlKind, MetaEffect,
};
use watchdog_isa::crack_cache::CrackCache;
use watchdog_isa::insn::Inst;
use watchdog_isa::Program;
use watchdog_mem::HierarchyConfig;
use watchdog_pipeline::{
    CoreConfig, FeedStats, HeapSched, SchedModel, ScheduledCore, TelemetryConfig, UopBatch,
    WheelSched,
};
use watchdog_telemetry::MetricsRegistry;

use crate::format::{program_fingerprint, Trace, TraceError};
use crate::record::{F_BRANCH, F_FOLDABLE, F_FOLDED, F_PTR, F_SEQ, F_TAKEN};
use crate::wire::get_ivarint;

/// Timing-side configuration of one replay. The checking mode is *not*
/// here — it is baked into the trace (it shapes the recorded stream); the
/// replayer only varies what a microarchitectural ablation varies.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Core parameters (Table 2 by default).
    pub core: CoreConfig,
    /// Memory-hierarchy parameters. The trace mode's lock-cache /
    /// ideal-shadow knobs are applied on top, exactly as in a live run.
    pub hierarchy: HierarchyConfig,
    /// Serve static crack expansions from the per-PC cache.
    pub crack_cache: bool,
    /// Fill [`UopBatch`] windows straight from the decoded events and
    /// drain them with
    /// [`TimingCore::consume_batch`](watchdog_pipeline::ScheduledCore::consume_batch)
    /// (no per-instruction `CrackedInst` assembly at all). On by default;
    /// the per-instruction path produces a field-identical report and only
    /// remains as the comparison baseline.
    pub batch: bool,
    /// Drive the timing core through the preserved match-based dispatch
    /// path instead of the table-driven lane-streaming default. Off by
    /// default; only the dispatch-equivalence suite and ablation
    /// benchmarks flip it.
    pub match_dispatch: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            core: CoreConfig::sandy_bridge(),
            hierarchy: HierarchyConfig::default(),
            crack_cache: true,
            batch: true,
            match_dispatch: false,
        }
    }
}

impl ReplayConfig {
    /// The timing-side slice of a full [`SimConfig`] (`mode`, `timing` and
    /// `max_insts` do not apply to replay).
    ///
    /// # Panics
    ///
    /// Panics when `cfg.sampling` is set: replay measures every recorded
    /// instruction, so it cannot reproduce a sampled run's report — fail
    /// fast instead of returning a guaranteed "divergence".
    pub fn from_sim(cfg: &SimConfig) -> Self {
        assert!(
            cfg.sampling.is_none(),
            "trace replay does not support sampled measurement windows"
        );
        ReplayConfig {
            core: cfg.core,
            hierarchy: cfg.hierarchy,
            crack_cache: cfg.crack_cache,
            batch: cfg.batch,
            match_dispatch: cfg.match_dispatch,
        }
    }
}

/// Replay-side feed diagnostics returned by [`replay_with_stats`]:
/// how the µop stream reached the timing core. Deliberately outside the
/// [`RunReport`], which must stay field-identical across feeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayStats {
    /// Batch-feed counters of the timing core.
    pub feed: FeedStats,
    /// Lock-probe memo short circuits taken by the hierarchy.
    pub ll_memo_hits: u64,
}

/// End-to-end equivalence check, shared by the CI `trace selftest`, the
/// workspace equivalence tests and diagnostics so the "oracle-exact"
/// property is asserted by exactly one recipe: run the live timed
/// simulation of `sim`, [`record`](crate::record()) the same program,
/// round-trip the trace through its serialized form, [`replay()`] it under
/// the timing slice of `sim`, and compare the two [`RunReport`]s
/// field-for-field (via their `Debug` rendering, which prints every nested
/// statistic).
///
/// # Errors
///
/// A human-readable description — prefixed with the program name and mode
/// label — of the first failure: a simulation/recording/replay error, or
/// the pair of diverging reports.
pub fn verify_replay(program: &Program, sim: &SimConfig) -> Result<(), String> {
    let mode = sim.mode;
    let label = |what: &str| format!("{}/{}: {what}", program.name(), mode.label());
    let live = Simulator::new(sim.clone())
        .run(program)
        .map_err(|e| label(&format!("live run failed: {e}")))?;
    let trace = crate::record(program, mode, sim.max_insts)
        .map_err(|e| label(&format!("record failed: {e}")))?;
    let trace = Trace::from_bytes(&trace.to_bytes())
        .map_err(|e| label(&format!("serialization round-trip failed: {e}")))?;
    let mut cfg = ReplayConfig::from_sim(sim);
    let rep = replay(program, &trace, &cfg).map_err(|e| label(&format!("replay failed: {e}")))?;
    let (a, b) = (format!("{live:?}"), format!("{rep:?}"));
    if a != b {
        return Err(label(&format!(
            "replay diverges from live\nlive:   {a}\nreplay: {b}"
        )));
    }
    // The two replay feeds — batched SoA fill and per-instruction
    // assembly — must agree with each other too, so the batch path is
    // covered by every caller of this recipe (CI selftest included).
    cfg.batch = !cfg.batch;
    let alt = replay(program, &trace, &cfg)
        .map_err(|e| label(&format!("alternate-feed replay failed: {e}")))?;
    let c = format!("{alt:?}");
    if b != c {
        return Err(label(&format!(
            "batched and per-instruction replay feeds diverge\none: {b}\nother: {c}"
        )));
    }
    Ok(())
}

/// Replays `trace` through the timing model under `cfg`, producing the
/// [`RunReport`] the equivalent live timed simulation would produce —
/// field-for-field, including crack-cache statistics.
///
/// # Errors
///
/// [`TraceError::ProgramMismatch`] when `program` is not the program the
/// trace was recorded from (name or fingerprint differ); other
/// [`TraceError`]s when the event stream is corrupt or truncated.
pub fn replay(
    program: &Program,
    trace: &Trace,
    cfg: &ReplayConfig,
) -> Result<RunReport, TraceError> {
    replay_with_stats(program, trace, cfg).map(|(report, _)| report)
}

/// [`replay()`] plus the feed diagnostics (batch occupancy, lock-probe
/// memo hits) that never appear in the report itself.
///
/// # Errors
///
/// Exactly as [`replay()`].
pub fn replay_with_stats(
    program: &Program,
    trace: &Trace,
    cfg: &ReplayConfig,
) -> Result<(RunReport, ReplayStats), TraceError> {
    replay_impl::<WheelSched>(program, trace, cfg, None).map(|(report, stats, _)| (report, stats))
}

/// [`replay()`] with the timing core's self-profiler attached: the core
/// collects per-kind dispatch counters, occupancy/wheel histograms and
/// sampled phase timers under `tele`, exported as a `profile.*`/`feed.*`
/// registry beside the report. The report itself is byte-identical to an
/// uninstrumented [`replay()`] — telemetry is observation, never timing.
///
/// # Errors
///
/// Exactly as [`replay()`].
pub fn replay_instrumented(
    program: &Program,
    trace: &Trace,
    cfg: &ReplayConfig,
    tele: TelemetryConfig,
) -> Result<(RunReport, MetricsRegistry), TraceError> {
    replay_impl::<WheelSched>(program, trace, cfg, Some(tele)).map(|(report, _, reg)| (report, reg))
}

/// [`replay()`] on the heap-scheduled reference core
/// ([`ReferenceCore`](watchdog_pipeline::ReferenceCore)) — the oracle the
/// wheel-scheduled replay is proven report-identical to. Not for
/// production use.
///
/// # Errors
///
/// Exactly as [`replay()`].
pub fn replay_reference(
    program: &Program,
    trace: &Trace,
    cfg: &ReplayConfig,
) -> Result<RunReport, TraceError> {
    replay_impl::<HeapSched>(program, trace, cfg, None).map(|(report, _, _)| report)
}

/// The replay loop, generic over the timing core's scheduling model.
/// `tele`, when supplied, attaches the core's self-profiler and exports
/// its registry as the third element (empty otherwise).
fn replay_impl<S: SchedModel>(
    program: &Program,
    trace: &Trace,
    cfg: &ReplayConfig,
    tele: Option<TelemetryConfig>,
) -> Result<(RunReport, ReplayStats, MetricsRegistry), TraceError> {
    if trace.program != program.name() || trace.fingerprint != program_fingerprint(program) {
        return Err(TraceError::ProgramMismatch {
            trace: trace.program.clone(),
            program: program.name().to_string(),
        });
    }
    let mode = trace.mode;
    let crack_cfg = mode.crack_config();
    let location = mode.check_mode() == CheckMode::Location;
    let mut hier = cfg.hierarchy;
    mode.apply_hierarchy(&mut hier);

    let mut cache = cfg
        .crack_cache
        .then(|| CrackCache::new(crack_cfg, program.len()));
    let mut core = ScheduledCore::<S>::new(cfg.core, hier);
    core.set_match_dispatch(cfg.match_dispatch);
    if let Some(tcfg) = tele {
        core.enable_telemetry(tcfg);
    }
    let mut cur = CrackedInst::empty();
    let mut ubatch = UopBatch::with_capacity(UopBatch::TARGET_INSTS);
    let mut addrs: Vec<u64> = Vec::with_capacity(watchdog_isa::uop::MAX_UOPS + 1);

    let events = &trace.events[..];
    let mut pos = 0usize;
    let mut next_pc = 0usize;
    let mut last_addr = 0u64;
    let mut last_target = 0i64;
    for _ in 0..trace.event_count {
        let Some(&flags) = events.get(pos) else {
            return Err(TraceError::Truncated);
        };
        pos += 1;
        if flags & 0xc0 != 0 {
            return Err(TraceError::Corrupt("unknown event flag bits"));
        }
        let pc = if flags & F_SEQ != 0 {
            next_pc as i64
        } else {
            next_pc as i64 + get_ivarint(events, &mut pos)?
        };
        if pc < 0 || pc as usize >= program.len() {
            return Err(TraceError::Corrupt("event pc out of program range"));
        }
        let pc = pc as usize;
        next_pc = pc + 1;
        let inst = *program.inst(pc);
        let ptr_op = flags & F_PTR != 0;

        // Uncached replays re-crack per event, mirroring the uncached
        // machine (so `crack_cache: false` ablations replay with
        // identical — absent — cache statistics).
        let uncached;
        let stat = match cache.as_mut() {
            Some(c) => c.get_or_crack(pc, &inst, ptr_op),
            None => {
                uncached = crack(&inst, ptr_op, &crack_cfg);
                &uncached
            }
        };
        let location_check = location && inst.is_mem();
        let n_addrs = watchdog_isa::crack::mem_uop_count(&stat.uops) + usize::from(location_check);
        addrs.clear();
        for _ in 0..n_addrs {
            last_addr = last_addr.wrapping_add(get_ivarint(events, &mut pos)? as u64);
            addrs.push(last_addr);
        }
        let has_branch = flags & F_BRANCH != 0;
        if has_branch != (stat.ctrl != CtrlKind::None) {
            return Err(TraceError::Corrupt("branch flag disagrees with decode"));
        }
        let branch = if has_branch {
            last_target = last_target.wrapping_add(get_ivarint(events, &mut pos)?);
            Some((flags & F_TAKEN != 0, last_target as u64))
        } else {
            None
        };
        let select_fold = if flags & F_FOLDED != 0 {
            if flags & F_FOLDABLE == 0 {
                return Err(TraceError::Corrupt("folded event without foldable flag"));
            }
            match inst {
                Inst::Alu { dst, .. } => Some(MetaEffect::Invalidate(dst)),
                _ => return Err(TraceError::Corrupt("fold on a non-ALU instruction")),
            }
        } else {
            None
        };
        let facts = CommitFacts {
            pc: program.addr_of(pc),
            len: inst.encoded_len(),
            select_fold,
            location_check,
            mem_addrs: &addrs,
            branch,
        };
        if cfg.batch {
            // Fill the SoA batch straight from the decoded event — the
            // same `push_expansion` the live machine's batched step uses,
            // with no scratch `CrackedInst` and no architectural
            // interleaving.
            ubatch.push_expansion(stat, &facts);
            if ubatch.len() >= UopBatch::TARGET_INSTS {
                core.consume_batch(&ubatch);
                ubatch.clear();
            }
        } else {
            assemble_cracked(&mut cur, stat, &facts);
            core.consume(&cur);
        }
    }
    if pos != events.len() {
        return Err(TraceError::Corrupt("trailing bytes in event stream"));
    }
    core.consume_batch(&ubatch);

    let stats = ReplayStats {
        feed: core.feed_stats(),
        ll_memo_hits: core.hierarchy().ll_memo_hits(),
    };
    let mut reg = MetricsRegistry::new();
    if tele.is_some() {
        core.export_telemetry_into(&mut reg);
    }
    let report = RunReport {
        program: trace.program.clone(),
        mode: mode.label(),
        machine: trace.machine,
        heap: trace.heap,
        footprint: trace.footprint,
        violation: trace.outcome.violation(),
        timing: Some(core.finish()),
        crack_cache: cache.map(|c| c.stats()),
    };
    Ok((report, stats, reg))
}

//! Commit-stream capture: a [`CommitHook`] that delta-encodes every
//! committed instruction's dynamic facts.
//!
//! The recording run is **functional-only** — the machine never cracks a
//! single µop, because the µop expansion is a pure function of the static
//! program and the crack configuration. Only the dynamic facts go into the
//! stream, one event per committed instruction:
//!
//! ```text
//! flags (1 byte): ptr_op | foldable | folded | branch | taken | seq
//! [pc delta]      zigzag varint vs. predicted pc (absent when `seq`)
//! addr deltas     one zigzag varint per memory µop, vs. the previous
//!                 memory address in the stream (the count is *implied* —
//!                 the replayer re-cracks and counts memory µops)
//! [branch target] zigzag varint vs. the previous branch target
//! ```
//!
//! Sequential fetches cost one byte; loopy pointer code averages a few
//! bytes per instruction.

use watchdog_core::machine::{CommitHook, CommitRecord, MachineConfig, Step};
use watchdog_core::prelude::*;
use watchdog_core::PointerPolicy;
use watchdog_isa::Program;

use crate::format::{program_fingerprint, Trace, TraceOutcome};
use crate::wire::put_ivarint;

pub(crate) const F_PTR: u8 = 1 << 0;
pub(crate) const F_FOLDABLE: u8 = 1 << 1;
pub(crate) const F_FOLDED: u8 = 1 << 2;
pub(crate) const F_BRANCH: u8 = 1 << 3;
pub(crate) const F_TAKEN: u8 = 1 << 4;
pub(crate) const F_SEQ: u8 = 1 << 5;

/// Incremental commit-stream encoder. Drive a [`watchdog_core::Machine`]
/// with [`Machine::step_hooked`](watchdog_core::Machine::step_hooked) and
/// hand the finished recorder to [`TraceRecorder::finish`] — or use
/// [`record`], which does all of that.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Vec<u8>,
    count: u64,
    next_pc: usize,
    last_addr: u64,
    last_target: i64,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events captured so far.
    pub fn event_count(&self) -> u64 {
        self.count
    }

    /// Encoded bytes captured so far.
    pub fn byte_len(&self) -> usize {
        self.events.len()
    }

    /// Seals the stream into a [`Trace`], attaching the functional run's
    /// outcome and final statistics (which the replayer reproduces in its
    /// [`RunReport`] verbatim — they are architectural facts no timing
    /// configuration can change).
    pub fn finish(
        self,
        program: &Program,
        mode: Mode,
        outcome: TraceOutcome,
        machine: &watchdog_core::Machine<'_>,
    ) -> Trace {
        Trace {
            mode,
            program: program.name().to_string(),
            fingerprint: program_fingerprint(program),
            events: self.events,
            event_count: self.count,
            outcome,
            machine: machine.stats(),
            heap: machine.heap_stats(),
            footprint: machine.footprint(),
        }
    }
}

impl CommitHook for TraceRecorder {
    fn on_commit(&mut self, rec: &CommitRecord<'_>) {
        let seq = rec.pc_index == self.next_pc;
        let mut flags = 0u8;
        if rec.ptr_op {
            flags |= F_PTR;
        }
        match rec.folded {
            None => {}
            Some(false) => flags |= F_FOLDABLE,
            Some(true) => flags |= F_FOLDABLE | F_FOLDED,
        }
        if let Some((taken, _)) = rec.branch {
            flags |= F_BRANCH;
            if taken {
                flags |= F_TAKEN;
            }
        }
        if seq {
            flags |= F_SEQ;
        }
        self.events.push(flags);
        if !seq {
            put_ivarint(&mut self.events, rec.pc_index as i64 - self.next_pc as i64);
        }
        self.next_pc = rec.pc_index + 1;
        for &a in rec.mem_addrs {
            put_ivarint(&mut self.events, a.wrapping_sub(self.last_addr) as i64);
            self.last_addr = a;
        }
        if let Some((_, target)) = rec.branch {
            put_ivarint(
                &mut self.events,
                (target as i64).wrapping_sub(self.last_target),
            );
            self.last_target = target as i64;
        }
        self.count += 1;
    }
}

/// Records `program` under `mode`: one functional pass (plus the §5.2
/// profiling pass first, when the mode uses ISA-assisted identification —
/// the same pass a live simulation performs), producing a [`Trace`] that
/// replays into the exact [`RunReport`] of a live timed simulation.
///
/// # Errors
///
/// Propagates simulator-level failures ([`SimError`]); a run that exceeds
/// `max_insts` yields [`SimError::InstLimit`], exactly like a live run —
/// there is no trace for a program that cannot be simulated.
pub fn record(program: &Program, mode: Mode, max_insts: u64) -> Result<Trace, SimError> {
    let policy = match mode.pointer_id() {
        Some(PointerId::IsaAssisted) => {
            PointerPolicy::Profiled(Simulator::profile(program, max_insts)?)
        }
        _ => PointerPolicy::Conservative,
    };
    let mcfg = MachineConfig {
        check: mode.check_mode(),
        bounds: mode.bounds_uops(),
        policy,
        profiling: false,
        emit_uops: false,
        crack_cache: false,
    };
    let mut machine = watchdog_core::Machine::new(program, mcfg);
    let mut recorder = TraceRecorder::new();
    let mut executed = 0u64;
    let outcome = loop {
        match machine.step_hooked(&mut recorder)? {
            Step::Executed(_) => {
                executed += 1;
                if executed > max_insts {
                    return Err(SimError::InstLimit { limit: max_insts });
                }
            }
            Step::Halted => break TraceOutcome::Halted,
            Step::Violation(v) => break TraceOutcome::Violation(v),
        }
    };
    Ok(recorder.finish(program, mode, outcome, &machine))
}
